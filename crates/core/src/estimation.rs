//! Private mean estimation over network shuffling (Section 5.6, Figure 9).
//!
//! The paper's utility study: `n` users each hold a unit vector in `R^d`,
//! perturb it with the PrivUnit ε₀-LDP mechanism, exchange the reports by
//! network shuffling and let the curator average what it receives.  Under
//! `A_all` every genuine report arrives; under `A_single` users holding
//! several reports forward only one and empty-handed users submit a dummy
//! (a PrivUnit report of a dummy vector), so the estimate is biased towards
//! the dummy distribution — the utility cost that Figure 9 quantifies.

use crate::error::{Error, Result};
use crate::protocol::ProtocolKind;
use crate::simulation::{run_protocol, SimulationConfig, SimulationOutcome};
use ns_dp::estimators::{estimate_mean, squared_error};
use ns_dp::mechanisms::PrivUnit;
use ns_dp::LocalRandomizer;
use ns_graph::rng::SimRng;
use ns_graph::Graph;
use rand::Rng;
use rand_chacha::rand_core::SeedableRng;
use serde::{Deserialize, Serialize};

/// Configuration of one mean-estimation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeanEstimationConfig {
    /// Local LDP parameter ε₀ applied by PrivUnit.
    pub epsilon_0: f64,
    /// Number of communication rounds before reporting.
    pub rounds: usize,
    /// Which reporting protocol to run.
    pub protocol: ProtocolKind,
    /// Simulation seed.
    pub seed: u64,
}

/// Outcome of one mean-estimation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MeanEstimationResult {
    /// The curator's estimate of the population mean.
    pub estimate: Vec<f64>,
    /// Squared L2 error `‖estimate − true mean‖²`.
    pub squared_error: f64,
    /// Number of genuine reports the curator received.
    pub genuine_reports: usize,
    /// Number of dummy reports the curator received (`A_single` only).
    pub dummy_reports: usize,
}

/// Runs the Figure 9 experiment on `graph` with per-user unit vectors
/// `data` (one per node) and a pool of unit-norm dummy vectors used by
/// `A_single`.
///
/// The "true mean" against which the error is measured is the mean of
/// `data`, matching the paper's setup.
///
/// # Errors
///
/// * [`Error::InvalidConfiguration`] if the data size does not match the
///   graph, vectors have inconsistent dimensions, or the dummy pool is empty
///   while the protocol is `A_single`;
/// * PrivUnit domain errors for non-unit vectors.
pub fn run_mean_estimation(
    graph: &Graph,
    data: &[Vec<f64>],
    dummy_pool: &[Vec<f64>],
    config: MeanEstimationConfig,
) -> Result<MeanEstimationResult> {
    let n = graph.node_count();
    if data.len() != n {
        return Err(Error::InvalidConfiguration(format!(
            "expected {n} data vectors (one per user), got {}",
            data.len()
        )));
    }
    let dimension = data.first().map(|v| v.len()).ok_or_else(|| {
        Error::InvalidConfiguration("mean estimation requires at least one user".into())
    })?;
    if data.iter().any(|v| v.len() != dimension) {
        return Err(Error::InvalidConfiguration(
            "data vectors must share a dimension".into(),
        ));
    }
    if config.protocol == ProtocolKind::Single && dummy_pool.is_empty() {
        return Err(Error::InvalidConfiguration(
            "A_single requires a non-empty dummy pool".into(),
        ));
    }
    if dummy_pool.iter().any(|v| v.len() != dimension) {
        return Err(Error::InvalidConfiguration(
            "dummy vectors must share the data dimension".into(),
        ));
    }

    let mechanism = PrivUnit::new(dimension, config.epsilon_0)?;

    // Locally randomize every user's vector.
    let mut ldp_rng = SimRng::seed_from_u64(config.seed ^ LDP_SEED_MASK);
    let mut payloads = Vec::with_capacity(n);
    for vector in data {
        payloads.push(mechanism.randomize(vector, &mut ldp_rng)?);
    }

    // Dummy generator: PrivUnit report of a uniformly chosen dummy vector.
    let dummy_pool_owned: Vec<Vec<f64>> = dummy_pool.to_vec();
    let dummy_mechanism = mechanism.clone();
    let make_dummy = move |rng: &mut SimRng| {
        let choice = &dummy_pool_owned[rng.gen_range(0..dummy_pool_owned.len())];
        dummy_mechanism
            .randomize(choice, rng)
            .expect("dummy pool vectors are validated to be unit-norm")
    };

    let sim_config = SimulationConfig {
        rounds: config.rounds,
        laziness: 0.0,
        protocol: config.protocol,
        seed: config.seed,
    };
    let outcome: SimulationOutcome<Vec<f64>> =
        run_protocol(graph, payloads, sim_config, make_dummy)?;

    // The curator averages every payload it received (it cannot distinguish
    // dummies), which is the paper's estimator.
    let received: Vec<Vec<f64>> = outcome
        .collected
        .all_payloads()
        .into_iter()
        .cloned()
        .collect();
    let estimate = estimate_mean(&received)?;

    let true_mean = mean_of(data);
    let error = squared_error(&estimate, &true_mean);
    let dummy_reports = outcome.collected.dummy_count();
    let genuine_reports = outcome.collected.report_count() - dummy_reports;

    Ok(MeanEstimationResult {
        estimate,
        squared_error: error,
        genuine_reports,
        dummy_reports,
    })
}

/// Coordinate-wise mean of a set of vectors.
pub fn mean_of(vectors: &[Vec<f64>]) -> Vec<f64> {
    if vectors.is_empty() {
        return Vec::new();
    }
    let d = vectors[0].len();
    let mut mean = vec![0.0; d];
    for v in vectors {
        for (m, x) in mean.iter_mut().zip(v.iter()) {
            *m += x;
        }
    }
    let n = vectors.len() as f64;
    for m in mean.iter_mut() {
        *m /= n;
    }
    mean
}

/// Seed-mixing constant decorrelating the LDP randomization stream from the
/// walk stream.
const LDP_SEED_MASK: u64 = 0x11d9_5eed;

#[cfg(test)]
mod tests {
    use super::*;
    use ns_graph::generators;
    use ns_graph::rng::seeded_rng;

    fn unit(v: Vec<f64>) -> Vec<f64> {
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        v.into_iter().map(|x| x / norm).collect()
    }

    fn synthetic_data(n: usize, d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = seeded_rng(seed);
        (0..n)
            .map(|i| {
                let center = if i < n / 2 { 1.0 } else { 10.0 };
                unit((0..d).map(|_| center + rng.gen::<f64>() - 0.5).collect())
            })
            .collect()
    }

    fn dummy_pool(d: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = seeded_rng(seed);
        (0..32)
            .map(|_| unit((0..d).map(|_| 5.0 + rng.gen::<f64>() - 0.5).collect()))
            .collect()
    }

    #[test]
    fn all_protocol_estimate_is_close_at_high_epsilon() {
        let n = 200;
        let d = 8;
        let g = generators::random_regular(n, 6, &mut seeded_rng(1)).unwrap();
        let data = synthetic_data(n, d, 2);
        let config = MeanEstimationConfig {
            epsilon_0: 8.0,
            rounds: 20,
            protocol: ProtocolKind::All,
            seed: 3,
        };
        let result = run_mean_estimation(&g, &data, &dummy_pool(d, 4), config).unwrap();
        assert_eq!(result.genuine_reports, n);
        assert_eq!(result.dummy_reports, 0);
        assert_eq!(result.estimate.len(), d);
        // With a large epsilon the PrivUnit noise is modest; the error should
        // be well below the norm of the mean (which is <= 1).
        assert!(
            result.squared_error < 0.5,
            "squared error = {}",
            result.squared_error
        );
    }

    #[test]
    fn single_protocol_pays_a_utility_cost() {
        let n = 200;
        let d = 8;
        let g = generators::random_regular(n, 6, &mut seeded_rng(5)).unwrap();
        let data = synthetic_data(n, d, 6);
        // Dummy vectors point away from the data direction (alternating
        // signs, orthogonal to the all-ones direction the data concentrates
        // around), so the A_single dummy bias is a clear, deterministic
        // utility cost rather than a noise-level effect.
        let dummies: Vec<Vec<f64>> = (0..8)
            .map(|shift| {
                unit(
                    (0..d)
                        .map(|i| if (i + shift) % 2 == 0 { 1.0 } else { -1.0 })
                        .collect(),
                )
            })
            .collect();
        let all = run_mean_estimation(
            &g,
            &data,
            &dummies,
            MeanEstimationConfig {
                epsilon_0: 6.0,
                rounds: 25,
                protocol: ProtocolKind::All,
                seed: 8,
            },
        )
        .unwrap();
        let single = run_mean_estimation(
            &g,
            &data,
            &dummies,
            MeanEstimationConfig {
                epsilon_0: 6.0,
                rounds: 25,
                protocol: ProtocolKind::Single,
                seed: 8,
            },
        )
        .unwrap();
        assert!(single.dummy_reports > 0);
        assert!(single.genuine_reports < n);
        assert_eq!(single.genuine_reports + single.dummy_reports, n);
        // The paper's observation (Figure 9): A_all has lower error at the
        // same epsilon_0.
        assert!(
            single.squared_error > all.squared_error,
            "single {} should exceed all {}",
            single.squared_error,
            all.squared_error
        );
    }

    #[test]
    fn validation_of_inputs() {
        let g = generators::complete(5).unwrap();
        let data = synthetic_data(5, 4, 9);
        let config = MeanEstimationConfig {
            epsilon_0: 1.0,
            rounds: 3,
            protocol: ProtocolKind::Single,
            seed: 1,
        };
        // Wrong count.
        assert!(run_mean_estimation(&g, &data[..4], &dummy_pool(4, 1), config).is_err());
        // Empty dummy pool with A_single.
        assert!(run_mean_estimation(&g, &data, &[], config).is_err());
        // Mismatched dummy dimension.
        assert!(run_mean_estimation(&g, &data, &dummy_pool(3, 1), config).is_err());
        // Non-unit data vector is rejected by PrivUnit.
        let mut bad = data.clone();
        bad[0] = vec![2.0, 0.0, 0.0, 0.0];
        assert!(run_mean_estimation(&g, &bad, &dummy_pool(4, 1), config).is_err());
        // Inconsistent dimensions.
        let mut ragged = data.clone();
        ragged[1] = vec![1.0, 0.0];
        assert!(run_mean_estimation(&g, &ragged, &dummy_pool(4, 1), config).is_err());
    }

    #[test]
    fn mean_of_helper() {
        assert!(mean_of(&[]).is_empty());
        let m = mean_of(&[vec![0.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(m, vec![1.0, 3.0]);
    }
}
