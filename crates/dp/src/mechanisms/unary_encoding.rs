//! Optimized Unary Encoding (OUE) for frequency estimation over large
//! categorical domains.
//!
//! k-ary randomized response degrades quickly as the domain grows (the keep
//! probability decays like `1/k`).  OUE (Wang et al., "Locally Differentially
//! Private Protocols for Frequency Estimation") one-hot encodes the value and
//! perturbs each bit independently: the true bit is kept with probability
//! 1/2, every other bit is set with probability `1/(e^ε + 1)`.  This is the
//! mechanism of choice for histogram workloads such as RAPPOR-style telemetry
//! collected through network shuffling.

use crate::randomizer::LocalRandomizer;
use crate::types::{validate_positive_epsilon, DpError, PrivacyGuarantee, Result};
use rand::Rng;

/// Optimized Unary Encoding over the domain `{0, …, k − 1}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnaryEncoding {
    categories: usize,
    epsilon: f64,
    /// Probability that the true-category bit stays set (`p = 1/2`).
    keep_probability: f64,
    /// Probability that any other bit flips to set (`q = 1/(e^ε + 1)`).
    flip_probability: f64,
}

impl UnaryEncoding {
    /// Creates an OUE mechanism for `categories ≥ 2` categories at pure LDP
    /// level `epsilon`.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidParameters`] for fewer than two categories,
    /// [`DpError::InvalidEpsilon`] for a non-positive ε.
    pub fn new(categories: usize, epsilon: f64) -> Result<Self> {
        if categories < 2 {
            return Err(DpError::InvalidParameters(format!(
                "unary encoding requires at least 2 categories, got {categories}"
            )));
        }
        let epsilon = validate_positive_epsilon(epsilon)?;
        Ok(UnaryEncoding {
            categories,
            epsilon,
            keep_probability: 0.5,
            flip_probability: 1.0 / (epsilon.exp() + 1.0),
        })
    }

    /// Number of categories `k` (and bits per report).
    pub fn categories(&self) -> usize {
        self.categories
    }

    /// `p = 1/2`, the probability that the true bit remains set.
    pub fn keep_probability(&self) -> f64 {
        self.keep_probability
    }

    /// `q = 1/(e^ε + 1)`, the probability that any other bit is set.
    pub fn flip_probability(&self) -> f64 {
        self.flip_probability
    }

    /// Unbiased frequency estimates from a collection of OUE reports:
    /// `f_j = (c_j/n − q) / (p − q)` where `c_j` counts set bits in
    /// position `j`.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidParameters`] if no reports are given;
    /// [`DpError::DomainViolation`] if a report has the wrong width.
    pub fn estimate_frequencies(&self, reports: &[Vec<bool>]) -> Result<Vec<f64>> {
        if reports.is_empty() {
            return Err(DpError::InvalidParameters(
                "cannot estimate from zero reports".into(),
            ));
        }
        let mut counts = vec![0usize; self.categories];
        for report in reports {
            if report.len() != self.categories {
                return Err(DpError::DomainViolation(format!(
                    "report has {} bits, expected {}",
                    report.len(),
                    self.categories
                )));
            }
            for (count, &bit) in counts.iter_mut().zip(report.iter()) {
                if bit {
                    *count += 1;
                }
            }
        }
        let n = reports.len() as f64;
        let denom = self.keep_probability - self.flip_probability;
        Ok(counts
            .iter()
            .map(|&c| (c as f64 / n - self.flip_probability) / denom)
            .collect())
    }
}

impl LocalRandomizer for UnaryEncoding {
    type Input = usize;
    type Output = Vec<bool>;

    fn randomize<R: Rng + ?Sized>(&self, input: &usize, rng: &mut R) -> Result<Vec<bool>> {
        if *input >= self.categories {
            return Err(DpError::DomainViolation(format!(
                "category {input} out of range for {} categories",
                self.categories
            )));
        }
        Ok((0..self.categories)
            .map(|j| {
                let probability = if j == *input {
                    self.keep_probability
                } else {
                    self.flip_probability
                };
                rng.gen::<f64>() < probability
            })
            .collect())
    }

    fn guarantee(&self) -> PrivacyGuarantee {
        PrivacyGuarantee::pure(self.epsilon).expect("validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn construction_validates_parameters() {
        assert!(UnaryEncoding::new(8, 1.0).is_ok());
        assert!(UnaryEncoding::new(1, 1.0).is_err());
        assert!(UnaryEncoding::new(8, 0.0).is_err());
    }

    #[test]
    fn bit_probabilities_match_oue() {
        let oue = UnaryEncoding::new(16, 1.0).unwrap();
        assert_eq!(oue.keep_probability(), 0.5);
        assert!((oue.flip_probability() - 1.0 / (1.0f64.exp() + 1.0)).abs() < 1e-12);
        // The per-bit likelihood ratio p(1-q) / (q(1-p)) equals e^epsilon,
        // which is the standard OUE privacy argument.
        let p = oue.keep_probability();
        let q = oue.flip_probability();
        assert!(((p * (1.0 - q) / (q * (1.0 - p))).ln() - 1.0).abs() < 1e-12);
        assert!(oue.guarantee().is_pure());
    }

    #[test]
    fn reports_have_the_right_width_and_reject_bad_input() {
        let oue = UnaryEncoding::new(10, 2.0).unwrap();
        let mut rng = seeded_rng(1);
        let report = oue.randomize(&3, &mut rng).unwrap();
        assert_eq!(report.len(), 10);
        assert!(oue.randomize(&10, &mut rng).is_err());
    }

    #[test]
    fn frequency_estimation_recovers_the_distribution() {
        let oue = UnaryEncoding::new(5, 2.0).unwrap();
        let mut rng = seeded_rng(2);
        let n = 30_000;
        let reports: Vec<Vec<bool>> = (0..n)
            .map(|i| {
                let truth = if i % 10 < 5 {
                    0
                } else if i % 10 < 8 {
                    1
                } else {
                    4
                };
                oue.randomize(&truth, &mut rng).unwrap()
            })
            .collect();
        let est = oue.estimate_frequencies(&reports).unwrap();
        assert!((est[0] - 0.5).abs() < 0.03, "est[0] = {}", est[0]);
        assert!((est[1] - 0.3).abs() < 0.03, "est[1] = {}", est[1]);
        assert!(est[2].abs() < 0.03 && est[3].abs() < 0.03);
        assert!((est[4] - 0.2).abs() < 0.03, "est[4] = {}", est[4]);
    }

    #[test]
    fn estimator_validates_inputs() {
        let oue = UnaryEncoding::new(4, 1.0).unwrap();
        assert!(oue.estimate_frequencies(&[]).is_err());
        assert!(oue.estimate_frequencies(&[vec![true, false]]).is_err());
    }

    #[test]
    fn oue_beats_krr_for_large_domains() {
        // At equal epsilon and sample size, the OUE estimator variance is
        // lower than k-RR's for large k.  Check empirically on a uniform
        // distribution over 64 categories.
        let k = 64usize;
        let eps = 1.0;
        let n = 20_000;
        let mut rng = seeded_rng(3);
        let oue = UnaryEncoding::new(k, eps).unwrap();
        let krr = crate::mechanisms::RandomizedResponse::new(k, eps).unwrap();

        let oue_reports: Vec<Vec<bool>> = (0..n)
            .map(|i| oue.randomize(&(i % k), &mut rng).unwrap())
            .collect();
        let krr_reports: Vec<usize> = (0..n)
            .map(|i| krr.randomize(&(i % k), &mut rng).unwrap())
            .collect();

        let oue_est = oue.estimate_frequencies(&oue_reports).unwrap();
        let krr_est = crate::estimators::estimate_frequencies(&krr, &krr_reports).unwrap();
        let truth = 1.0 / k as f64;
        let mse =
            |est: &[f64]| est.iter().map(|f| (f - truth) * (f - truth)).sum::<f64>() / k as f64;
        assert!(
            mse(&oue_est) < mse(&krr_est),
            "OUE mse {} should beat kRR mse {}",
            mse(&oue_est),
            mse(&krr_est)
        );
    }
}
