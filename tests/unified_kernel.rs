//! Bitwise-parity properties of the unified round kernel.
//!
//! `ns_graph::round` merged four divergent holder-order round loops into
//! one plan executor.  `tests/golden_round_traces.rs` pins the refactored
//! engines against traces captured from the *pre-refactor* code; this file
//! proves the same contracts property-style on the shared graph zoo:
//!
//! * the refactored masked/static holder-order path is draw-for-draw the
//!   historical message-passing loop (an independent reference
//!   implementation kept verbatim below);
//! * sharded + masked under a 1-shard partition is bitwise
//!   `MixingEngine::step_holder_masked`;
//! * an all-available mask through the sharded path is bitwise the
//!   unmasked sharded round;
//! * the 1-shard coordinator under a realized outage schedule is bitwise
//!   `run_protocol_under_outages` — the composed service path degenerates
//!   to the monolithic churn path exactly.

mod common;

use common::strategies;
use network_shuffle::prelude::*;
use network_shuffle::service::{CoordinatorConfig, ShuffleCoordinator};
use network_shuffle::simulation::{
    run_protocol_under_outages, SimulationConfig, SimulationOutcome,
};
use ns_graph::mixing_engine::MixingEngine;
use ns_graph::partition::Partition;
use ns_graph::rng::seeded_rng;
use ns_graph::round::DrawMode;
use ns_graph::sharded_engine::{shard_stream, ShardedMixingEngine};
use ns_graph::{Graph, NodeId};
use proptest::prelude::*;
use rand::Rng;

/// The historical holder-order round, kept verbatim as an executable
/// reference: nodes in id order, each node's held reports in insertion
/// order, one lazy `f64` then one uniform neighbour index per report, a
/// masked recipient turns the move into a stay, and next-round buckets
/// list survivors first, then arrivals in global send order.
struct ReferenceLoop {
    buckets: Vec<Vec<u32>>,
}

impl ReferenceLoop {
    fn new(n: usize) -> Self {
        ReferenceLoop {
            buckets: (0..n).map(|u| vec![u as u32]).collect(),
        }
    }

    fn step<R: Rng>(
        &mut self,
        graph: &Graph,
        laziness: f64,
        available: Option<&[bool]>,
        rng: &mut R,
    ) {
        let n = graph.node_count();
        let mut kept: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut moved: Vec<(NodeId, u32)> = Vec::new();
        for (u, bucket) in self.buckets.iter().enumerate() {
            for &w in bucket {
                if laziness > 0.0 && rng.gen::<f64>() < laziness {
                    kept[u].push(w);
                    continue;
                }
                let nbrs = graph.neighbors(u);
                let dest = nbrs[rng.gen_range(0..nbrs.len())] as NodeId;
                match available {
                    Some(mask) if !mask[dest] => kept[u].push(w),
                    _ => moved.push((dest, w)),
                }
            }
        }
        self.buckets = kept;
        for (dest, w) in moved {
            self.buckets[dest].push(w);
        }
    }

    fn holders(&self) -> Vec<Vec<usize>> {
        self.buckets
            .iter()
            .map(|b| b.iter().map(|&w| w as usize).collect())
            .collect()
    }
}

/// A rotating ~25%-dark availability mask, deterministic in the round.
fn mask_for_round(n: usize, round: usize) -> Vec<bool> {
    (0..n).map(|u| !(u * 5 + round).is_multiple_of(4)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// (a) The refactored holder-order path — static and masked — is
    /// draw-for-draw the historical per-client loop on any zoo graph.
    #[test]
    fn refactored_holder_rounds_match_the_pre_refactor_loop(
        graph in strategies::graph_zoo(20..120),
        laziness_pct in 0usize..60,
        rounds in 1usize..8,
        masked_sel in 0usize..2,
    ) {
        let n = graph.node_count();
        prop_assume!(n >= 8);
        let laziness = laziness_pct as f64 / 100.0;
        let masked = masked_sel == 1;
        let mut engine = MixingEngine::one_walker_per_node(&graph).unwrap();
        let mut reference = ReferenceLoop::new(n);
        let mut engine_rng = seeded_rng(0xFEED);
        let mut reference_rng = seeded_rng(0xFEED);
        for round in 0..rounds {
            if masked {
                let mask = mask_for_round(n, round);
                engine.step_holder_masked(laziness, &mask, &mut engine_rng, &mut ());
                reference.step(&graph, laziness, Some(&mask), &mut reference_rng);
            } else {
                engine.step_holder(laziness, &mut engine_rng, &mut ());
                reference.step(&graph, laziness, None, &mut reference_rng);
            }
        }
        prop_assert_eq!(engine.walkers_by_holder(), reference.holders());
        let a: u64 = engine_rng.gen();
        let b: u64 = reference_rng.gen();
        prop_assert_eq!(a, b, "RNG streams diverged");
    }

    /// (b) Sharded + masked under a 1-shard partition is bitwise
    /// `step_holder_masked` — positions, bucket orders and RNG stream.
    #[test]
    fn one_shard_masked_rounds_are_bitwise_the_single_engine(
        graph in strategies::graph_zoo(20..120),
        laziness_pct in 0usize..60,
        rounds in 1usize..8,
    ) {
        let n = graph.node_count();
        prop_assume!(n >= 8);
        let laziness = laziness_pct as f64 / 100.0;
        let partition = Partition::single_shard(&graph).unwrap();
        let seed = 0xBEEF;
        let mut sharded = ShardedMixingEngine::one_walker_per_node(&graph, &partition, seed).unwrap();
        let mut single = MixingEngine::one_walker_per_node(&graph).unwrap();
        let mut rng = shard_stream(seed, 0);
        for round in 0..rounds {
            let mask = mask_for_round(n, round);
            sharded.step_masked(laziness, &mask, &mut ());
            single.step_holder_masked(laziness, &mask, &mut rng, &mut ());
        }
        prop_assert_eq!(sharded.positions(), single.positions());
        prop_assert_eq!(sharded.walkers_by_holder(), single.walkers_by_holder());
        let a: u64 = sharded.shard_rng_mut(0).gen();
        let b: u64 = rng.gen();
        prop_assert_eq!(a, b, "RNG streams diverged");
    }

    /// (c) An all-available mask through the sharded path is bitwise the
    /// unmasked sharded round, for any shard count — and stays invariant
    /// to the shard sampling order.
    #[test]
    fn all_available_masks_are_bitwise_the_unmasked_sharded_round(
        graph in strategies::graph_zoo(20..120),
        shards in 1usize..6,
        laziness_pct in 0usize..60,
        rounds in 1usize..8,
    ) {
        let n = graph.node_count();
        prop_assume!(n >= 8);
        let k = shards.min(n);
        let laziness = laziness_pct as f64 / 100.0;
        let partition = Partition::new(&graph, k).unwrap();
        let seed = 0xABBA;
        let mask = vec![true; n];
        let mut masked = ShardedMixingEngine::one_walker_per_node(&graph, &partition, seed).unwrap();
        let mut plain = ShardedMixingEngine::one_walker_per_node(&graph, &partition, seed).unwrap();
        let mut reordered = ShardedMixingEngine::one_walker_per_node(&graph, &partition, seed).unwrap();
        let reversed: Vec<usize> = (0..k).rev().collect();
        for _ in 0..rounds {
            masked.step_masked(laziness, &mask, &mut ());
            plain.step(laziness, &mut ());
            reordered.step_masked_in_order(laziness, &mask, &reversed, &mut ());
        }
        prop_assert_eq!(masked.positions(), plain.positions());
        prop_assert_eq!(masked.walkers_by_holder(), plain.walkers_by_holder());
        prop_assert_eq!(masked.positions(), reordered.positions());
        prop_assert_eq!(masked.walkers_by_holder(), reordered.walkers_by_holder());
    }
}

fn curator_view<P: Copy>(outcome: &SimulationOutcome<P>) -> Vec<(usize, usize, bool, P)> {
    outcome
        .collected
        .reports_with_submitter()
        .map(|(s, r)| (s, r.origin, r.is_dummy, r.payload))
        .collect()
}

/// The composed service path degenerates exactly: a 1-shard coordinator
/// under a realized outage schedule reproduces
/// `run_protocol_under_outages` bit for bit — walk, submissions and
/// traffic metrics — for every outage model class.
#[test]
fn one_shard_coordinator_under_outages_is_bitwise_run_protocol_under_outages() {
    let graph = {
        let mut rng = seeded_rng(51);
        ns_graph::generators::random_regular(200, 6, &mut rng).unwrap()
    };
    let n = graph.node_count();
    let partition = Partition::single_shard(&graph).unwrap();
    let rounds = 14;
    let models = [
        OutageModel::Iid {
            dropout_probability: 0.25,
        },
        OutageModel::MarkovOnOff {
            fail: 0.1,
            recover: 0.3,
        },
        OutageModel::RegionBlackout {
            region: (0..n / 4).collect(),
            from_round: 2,
            until_round: 9,
        },
    ];
    for model in models {
        for (protocol, laziness) in [(ProtocolKind::All, 0.0), (ProtocolKind::Single, 0.2)] {
            let seed = 20220408;
            let schedule = model.sample_schedule(n, rounds, 9).unwrap();
            let payloads: Vec<u32> = (0..n as u32).collect();

            let config = SimulationConfig {
                rounds,
                laziness,
                protocol,
                seed,
            };
            let reference =
                run_protocol_under_outages(&graph, payloads.clone(), config, &schedule, |rng| {
                    rng.gen_range(0..5)
                })
                .expect("reference churn run");

            let mut coordinator: ShuffleCoordinator<'_, u32> = ShuffleCoordinator::new(
                &graph,
                &partition,
                CoordinatorConfig {
                    seed,
                    laziness,
                    protocol,
                    tracked_per_shard: 3,
                    draw_mode: DrawMode::Compat,
                },
            )
            .unwrap();
            coordinator.with_outages(schedule).unwrap();
            coordinator.admit_population(payloads).unwrap();
            coordinator.begin_exchange().unwrap();
            coordinator.run_rounds(rounds).unwrap();
            let service = coordinator
                .finalize(|rng| rng.gen_range(0..5))
                .expect("service churn run");

            assert_eq!(
                curator_view(&service),
                curator_view(&reference),
                "submissions diverged for {model:?} / {protocol:?}"
            );
            assert_eq!(service.metrics, reference.metrics);
        }
    }
}
