//! Micro-benchmarks of the report-walk engine and distribution updates —
//! the per-round cost that backs the Table 3 complexity claims.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ns_graph::distribution::PositionDistribution;
use ns_graph::generators::random_regular;
use ns_graph::rng::seeded_rng;
use ns_graph::transition::TransitionMatrix;
use ns_graph::walk::{WalkConfig, WalkEngine};

fn bench_walk_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("walk_round");
    for &n in &[1_000usize, 10_000] {
        let graph = random_regular(n, 8, &mut seeded_rng(1)).expect("graph");
        group.bench_with_input(BenchmarkId::new("one_round_all_reports", n), &n, |b, _| {
            let mut rng = seeded_rng(2);
            b.iter(|| {
                let mut engine = WalkEngine::one_walker_per_node(&graph).expect("engine");
                engine.step(0.0, &mut rng);
                black_box(engine.positions().len())
            });
        });
        group.bench_with_input(BenchmarkId::new("ten_rounds", n), &n, |b, _| {
            let mut rng = seeded_rng(3);
            b.iter(|| {
                let mut engine = WalkEngine::one_walker_per_node(&graph).expect("engine");
                engine.run(WalkConfig::simple(10), &mut rng).expect("run");
                black_box(engine.load_vector())
            });
        });
    }
    group.finish();
}

fn bench_distribution_update(c: &mut Criterion) {
    let mut group = c.benchmark_group("distribution_update");
    for &n in &[1_000usize, 10_000] {
        let graph = random_regular(n, 8, &mut seeded_rng(4)).expect("graph");
        let transition = TransitionMatrix::new(&graph).expect("transition");
        group.bench_with_input(BenchmarkId::new("propagate", n), &n, |b, _| {
            let mut dist = PositionDistribution::point_mass(n, 0).expect("dist");
            b.iter(|| {
                dist.step(&transition);
                black_box(dist.sum_of_squares())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_walk_rounds, bench_distribution_update);
criterion_main!(benches);
