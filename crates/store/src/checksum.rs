//! CRC-32 (IEEE 802.3) over record payloads.
//!
//! Every WAL record and snapshot body carries its CRC; a flipped bit fails
//! the comparison and recovery stops at the last valid record instead of
//! loading garbage.  Hand-rolled (table-driven, reflected polynomial
//! `0xEDB88320`) because the workspace is offline — no `crc32fast`.

/// The reflected CRC-32 lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `bytes` (IEEE: init `0xFFFF_FFFF`, final xor `0xFFFF_FFFF`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_check_values() {
        // The canonical CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn a_single_flipped_bit_changes_the_checksum() {
        let mut payload = vec![0u8; 257];
        payload[42] = 7;
        let clean = crc32(&payload);
        for byte in [0usize, 42, 128, 256] {
            for bit in 0..8 {
                let mut corrupt = payload.clone();
                corrupt[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), clean, "flip at byte {byte} bit {bit}");
            }
        }
    }
}
