//! The PrivUnit mechanism (Bhowmick et al., 2018) for ε-LDP release of unit
//! vectors in `R^d`.
//!
//! PrivUnit is the mechanism the paper applies to each report in its private
//! mean-estimation study (Section 5.6, Figure 9).  Given a unit vector `u`:
//!
//! 1. with probability `p` draw `V` uniformly from the spherical cap
//!    `{v ∈ S^{d−1} : ⟨v, u⟩ ≥ γ}`, otherwise uniformly from its complement;
//! 2. output `V / m`, where `m = E[⟨V, u⟩]` so that the output is an
//!    unbiased estimator of `u`.
//!
//! The worst-case likelihood ratio between two inputs is
//! `p(1 − q) / (q(1 − p))` where `q = Pr[⟨V, u⟩ ≥ γ]` under the uniform
//! sphere distribution; we therefore set
//! `p = e^ε q / (1 − q + e^ε q)`, which makes the mechanism exactly ε-LDP,
//! and choose `γ` by a grid search maximizing the unbiasing constant `m`
//! (larger `m` ⇒ smaller estimation variance).
//!
//! All cap probabilities and conditional means are computed by numerical
//! integration of the marginal density `f(w) ∝ (1 − w²)^{(d−3)/2}` of the
//! first coordinate of a uniform point on `S^{d−1}`, carried out in log-space
//! so that high dimensions (the paper uses `d = 200`) do not underflow.

use crate::randomizer::LocalRandomizer;
use crate::types::{validate_positive_epsilon, DpError, PrivacyGuarantee, Result};
use rand::Rng;

/// Number of grid points used for the marginal-density tables.
const GRID_POINTS: usize = 4_001;
/// Number of candidate γ values scanned when maximizing the unbiasing
/// constant.
const GAMMA_CANDIDATES: usize = 200;
/// Tolerance accepted when checking that an input vector has unit norm.
const UNIT_NORM_TOLERANCE: f64 = 1e-6;

/// The PrivUnit ε-LDP mechanism over the unit sphere `S^{d−1}`.
#[derive(Debug, Clone)]
pub struct PrivUnit {
    dimension: usize,
    epsilon: f64,
    gamma: f64,
    cap_probability: f64,
    cap_weight: f64,
    scale: f64,
    /// Grid of `w` values in `[-1, 1]`.
    grid: Vec<f64>,
    /// CDF of the marginal density over the grid (normalized to 1).
    cdf: Vec<f64>,
}

impl PrivUnit {
    /// Creates a PrivUnit mechanism for unit vectors in `R^dimension` with
    /// pure LDP parameter `epsilon`.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidParameters`] if `dimension < 2`;
    /// [`DpError::InvalidEpsilon`] if ε ≤ 0.
    pub fn new(dimension: usize, epsilon: f64) -> Result<Self> {
        if dimension < 2 {
            return Err(DpError::InvalidParameters(format!(
                "PrivUnit requires dimension >= 2, got {dimension}"
            )));
        }
        let epsilon = validate_positive_epsilon(epsilon)?;

        let (grid, pdf, cdf) = marginal_tables(dimension);

        // Grid-search gamma in (0, 1) maximizing the unbiasing constant m.
        let mut best: Option<(f64, f64, f64, f64)> = None; // (gamma, q, p, m)
        for i in 1..GAMMA_CANDIDATES {
            let gamma = i as f64 / GAMMA_CANDIDATES as f64;
            let q = upper_tail(&grid, &cdf, gamma);
            if q <= 0.0 || q >= 1.0 {
                continue;
            }
            let p = epsilon.exp() * q / (1.0 - q + epsilon.exp() * q);
            let mean_above = conditional_mean(&grid, &pdf, gamma, true);
            let mean_below = conditional_mean(&grid, &pdf, gamma, false);
            let m = p * mean_above + (1.0 - p) * mean_below;
            if m > 0.0 && best.is_none_or(|(_, _, _, best_m)| m > best_m) {
                best = Some((gamma, q, p, m));
            }
        }
        let (gamma, cap_probability, cap_weight, scale) = best.ok_or_else(|| {
            DpError::InvalidParameters(
                "failed to find a PrivUnit cap threshold with positive unbiasing constant".into(),
            )
        })?;

        Ok(PrivUnit {
            dimension,
            epsilon,
            gamma,
            cap_probability,
            cap_weight,
            scale,
            grid,
            cdf,
        })
    }

    /// The ambient dimension `d`.
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The cap threshold `γ` selected at construction.
    pub fn gamma(&self) -> f64 {
        self.gamma
    }

    /// `q = Pr[⟨V, u⟩ ≥ γ]` under the uniform sphere distribution.
    pub fn cap_probability(&self) -> f64 {
        self.cap_probability
    }

    /// `p` — the probability of sampling from the cap.
    pub fn cap_weight(&self) -> f64 {
        self.cap_weight
    }

    /// The unbiasing constant `m = E[⟨V, u⟩]`; outputs have norm `1/m`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Expected squared norm of one PrivUnit report (`1/m²`), a proxy for
    /// the per-report contribution to mean-squared error.
    pub fn expected_squared_norm(&self) -> f64 {
        1.0 / (self.scale * self.scale)
    }

    /// Samples the inner product `w = ⟨V, u⟩` conditioned on the cap
    /// (`in_cap = true`) or its complement.
    fn sample_inner_product<R: Rng + ?Sized>(&self, in_cap: bool, rng: &mut R) -> f64 {
        let f_gamma = cdf_at(&self.grid, &self.cdf, self.gamma);
        let target = if in_cap {
            f_gamma + rng.gen::<f64>() * (1.0 - f_gamma)
        } else {
            rng.gen::<f64>() * f_gamma
        };
        inverse_cdf(&self.grid, &self.cdf, target)
    }
}

impl LocalRandomizer for PrivUnit {
    type Input = [f64];
    type Output = Vec<f64>;

    fn randomize<R: Rng + ?Sized>(&self, input: &[f64], rng: &mut R) -> Result<Vec<f64>> {
        if input.len() != self.dimension {
            return Err(DpError::DomainViolation(format!(
                "expected a vector of dimension {}, got {}",
                self.dimension,
                input.len()
            )));
        }
        let norm = input.iter().map(|x| x * x).sum::<f64>().sqrt();
        if !norm.is_finite() || (norm - 1.0).abs() > UNIT_NORM_TOLERANCE {
            return Err(DpError::DomainViolation(format!(
                "PrivUnit input must be a unit vector, got norm {norm}"
            )));
        }

        let in_cap = rng.gen::<f64>() < self.cap_weight;
        let w = self.sample_inner_product(in_cap, rng);

        // Draw a direction orthogonal to the input: Gaussian vector with the
        // input component projected out, then normalized.
        let mut orth: Vec<f64> = (0..self.dimension).map(|_| standard_normal(rng)).collect();
        let dot: f64 = orth.iter().zip(input.iter()).map(|(a, b)| a * b).sum();
        for (o, &u) in orth.iter_mut().zip(input.iter()) {
            *o -= dot * u;
        }
        let orth_norm = orth.iter().map(|x| x * x).sum::<f64>().sqrt();
        if orth_norm <= f64::MIN_POSITIVE {
            // Degenerate draw (probability ~0); fall back to a deterministic
            // orthogonal direction.
            for o in orth.iter_mut() {
                *o = 0.0;
            }
            orth[0] = input[1];
            orth[1] = -input[0];
        } else {
            for o in orth.iter_mut() {
                *o /= orth_norm;
            }
        }

        let tangent = (1.0 - w * w).max(0.0).sqrt();
        let inv_scale = 1.0 / self.scale;
        Ok(input
            .iter()
            .zip(orth.iter())
            .map(|(&u, &y)| inv_scale * (w * u + tangent * y))
            .collect())
    }

    fn guarantee(&self) -> PrivacyGuarantee {
        PrivacyGuarantee::pure(self.epsilon).expect("validated at construction")
    }
}

/// Builds the grid, pdf and cdf tables of the marginal density
/// `f(w) ∝ (1 − w²)^{(d−3)/2}` on `[-1, 1]`.
fn marginal_tables(dimension: usize) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let exponent = (dimension as f64 - 3.0) / 2.0;
    let grid: Vec<f64> = (0..GRID_POINTS)
        .map(|i| -1.0 + 2.0 * i as f64 / (GRID_POINTS - 1) as f64)
        .collect();
    // Log-space evaluation avoids underflow for large d.
    let log_pdf: Vec<f64> = grid
        .iter()
        .map(|&w| {
            let one_minus = (1.0 - w * w).max(0.0);
            if one_minus == 0.0 && exponent > 0.0 {
                f64::NEG_INFINITY
            } else if one_minus == 0.0 {
                0.0
            } else {
                exponent * one_minus.ln()
            }
        })
        .collect();
    let max_log = log_pdf.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let pdf: Vec<f64> = log_pdf.iter().map(|&l| (l - max_log).exp()).collect();

    // Trapezoidal cumulative integral, normalized to 1.
    let step = 2.0 / (GRID_POINTS - 1) as f64;
    let mut cdf = vec![0.0; GRID_POINTS];
    for i in 1..GRID_POINTS {
        cdf[i] = cdf[i - 1] + 0.5 * (pdf[i] + pdf[i - 1]) * step;
    }
    let total = cdf[GRID_POINTS - 1];
    for c in cdf.iter_mut() {
        *c /= total;
    }
    (grid, pdf, cdf)
}

/// `Pr[w ≥ gamma]` from the CDF table.
fn upper_tail(grid: &[f64], cdf: &[f64], gamma: f64) -> f64 {
    1.0 - cdf_at(grid, cdf, gamma)
}

/// CDF value at an arbitrary point by linear interpolation.
fn cdf_at(grid: &[f64], cdf: &[f64], w: f64) -> f64 {
    if w <= grid[0] {
        return 0.0;
    }
    if w >= grid[grid.len() - 1] {
        return 1.0;
    }
    let idx = grid.partition_point(|&g| g < w);
    let (g0, g1) = (grid[idx - 1], grid[idx]);
    let (c0, c1) = (cdf[idx - 1], cdf[idx]);
    c0 + (c1 - c0) * (w - g0) / (g1 - g0)
}

/// Inverse CDF by binary search and linear interpolation.
fn inverse_cdf(grid: &[f64], cdf: &[f64], target: f64) -> f64 {
    let target = target.clamp(0.0, 1.0);
    let idx = cdf.partition_point(|&c| c < target);
    if idx == 0 {
        return grid[0];
    }
    if idx >= cdf.len() {
        return grid[grid.len() - 1];
    }
    let (c0, c1) = (cdf[idx - 1], cdf[idx]);
    let (g0, g1) = (grid[idx - 1], grid[idx]);
    if c1 <= c0 {
        g1
    } else {
        g0 + (g1 - g0) * (target - c0) / (c1 - c0)
    }
}

/// Conditional mean `E[w | w ≥ γ]` (or `E[w | w < γ]`) under the marginal
/// density, by trapezoidal integration over the grid.
fn conditional_mean(grid: &[f64], pdf: &[f64], gamma: f64, above: bool) -> f64 {
    let step = grid[1] - grid[0];
    let mut mass = 0.0;
    let mut weighted = 0.0;
    for i in 1..grid.len() {
        let mid = 0.5 * (grid[i] + grid[i - 1]);
        let in_region = if above { mid >= gamma } else { mid < gamma };
        if in_region {
            let density = 0.5 * (pdf[i] + pdf[i - 1]);
            mass += density * step;
            weighted += density * mid * step;
        }
    }
    if mass <= 0.0 {
        0.0
    } else {
        weighted / mass
    }
}

/// Standard-normal sample via Box–Muller.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn unit_vector(d: usize, seed: u64) -> Vec<f64> {
        let mut rng = seeded_rng(seed);
        let mut v: Vec<f64> = (0..d).map(|_| standard_normal(&mut rng)).collect();
        let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        for x in v.iter_mut() {
            *x /= norm;
        }
        v
    }

    #[test]
    fn construction_validates_parameters() {
        assert!(PrivUnit::new(8, 1.0).is_ok());
        assert!(PrivUnit::new(1, 1.0).is_err());
        assert!(PrivUnit::new(8, 0.0).is_err());
        assert!(PrivUnit::new(8, -2.0).is_err());
    }

    #[test]
    fn privacy_relation_between_p_q_and_epsilon_holds() {
        for &eps in &[0.5f64, 1.0, 2.0, 4.0] {
            let mech = PrivUnit::new(32, eps).unwrap();
            let p = mech.cap_weight();
            let q = mech.cap_probability();
            let ratio = (p * (1.0 - q)) / (q * (1.0 - p));
            assert!(
                (ratio.ln() - eps).abs() < 1e-6,
                "eps = {eps}: ln ratio = {}",
                ratio.ln()
            );
            assert!(p > q, "cap must be over-weighted");
        }
    }

    #[test]
    fn scale_is_positive_and_at_most_one() {
        for &d in &[2usize, 10, 200] {
            let mech = PrivUnit::new(d, 1.0).unwrap();
            assert!(mech.scale() > 0.0);
            assert!(mech.scale() <= 1.0 + 1e-9, "scale = {}", mech.scale());
            assert!(mech.expected_squared_norm() >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn higher_epsilon_means_lower_error() {
        let low = PrivUnit::new(64, 0.5).unwrap();
        let high = PrivUnit::new(64, 4.0).unwrap();
        assert!(high.scale() > low.scale());
        assert!(high.expected_squared_norm() < low.expected_squared_norm());
    }

    #[test]
    fn outputs_have_norm_one_over_scale() {
        let mech = PrivUnit::new(16, 2.0).unwrap();
        let u = unit_vector(16, 7);
        let mut rng = seeded_rng(8);
        for _ in 0..20 {
            let out = mech.randomize(&u, &mut rng).unwrap();
            let norm = out.iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - 1.0 / mech.scale()).abs() < 1e-9);
        }
    }

    #[test]
    fn estimator_is_unbiased() {
        let d = 8;
        let mech = PrivUnit::new(d, 3.0).unwrap();
        let u = unit_vector(d, 11);
        let mut rng = seeded_rng(12);
        let trials = 30_000;
        let mut mean = vec![0.0; d];
        for _ in 0..trials {
            let out = mech.randomize(&u, &mut rng).unwrap();
            for (m, o) in mean.iter_mut().zip(out.iter()) {
                *m += o;
            }
        }
        for m in mean.iter_mut() {
            *m /= trials as f64;
        }
        for (m, target) in mean.iter().zip(u.iter()) {
            assert!(
                (m - target).abs() < 0.05,
                "coordinate mean {m} vs target {target}"
            );
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let mech = PrivUnit::new(4, 1.0).unwrap();
        let mut rng = seeded_rng(13);
        assert!(mech.randomize(&[1.0, 0.0, 0.0], &mut rng).is_err());
        assert!(mech.randomize(&[2.0, 0.0, 0.0, 0.0], &mut rng).is_err());
        assert!(mech.randomize(&[0.0, 0.0, 0.0, 0.0], &mut rng).is_err());
        assert!(mech.randomize(&[1.0, 0.0, 0.0, 0.0], &mut rng).is_ok());
    }

    #[test]
    fn guarantee_is_pure_epsilon() {
        let mech = PrivUnit::new(12, 1.3).unwrap();
        assert!(mech.guarantee().is_pure());
        assert!((mech.epsilon() - 1.3).abs() < 1e-12);
    }

    #[test]
    fn high_dimension_tables_do_not_underflow() {
        let mech = PrivUnit::new(200, 1.0).unwrap();
        assert!(mech.cap_probability() > 0.0);
        assert!(mech.cap_probability() < 1.0);
        assert!(mech.scale().is_finite());
        assert!(mech.scale() > 0.0);
    }
}
