//! Multi-epoch budget-ledger tests: the persisted (ε, δ) ledger composes
//! across epochs and survives crashes.
//!
//! The accountant's quote is a nonlinear function of the round count, so
//! the invariant worth proving is not additivity — it is that *recovery
//! changes nothing*: a pair of epochs that each crash and recover midway
//! draws the shared ledger down bit for bit exactly like the same pair run
//! uninterrupted in one process, and once a user's ε is spent, admission
//! refuses her.

use network_shuffle::prelude::CoordinatorConfig;
use ns_dp::prelude::PrivacyGuarantee;
use ns_graph::generators::random_regular;
use ns_graph::prelude::{Graph, Partition};
use ns_graph::rng::seeded_rng;
use ns_store::prelude::{load_ledger, DurableConfig, DurableCoordinator, StoreError};
use ns_suite::crash_harness::{accountant_params, payloads};
use std::fs;
use std::path::{Path, PathBuf};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ns_durable_ledger").join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fixture() -> (Graph, usize) {
    (random_regular(12, 4, &mut seeded_rng(5)).unwrap(), 12)
}

const DURABLE: DurableConfig = DurableConfig {
    group_commit: 2,
    snapshot_every: 3,
};

/// Runs one full epoch against `ledger_path`, optionally crashing (drop
/// without finalize) after `crash_after` rounds and recovering before
/// finishing.  Returns the finalize-time quote.
#[allow(clippy::too_many_arguments)] // a test fixture, not an API surface
fn run_epoch(
    graph: &Graph,
    partition: &Partition,
    seed: u64,
    dir: &Path,
    ledger_path: &Path,
    budget: PrivacyGuarantee,
    crash_after: Option<usize>,
    total_rounds: usize,
) -> Result<PrivacyGuarantee, StoreError> {
    let n = graph.node_count();
    let config = CoordinatorConfig::all(seed, usize::MAX);
    let mut store = DurableCoordinator::create(graph, partition, config, DURABLE, dir)?;
    store.attach_ledger(ledger_path, budget)?;
    store.admit_population(payloads(n))?;
    store.begin_exchange()?;
    if let Some(crash_after) = crash_after {
        store.run_rounds(crash_after)?;
        drop(store); // The crash: no finalize, no ledger write.
        store = DurableCoordinator::recover(graph, partition, DURABLE, dir)?;
        store.attach_ledger(ledger_path, budget)?;
    }
    store.run_rounds(total_rounds - store.round())?;
    let (_, quote) = store.finalize(&accountant_params(n), |_| vec![0xD0])?;
    Ok(quote)
}

#[test]
fn crashed_epochs_draw_down_the_ledger_exactly_like_uninterrupted_ones() {
    let (graph, n) = fixture();
    let partition = Partition::new(&graph, 2).unwrap();
    let budget = PrivacyGuarantee::new(1024.0, 1e-3).unwrap();
    let base = temp_dir("drawdown");
    fs::create_dir_all(&base).unwrap();
    let crashed_ledger = base.join("crashed-ledger.bin");
    let straight_ledger = base.join("straight-ledger.bin");

    // Two epochs, each crashing and recovering midway, on one ledger...
    let quote_a = run_epoch(
        &graph,
        &partition,
        11,
        &base.join("a1"),
        &crashed_ledger,
        budget,
        Some(5),
        8,
    )
    .unwrap();
    let quote_b = run_epoch(
        &graph,
        &partition,
        22,
        &base.join("a2"),
        &crashed_ledger,
        budget,
        Some(3),
        8,
    )
    .unwrap();

    // ...versus the same two epochs run uninterrupted on another.
    let ref_a = run_epoch(
        &graph,
        &partition,
        11,
        &base.join("b1"),
        &straight_ledger,
        budget,
        None,
        8,
    )
    .unwrap();
    let ref_b = run_epoch(
        &graph,
        &partition,
        22,
        &base.join("b2"),
        &straight_ledger,
        budget,
        None,
        8,
    )
    .unwrap();

    assert_eq!(quote_a.epsilon.to_bits(), ref_a.epsilon.to_bits());
    assert_eq!(quote_a.delta.to_bits(), ref_a.delta.to_bits());
    assert_eq!(quote_b.epsilon.to_bits(), ref_b.epsilon.to_bits());
    assert_eq!(quote_b.delta.to_bits(), ref_b.delta.to_bits());

    let crashed = load_ledger(&crashed_ledger).unwrap();
    let straight = load_ledger(&straight_ledger).unwrap();
    for user in 0..n {
        let (ce, cd) = crashed.remaining(user);
        let (se, sd) = straight.remaining(user);
        assert_eq!(ce.to_bits(), se.to_bits(), "user {user} ε diverged");
        assert_eq!(cd.to_bits(), sd.to_bits(), "user {user} δ diverged");
        // Both epochs actually charged: two sequential draws landed.
        assert!(ce < budget.epsilon, "user {user} was never charged");
    }
    let _ = fs::remove_dir_all(&base);
}

#[test]
fn admission_refuses_users_with_an_exhausted_ledger() {
    let (graph, n) = fixture();
    let partition = Partition::new(&graph, 2).unwrap();
    let base = temp_dir("exhaust");
    fs::create_dir_all(&base).unwrap();

    // Price one epoch with a roomy budget first.
    let probe_ledger = base.join("probe-ledger.bin");
    let roomy = PrivacyGuarantee::new(1024.0, 1e-3).unwrap();
    let price = run_epoch(
        &graph,
        &partition,
        11,
        &base.join("probe"),
        &probe_ledger,
        roomy,
        None,
        8,
    )
    .unwrap();

    // A budget worth half an epoch: the first epoch overdraws it (the run
    // already happened; the ledger records reality), the second is refused
    // at admission.
    let tight = PrivacyGuarantee::new(price.epsilon * 0.5, 1e-3).unwrap();
    let tight_ledger = base.join("tight-ledger.bin");
    run_epoch(
        &graph,
        &partition,
        11,
        &base.join("e1"),
        &tight_ledger,
        tight,
        Some(4),
        8,
    )
    .unwrap();
    let spent = load_ledger(&tight_ledger).unwrap();
    assert_eq!(spent.exhausted_users().len(), n, "every user is overdrawn");

    let err = match run_epoch(
        &graph,
        &partition,
        22,
        &base.join("e2"),
        &tight_ledger,
        tight,
        None,
        8,
    ) {
        Ok(_) => panic!("admission accepted exhausted users"),
        Err(err) => err,
    };
    match err {
        StoreError::InvalidState(message) => {
            assert!(
                message.contains("exhausted"),
                "unexpected message: {message}"
            );
        }
        other => panic!("expected InvalidState, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&base);
}
