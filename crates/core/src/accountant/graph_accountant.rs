//! Graph-aware privacy accounting.
//!
//! [`NetworkShuffleAccountant`] derives the `Σ_i P_i(t)²` input of the
//! closed-form theorems from an actual communication graph:
//!
//! * **Stationary scenario** (any connected, non-bipartite graph): the Eq. 7
//!   spectral bound `Σ_i π_i² + (1 − α)^{2t}` computed from the graph's
//!   stationary distribution and spectral gap.  This is the worst-case bound
//!   plotted in Figures 4 and 6.
//! * **Symmetric scenario** (k-regular graphs / peer-discovery designs): the
//!   exact position distribution of a report started at a chosen origin is
//!   evolved round by round, giving the exact `Σ_i P_i(t)²` and support
//!   ratio `ρ*` used by Theorems 5.4 and 5.6 and plotted in Figure 5.
//! * **Exact scenario** (any ergodic graph): *every* origin's position
//!   distribution is evolved through the batched
//!   [`ns_graph::ensemble`] kernel, giving each user her exact
//!   `(Σ_i P_i(t)², ρ*)` — and hence a per-user ε — where the spectral
//!   route can only bound the worst case.  Origins are streamed through
//!   bounded-memory batches, so the route scales to 100k+-node graphs.

use crate::accountant::closed_form::{
    all_protocol_epsilon, single_protocol_epsilon, AccountantParams,
};
use crate::error::{Error, Result};
use crate::protocol::ProtocolKind;
use ns_dp::types::PrivacyGuarantee;
use ns_graph::dynamic::TimeVaryingModel;
use ns_graph::ensemble::{self, DistributionEnsemble, EnsembleTrajectory, RowStats};
use ns_graph::mixing::MixingProfile;
use ns_graph::spectral::SpectralOptions;
use ns_graph::transition::TransitionMatrix;
use ns_graph::{Graph, NodeId};

/// Which analysis scenario of Section 4.2 to apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// Any ergodic graph, analysed through the worst-case spectral bound on
    /// `Σ_i P_i(t)²` (Theorems 5.3 / 5.5).
    Stationary,
    /// A (near-)regular graph analysed by exactly tracking the position
    /// distribution of a report originating at `origin`
    /// (Theorems 5.4 / 5.6).  For vertex-transitive graphs the origin is
    /// irrelevant.
    Symmetric {
        /// The user whose report's position distribution is tracked.
        origin: NodeId,
    },
    /// Any ergodic graph, analysed by exactly evolving the position
    /// distributions of **all** `n` origins with the batched ensemble
    /// kernel.  Guarantees quote the worst user, so they hold for every
    /// user while staying exact.  When the accountant carries a
    /// [`TimeVaryingModel`] (see
    /// [`NetworkShuffleAccountant::with_schedule`]) the evolution follows
    /// the realized per-round operator schedule — churn-aware exact
    /// accounting.  Pre-mixing this is far tighter than the
    /// stationary bound; note that on heterogeneous graphs the Eq. 7 bound
    /// (derived for regular graphs) can even slightly *under*-estimate the
    /// worst user — at `t = 1` a degree-1 origin's report sits on its only
    /// neighbour with probability 1 — which is exactly why the exact route
    /// exists.
    Exact,
}

/// Privacy accountant bound to a specific communication graph.
///
/// Optionally carries a [`TimeVaryingModel`] — the realized per-round
/// operator schedule of a churning deployment (see
/// [`NetworkShuffleAccountant::with_schedule`]).  When attached, the exact
/// routes ([`Scenario::Exact`], [`Scenario::Symmetric`],
/// [`NetworkShuffleAccountant::exact_moments`] and friends) evolve origins
/// through the schedule's product of
/// per-round transitions instead of powers of the static matrix; the
/// spectral/stationary route keeps quoting the static worst case, which is
/// precisely the gap the churn experiments measure.
#[derive(Debug, Clone)]
pub struct NetworkShuffleAccountant {
    node_count: usize,
    mixing: MixingProfile,
    transition: TransitionMatrix,
    laziness: f64,
    /// Realized round schedule for the exact routes; `None` = static walk.
    schedule: Option<TimeVaryingModel>,
}

impl NetworkShuffleAccountant {
    /// Builds an accountant for the simple random walk on `graph`.
    ///
    /// # Errors
    ///
    /// The graph must support an ergodic walk (connected, non-bipartite, no
    /// isolated nodes); bipartite graphs are accepted only with laziness via
    /// [`NetworkShuffleAccountant::with_laziness`].
    pub fn new(graph: &Graph) -> Result<Self> {
        Self::with_laziness(graph, 0.0)
    }

    /// Builds an accountant for a lazy random walk (stay probability
    /// `laziness`), which models user dropouts (Section 4.5) and restores
    /// ergodicity on bipartite graphs.
    ///
    /// # Errors
    ///
    /// Graph/laziness validation errors.
    pub fn with_laziness(graph: &Graph, laziness: f64) -> Result<Self> {
        if graph.node_count() < 2 {
            return Err(Error::InvalidConfiguration(
                "network shuffling requires at least two users".into(),
            ));
        }
        if let Some(u) = graph.find_isolated_node() {
            return Err(ns_graph::GraphError::IsolatedNode(u).into());
        }
        if !graph.is_connected() {
            return Err(ns_graph::GraphError::Disconnected.into());
        }
        if laziness == 0.0 && graph.is_bipartite() {
            return Err(ns_graph::GraphError::Bipartite.into());
        }
        let mixing = MixingProfile::compute_lazy(graph, laziness, SpectralOptions::default())?;
        let transition = TransitionMatrix::with_laziness(graph, laziness)?;
        Ok(NetworkShuffleAccountant {
            node_count: graph.node_count(),
            mixing,
            transition,
            laziness,
            schedule: None,
        })
    }

    /// Attaches the realized round schedule of a time-varying deployment:
    /// every exact route — [`Scenario::Exact`] *and* the single-origin
    /// [`Scenario::Symmetric`] — then accounts on `schedule`'s per-round
    /// operators (round `t` of the walk applies `schedule.operator(t)`), so
    /// per-user guarantees reflect the churn that actually happened rather
    /// than the static worst case.  Only [`Scenario::Stationary`] keeps
    /// quoting the static spectral bound (by design: it is the planning-time
    /// reference the churn experiments measure against).  A constant schedule of the accountant's own
    /// transition matrix reproduces the static exact results bitwise (the
    /// degeneracy pinned down by `tests/churn.rs`).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if the schedule's node count differs
    /// from the graph's.
    pub fn with_schedule(mut self, schedule: TimeVaryingModel) -> Result<Self> {
        use ns_graph::transition::TransitionModel as _;
        if schedule.node_count() != self.node_count {
            return Err(Error::InvalidConfiguration(format!(
                "schedule covers {} users but the accountant graph has {}",
                schedule.node_count(),
                self.node_count
            )));
        }
        self.schedule = Some(schedule);
        Ok(self)
    }

    /// The attached round schedule, if any.
    pub fn schedule(&self) -> Option<&TimeVaryingModel> {
        self.schedule.as_ref()
    }

    /// Drops the attached schedule, reverting the exact routes to the
    /// static walk.
    pub fn without_schedule(mut self) -> Self {
        self.schedule = None;
        self
    }

    /// Streams all-origin trajectories from the model the exact routes are
    /// bound to: the attached schedule when present, the static matrix
    /// otherwise.
    fn exact_trajectories<F>(&self, rounds: usize, visit: F) -> Result<()>
    where
        F: FnMut(usize, &EnsembleTrajectory) -> Result<()>,
    {
        match &self.schedule {
            Some(model) => ensemble::all_origin_trajectories(model, rounds, visit),
            None => ensemble::all_origin_trajectories(&self.transition, rounds, visit),
        }
    }

    /// Number of users `n`.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The walk's laziness.
    pub fn laziness(&self) -> f64 {
        self.laziness
    }

    /// The graph's mixing profile (spectral gap, `Σ π²`, mixing time).
    pub fn mixing_profile(&self) -> &MixingProfile {
        &self.mixing
    }

    /// The transition matrix the accountant evolves distributions under.
    pub fn transition(&self) -> &TransitionMatrix {
        &self.transition
    }

    /// The paper's stopping rule `t = ⌊α⁻¹ log n⌉`.
    pub fn mixing_time(&self) -> usize {
        self.mixing.mixing_time
    }

    /// `Σ_i P_i(t)²` (and the support ratio `ρ*`) after `rounds` rounds
    /// under the given scenario.
    ///
    /// For [`Scenario::Exact`] the returned pair is the component-wise
    /// worst over all origins (largest `Σ_i P_i²`, largest `ρ*`), which is
    /// a valid — if slightly conservative — input for a guarantee covering
    /// every user; use [`NetworkShuffleAccountant::exact_moments`] for the
    /// full per-origin breakdown.
    ///
    /// # Errors
    ///
    /// [`Error::Graph`] if the symmetric origin is out of range.
    pub fn sum_p_squared(&self, scenario: Scenario, rounds: usize) -> Result<(f64, f64)> {
        match scenario {
            Scenario::Stationary => Ok((self.mixing.sum_p_squared_bound_clamped(rounds), 1.0)),
            Scenario::Symmetric { origin } => {
                let mut ensemble = DistributionEnsemble::point_masses(self.node_count, &[origin])?;
                match &self.schedule {
                    Some(model) => ensemble.advance(model, rounds),
                    None => ensemble.advance(&self.transition, rounds),
                }
                let stats = ensemble.row_stats(0);
                Ok((stats.sum_of_squares, stats.support_ratio))
            }
            Scenario::Exact => {
                let moments = self.exact_moments(rounds)?;
                let mut worst_sum_sq = 0.0f64;
                let mut worst_ratio = 1.0f64;
                for stats in &moments {
                    worst_sum_sq = worst_sum_sq.max(stats.sum_of_squares);
                    worst_ratio = worst_ratio.max(stats.support_ratio);
                }
                Ok((worst_sum_sq, worst_ratio))
            }
        }
    }

    /// The exact accounting moments `(Σ_i P_i(t)², ρ*)` of **every** origin
    /// after `rounds` rounds, computed by the batched ensemble kernel in
    /// bounded-memory batches (entry `o` belongs to user `o`'s report).
    ///
    /// # Errors
    ///
    /// [`Error::Graph`] on degenerate graphs (cannot happen for a
    /// successfully constructed accountant).
    pub fn exact_moments(&self, rounds: usize) -> Result<Vec<RowStats>> {
        match &self.schedule {
            Some(model) => ensemble::all_origin_moments(model, rounds).map_err(Into::into),
            None => ensemble::all_origin_moments(&self.transition, rounds).map_err(Into::into),
        }
    }

    /// The per-origin central guarantees of the exact scenario: entry `o`
    /// is the `(ε, δ)` enjoyed by user `o`'s report after `rounds` rounds.
    ///
    /// # Errors
    ///
    /// Parameter validation errors from the closed forms.
    pub fn per_origin_guarantees(
        &self,
        protocol: ProtocolKind,
        params: &AccountantParams,
        rounds: usize,
    ) -> Result<Vec<PrivacyGuarantee>> {
        self.check_population(params)?;
        self.exact_moments(rounds)?
            .iter()
            .map(|stats| Self::guarantee_from_stats(protocol, params, stats))
            .collect()
    }

    /// The worst user's exact guarantee after `rounds` rounds: the origin
    /// whose report is hardest to hide and its `(ε, δ)`.  This is what
    /// [`Scenario::Exact`] quotes through
    /// [`NetworkShuffleAccountant::central_guarantee`].
    ///
    /// # Errors
    ///
    /// Parameter validation errors from the closed forms.
    pub fn worst_user_guarantee(
        &self,
        protocol: ProtocolKind,
        params: &AccountantParams,
        rounds: usize,
    ) -> Result<(NodeId, PrivacyGuarantee)> {
        let guarantees = self.per_origin_guarantees(protocol, params, rounds)?;
        let worst = guarantees
            .into_iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.epsilon.total_cmp(&b.epsilon))
            .expect("accountants require n >= 2");
        Ok(worst)
    }

    /// Evaluates the closed form for one origin's moments.
    fn guarantee_from_stats(
        protocol: ProtocolKind,
        params: &AccountantParams,
        stats: &RowStats,
    ) -> Result<PrivacyGuarantee> {
        match protocol {
            ProtocolKind::All => {
                all_protocol_epsilon(params, stats.sum_of_squares, stats.support_ratio)
            }
            ProtocolKind::Single => single_protocol_epsilon(params, stats.sum_of_squares),
        }
    }

    /// Shared `params.n == node_count` validation.
    fn check_population(&self, params: &AccountantParams) -> Result<()> {
        if params.n != self.node_count {
            return Err(Error::InvalidConfiguration(format!(
                "accountant graph has {} users but params.n = {}",
                self.node_count, params.n
            )));
        }
        Ok(())
    }

    /// The central `(ε, δ)` guarantee after `rounds` rounds for the given
    /// protocol and scenario.
    ///
    /// Under [`Scenario::Exact`] this is the worst user's exact guarantee
    /// (each origin's ε is evaluated from its own moments, then maximized),
    /// so it holds for the entire population.
    ///
    /// # Errors
    ///
    /// Parameter or graph validation errors.
    pub fn central_guarantee(
        &self,
        protocol: ProtocolKind,
        scenario: Scenario,
        params: &AccountantParams,
        rounds: usize,
    ) -> Result<PrivacyGuarantee> {
        self.check_population(params)?;
        if scenario == Scenario::Exact {
            return self
                .worst_user_guarantee(protocol, params, rounds)
                .map(|(_, guarantee)| guarantee);
        }
        let (sum_sq, rho) = self.sum_p_squared(scenario, rounds)?;
        match protocol {
            ProtocolKind::All => all_protocol_epsilon(params, sum_sq, rho),
            ProtocolKind::Single => single_protocol_epsilon(params, sum_sq),
        }
    }

    /// The central guarantee at the paper's default stopping time
    /// `t = ⌊α⁻¹ log n⌉`.
    ///
    /// # Errors
    ///
    /// See [`NetworkShuffleAccountant::central_guarantee`].
    pub fn central_guarantee_at_mixing_time(
        &self,
        protocol: ProtocolKind,
        scenario: Scenario,
        params: &AccountantParams,
    ) -> Result<PrivacyGuarantee> {
        let t = self.mixing_time();
        if t == usize::MAX {
            return Err(Error::InvalidConfiguration(
                "the walk does not mix (zero spectral gap); add laziness".into(),
            ));
        }
        self.central_guarantee(protocol, scenario, params, t)
    }

    /// Sweeps the central ε over `1..=max_rounds` rounds — the
    /// privacy-vs-communication trade-off curves of Figures 4 and 5.
    ///
    /// The symmetric scenario is evolved incrementally, so the sweep costs
    /// `O(max_rounds · m)` rather than `O(max_rounds² · m)`.  The exact
    /// scenario likewise reuses **one** tracked ensemble pass over all
    /// origins: every round's worst-user ε comes from the same evolution,
    /// at `O(n · max_rounds · m)` total instead of per sweep point.
    ///
    /// # Errors
    ///
    /// Parameter or graph validation errors.
    pub fn epsilon_vs_rounds(
        &self,
        protocol: ProtocolKind,
        scenario: Scenario,
        params: &AccountantParams,
        max_rounds: usize,
    ) -> Result<Vec<(usize, f64)>> {
        self.check_population(params)?;
        let mut out = Vec::with_capacity(max_rounds);
        match scenario {
            Scenario::Stationary => {
                for t in 1..=max_rounds {
                    let sum_sq = self.mixing.sum_p_squared_bound_clamped(t);
                    let guarantee = match protocol {
                        ProtocolKind::All => all_protocol_epsilon(params, sum_sq, 1.0)?,
                        ProtocolKind::Single => single_protocol_epsilon(params, sum_sq)?,
                    };
                    out.push((t, guarantee.epsilon));
                }
            }
            Scenario::Symmetric { origin } => {
                let mut ensemble = DistributionEnsemble::point_masses(self.node_count, &[origin])?;
                let trajectory = match &self.schedule {
                    Some(model) => ensemble.advance_tracked(model, max_rounds),
                    None => ensemble.advance_tracked(&self.transition, max_rounds),
                };
                for (t, stats) in trajectory.row(0).iter().enumerate() {
                    let guarantee = Self::guarantee_from_stats(protocol, params, stats)?;
                    out.push((t + 1, guarantee.epsilon));
                }
            }
            Scenario::Exact => {
                let mut worst = vec![f64::NEG_INFINITY; max_rounds];
                self.exact_trajectories(max_rounds, |_, trajectory| -> Result<()> {
                    for row in 0..trajectory.sources() {
                        for (t, stats) in trajectory.row(row).iter().enumerate() {
                            let epsilon =
                                Self::guarantee_from_stats(protocol, params, stats)?.epsilon;
                            if epsilon > worst[t] {
                                worst[t] = epsilon;
                            }
                        }
                    }
                    Ok(())
                })?;
                out.extend(worst.into_iter().enumerate().map(|(t, eps)| (t + 1, eps)));
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_graph::generators;
    use ns_graph::rng::seeded_rng;

    fn regular_graph(n: usize, k: usize, seed: u64) -> Graph {
        generators::random_regular(n, k, &mut seeded_rng(seed)).unwrap()
    }

    #[test]
    fn rejects_non_ergodic_graphs() {
        let bipartite = generators::cycle(8).unwrap();
        assert!(NetworkShuffleAccountant::new(&bipartite).is_err());
        assert!(NetworkShuffleAccountant::with_laziness(&bipartite, 0.3).is_ok());

        let disconnected =
            Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        assert!(NetworkShuffleAccountant::new(&disconnected).is_err());

        let tiny = Graph::from_edges(1, &[]).unwrap();
        assert!(NetworkShuffleAccountant::new(&tiny).is_err());
    }

    #[test]
    fn stationary_sum_p_squared_decreases_with_rounds() {
        let g = regular_graph(500, 6, 1);
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        let (early, rho_e) = accountant.sum_p_squared(Scenario::Stationary, 1).unwrap();
        let (late, rho_l) = accountant.sum_p_squared(Scenario::Stationary, 200).unwrap();
        assert!(late < early);
        assert_eq!(rho_e, 1.0);
        assert_eq!(rho_l, 1.0);
        // In the limit the bound approaches Gamma / n = 1/n for a regular graph.
        assert!((late - 1.0 / 500.0).abs() < 1e-6);
    }

    #[test]
    fn symmetric_scenario_tracks_exact_distribution() {
        let g = regular_graph(300, 8, 2);
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        let (t1, _) = accountant
            .sum_p_squared(Scenario::Symmetric { origin: 0 }, 1)
            .unwrap();
        // After one round the report is uniform over the 8 neighbours.
        assert!((t1 - 1.0 / 8.0).abs() < 1e-12);
        let (t50, rho) = accountant
            .sum_p_squared(Scenario::Symmetric { origin: 0 }, 50)
            .unwrap();
        assert!(t50 < 2.0 / 300.0, "sum P^2 after mixing = {t50}");
        assert!(rho >= 1.0);
        // Out-of-range origin is rejected.
        assert!(accountant
            .sum_p_squared(Scenario::Symmetric { origin: 300 }, 1)
            .is_err());
    }

    #[test]
    fn central_guarantee_amplifies_on_large_graphs() {
        let g = regular_graph(2_000, 8, 3);
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        let params = AccountantParams::with_defaults(2_000, 0.5).unwrap();
        let guarantee = accountant
            .central_guarantee_at_mixing_time(ProtocolKind::Single, Scenario::Stationary, &params)
            .unwrap();
        assert!(guarantee.epsilon < 0.5, "epsilon = {}", guarantee.epsilon);
        assert!(guarantee.epsilon > 0.0);
    }

    #[test]
    fn epsilon_vs_rounds_is_decreasing_for_stationary_bound() {
        let g = regular_graph(400, 6, 4);
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        let params = AccountantParams::with_defaults(400, 1.0).unwrap();
        let sweep = accountant
            .epsilon_vs_rounds(ProtocolKind::All, Scenario::Stationary, &params, 50)
            .unwrap();
        assert_eq!(sweep.len(), 50);
        for window in sweep.windows(2) {
            assert!(
                window[1].1 <= window[0].1 + 1e-12,
                "stationary bound must be monotone"
            );
        }
    }

    #[test]
    fn symmetric_sweep_converges_to_the_stationary_value() {
        let g = regular_graph(400, 8, 5);
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        let params = AccountantParams::with_defaults(400, 1.0).unwrap();
        let exact = accountant
            .epsilon_vs_rounds(
                ProtocolKind::Single,
                Scenario::Symmetric { origin: 3 },
                &params,
                80,
            )
            .unwrap();
        let bound = accountant
            .epsilon_vs_rounds(ProtocolKind::Single, Scenario::Stationary, &params, 80)
            .unwrap();
        // At the end of the sweep both approaches agree (the walk has mixed).
        let exact_final = exact.last().unwrap().1;
        let bound_final = bound.last().unwrap().1;
        assert!((exact_final - bound_final).abs() / bound_final < 0.05);
        // And the exact value never exceeds the worst-case bound once both
        // have settled (allowing slack in the pre-mixing regime).
        assert!(exact_final <= bound_final * 1.05);
    }

    #[test]
    fn faster_mixing_graphs_amplify_sooner() {
        // Figure 5's qualitative claim: larger k converges faster.
        let params = AccountantParams::with_defaults(500, 1.0).unwrap();
        let sparse = regular_graph(500, 4, 6);
        let dense = regular_graph(500, 20, 7);
        let sparse_sweep = NetworkShuffleAccountant::new(&sparse)
            .unwrap()
            .epsilon_vs_rounds(
                ProtocolKind::All,
                Scenario::Symmetric { origin: 0 },
                &params,
                10,
            )
            .unwrap();
        let dense_sweep = NetworkShuffleAccountant::new(&dense)
            .unwrap()
            .epsilon_vs_rounds(
                ProtocolKind::All,
                Scenario::Symmetric { origin: 0 },
                &params,
                10,
            )
            .unwrap();
        // After 10 rounds the dense graph has the smaller epsilon.
        assert!(dense_sweep[9].1 < sparse_sweep[9].1);
    }

    #[test]
    fn mismatched_population_is_rejected() {
        let g = regular_graph(100, 4, 8);
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        let params = AccountantParams::with_defaults(200, 1.0).unwrap();
        for scenario in [Scenario::Stationary, Scenario::Exact] {
            assert!(accountant
                .central_guarantee(ProtocolKind::All, scenario, &params, 10)
                .is_err());
            assert!(accountant
                .epsilon_vs_rounds(ProtocolKind::All, scenario, &params, 10)
                .is_err());
        }
        assert!(accountant
            .per_origin_guarantees(ProtocolKind::All, &params, 10)
            .is_err());
    }

    #[test]
    fn exact_scenario_agrees_with_symmetric_per_origin() {
        // The exact ensemble restricted to one origin must reproduce the
        // symmetric route bit for bit; the worst-user pair dominates every
        // single origin.
        let g = regular_graph(120, 6, 11);
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        let rounds = 15;
        let moments = accountant.exact_moments(rounds).unwrap();
        assert_eq!(moments.len(), 120);
        let (worst_sum_sq, worst_rho) = accountant.sum_p_squared(Scenario::Exact, rounds).unwrap();
        for (origin, stats) in moments.iter().enumerate() {
            let (sum_sq, rho) = accountant
                .sum_p_squared(Scenario::Symmetric { origin }, rounds)
                .unwrap();
            assert_eq!(stats.sum_of_squares, sum_sq, "origin {origin}");
            assert_eq!(stats.support_ratio, rho, "origin {origin}");
            assert!(worst_sum_sq >= sum_sq);
            assert!(worst_rho >= rho);
        }
    }

    #[test]
    fn worst_user_guarantee_is_the_maximum_per_origin_epsilon() {
        // A two-degree-class graph has genuinely different per-origin
        // guarantees, so the worst user is a real maximum, not a tie.
        let g = ns_graph::generators::two_degree_class(40, 4, 12).unwrap();
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        let params = AccountantParams::with_defaults(accountant.node_count(), 1.0).unwrap();
        let rounds = 10;
        let per_origin = accountant
            .per_origin_guarantees(ProtocolKind::Single, &params, rounds)
            .unwrap();
        let (worst_origin, worst) = accountant
            .worst_user_guarantee(ProtocolKind::Single, &params, rounds)
            .unwrap();
        assert_eq!(per_origin.len(), accountant.node_count());
        for (origin, guarantee) in per_origin.iter().enumerate() {
            assert!(
                guarantee.epsilon <= worst.epsilon,
                "origin {origin} exceeds the quoted worst user"
            );
        }
        assert_eq!(per_origin[worst_origin].epsilon, worst.epsilon);
        let via_scenario = accountant
            .central_guarantee(ProtocolKind::Single, Scenario::Exact, &params, rounds)
            .unwrap();
        assert_eq!(via_scenario.epsilon, worst.epsilon);
    }

    #[test]
    fn exact_sweep_reuses_one_pass_and_matches_pointwise_evaluation() {
        let g = regular_graph(90, 4, 13);
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        let params = AccountantParams::with_defaults(90, 1.0).unwrap();
        let sweep = accountant
            .epsilon_vs_rounds(ProtocolKind::All, Scenario::Exact, &params, 12)
            .unwrap();
        assert_eq!(sweep.len(), 12);
        for &(t, eps) in &[sweep[0], sweep[5], sweep[11]] {
            let direct = accountant
                .central_guarantee(ProtocolKind::All, Scenario::Exact, &params, t)
                .unwrap();
            assert_eq!(eps, direct.epsilon, "sweep diverges at t = {t}");
        }
    }

    #[test]
    fn constant_schedule_reproduces_static_exact_accounting_bitwise() {
        let g = ns_graph::generators::two_degree_class(30, 4, 14).unwrap();
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        let schedule =
            TimeVaryingModel::constant(std::sync::Arc::new(accountant.transition().clone()))
                .unwrap();
        let scheduled = accountant.clone().with_schedule(schedule).unwrap();
        let rounds = 8;
        assert_eq!(
            accountant.exact_moments(rounds).unwrap(),
            scheduled.exact_moments(rounds).unwrap()
        );
        let params = AccountantParams::with_defaults(accountant.node_count(), 1.0).unwrap();
        for protocol in [ProtocolKind::All, ProtocolKind::Single] {
            assert_eq!(
                accountant
                    .epsilon_vs_rounds(protocol, Scenario::Exact, &params, rounds)
                    .unwrap(),
                scheduled
                    .epsilon_vs_rounds(protocol, Scenario::Exact, &params, rounds)
                    .unwrap()
            );
            assert_eq!(
                accountant
                    .worst_user_guarantee(protocol, &params, rounds)
                    .unwrap(),
                scheduled
                    .worst_user_guarantee(protocol, &params, rounds)
                    .unwrap()
            );
            // The symmetric (single-origin) route is schedule-aware too and
            // degenerates identically.
            assert_eq!(
                accountant
                    .epsilon_vs_rounds(protocol, Scenario::Symmetric { origin: 3 }, &params, rounds)
                    .unwrap(),
                scheduled
                    .epsilon_vs_rounds(protocol, Scenario::Symmetric { origin: 3 }, &params, rounds)
                    .unwrap()
            );
        }
        assert_eq!(
            accountant
                .sum_p_squared(Scenario::Symmetric { origin: 7 }, rounds)
                .unwrap(),
            scheduled
                .sum_p_squared(Scenario::Symmetric { origin: 7 }, rounds)
                .unwrap()
        );
        // Detaching restores the static route object.
        let detached = scheduled.without_schedule();
        assert!(detached.schedule().is_none());
    }

    #[test]
    fn blackout_schedule_worsens_the_exact_guarantee() {
        // A third of the network dark for the first rounds: the realized
        // schedule mixes slower than the static walk, so the worst user's
        // exact epsilon after the same budget must be at least the static
        // one (strictly greater here).
        let g = regular_graph(120, 4, 15);
        let n = g.node_count();
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        let rounds = 8;
        let mut dark = vec![true; n];
        for slot in dark.iter_mut().take(n / 3) {
            *slot = false;
        }
        let masks: Vec<Vec<bool>> = (0..rounds)
            .map(|t| if t < 5 { dark.clone() } else { vec![true; n] })
            .collect();
        let schedule = TimeVaryingModel::from_availability(&g, 0.0, &masks).unwrap();
        let churned = accountant.clone().with_schedule(schedule).unwrap();
        let params = AccountantParams::with_defaults(n, 1.0).unwrap();
        let static_eps = accountant
            .central_guarantee(ProtocolKind::Single, Scenario::Exact, &params, rounds)
            .unwrap()
            .epsilon;
        let churn_eps = churned
            .central_guarantee(ProtocolKind::Single, Scenario::Exact, &params, rounds)
            .unwrap()
            .epsilon;
        assert!(
            churn_eps > static_eps,
            "blackout epsilon {churn_eps} not above static {static_eps}"
        );
        // The symmetric route sees the schedule as well: a dark origin's
        // report mixes slower than the static walk says.
        let dark_origin = 0;
        let (static_sum_sq, _) = accountant
            .sum_p_squared(
                Scenario::Symmetric {
                    origin: dark_origin,
                },
                rounds,
            )
            .unwrap();
        let (churn_sum_sq, _) = churned
            .sum_p_squared(
                Scenario::Symmetric {
                    origin: dark_origin,
                },
                rounds,
            )
            .unwrap();
        assert!(
            churn_sum_sq > static_sum_sq,
            "blackout sum P^2 {churn_sum_sq} not above static {static_sum_sq}"
        );
        // The stationary route is oblivious to the schedule.
        assert_eq!(
            accountant
                .central_guarantee(ProtocolKind::Single, Scenario::Stationary, &params, rounds)
                .unwrap()
                .epsilon,
            churned
                .central_guarantee(ProtocolKind::Single, Scenario::Stationary, &params, rounds)
                .unwrap()
                .epsilon
        );
    }

    #[test]
    fn schedule_node_count_mismatch_is_rejected() {
        let g = regular_graph(50, 4, 16);
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        let other = regular_graph(20, 4, 17);
        let schedule =
            TimeVaryingModel::from_matrices(vec![ns_graph::transition::TransitionMatrix::new(
                &other,
            )
            .unwrap()])
            .unwrap();
        assert!(accountant.with_schedule(schedule).is_err());
    }

    #[test]
    fn mixing_time_guarantee_requires_positive_gap() {
        let bipartite = generators::cycle(10).unwrap();
        let accountant = NetworkShuffleAccountant::with_laziness(&bipartite, 0.4).unwrap();
        let params = AccountantParams::with_defaults(10, 1.0).unwrap();
        // Lazy walk on a small cycle mixes, so this succeeds.
        let guarantee = accountant
            .central_guarantee_at_mixing_time(ProtocolKind::Single, Scenario::Stationary, &params)
            .unwrap();
        assert!(guarantee.epsilon > 0.0);
    }
}
