//! Table 1 — comparison of privacy-amplification mechanisms.
//!
//! For each population size `n` and local parameter `ε₀`, prints the central
//! ε achieved by: no amplification, uniform subsampling (rate `1/√n`),
//! uniform shuffling (Erlingsson-style), uniform shuffling with clones
//! (Feldman et al.), and network shuffling (`A_all` and `A_single` on a
//! regular graph at stationarity, i.e. `Σ P² = 1/n`).
//!
//! ```text
//! cargo run --release -p ns-bench --bin table1
//! ```

use network_shuffle::prelude::{all_protocol_epsilon, single_protocol_epsilon, AccountantParams};
use ns_bench::{fmt, print_table, write_csv, DELTA};
use ns_dp::amplification::{
    clones_shuffling_epsilon, erlingsson_shuffling_epsilon, subsampling_epsilon,
};

fn main() {
    let populations = [1_000usize, 10_000, 100_000, 1_000_000];
    let epsilons = [0.25f64, 0.5, 1.0, 2.0];

    let headers = vec![
        "n",
        "eps0",
        "no amp",
        "subsample",
        "shuffle[22]",
        "clones[25]",
        "network A_all",
        "network A_single",
    ];
    let mut rows = Vec::new();

    for &n in &populations {
        for &eps0 in &epsilons {
            let params = AccountantParams::new(n, eps0, DELTA, DELTA).expect("valid params");
            let sum_p_sq = 1.0 / n as f64; // regular graph at stationarity
            let q = 1.0 / (n as f64).sqrt();
            let subsample = subsampling_epsilon(eps0, q).expect("valid");
            let erlingsson = erlingsson_shuffling_epsilon(eps0, n, DELTA).expect("valid");
            let clones = clones_shuffling_epsilon(eps0, n, DELTA).expect("valid");
            let all = all_protocol_epsilon(&params, sum_p_sq, 1.0)
                .expect("valid")
                .epsilon;
            let single = single_protocol_epsilon(&params, sum_p_sq)
                .expect("valid")
                .epsilon;
            rows.push(vec![
                n.to_string(),
                fmt(eps0),
                fmt(eps0),
                fmt(subsample),
                fmt(erlingsson),
                fmt(clones),
                fmt(all),
                fmt(single),
            ]);
        }
    }

    print_table(
        "Table 1: central epsilon under different amplification mechanisms (delta = 1e-6)",
        &headers,
        &rows,
    );
    write_csv("table1", &headers, &rows);
    println!(
        "\nshape check: every amplified column scales like 1/sqrt(n).  The centralized baselines\n\
         (subsampling, clones) are the tightest; network shuffling's A_single amplifies without any\n\
         trusted entity but grows faster in eps0 (e^(1.5 eps0) vs the clones bound's e^(0.5 eps0)),\n\
         and the A_all bound needs larger n before it drops below eps0 — matching the exponent\n\
         ordering of Table 1."
    );
}
