//! Ablation — sensitivity to the stopping rule `t = c · α⁻¹ log n`.
//!
//! The paper stops the exchange at the mixing time; this ablation shows how
//! much privacy is lost by stopping earlier (fewer rounds, less anonymity)
//! and how little is gained by running longer.
//!
//! ```text
//! cargo run --release -p ns-bench --bin ablation_mixing
//! ```

use network_shuffle::prelude::*;
use ns_bench::{dataset_accountants, fmt, print_table, write_csv, DELTA};
use ns_datasets::Dataset;

fn main() {
    let epsilon_0 = 1.0;
    let fractions = [0.25f64, 0.5, 1.0, 2.0];
    let datasets = [Dataset::Twitch, Dataset::Facebook];

    let headers = vec![
        "dataset",
        "c (fraction of t_mix)",
        "rounds",
        "central eps (A_all)",
    ];
    let mut rows = Vec::new();
    for da in dataset_accountants(datasets) {
        let accountant = &da.accountant;
        let params = AccountantParams::new(accountant.node_count(), epsilon_0, DELTA, DELTA)
            .expect("valid params");
        let t_mix = accountant.mixing_time();
        for &c in &fractions {
            let rounds = ((t_mix as f64 * c).round() as usize).max(1);
            let guarantee = accountant
                .central_guarantee(ProtocolKind::All, Scenario::Stationary, &params, rounds)
                .expect("guarantee");
            rows.push(vec![
                da.name().to_string(),
                fmt(c),
                rounds.to_string(),
                fmt(guarantee.epsilon),
            ]);
        }
    }

    print_table(
        "Ablation: stopping the exchange at c * (alpha^-1 log n) rounds (eps0 = 1)",
        &headers,
        &rows,
    );
    write_csv("ablation_mixing", &headers, &rows);
    println!(
        "\nshape check: stopping at a quarter of the mixing time leaves a visibly larger epsilon;\n\
         doubling the rounds beyond the mixing time buys almost nothing — the paper's stopping rule\n\
         sits at the knee of the curve."
    );
}
