//! Reports: the unit of data exchanged in network shuffling.

use ns_graph::NodeId;
use serde::{Deserialize, Serialize};

/// A randomized report travelling through the network.
///
/// `origin` is the user who produced the report by applying her local
/// randomizer — the identity the adversary is trying to recover.  It is
/// carried here for *measurement only* (linkage analysis, utility
/// accounting); the simulated encryption in [`crate::crypto`] ensures that
/// relaying users and the curator never act on it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Report<P> {
    /// The user who produced (and locally randomized) this report.
    pub origin: NodeId,
    /// Whether this is a dummy report injected by the `A_single` protocol
    /// for a user who ended the exchange phase holding no reports.
    pub is_dummy: bool,
    /// The randomized payload.
    pub payload: P,
}

impl<P> Report<P> {
    /// A genuine report produced by `origin`.
    pub fn genuine(origin: NodeId, payload: P) -> Self {
        Report {
            origin,
            is_dummy: false,
            payload,
        }
    }

    /// A dummy report submitted by `origin` (used by `A_single` when the
    /// user holds no report after the final round).
    pub fn dummy(origin: NodeId, payload: P) -> Self {
        Report {
            origin,
            is_dummy: true,
            payload,
        }
    }

    /// Maps the payload while preserving the metadata.
    pub fn map<Q>(self, f: impl FnOnce(P) -> Q) -> Report<Q> {
        Report {
            origin: self.origin,
            is_dummy: self.is_dummy,
            payload: f(self.payload),
        }
    }
}

/// What a single user sends to the curator at the end of the protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Submission<P> {
    /// The user performing the upload (the "last holder" the adversary can
    /// link reports to; see Section 3.3).
    pub submitter: NodeId,
    /// The reports uploaded.  Empty for a null response under `A_all`;
    /// exactly one element under `A_single`.
    pub reports: Vec<Report<P>>,
}

impl<P> Submission<P> {
    /// A null response (user held no reports under `A_all`).
    pub fn null(submitter: NodeId) -> Self {
        Submission {
            submitter,
            reports: Vec::new(),
        }
    }

    /// Number of reports in this submission.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// `true` if this is a null response.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_metadata() {
        let r = Report::genuine(3, 42u32);
        assert_eq!(r.origin, 3);
        assert!(!r.is_dummy);
        assert_eq!(r.payload, 42);

        let d = Report::dummy(5, 0u32);
        assert!(d.is_dummy);
        assert_eq!(d.origin, 5);
    }

    #[test]
    fn map_preserves_metadata() {
        let r = Report::genuine(2, 10u32).map(|p| p as f64 * 0.5);
        assert_eq!(r.origin, 2);
        assert!(!r.is_dummy);
        assert!((r.payload - 5.0).abs() < 1e-12);
    }

    #[test]
    fn submissions() {
        let s: Submission<u32> = Submission::null(4);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.submitter, 4);

        let s = Submission {
            submitter: 1,
            reports: vec![Report::genuine(0, 7u32)],
        };
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }
}
