//! Error type for the durable runtime.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Errors produced by the durable runtime.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O error from the segment, WAL or snapshot layer.
    Io(std::io::Error),
    /// On-disk bytes failed validation — bad magic, checksum mismatch,
    /// impossible lengths.  Corruption is *expected* input (a torn tail, a
    /// flipped bit); the recovery path reports it instead of loading
    /// garbage.
    Corrupt(String),
    /// The store was driven through an invalid state transition (admitting
    /// after the exchange started, recovering a finalized epoch, ...).
    InvalidState(String),
    /// A replayed record contradicts the recomputed run — the recovered
    /// engine is not re-living the logged history.  This is the bitwise
    /// recovery invariant failing closed.
    ReplayDiverged(String),
    /// An error bubbled up from the protocol layer.
    Core(network_shuffle::error::Error),
    /// An error bubbled up from the DP substrate (budget ledgers).
    Dp(ns_dp::DpError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "i/o error: {e}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt store: {msg}"),
            StoreError::InvalidState(msg) => write!(f, "invalid state: {msg}"),
            StoreError::ReplayDiverged(msg) => write!(f, "replay diverged: {msg}"),
            StoreError::Core(e) => write!(f, "protocol error: {e}"),
            StoreError::Dp(e) => write!(f, "dp error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::Core(e) => Some(e),
            StoreError::Dp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<network_shuffle::error::Error> for StoreError {
    fn from(e: network_shuffle::error::Error) -> Self {
        StoreError::Core(e)
    }
}

impl From<ns_graph::GraphError> for StoreError {
    fn from(e: ns_graph::GraphError) -> Self {
        StoreError::Core(e.into())
    }
}

impl From<ns_dp::DpError> for StoreError {
    fn from(e: ns_dp::DpError) -> Self {
        StoreError::Dp(e)
    }
}
