//! k-ary randomized response.
//!
//! For a categorical domain of size `k`, the true category is reported with
//! probability `e^ε / (e^ε + k − 1)` and every other category with
//! probability `1 / (e^ε + k − 1)`.  This is the classic ε-LDP mechanism for
//! frequency estimation and the default report type in the protocol examples.

use crate::randomizer::LocalRandomizer;
use crate::types::{validate_positive_epsilon, DpError, PrivacyGuarantee, Result};
use rand::Rng;

/// k-ary randomized response over the domain `{0, 1, …, k − 1}`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomizedResponse {
    categories: usize,
    epsilon: f64,
    /// Probability of reporting the true category.
    keep_probability: f64,
}

impl RandomizedResponse {
    /// Creates a k-ary randomized-response mechanism with `categories ≥ 2`
    /// categories and pure LDP parameter `epsilon > 0`.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidParameters`] for fewer than two categories,
    /// [`DpError::InvalidEpsilon`] for a non-positive ε.
    pub fn new(categories: usize, epsilon: f64) -> Result<Self> {
        if categories < 2 {
            return Err(DpError::InvalidParameters(format!(
                "randomized response requires at least 2 categories, got {categories}"
            )));
        }
        let epsilon = validate_positive_epsilon(epsilon)?;
        let e = epsilon.exp();
        let keep_probability = e / (e + categories as f64 - 1.0);
        Ok(RandomizedResponse {
            categories,
            epsilon,
            keep_probability,
        })
    }

    /// Number of categories `k`.
    pub fn categories(&self) -> usize {
        self.categories
    }

    /// Probability that the true category is reported.
    pub fn keep_probability(&self) -> f64 {
        self.keep_probability
    }

    /// Probability that any *specific* other category is reported.
    pub fn flip_probability(&self) -> f64 {
        (1.0 - self.keep_probability) / (self.categories as f64 - 1.0)
    }
}

impl LocalRandomizer for RandomizedResponse {
    type Input = usize;
    type Output = usize;

    fn randomize<R: Rng + ?Sized>(&self, input: &usize, rng: &mut R) -> Result<usize> {
        if *input >= self.categories {
            return Err(DpError::DomainViolation(format!(
                "category {input} out of range for {} categories",
                self.categories
            )));
        }
        if rng.gen::<f64>() < self.keep_probability {
            Ok(*input)
        } else {
            // Uniform over the other k - 1 categories.
            let mut other = rng.gen_range(0..self.categories - 1);
            if other >= *input {
                other += 1;
            }
            Ok(other)
        }
    }

    fn guarantee(&self) -> PrivacyGuarantee {
        PrivacyGuarantee::pure(self.epsilon).expect("validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn construction_validates_parameters() {
        assert!(RandomizedResponse::new(2, 1.0).is_ok());
        assert!(RandomizedResponse::new(1, 1.0).is_err());
        assert!(RandomizedResponse::new(4, 0.0).is_err());
        assert!(RandomizedResponse::new(4, -1.0).is_err());
        assert!(RandomizedResponse::new(4, f64::NAN).is_err());
    }

    #[test]
    fn keep_probability_matches_closed_form() {
        let rr = RandomizedResponse::new(4, 1.0).unwrap();
        let e = 1.0f64.exp();
        assert!((rr.keep_probability() - e / (e + 3.0)).abs() < 1e-12);
        assert!((rr.flip_probability() - 1.0 / (e + 3.0)).abs() < 1e-12);
        // keep + (k-1)*flip == 1.
        assert!((rr.keep_probability() + 3.0 * rr.flip_probability() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn output_stays_in_domain_and_rejects_bad_input() {
        let rr = RandomizedResponse::new(5, 0.5).unwrap();
        let mut rng = seeded_rng(1);
        for _ in 0..200 {
            let out = rr.randomize(&3, &mut rng).unwrap();
            assert!(out < 5);
        }
        assert!(rr.randomize(&5, &mut rng).is_err());
    }

    #[test]
    fn empirical_keep_rate_matches_theory() {
        let rr = RandomizedResponse::new(3, 1.5).unwrap();
        let mut rng = seeded_rng(2);
        let trials = 40_000;
        let kept = (0..trials)
            .filter(|_| rr.randomize(&1, &mut rng).unwrap() == 1)
            .count();
        let rate = kept as f64 / trials as f64;
        assert!((rate - rr.keep_probability()).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn likelihood_ratio_respects_epsilon() {
        // The worst-case ratio of output probabilities across two inputs is
        // keep / flip = e^epsilon.
        let rr = RandomizedResponse::new(6, 0.8).unwrap();
        let ratio = rr.keep_probability() / rr.flip_probability();
        assert!((ratio - 0.8f64.exp()).abs() < 1e-12);
        assert!((rr.guarantee().epsilon - 0.8).abs() < 1e-12);
        assert!(rr.guarantee().is_pure());
    }
}
