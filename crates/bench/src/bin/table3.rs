//! Table 3 — complexity comparison (entity space, user traffic).
//!
//! Network shuffling's costs are *measured* by running the protocol on
//! random regular graphs of increasing size for `t = ⌊α⁻¹ log n⌉` rounds;
//! the Prochlo and mix-net columns are the analytic values from the paper
//! (a centralized shuffler must buffer all `n` reports; mix-net cover
//! traffic touches all `n` users).
//!
//! ```text
//! cargo run --release -p ns-bench --bin table3
//! ```

use network_shuffle::prelude::*;
use ns_bench::{fmt, print_table, write_csv, SEED};
use ns_graph::generators::random_regular;

fn main() {
    let populations = [1_000usize, 4_000, 16_000];
    let degree = 8;

    let headers = vec![
        "n",
        "rounds t",
        "user msgs (mean)",
        "user msgs (max)",
        "user memory (max reports)",
        "server reports",
        "Prochlo entity memory",
        "mix-net user traffic",
    ];
    let mut rows = Vec::new();

    for &n in &populations {
        let mut rng = ns_graph::rng::seeded_rng(SEED ^ n as u64);
        let graph = random_regular(n, degree, &mut rng).expect("regular graph");
        let accountant = NetworkShuffleAccountant::new(&graph).expect("ergodic graph");
        let rounds = accountant.mixing_time();

        let payloads: Vec<u32> = (0..n as u32).collect();
        let outcome = run_protocol(&graph, payloads, SimulationConfig::all(rounds, SEED), |_| 0)
            .expect("simulation");
        let m = &outcome.metrics;

        rows.push(vec![
            n.to_string(),
            rounds.to_string(),
            fmt(m.mean_messages_per_user()),
            m.max_messages_per_user().to_string(),
            m.max_peak_reports().to_string(),
            m.server_reports.to_string(),
            format!("{n} (O(n))"),
            format!("{n} (O(n))"),
        ]);
    }

    print_table(
        "Table 3: measured network-shuffling costs vs. analytic centralized baselines",
        &headers,
        &rows,
    );
    write_csv("table3", &headers, &rows);
    println!(
        "\nshape check: per-user traffic grows like the number of rounds t = O(alpha^-1 log n)\n\
         while per-user memory stays O(1) (a handful of reports at most); the centralized\n\
         alternatives pay O(n) in shuffler memory (Prochlo) or per-user cover traffic (mix-nets)."
    );
}
