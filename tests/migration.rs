//! Online repartitioning: live cut metrics, bounded label-propagation
//! refinement, the engine's mid-run `migrate` exchange and the accountant's
//! delta-round pricing of churn + migration.
//!
//! The contracts pinned here:
//!
//! * [`Partition::live_cut_edge_count`] / `live_edge_cut_fraction` agree
//!   with a brute-force recount against the live [`DynamicGraph`] and
//!   degenerate to the static metrics before any churn;
//! * [`Partition::refined_assignment`] is bounded (≤ `max_moves`, movers
//!   ascending, assignment differs *exactly* at the movers), never
//!   increases the live cut, and materializes via
//!   [`Partition::from_assignment`];
//! * [`ShardedMixingEngine::migrate`] rebuilds every shard's buckets as a
//!   pure function of `(positions, partition)` — bitwise the buckets of a
//!   fresh engine started from the same positions — while positions, the
//!   round counter, load and the per-shard RNG streams carry over, and all
//!   three entry points (`migrate` / `migrate_owned` / `migrate_into`)
//!   are interchangeable;
//! * the [`StreamingAccountant`] delta path (speculate + commit) prices a
//!   churn-plus-migration history **exactly** like the scheduled dense
//!   path: equal [`RowStats`] every round, movers masked for the round
//!   after the exchange.

mod common;

use common::strategies;
use network_shuffle::prelude::*;
use ns_graph::delta::affected_columns;
use ns_graph::dynamic::{DynTransition, DynamicGraph, TimeVaryingModel};
use ns_graph::partition::Partition;
use ns_graph::rng::seeded_rng;
use ns_graph::sharded_engine::ShardedMixingEngine;
use ns_graph::NodeId;
use proptest::prelude::*;
use rand::Rng;
use std::sync::Arc;

/// Applies one deterministic churn wave and returns the touched set (dirty
/// list captured before any snapshot, plus availability flips).
fn churn_wave<R: Rng>(
    dg: &mut DynamicGraph,
    rng: &mut R,
    edge_moves: usize,
    flips: usize,
) -> Vec<NodeId> {
    let n = dg.node_count();
    let mut flipped = Vec::new();
    for _ in 0..edge_moves {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        if dg.has_edge(u, v) {
            if dg.degree(u) > 1 && dg.degree(v) > 1 {
                dg.remove_edge(u, v).unwrap();
            }
        } else {
            dg.add_edge(u, v).unwrap();
        }
    }
    for _ in 0..flips {
        let u = rng.gen_range(0..n);
        dg.set_available(u, !dg.is_available(u)).unwrap();
        flipped.push(u);
    }
    let mut touched: Vec<NodeId> = dg.dirty_list().to_vec();
    touched.extend(flipped);
    touched
}

/// Brute-force live cut: count `u < v` live edges whose endpoints sit in
/// different shards, straight off the adjacency lists.
fn brute_force_cut(partition: &Partition, dg: &DynamicGraph) -> usize {
    let mut cut = 0;
    for u in 0..dg.node_count() {
        for &v in dg.neighbors(u) {
            if u < v && partition.shard_of(u) != partition.shard_of(v) {
                cut += 1;
            }
        }
    }
    cut
}

#[test]
fn live_cut_metrics_match_brute_force_and_degenerate_to_static() {
    let g = ns_graph::generators::barabasi_albert(150, 3, &mut seeded_rng(40)).unwrap();
    let partition = Partition::new(&g, 4).unwrap();
    let mut dg = DynamicGraph::from_graph(&g).unwrap();
    // Before any churn the live metrics are the static ones.
    assert_eq!(
        partition.live_cut_edge_count(&dg).unwrap(),
        partition.cut_edge_count()
    );
    assert_eq!(
        partition.live_edge_cut_fraction(&dg).unwrap(),
        partition.edge_cut_fraction()
    );
    let mut rng = seeded_rng(41);
    for _ in 0..5 {
        churn_wave(&mut dg, &mut rng, 30, 0);
        let cut = partition.live_cut_edge_count(&dg).unwrap();
        assert_eq!(cut, brute_force_cut(&partition, &dg));
        let fraction = partition.live_edge_cut_fraction(&dg).unwrap();
        assert!((fraction - cut as f64 / dg.edge_count() as f64).abs() == 0.0);
    }
    // Node-count mismatch is rejected.
    let small = ns_graph::generators::random_regular(20, 3, &mut seeded_rng(42)).unwrap();
    let small_dg = DynamicGraph::from_graph(&small).unwrap();
    assert!(partition.live_cut_edge_count(&small_dg).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Refinement invariants on the zoo: bounded, exact mover lists, never
    /// a worse live cut, `max_moves = 0` is the identity.
    #[test]
    fn refined_assignment_is_bounded_and_never_worse(
        graph in strategies::graph_zoo(40..140),
        shards in 2usize..6,
        seed in 0u64..500,
        max_moves in 0usize..20,
    ) {
        let n = graph.node_count();
        prop_assume!(n >= 16);
        prop_assume!(graph.find_isolated_node().is_none());
        let k = shards.min(n / 4);
        prop_assume!(k >= 2);
        let partition = Partition::new(&graph, k).unwrap();
        let mut dg = DynamicGraph::from_graph(&graph).unwrap();
        let mut rng = seeded_rng(seed);
        churn_wave(&mut dg, &mut rng, n / 2, 0);
        let seeds: Vec<NodeId> = (0..n).filter(|_| rng.gen_bool(0.2)).collect();

        let before = partition.live_cut_edge_count(&dg).unwrap();
        let (assignment, movers) = partition.refined_assignment(&dg, &seeds, max_moves).unwrap();
        prop_assert!(movers.len() <= max_moves);
        prop_assert!(movers.windows(2).all(|w| w[0] < w[1]), "movers not ascending");
        for (u, &shard) in assignment.iter().enumerate() {
            let moved = shard as usize != partition.shard_of(u);
            prop_assert_eq!(moved, movers.contains(&u), "mover list wrong at node {}", u);
        }
        let refined = Partition::from_assignment(dg.snapshot(), k, assignment.clone()).unwrap();
        let after = refined.live_cut_edge_count(&dg).unwrap();
        prop_assert!(after <= before, "refinement worsened the cut: {} -> {}", before, after);
        if max_moves == 0 {
            prop_assert!(movers.is_empty());
        }
        // No shard was emptied.
        for s in 0..k {
            prop_assert!(!refined.shard(s).is_empty(), "shard {} emptied", s);
        }
    }
}

/// After `migrate`, the engine's buckets are bitwise the buckets of a
/// *fresh* engine started from the same positions under the new partition
/// (the `with_starts` initial-bucket rule), and positions, round counter
/// and load carry over unchanged.
#[test]
fn migrate_rebuckets_like_a_fresh_engine_and_preserves_state() {
    let g = ns_graph::generators::random_regular(200, 6, &mut seeded_rng(50)).unwrap();
    let old = Partition::new(&g, 4).unwrap();
    let mut engine = ShardedMixingEngine::one_walker_per_node(&g, &old, 99).unwrap();
    for _ in 0..10 {
        engine.step(0.1, &mut ());
    }
    let positions_before = engine.positions().to_vec();
    let load_before = engine.load_vector();

    // Perturb the assignment: move a deterministic band of nodes.
    let mut assignment: Vec<u32> = (0..200).map(|u| old.shard_of(u) as u32).collect();
    let mut expected_movers = Vec::new();
    for u in (0..200).step_by(7) {
        let next = ((assignment[u] as usize + 1) % 4) as u32;
        assignment[u] = next;
        expected_movers.push(u);
    }
    let new = Partition::from_assignment(&g, 4, assignment).unwrap();

    let movers = engine.migrate(&new).unwrap();
    assert_eq!(movers, expected_movers);
    assert_eq!(engine.positions(), positions_before.as_slice());
    assert_eq!(engine.load_vector(), load_before);
    assert_eq!(engine.round(), 10);
    assert_eq!(engine.partition().shard_count(), 4);

    // The oracle: a fresh engine started at the same positions under the
    // new partition has, by construction, the canonical buckets.
    let fresh = ShardedMixingEngine::with_starts(
        &g,
        &new,
        positions_before.iter().map(|&p| p as usize).collect(),
        99,
    )
    .unwrap();
    assert_eq!(engine.walkers_by_holder(), fresh.walkers_by_holder());
    for u in 0..200 {
        assert_eq!(
            engine.held_by(u),
            fresh.held_by(u),
            "bucket of node {u} diverged"
        );
    }
}

/// `migrate`, `migrate_owned` and `migrate_into` are interchangeable: the
/// same migration through each entry point leaves three engines bitwise
/// identical through further masked rounds.
#[test]
fn migration_entry_points_are_interchangeable_and_deterministic() {
    let g = ns_graph::generators::barabasi_albert(120, 4, &mut seeded_rng(60)).unwrap();
    let old = Partition::new(&g, 3).unwrap();
    let mut a = ShardedMixingEngine::one_walker_per_node(&g, &old, 7).unwrap();
    let mut b = ShardedMixingEngine::one_walker_per_node(&g, &old, 7).unwrap();
    let mut c = ShardedMixingEngine::one_walker_per_node(&g, &old, 7).unwrap();
    for _ in 0..6 {
        a.step(0.2, &mut ());
        b.step(0.2, &mut ());
        c.step(0.2, &mut ());
    }
    let mut assignment: Vec<u32> = (0..120).map(|u| old.shard_of(u) as u32).collect();
    for u in (0..120).step_by(5) {
        assignment[u] = ((assignment[u] as usize + 1) % 3) as u32;
    }
    let new = Partition::from_assignment(&g, 3, assignment).unwrap();

    let movers_a = a.migrate(&new).unwrap();
    let movers_b = b.migrate_owned(new.clone()).unwrap();
    let mut movers_c = vec![usize::MAX; 3]; // stale contents must be cleared
    c.migrate_into(new.clone(), &mut movers_c).unwrap();
    assert_eq!(movers_a, movers_b);
    assert_eq!(movers_a, movers_c);

    // Mask the movers for the exchange round, then run clear rounds.
    let mut mask = vec![true; 120];
    for &u in &movers_a {
        mask[u] = false;
    }
    a.step_masked(0.2, &mask, &mut ());
    b.step_masked(0.2, &mask, &mut ());
    c.step_masked(0.2, &mask, &mut ());
    for _ in 0..5 {
        a.step(0.2, &mut ());
        b.step(0.2, &mut ());
        c.step(0.2, &mut ());
    }
    assert_eq!(a.positions(), b.positions());
    assert_eq!(a.positions(), c.positions());
    assert_eq!(a.walkers_by_holder(), b.walkers_by_holder());
    assert_eq!(a.walkers_by_holder(), c.walkers_by_holder());
}

#[test]
fn migrate_rejects_mismatched_partitions() {
    let g = ns_graph::generators::random_regular(80, 4, &mut seeded_rng(70)).unwrap();
    let p = Partition::new(&g, 4).unwrap();
    let mut engine = ShardedMixingEngine::one_walker_per_node(&g, &p, 1).unwrap();
    // Wrong node count.
    let small = ns_graph::generators::random_regular(40, 4, &mut seeded_rng(71)).unwrap();
    let wrong_n = Partition::new(&small, 4).unwrap();
    assert!(engine.migrate(&wrong_n).is_err());
    // Wrong shard count (RNG streams are per-shard state).
    let wrong_k = Partition::new(&g, 5).unwrap();
    assert!(engine.migrate(&wrong_k).is_err());
    // The failed migrations left the engine usable.
    engine.step(0.0, &mut ());
    assert_eq!(engine.round(), 1);
}

/// The accountant's tentpole contract: under a churn history with a
/// migration round in the middle (movers masked one round), the delta
/// path — speculate under the held operator, commit with the realized
/// operator and the affected columns — produces **exactly** the
/// [`RowStats`] of the dense scheduled path, round for round.  A third
/// accountant committing without speculation (the dense commit the soak
/// bench's OFF arm uses) agrees too.
#[test]
fn accountant_delta_path_is_exact_under_churn_and_migration() {
    let g = ns_graph::generators::barabasi_albert(90, 3, &mut seeded_rng(80)).unwrap();
    let n = g.node_count();
    let partition = Partition::new(&g, 3).unwrap();
    let laziness = 0.2;
    let rounds = 8;

    // Script the churn history once: realized operators + affected columns.
    let mut dg = DynamicGraph::from_graph(&g).unwrap();
    let mut rng = seeded_rng(81);
    let mut ops: Vec<DynTransition> = Vec::new();
    let mut columns: Vec<Vec<NodeId>> = Vec::new();
    for round in 0..rounds {
        let mut touched = if round == 3 {
            // Migration round: pretend nodes 0..12 migrate; mask them.
            let movers: Vec<NodeId> = (0..12).collect();
            for &u in &movers {
                dg.set_available(u, false).unwrap();
            }
            movers
        } else if round == 4 {
            // Movers come back: the unmasking is itself a delta.
            let movers: Vec<NodeId> = (0..12).collect();
            for &u in &movers {
                dg.set_available(u, true).unwrap();
            }
            movers
        } else {
            Vec::new()
        };
        touched.extend(churn_wave(&mut dg, &mut rng, 8, 1));
        let realized = dg.masked_operator(laziness).unwrap();
        columns.push(affected_columns(dg.snapshot(), &touched));
        ops.push(Arc::new(realized) as DynTransition);
    }

    let schedule = TimeVaryingModel::new(ops.clone()).unwrap();
    let mut scheduled = StreamingAccountant::with_schedule(&g, &partition, schedule, 4).unwrap();
    let held0 = TimeVaryingModel::constant(ops[0].clone()).unwrap();
    let mut delta = StreamingAccountant::with_schedule(&g, &partition, held0.clone(), 4).unwrap();
    let mut dense_commit = StreamingAccountant::with_schedule(&g, &partition, held0, 4).unwrap();
    // Exercise the fallback boundary knob on the way: a zero threshold
    // forces every commit through the dense recompute and must not change
    // the result.
    assert!(dense_commit.set_delta_dense_fraction(0.0).is_ok());
    assert!(delta.set_delta_dense_fraction(1.5).is_err());
    assert!(delta.set_delta_dense_fraction(f64::NAN).is_err());
    assert_eq!(
        delta.delta_dense_fraction(),
        network_shuffle::service::DELTA_DENSE_FRACTION
    );

    for round in 0..rounds {
        scheduled.advance_round();

        // The delta arm speculates off the critical path, then commits.
        delta.speculate_round();
        assert!(delta.is_speculated());
        delta.commit_round(ops[round].clone(), &columns[round]);
        assert!(!delta.is_speculated());

        // The dense arm commits without speculating.
        dense_commit.commit_round(ops[round].clone(), &columns[round]);

        assert_eq!(scheduled.round(), delta.round());
        assert_eq!(
            scheduled.worst_stats(),
            delta.worst_stats(),
            "delta path diverged from the scheduled dense path at round {round}"
        );
        assert_eq!(
            scheduled.worst_stats(),
            dense_commit.worst_stats(),
            "dense commit diverged from the scheduled path at round {round}"
        );
    }
    assert_eq!(scheduled.round(), rounds);
    let _ = n;
}

/// `advance_round_delta` is the one-call form of speculate + commit.
#[test]
fn advance_round_delta_matches_the_two_step_form() {
    let g = ns_graph::generators::random_regular(60, 4, &mut seeded_rng(90)).unwrap();
    let partition = Partition::new(&g, 2).unwrap();
    let mut dg = DynamicGraph::from_graph(&g).unwrap();
    let mut rng = seeded_rng(91);
    let op0: DynTransition = Arc::new(dg.masked_operator(0.1).unwrap());
    let mut one_call = StreamingAccountant::with_schedule(
        &g,
        &partition,
        TimeVaryingModel::constant(op0.clone()).unwrap(),
        3,
    )
    .unwrap();
    let mut two_step = StreamingAccountant::with_schedule(
        &g,
        &partition,
        TimeVaryingModel::constant(op0).unwrap(),
        3,
    )
    .unwrap();
    for _ in 0..5 {
        let touched = churn_wave(&mut dg, &mut rng, 6, 1);
        let realized: DynTransition = Arc::new(dg.masked_operator(0.1).unwrap());
        let columns = affected_columns(dg.snapshot(), &touched);
        one_call.advance_round_delta(realized.clone(), &columns);
        two_step.speculate_round();
        two_step.commit_round(realized, &columns);
        assert_eq!(one_call.worst_stats(), two_step.worst_stats());
        assert_eq!(one_call.round(), two_step.round());
    }
}
