//! Figure 6 — amplified ε vs. ε₀ for the five datasets (`A_all`).
//!
//! Each dataset stand-in is run through the stationary-bound accountant at
//! its own mixing time; the amplified ε is reported for ε₀ from 0.1 to 1.2.
//! The Google graph (largest `n`) shows the strongest amplification.
//!
//! The computation lives in [`ns_bench::fig6_table`], shared with the
//! golden regression test that pins a small-n variant bit for bit.
//!
//! ```text
//! cargo run --release -p ns-bench --bin fig6
//! ```

use ns_bench::{fig6_table, print_table, write_csv, FigScale};

fn main() {
    let table = fig6_table(FigScale::Default);
    for note in &table.notes {
        println!("{note}");
    }
    let header_refs: Vec<&str> = table.headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 6: amplified central epsilon vs. eps0 per dataset (A_all, stationary bound, t = mixing time)",
        &header_refs,
        &table.rows,
    );
    write_csv("fig6", &header_refs, &table.rows);
    println!(
        "\nshape check: at every eps0 the Google stand-in (largest n) achieves the smallest central\n\
         epsilon, and smaller graphs amplify less, matching Figure 6."
    );
}
