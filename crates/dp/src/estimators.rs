//! Unbiased aggregate estimators for randomized reports.
//!
//! The curator in the network-shuffling pipeline receives only randomized
//! reports; these helpers invert the randomization in expectation, which is
//! what the utility experiments and the examples use to measure estimation
//! error.

use crate::mechanisms::RandomizedResponse;
use crate::types::{DpError, Result};

/// Unbiased frequency estimation from k-ary randomized-response reports.
///
/// If `c_j` is the observed count of category `j` among `n` reports produced
/// by [`RandomizedResponse`] with keep probability `p` and flip probability
/// `q`, the unbiased estimate of the true count is
/// `(c_j − n q) / (p − q)`.
///
/// Returns estimated *frequencies* (may be slightly negative or above 1 due
/// to noise — callers can clamp if desired).
///
/// # Errors
///
/// [`DpError::DomainViolation`] if any report is outside the mechanism's
/// category range; [`DpError::InvalidParameters`] if no reports are given.
pub fn estimate_frequencies(mechanism: &RandomizedResponse, reports: &[usize]) -> Result<Vec<f64>> {
    if reports.is_empty() {
        return Err(DpError::InvalidParameters(
            "cannot estimate from zero reports".into(),
        ));
    }
    let k = mechanism.categories();
    let mut counts = vec![0usize; k];
    for &r in reports {
        if r >= k {
            return Err(DpError::DomainViolation(format!(
                "report {r} outside category range 0..{k}"
            )));
        }
        counts[r] += 1;
    }
    let n = reports.len() as f64;
    let p = mechanism.keep_probability();
    let q = mechanism.flip_probability();
    let denom = p - q;
    Ok(counts
        .iter()
        .map(|&c| (c as f64 - n * q) / (denom * n))
        .collect())
}

/// Mean estimation for vector-valued reports that are already unbiased
/// (e.g. PrivUnit outputs): simply the coordinate-wise average.
///
/// # Errors
///
/// [`DpError::InvalidParameters`] if the report set is empty or dimensions
/// disagree.
pub fn estimate_mean(reports: &[Vec<f64>]) -> Result<Vec<f64>> {
    let first = reports.first().ok_or_else(|| {
        DpError::InvalidParameters("cannot estimate a mean from zero reports".into())
    })?;
    let d = first.len();
    if reports.iter().any(|r| r.len() != d) {
        return Err(DpError::InvalidParameters(
            "reports must share a dimension".into(),
        ));
    }
    let mut mean = vec![0.0; d];
    for report in reports {
        for (m, x) in mean.iter_mut().zip(report.iter()) {
            *m += x;
        }
    }
    let n = reports.len() as f64;
    for m in mean.iter_mut() {
        *m /= n;
    }
    Ok(mean)
}

/// Squared L2 error between an estimate and a reference vector.
///
/// # Panics
///
/// Panics if the two vectors have different lengths.
pub fn squared_error(estimate: &[f64], truth: &[f64]) -> f64 {
    assert_eq!(
        estimate.len(),
        truth.len(),
        "vectors must share a dimension"
    );
    estimate
        .iter()
        .zip(truth.iter())
        .map(|(a, b)| (a - b) * (a - b))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randomizer::LocalRandomizer;
    use crate::rng::seeded_rng;

    #[test]
    fn frequency_estimation_recovers_true_distribution() {
        let mechanism = RandomizedResponse::new(3, 2.0).unwrap();
        let mut rng = seeded_rng(21);
        // True distribution: 60% category 0, 30% category 1, 10% category 2.
        let n = 30_000;
        let mut reports = Vec::with_capacity(n);
        for i in 0..n {
            let truth = if i % 10 < 6 {
                0
            } else if i % 10 < 9 {
                1
            } else {
                2
            };
            reports.push(mechanism.randomize(&truth, &mut rng).unwrap());
        }
        let est = estimate_frequencies(&mechanism, &reports).unwrap();
        assert!((est[0] - 0.6).abs() < 0.03, "est[0] = {}", est[0]);
        assert!((est[1] - 0.3).abs() < 0.03, "est[1] = {}", est[1]);
        assert!((est[2] - 0.1).abs() < 0.03, "est[2] = {}", est[2]);
        assert!((est.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn frequency_estimation_validates_inputs() {
        let mechanism = RandomizedResponse::new(3, 1.0).unwrap();
        assert!(estimate_frequencies(&mechanism, &[]).is_err());
        assert!(estimate_frequencies(&mechanism, &[0, 1, 3]).is_err());
    }

    #[test]
    fn mean_estimation_averages_reports() {
        let reports = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let mean = estimate_mean(&reports).unwrap();
        assert_eq!(mean, vec![3.0, 4.0]);
        assert!(estimate_mean(&[]).is_err());
        assert!(estimate_mean(&[vec![1.0], vec![1.0, 2.0]]).is_err());
    }

    #[test]
    fn squared_error_basics() {
        assert_eq!(squared_error(&[1.0, 2.0], &[1.0, 2.0]), 0.0);
        assert!((squared_error(&[1.0, 0.0], &[0.0, 0.0]) - 1.0).abs() < 1e-12);
        assert!((squared_error(&[1.0, 1.0], &[0.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "share a dimension")]
    fn squared_error_panics_on_mismatch() {
        squared_error(&[1.0], &[1.0, 2.0]);
    }
}
