//! The unified round-execution kernel: one holder-order step routine for
//! every engine.
//!
//! Historically the holder-order exchange round existed in four divergent
//! copies — `MixingEngine::step_holder`, `MixingEngine::step_holder_masked`,
//! the dynamic retarget path and the per-shard loop in
//! [`crate::sharded_engine`] — so every new scenario axis (masking, churn,
//! sharding) multiplied loop variants instead of composing.  This module is
//! the merge point: the *update stream* (which topology, which availability
//! mask, which RNG stream) is described by a [`RoundPlan`], and a single
//! pair of phase routines executes it for every engine:
//!
//! * [`decide_holder_moves`] — the **decide phase**: sweep a holder range in
//!   id order, each holder's bucket in insertion order, drawing every
//!   walker's move through the one sampling rule (`sample_move_masked`).
//!   Survivors (lazy stays *and* masked bounces) are appended to the
//!   caller's [`RoundArena`]; every delivery is handed to a caller-supplied
//!   sink — a flat arrival list for the monolithic engine, per-destination
//!   shard outboxes for the sharded engine.
//! * [`merge_round_buckets`] — the **merge phase**: one counting sort that
//!   rebuilds the next round's holder buckets from survivors (first, in
//!   previous bucket order) and an ordered arrival stream (second, in the
//!   order the caller replays it).  The monolithic engine replays its own
//!   send order; the sharded engine replays arrivals grouped by source
//!   shard in ascending id — which is exactly what makes its exchange phase
//!   execution-order-free.
//!
//! [`sweep_walker_order`] is the degenerate walker-order form (no buckets,
//! no statistics) behind `MixingEngine::step` / `step_masked`.
//!
//! # The `RoundPlan` contract
//!
//! A plan is a *view*: the topology may be a static CSR [`Graph`], a
//! [`crate::dynamic::DynamicGraph`] snapshot (engines re-read their graph
//! reference every round, so `retarget` composes with every plan), or the
//! shared global CSR that a shard samples its local holder range against.
//! The mask, when present, must cover every node of that topology.  The
//! kernel guarantees:
//!
//! * **One sampling rule.**  Every walker consumes the stream identically —
//!   one lazy `f64` (only when `laziness > 0`), then one uniform neighbour
//!   index — regardless of masking or sharding.  A plan with
//!   `available: None` is bit-for-bit a plan with an all-available mask.
//! * **Exact compositions.**  Masked × static, masked × dynamic
//!   (retarget), and masked × sharded rounds are all executions of this one
//!   routine, so their degeneracies are exact: all-available masks
//!   reproduce the unmasked round bitwise (RNG stream included), and a
//!   1-shard plan reproduces the monolithic engine bitwise.  Multi-shard
//!   plans split the RNG into per-shard streams, so *across* shard counts
//!   the walk is statistically equivalent, never bitwise — the one
//!   composition that is statistical rather than exact.
//! * **Conservation.**  In debug builds the merge asserts that the
//!   counting-sort cursors land exactly on their bucket boundaries (the
//!   two arrival replays agree), and each engine asserts after the merge
//!   that survivors + arrivals (bounced walkers are survivors) equal its
//!   walker count — one shared discipline instead of per-engine ad hoc
//!   checks.
//! * **No steady-state allocation.**  All counting-sort scratch lives in
//!   the caller's [`RoundArena`] and is reused; after warm-up, rounds
//!   allocate nothing (measured in `crates/bench/benches/sharded_mixing.rs`).

use crate::graph::{Graph, NodeId};
use rand::Rng;

/// Samples one walker's move at node `at`: `None` to stay (lazy draw), else
/// the uniformly chosen neighbour.
///
/// This is the single definition of the per-walker sampling rule.  Every
/// round form (walker order, holder order, sharded, data-parallel) draws
/// through it, in the same order — one `f64` for the lazy decision (only
/// when `laziness > 0`), then one uniform index — which is what keeps the
/// draw-for-draw parity contract with the historical loops in one place.
#[inline]
pub(crate) fn sample_move<R: Rng + ?Sized>(
    graph: &Graph,
    at: NodeId,
    laziness: f64,
    rng: &mut R,
) -> Option<NodeId> {
    if laziness > 0.0 && rng.gen::<f64>() < laziness {
        return None;
    }
    let nbrs = graph.neighbors(at);
    debug_assert!(
        !nbrs.is_empty(),
        "isolated nodes are rejected at construction"
    );
    Some(nbrs[rng.gen_range(0..nbrs.len())])
}

/// [`sample_move`] under an optional availability mask: the draw sequence
/// is identical (one lazy `f64`, then one uniform index), but a chosen
/// recipient that is unavailable turns the move into a stay — the report
/// could not be delivered this round.  With `None` (or an all-available
/// mask) this is exactly [`sample_move`], so masked rounds degenerate to
/// the static forms bit for bit, RNG stream included.
#[inline]
pub(crate) fn sample_move_masked<R: Rng + ?Sized>(
    graph: &Graph,
    at: NodeId,
    laziness: f64,
    available: Option<&[bool]>,
    rng: &mut R,
) -> Option<NodeId> {
    let dest = sample_move(graph, at, laziness, rng)?;
    match available {
        Some(mask) if !mask[dest] => None,
        _ => Some(dest),
    }
}

/// One round's execution inputs: the topology view, the walk's laziness and
/// an optional availability mask.  See the [module docs](self) for the
/// contract.
#[derive(Debug, Clone, Copy)]
pub struct RoundPlan<'a> {
    /// The topology walkers move on this round — a static CSR, a
    /// [`crate::dynamic::DynamicGraph`] snapshot, or the shared global CSR
    /// a shard samples against.
    pub graph: &'a Graph,
    /// Per-round stay probability of the lazy walk.
    pub laziness: f64,
    /// Availability mask (`available[u]` = can node `u` receive this
    /// round?); `None` is bit-for-bit an all-available mask.
    pub available: Option<&'a [bool]>,
}

impl<'a> RoundPlan<'a> {
    /// The fully-available plan.
    pub fn new(graph: &'a Graph, laziness: f64) -> Self {
        RoundPlan {
            graph,
            laziness,
            available: None,
        }
    }

    /// A plan under an availability mask.
    ///
    /// # Panics
    ///
    /// Panics if the mask length differs from the node count — the one
    /// shape error the kernel cannot express as a stay.
    pub fn masked(graph: &'a Graph, laziness: f64, available: &'a [bool]) -> Self {
        assert_eq!(
            available.len(),
            graph.node_count(),
            "availability mask has the wrong length"
        );
        RoundPlan {
            graph,
            laziness,
            available: Some(available),
        }
    }
}

/// Reusable counting-sort scratch owned by a plan executor — one per
/// monolithic engine, one per shard.  Buffers grow to their steady-state
/// capacity during the first rounds and are only ever cleared afterwards,
/// so warm rounds perform no heap allocation.
#[derive(Debug, Clone, Default)]
pub struct RoundArena {
    /// Survivors of the decide phase: local holder node of each kept
    /// walker, grouped by holder in ascending sweep order.
    pub(crate) kept_nodes: Vec<u32>,
    /// Walker ids parallel to `kept_nodes`.
    pub(crate) kept_walkers: Vec<u32>,
    /// Next-round bucket array under construction (swapped with the live
    /// buckets at the end of the merge).
    pub(crate) next_walkers: Vec<u32>,
    /// Per-node scatter cursors of the counting sort.
    pub(crate) cursor: Vec<usize>,
}

impl RoundArena {
    /// A fresh, empty arena.
    pub fn new() -> Self {
        Self::default()
    }
}

/// A borrowed view of one holder range's CSR buckets: the walkers held by
/// local node `lu` are `walkers[starts[lu]..starts[lu + 1]]`, in insertion
/// order.
#[derive(Debug, Clone, Copy)]
pub struct HolderBuckets<'a> {
    /// CSR offsets, one entry per local node plus the terminator.
    pub starts: &'a [usize],
    /// Walker ids, bucketed by local node.
    pub walkers: &'a [u32],
}

/// The decide phase of one holder-order round over one holder range.
///
/// `holders` enumerates `(local index, global node)` pairs in the order the
/// range is swept — `(u, u)` for the monolithic engine, the shard's
/// `(local id, global id)` table for a shard.  Each holder's walkers (its
/// [`HolderBuckets`] slice) are visited in insertion order and each draws
/// one move from `rng` through the plan's sampling rule.  Survivors — lazy
/// stays *and* masked bounces — are appended to `arena`; every delivery is
/// handed to `deliver(dest, walker)` in send order, and the holder's slot
/// in `sent_local` is incremented (bounces are *not* sent: the delivery
/// never happened).
pub fn decide_holder_moves<R: Rng + ?Sized>(
    plan: &RoundPlan<'_>,
    holders: impl Iterator<Item = (usize, NodeId)>,
    buckets: HolderBuckets<'_>,
    sent_local: &mut [u32],
    arena: &mut RoundArena,
    rng: &mut R,
    mut deliver: impl FnMut(NodeId, u32),
) {
    arena.kept_nodes.clear();
    arena.kept_walkers.clear();
    sent_local.fill(0);
    for (lu, u) in holders {
        let held = &buckets.walkers[buckets.starts[lu]..buckets.starts[lu + 1]];
        for &w in held {
            match sample_move_masked(plan.graph, u, plan.laziness, plan.available, rng) {
                None => {
                    arena.kept_nodes.push(lu as u32);
                    arena.kept_walkers.push(w);
                }
                Some(dest) => {
                    sent_local[lu] += 1;
                    deliver(dest, w);
                }
            }
        }
    }
}

/// The merge phase of one holder-order round over one holder range: a
/// counting sort that rebuilds `bucket_walkers` (and its `bucket_starts`
/// offsets and `load_local` histogram) for the next round from the arena's
/// survivors and an ordered arrival stream.
///
/// `for_each_arrival` must replay the round's arrivals — as
/// `(local destination node, walker)` — in the *canonical* order, and is
/// called exactly twice (once to count, once to scatter); both passes must
/// produce the same sequence.  Survivors land first in each bucket (they
/// are already grouped by node in ascending order, a decide-phase
/// invariant), then arrivals in replay order — exactly the order in which
/// a message-passing simulation would have appended them.
///
/// Debug builds assert that the two arrival replays agree — every
/// counting-sort cursor must land exactly on its bucket boundary — and the
/// engines assert full conservation (survivors + arrivals + bounces =
/// walkers) against their walker counts after the merge.
pub fn merge_round_buckets(
    local_n: usize,
    arena: &mut RoundArena,
    load_local: &mut [u32],
    bucket_starts: &mut [usize],
    bucket_walkers: &mut Vec<u32>,
    mut for_each_arrival: impl FnMut(&mut dyn FnMut(usize, u32)),
) {
    debug_assert_eq!(load_local.len(), local_n);
    debug_assert_eq!(bucket_starts.len(), local_n + 1);
    // Next-round load: survivors plus arrivals.
    load_local.fill(0);
    for &lu in &arena.kept_nodes {
        load_local[lu as usize] += 1;
    }
    for_each_arrival(&mut |lu, _w| {
        load_local[lu] += 1;
    });
    bucket_starts[0] = 0;
    for lu in 0..local_n {
        bucket_starts[lu + 1] = bucket_starts[lu] + load_local[lu] as usize;
    }
    let total = bucket_starts[local_n];
    // Scatter: survivors first, then arrivals in replay order.
    arena.cursor.clear();
    arena.cursor.extend_from_slice(&bucket_starts[..local_n]);
    arena.next_walkers.resize(total, 0);
    for (&lu, &w) in arena.kept_nodes.iter().zip(&arena.kept_walkers) {
        arena.next_walkers[arena.cursor[lu as usize]] = w;
        arena.cursor[lu as usize] += 1;
    }
    {
        let RoundArena {
            next_walkers,
            cursor,
            ..
        } = arena;
        for_each_arrival(&mut |lu, w| {
            next_walkers[cursor[lu]] = w;
            cursor[lu] += 1;
        });
    }
    debug_assert!(
        arena
            .cursor
            .iter()
            .zip(&bucket_starts[1..])
            .all(|(c, s)| c == s),
        "round conservation violated: a counting-sort cursor missed its bucket boundary"
    );
    std::mem::swap(bucket_walkers, &mut arena.next_walkers);
}

/// The walker-order round: sweep `positions` once, moving every walker
/// through the plan's sampling rule (an unavailable chosen recipient means
/// the walker stays).  No buckets, no statistics — the cheapest round form.
pub fn sweep_walker_order<R: Rng + ?Sized>(
    plan: &RoundPlan<'_>,
    positions: &mut [NodeId],
    rng: &mut R,
) {
    for pos in positions.iter_mut() {
        if let Some(dest) = sample_move_masked(plan.graph, *pos, plan.laziness, plan.available, rng)
        {
            *pos = dest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::seeded_rng;

    #[test]
    fn masked_plan_rejects_wrong_mask_length() {
        let g = generators::cycle(6).unwrap();
        let mask = vec![true; 5];
        let result = std::panic::catch_unwind(|| RoundPlan::masked(&g, 0.0, &mask));
        assert!(result.is_err());
    }

    #[test]
    fn decide_and_merge_compose_into_one_round() {
        // A hand-driven single-shard round: decide into a flat arrival
        // list, merge, and check positions/buckets agree with a naive
        // re-derivation.
        let g = generators::random_regular(24, 4, &mut seeded_rng(1)).unwrap();
        let n = g.node_count();
        let plan = RoundPlan::new(&g, 0.2);
        let mut arena = RoundArena::new();
        // Initial buckets: walker i at node i.
        let mut bucket_starts: Vec<usize> = (0..=n).collect();
        let mut bucket_walkers: Vec<u32> = (0..n as u32).collect();
        let mut positions: Vec<usize> = (0..n).collect();
        let mut sent = vec![0u32; n];
        let mut load = vec![0u32; n];
        let mut arrivals: Vec<(u32, u32)> = Vec::new();
        let mut rng = seeded_rng(2);
        decide_holder_moves(
            &plan,
            (0..n).map(|u| (u, u)),
            HolderBuckets {
                starts: &bucket_starts,
                walkers: &bucket_walkers,
            },
            &mut sent,
            &mut arena,
            &mut rng,
            |dest, w| {
                positions[w as usize] = dest;
                arrivals.push((dest as u32, w));
            },
        );
        assert_eq!(arena.kept_nodes.len() + arrivals.len(), n);
        assert_eq!(
            sent.iter().map(|&s| s as usize).sum::<usize>(),
            arrivals.len()
        );
        merge_round_buckets(
            n,
            &mut arena,
            &mut load,
            &mut bucket_starts,
            &mut bucket_walkers,
            |sink| {
                for &(d, w) in &arrivals {
                    sink(d as usize, w);
                }
            },
        );
        assert_eq!(load.iter().map(|&l| l as usize).sum::<usize>(), n);
        for u in 0..n {
            for &w in &bucket_walkers[bucket_starts[u]..bucket_starts[u + 1]] {
                assert_eq!(positions[w as usize], u);
            }
        }
    }

    #[test]
    fn all_available_mask_is_bitwise_the_unmasked_plan() {
        let g = generators::random_regular(40, 4, &mut seeded_rng(3)).unwrap();
        let mask = vec![true; 40];
        let mut a: Vec<usize> = (0..40).collect();
        let mut b = a.clone();
        let mut rng_a = seeded_rng(4);
        let mut rng_b = seeded_rng(4);
        for _ in 0..10 {
            sweep_walker_order(&RoundPlan::new(&g, 0.3), &mut a, &mut rng_a);
            sweep_walker_order(&RoundPlan::masked(&g, 0.3, &mask), &mut b, &mut rng_b);
        }
        assert_eq!(a, b);
        use rand::Rng;
        assert_eq!(rng_a.gen::<u64>(), rng_b.gen::<u64>());
    }
}
