//! Random k-regular graphs via the Steger–Wormald pairing algorithm.
//!
//! Random regular graphs are the canonical model for the paper's "symmetric
//! distribution" scenario (Section 4.2): peer-discovery protocols in which
//! every user selects the same number `k` of communication partners.  They
//! are expanders with high probability, so `α₂ ≈ 2√(k−1)/k` and the walk
//! mixes in `O(log n)` rounds, which is exactly the regime of Figure 5.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;
use rand::seq::SliceRandom;
use rand::Rng;

/// Maximum number of full restarts before giving up.
const MAX_ATTEMPTS: usize = 200;

/// Generates a uniformly-ish random simple k-regular graph on `n` nodes.
///
/// Uses the Steger–Wormald incremental pairing heuristic: repeatedly pick two
/// random unsaturated "stubs" and join them if the edge is simple; restart if
/// the process gets stuck.  For `k = o(√n)` the restart probability is tiny.
///
/// The returned graph is usually connected for `k ≥ 3`; the generator
/// retries until it is (connectivity is required for ergodicity), so the
/// distribution is that of a random regular graph conditioned on
/// connectedness.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if `k == 0`, `k >= n`, or `n·k` is odd.
pub fn random_regular<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Result<Graph> {
    if k == 0 {
        return Err(GraphError::InvalidParameters(
            "degree k must be positive".into(),
        ));
    }
    if k >= n {
        return Err(GraphError::InvalidParameters(format!(
            "degree k must satisfy k < n, got k = {k}, n = {n}"
        )));
    }
    if !(n * k).is_multiple_of(2) {
        return Err(GraphError::InvalidParameters(format!(
            "n * k must be even, got n = {n}, k = {k}"
        )));
    }

    for _ in 0..MAX_ATTEMPTS {
        if let Some(graph) = try_pairing(n, k, rng) {
            if graph.is_connected() {
                return Ok(graph);
            }
        }
    }
    Err(GraphError::InvalidParameters(format!(
        "failed to generate a connected {k}-regular graph on {n} nodes after {MAX_ATTEMPTS} attempts"
    )))
}

/// One attempt of the pairing construction; `None` if it got stuck.
fn try_pairing<R: Rng + ?Sized>(n: usize, k: usize, rng: &mut R) -> Option<Graph> {
    // Each node contributes k stubs.
    let mut stubs: Vec<usize> = (0..n).flat_map(|u| std::iter::repeat_n(u, k)).collect();
    stubs.shuffle(rng);

    let mut builder = GraphBuilder::new(n);
    // Repeatedly take the last stub and try to match it with another random
    // stub that yields a simple edge.
    while !stubs.is_empty() {
        let u = *stubs.last().expect("non-empty");
        // Collect candidate positions (any stub not belonging to u and not
        // already adjacent).  To stay O(1) amortized we sample positions at
        // random and fall back to a scan when sampling keeps failing.
        let mut matched = None;
        for _ in 0..32 {
            let idx = rng.gen_range(0..stubs.len().saturating_sub(1).max(1));
            let v = stubs[idx];
            if v != u && !builder.has_edge(u, v) {
                matched = Some(idx);
                break;
            }
        }
        if matched.is_none() {
            // Exhaustive scan before declaring the attempt stuck.
            matched = stubs[..stubs.len() - 1]
                .iter()
                .position(|&v| v != u && !builder.has_edge(u, v));
        }
        let idx = matched?;
        let v = stubs[idx];
        builder.add_edge(u, v).expect("pairing endpoints are valid");
        // Remove the two consumed stubs (order: higher index first).
        stubs.pop();
        stubs.swap_remove(idx);
    }
    Some(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn generates_regular_connected_graphs() {
        let mut rng = seeded_rng(1);
        for &(n, k) in &[(10usize, 3usize), (50, 4), (101, 8), (200, 5)] {
            let g = random_regular(n, k, &mut rng).unwrap();
            assert_eq!(g.node_count(), n);
            assert!(g.is_regular(), "graph for n={n}, k={k} is not regular");
            assert_eq!(g.degree(0), k);
            assert!(g.is_connected());
            assert_eq!(g.edge_count(), n * k / 2);
        }
    }

    #[test]
    fn deterministic_under_fixed_seed() {
        let g1 = random_regular(60, 4, &mut seeded_rng(9)).unwrap();
        let g2 = random_regular(60, 4, &mut seeded_rng(9)).unwrap();
        assert_eq!(g1, g2);
    }

    #[test]
    fn rejects_invalid_parameters() {
        let mut rng = seeded_rng(2);
        assert!(random_regular(10, 0, &mut rng).is_err());
        assert!(random_regular(10, 10, &mut rng).is_err());
        assert!(random_regular(5, 3, &mut rng).is_err()); // n*k odd
    }

    #[test]
    fn complete_graph_corner_case() {
        // k = n - 1 forces the complete graph.
        let mut rng = seeded_rng(3);
        let g = random_regular(6, 5, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 15);
        for u in g.nodes() {
            assert_eq!(g.degree(u), 5);
        }
    }
}
