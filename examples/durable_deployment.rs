//! A crash-recoverable deployment: the durable runtime end to end.
//!
//! ```text
//! cargo run --release --example durable_deployment
//! # CI smoke run / scaling probe at a custom population:
//! NS_DURABLE_N=120 cargo run --release --example durable_deployment
//! ```
//!
//! A 400-user collection (`NS_DURABLE_N` overrides the population) runs
//! under the durable coordinator: every input — admitted batches, the
//! realized outage schedule, the phase change, one record per round — is
//! appended to a checksummed WAL *before* it is applied, fsynced in groups
//! of `NS_WAL_GROUP_COMMIT` round records, with a full snapshot every
//! `NS_SNAPSHOT_EVERY` rounds and a persisted per-user (ε, δ) budget
//! ledger.
//!
//! Halfway through the epoch the example simply *drops* the coordinator —
//! no finalize, no flush, the moral equivalent of `kill -9` — then calls
//! [`DurableCoordinator::recover`], which loads the newest valid snapshot
//! and replays the logged round tail, landing **bit for bit** where the
//! lost process would have been (the example proves it against an
//! uninterrupted twin: positions, per-shard RNG clocks and the live-quote
//! bits all match).  The recovered run then finishes the epoch, charges the
//! ledger and prints where the budget stands.

use network_shuffle::prelude::*;
use ns_dp::prelude::PrivacyGuarantee;
use ns_graph::generators::random_regular;
use ns_graph::prelude::Partition;
use ns_graph::rng::seeded_rng;
use ns_obs::{say, MetricsRegistry};
use ns_store::prelude::{DurableConfig, DurableCoordinator, TRACE_FILE};

const TOPIC: &str = "durable_deployment";

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::var("NS_DURABLE_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(400);
    let seed = 20220408;
    let rounds = 24;
    let crash_at = 13;

    let graph = random_regular(n, 6, &mut seeded_rng(seed))?;
    let partition = Partition::new(&graph, 4)?;
    let config = CoordinatorConfig::all(seed, usize::MAX);
    let durable = DurableConfig::from_env(); // NS_WAL_GROUP_COMMIT / NS_SNAPSHOT_EVERY
    let params = AccountantParams::new(n, 1.0, 1e-6, 1e-6)?;
    let payloads: Vec<Vec<u8>> = (0..n).map(|i| (i as u32).to_le_bytes().to_vec()).collect();

    let base = std::env::temp_dir().join("ns_durable_deployment");
    let _ = std::fs::remove_dir_all(&base);
    let store_dir = base.join("store");
    let ledger_path = base.join("ledger.bin");

    say!(TOPIC, "== durable epoch: n={n}, k=4, {rounds} rounds ==");
    say!(
        TOPIC,
        "group commit every {} round records, snapshot every {} rounds",
        durable.group_commit,
        durable.snapshot_every
    );

    // NS_OBS=1 runs the whole epoch fully instrumented (provably inert —
    // the bitwise twin comparison below holds either way) and exports the
    // structured trace at the end.
    let observe = ns_obs::env_enabled();
    let registry = MetricsRegistry::new();

    // Phase 1: run half the epoch, then lose the process.
    {
        let mut store =
            DurableCoordinator::create(&graph, &partition, config, durable, &store_dir)?;
        if observe {
            store.attach_telemetry(&registry, Some(params));
        }
        store.attach_ledger(&ledger_path, PrivacyGuarantee::new(2048.0, 1e-3)?)?;
        store.admit_population(payloads.clone())?;
        store.begin_exchange()?;
        store.run_rounds(crash_at)?;
        let (worst, quote) = store.live_quote(&params)?;
        say!(TOPIC,
            "round {crash_at:>2}: live quote ε = {:.3} (worst user {worst}) — and now the process dies",
            quote.epsilon
        );
        // Dropped here: no finalize, no flush.  The WAL has everything.
    }

    // Phase 2: recover and prove the state is bitwise the uninterrupted one.
    let mut store = DurableCoordinator::recover(&graph, &partition, durable, &store_dir)?;
    if observe {
        store.attach_telemetry(&registry, Some(params));
    }
    store.attach_ledger(&ledger_path, PrivacyGuarantee::new(2048.0, 1e-3)?)?;
    say!(
        TOPIC,
        "recovered at round {} (WAL tail: {:?})",
        store.round(),
        store.recovered_tail().expect("recovered store")
    );

    let mut twin: ShuffleCoordinator<'_, Vec<u8>> =
        ShuffleCoordinator::new(&graph, &partition, config)?;
    twin.admit_population(payloads)?;
    twin.begin_exchange()?;
    twin.run_rounds(store.round())?;
    let recovered_engine = store.coordinator().engine().expect("engine");
    let twin_engine = twin.engine().expect("engine");
    assert_eq!(
        recovered_engine.checkpoint().positions,
        twin_engine.checkpoint().positions,
        "recovered positions must be bitwise the uninterrupted ones"
    );
    for shard in 0..recovered_engine.shard_count() {
        assert_eq!(
            recovered_engine.rng_clock(shard),
            twin_engine.rng_clock(shard),
            "shard {shard} RNG stream must resume at the exact draw"
        );
    }
    let (_, recovered_quote) = store.live_quote(&params)?;
    let (_, twin_quote) = twin.live_quote(&params)?;
    assert_eq!(
        recovered_quote.epsilon.to_bits(),
        twin_quote.epsilon.to_bits(),
        "recovered quote must match to the last bit"
    );
    say!(
        TOPIC,
        "positions, RNG clocks and quote bits all match the uninterrupted twin"
    );

    // Phase 3: finish the epoch and settle the ledger.
    store.run_rounds(rounds - store.round())?;
    let (outcome, charged) = store.finalize(&params, |_| vec![0xD0])?;
    say!(
        TOPIC,
        "finalized after {rounds} rounds: {} reports collected, charged ε = {:.3} per user",
        outcome.collected.report_count(),
        charged.epsilon
    );
    let ledger = ns_store::prelude::load_ledger(&ledger_path)?;
    let (remaining_eps, _) = ledger.remaining(0);
    say!(
        TOPIC,
        "budget ledger: user 0 has ε = {remaining_eps:.3} of 2048 left; \
         {} users exhausted",
        ledger.exhausted_users().len()
    );

    if observe {
        // finalize() flushed the trace + metrics next to the WAL; validate
        // and (optionally) export before the demo directory is cleaned up.
        let trace = std::fs::read_to_string(store_dir.join(TRACE_FILE))?;
        let events = ns_obs::schema::validate_jsonl(&trace)?;
        say!(TOPIC, "telemetry: {events} trace events, schema ok");
        if let Some(path) = ns_obs::env_trace_path() {
            std::fs::write(&path, &trace)?;
            say!(TOPIC, "trace exported to {}", path.display());
        }
    }

    let _ = std::fs::remove_dir_all(&base);
    Ok(())
}
