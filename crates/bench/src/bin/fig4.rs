//! Figure 4 — privacy vs. communication rounds (stationary bound).
//!
//! For the three similarly-sized social graphs (Facebook, Twitch, Deezer)
//! the central ε of `A_all` is evaluated with the worst-case spectral bound
//! of Eq. 7 as the number of exchange rounds grows, showing convergence to
//! the asymptotic (stationary) value around `t ≈ α⁻¹ log n`.
//!
//! The computation lives in [`ns_bench::fig4_table`], shared with the
//! golden regression test that pins a small-n variant bit for bit.
//!
//! ```text
//! cargo run --release -p ns-bench --bin fig4
//! ```

use ns_bench::{fig4_table, print_table, write_csv, FigScale};

fn main() {
    let table = fig4_table(FigScale::Default);
    for note in &table.notes {
        println!("{note}");
    }
    let header_refs: Vec<&str> = table.headers.iter().map(|s| s.as_str()).collect();
    print_table(
        "Figure 4: central epsilon (A_all, stationary bound) vs. communication rounds, eps0 = 2",
        &header_refs,
        &table.rows,
    );
    write_csv("fig4", &header_refs, &table.rows);
    println!(
        "\nshape check: epsilon decreases monotonically with t and flattens near the mixing time\n\
         alpha^-1 log n of each graph, matching Figure 4."
    );
}
