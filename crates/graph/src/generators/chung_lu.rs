//! Chung–Lu random graphs with a prescribed expected-degree sequence.
//!
//! Given weights `w_1, …, w_n`, edge `(i, j)` is present independently with
//! probability `min(1, w_i w_j / Σ_k w_k)`, so the expected degree of node
//! `i` is (approximately) `w_i`.  This is the generator used by
//! `ns-datasets` to build stand-ins for the paper's real-world graphs: the
//! privacy bounds depend on the graph only through `n`, `Γ_G = ⟨k²⟩/⟨k⟩²`
//! and the spectral gap, all of which are controlled by the weight sequence.
//!
//! The implementation follows the Miller–Hagberg "fast Chung–Lu" scheme:
//! weights are sorted in decreasing order and, for each `i`, candidate
//! partners `j > i` are visited with geometric skips calibrated to an upper
//! bound on the edge probability, giving an `O(n + m)` expected running time.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;
use rand::Rng;

/// Generates a Chung–Lu graph from the given expected-degree weights.
///
/// Node `i` of the output corresponds to `weights[i]` (the internal sorting
/// is undone before returning), so callers can attach metadata positionally.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if fewer than two weights are given, a
/// weight is negative or non-finite, or all weights are zero.
pub fn chung_lu<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> Result<Graph> {
    let n = weights.len();
    if n < 2 {
        return Err(GraphError::InvalidParameters(format!(
            "chung_lu requires at least 2 weights, got {n}"
        )));
    }
    if weights.iter().any(|&w| !w.is_finite() || w < 0.0) {
        return Err(GraphError::InvalidParameters(
            "chung_lu weights must be finite and non-negative".into(),
        ));
    }
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return Err(GraphError::InvalidParameters(
            "chung_lu weights must not all be zero".into(),
        ));
    }

    // Sort nodes by decreasing weight, remembering the original index.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| weights[b].partial_cmp(&weights[a]).expect("finite weights"));
    let sorted: Vec<f64> = order.iter().map(|&i| weights[i]).collect();

    let mut builder = GraphBuilder::new(n);
    for i in 0..n - 1 {
        if sorted[i] <= 0.0 {
            break; // remaining weights are all zero
        }
        let mut j = i + 1;
        // Upper bound for the probability of any edge (i, j') with j' >= j:
        // weights are sorted, so p_ij' <= p = min(1, w_i * w_j / total).
        let mut p = (sorted[i] * sorted[j] / total).min(1.0);
        while j < n && p > 0.0 {
            if p < 1.0 {
                // Geometric skip: jump to the next candidate that would be
                // selected under probability p.
                let r: f64 = rng.gen_range(f64::EPSILON..1.0);
                let skip = (r.ln() / (1.0 - p).ln()).floor() as usize;
                j += skip;
            }
            if j >= n {
                break;
            }
            let q = (sorted[i] * sorted[j] / total).min(1.0);
            // Accept with probability q / p to correct for the bound.
            if rng.gen::<f64>() < q / p {
                builder
                    .add_edge(order[i], order[j])
                    .expect("sorted indices map to valid node ids");
            }
            p = q;
            j += 1;
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn homogeneous_weights_behave_like_gnp() {
        let mut rng = seeded_rng(41);
        let n = 500usize;
        let w = vec![10.0; n];
        let g = chung_lu(&w, &mut rng).unwrap();
        let stats = crate::degree::DegreeStats::compute(&g).unwrap();
        assert!(
            (stats.mean_degree - 10.0).abs() < 1.0,
            "mean degree {}",
            stats.mean_degree
        );
        // Poisson-like degrees: Gamma_G = 1 + Var/mean^2 ≈ 1.1.
        assert!(stats.irregularity < 1.4, "Gamma = {}", stats.irregularity);
    }

    #[test]
    fn expected_degrees_track_weights() {
        let mut rng = seeded_rng(42);
        let n = 2_000usize;
        let mut w = vec![5.0; n];
        // A handful of hubs with weight 100.
        for hub in w.iter_mut().take(20) {
            *hub = 100.0;
        }
        let g = chung_lu(&w, &mut rng).unwrap();
        let hub_mean: f64 = (0..20).map(|i| g.degree(i) as f64).sum::<f64>() / 20.0;
        let leaf_mean: f64 = (20..n).map(|i| g.degree(i) as f64).sum::<f64>() / (n - 20) as f64;
        assert!((hub_mean - 100.0).abs() < 15.0, "hub mean {hub_mean}");
        assert!((leaf_mean - 5.0).abs() < 1.0, "leaf mean {leaf_mean}");
        let stats = crate::degree::DegreeStats::compute(&g).unwrap();
        assert!(stats.irregularity > 1.5);
    }

    #[test]
    fn rejects_bad_weights() {
        let mut rng = seeded_rng(43);
        assert!(chung_lu(&[1.0], &mut rng).is_err());
        assert!(chung_lu(&[1.0, -2.0], &mut rng).is_err());
        assert!(chung_lu(&[0.0, 0.0], &mut rng).is_err());
        assert!(chung_lu(&[1.0, f64::NAN], &mut rng).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let w: Vec<f64> = (1..=300).map(|i| 2.0 + (i % 17) as f64).collect();
        let a = chung_lu(&w, &mut seeded_rng(44)).unwrap();
        let b = chung_lu(&w, &mut seeded_rng(44)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_weight_nodes_stay_isolated() {
        let mut rng = seeded_rng(45);
        let mut w = vec![8.0; 100];
        w[7] = 0.0;
        let g = chung_lu(&w, &mut rng).unwrap();
        assert_eq!(g.degree(7), 0);
    }
}
