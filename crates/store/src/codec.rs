//! The fixed little-endian binary codec of every on-disk structure.
//!
//! All serialization in this crate is hand-rolled through these helpers:
//! the workspace's `serde` is an offline marker-trait shim, and a durable
//! format wants an explicit, stable byte layout anyway.  Widths are fixed —
//! `usize` quantities are always written as `u64`, `f64`s as raw IEEE bits
//! (`to_bits`/`from_bits`, which is what makes numeric state round-trip
//! **bit for bit**) — so files written on any host read back identically.

use crate::error::{Result, StoreError};

/// Appends a `u32`, little-endian.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64`, little-endian.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `usize` as a `u64` (the only width `usize` is ever stored at).
pub fn put_len(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Appends an `f64` as its raw IEEE-754 bits.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Appends a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_len(out, bytes.len());
    out.extend_from_slice(bytes);
}

/// Appends a bool mask bit-packed into `⌈len/8⌉` bytes, length prefix
/// included.
pub fn put_mask(out: &mut Vec<u8>, mask: &[bool]) {
    put_len(out, mask.len());
    let mut byte = 0u8;
    for (i, &up) in mask.iter().enumerate() {
        if up {
            byte |= 1 << (i % 8);
        }
        if i % 8 == 7 {
            out.push(byte);
            byte = 0;
        }
    }
    if !mask.len().is_multiple_of(8) {
        out.push(byte);
    }
}

/// A bounds-checked reader over an encoded buffer.  Overruns surface as
/// [`StoreError::Corrupt`], never as panics — decode inputs are untrusted
/// disk bytes.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if fewer than `n` bytes remain.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(StoreError::Corrupt(format!(
                "decode overrun: wanted {n} bytes, {} remain",
                self.remaining()
            )));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on overrun.
    pub fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on overrun.
    pub fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a stored `u64` back as a `usize`, rejecting values that do not
    /// fit (corrupt on 32-bit hosts rather than silently wrapping).
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on overrun or overflow.
    // Not a container length: this *reads a length field* from the stream,
    // so clippy's len/is_empty pairing does not apply.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&mut self) -> Result<usize> {
        let v = self.u64()?;
        usize::try_from(v)
            .map_err(|_| StoreError::Corrupt(format!("stored length {v} overflows usize")))
    }

    /// Reads an `f64` from its raw bits.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on overrun.
    pub fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed byte string.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on overrun.
    pub fn bytes(&mut self) -> Result<&'a [u8]> {
        let n = self.len()?;
        self.take(n)
    }

    /// Reads a bit-packed bool mask written by [`put_mask`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] on overrun.
    pub fn mask(&mut self) -> Result<Vec<bool>> {
        let n = self.len()?;
        let packed = self.take(n.div_ceil(8))?;
        Ok((0..n)
            .map(|i| packed[i / 8] & (1 << (i % 8)) != 0)
            .collect())
    }

    /// Fails unless the whole buffer was consumed — trailing garbage in a
    /// checksummed record means the encoder and decoder disagree.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] if bytes remain.
    pub fn finish(self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(StoreError::Corrupt(format!(
                "{} undecoded bytes at the end of a record",
                self.remaining()
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_len(&mut buf, 12345);
        put_f64(&mut buf, -0.0);
        put_f64(&mut buf, f64::from_bits(0x7FF8_0000_0000_0001)); // a NaN payload
        put_bytes(&mut buf, b"hello");
        let mask: Vec<bool> = (0..19).map(|i| i % 3 == 0).collect();
        put_mask(&mut buf, &mask);
        let mut d = Decoder::new(&buf);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 1);
        assert_eq!(d.len().unwrap(), 12345);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(d.f64().unwrap().to_bits(), 0x7FF8_0000_0000_0001);
        assert_eq!(d.bytes().unwrap(), b"hello");
        assert_eq!(d.mask().unwrap(), mask);
        d.finish().unwrap();
    }

    #[test]
    fn overruns_and_trailing_bytes_are_corrupt_not_panics() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        let mut d = Decoder::new(&buf);
        assert!(d.u64().is_err());
        let mut d = Decoder::new(&buf);
        d.u32().unwrap();
        assert!(matches!(d.take(1), Err(StoreError::Corrupt(_))));
        let d = Decoder::new(&buf);
        assert!(d.finish().is_err());
        // A length prefix larger than the buffer is an overrun, not an OOM.
        let mut buf = Vec::new();
        put_len(&mut buf, usize::MAX / 2);
        let mut d = Decoder::new(&buf);
        assert!(d.bytes().is_err());
    }

    #[test]
    fn empty_and_byte_aligned_masks() {
        for n in [0usize, 1, 7, 8, 9, 64] {
            let mask: Vec<bool> = (0..n).map(|i| i % 2 == 1).collect();
            let mut buf = Vec::new();
            put_mask(&mut buf, &mask);
            let mut d = Decoder::new(&buf);
            assert_eq!(d.mask().unwrap(), mask);
            d.finish().unwrap();
        }
    }
}
