//! Determinism, degeneracy and equivalence tests for the sharded runtime.
//!
//! The sharded engine's contract, at integration level:
//!
//! * under the canonical 1-shard partition the engine — and the whole
//!   service path on top of it — is **bit for bit** the single
//!   [`MixingEngine`] / [`run_protocol`] path: positions, bucket orders,
//!   RNG stream, submissions and [`TrafficMetrics`];
//! * for `k > 1` the result is a pure function of `(seed, partition)`:
//!   invariant to the order shards are sampled in and (with the `parallel`
//!   feature, which the root test target enables) to threaded execution;
//! * the k-shard stream split is a *different but equally distributed*
//!   realization of the same walk: aggregate mixing statistics agree with
//!   the single-engine run within Monte-Carlo tolerance.

mod common;

use common::strategies;
use network_shuffle::prelude::*;
use network_shuffle::service::{CoordinatorConfig, ShuffleCoordinator};
use network_shuffle::simulation::{run_protocol, SimulationConfig, SimulationOutcome};
use ns_graph::mixing_engine::MixingEngine;
use ns_graph::partition::Partition;
use ns_graph::rng::seeded_rng;
use ns_graph::round::DrawMode;
use ns_graph::sharded_engine::{shard_stream, ShardedMixingEngine};
use proptest::prelude::*;
use rand::Rng;

/// 1-shard degeneracy at the engine layer: positions, bucket orders, the
/// per-round statistics stream (via [`TrafficRecorder`]) and the RNG stream
/// itself all coincide with the single engine.
#[test]
fn one_shard_engine_is_bitwise_the_single_engine_path() {
    let graph = ns_graph::generators::barabasi_albert(400, 4, &mut seeded_rng(1)).unwrap();
    let partition = Partition::single_shard(&graph).unwrap();
    for (seed, laziness, rounds) in [(7u64, 0.0, 30), (8, 0.25, 25), (9, 0.6, 15)] {
        let mut sharded =
            ShardedMixingEngine::one_walker_per_node(&graph, &partition, seed).unwrap();
        let mut sharded_recorder = TrafficRecorder::new(400);
        for _ in 0..rounds {
            sharded.step(laziness, &mut sharded_recorder);
        }

        let mut single = MixingEngine::one_walker_per_node(&graph).unwrap();
        let mut rng = shard_stream(seed, 0);
        let mut single_recorder = TrafficRecorder::new(400);
        for _ in 0..rounds {
            single.step_holder(laziness, &mut rng, &mut single_recorder);
        }

        assert_eq!(sharded.positions(), single.positions(), "seed {seed}");
        assert_eq!(sharded.walkers_by_holder(), single.walkers_by_holder());
        assert_eq!(
            sharded_recorder.clone().into_metrics(400),
            single_recorder.clone().into_metrics(400),
            "traffic metrics diverged at seed {seed}"
        );
        // The RNG streams are in the same state: the next draw coincides.
        let a: u64 = sharded.shard_rng_mut(0).gen();
        let b: u64 = rng.gen();
        assert_eq!(a, b, "RNG stream diverged at seed {seed}");
    }
}

fn curator_view<P: Copy>(outcome: &SimulationOutcome<P>) -> Vec<(usize, usize, bool, P)> {
    outcome
        .collected
        .reports_with_submitter()
        .map(|(s, r)| (s, r.origin, r.is_dummy, r.payload))
        .collect()
}

/// 1-shard degeneracy at the service layer: the coordinator reproduces
/// `run_protocol` bit for bit — walk, submissions (including `A_single`
/// picks and dummies) and traffic metrics.
#[test]
fn one_shard_coordinator_is_bitwise_run_protocol() {
    let graph = {
        let mut rng = seeded_rng(2);
        ns_graph::generators::random_regular(300, 6, &mut rng).unwrap()
    };
    let partition = Partition::single_shard(&graph).unwrap();
    for (protocol, laziness) in [
        (ProtocolKind::All, 0.0),
        (ProtocolKind::All, 0.2),
        (ProtocolKind::Single, 0.0),
        (ProtocolKind::Single, 0.2),
    ] {
        let seed = 20220408;
        let rounds = 18;
        let payloads: Vec<u32> = (0..300).collect();

        let config = SimulationConfig {
            rounds,
            laziness,
            protocol,
            seed,
        };
        let reference = run_protocol(&graph, payloads.clone(), config, |rng| rng.gen_range(0..7))
            .expect("reference run");

        let coordinator_config = CoordinatorConfig {
            seed,
            laziness,
            protocol,
            tracked_per_shard: 4,
            draw_mode: DrawMode::Compat,
        };
        let mut coordinator: ShuffleCoordinator<'_, u32> =
            ShuffleCoordinator::new(&graph, &partition, coordinator_config).unwrap();
        coordinator.admit_population(payloads).unwrap();
        coordinator.begin_exchange().unwrap();
        coordinator.run_rounds(rounds).unwrap();
        let service = coordinator
            .finalize(|rng| rng.gen_range(0..7))
            .expect("service run");

        assert_eq!(
            curator_view(&service),
            curator_view(&reference),
            "submissions diverged for {protocol:?} at laziness {laziness}"
        );
        assert_eq!(service.metrics, reference.metrics);
    }
}

/// A_all through a k-shard coordinator delivers every genuine report to the
/// curator exactly once — conservation across the cross-shard exchange.
#[test]
fn multi_shard_coordinator_conserves_reports() {
    let graph = {
        let mut rng = seeded_rng(3);
        ns_graph::generators::random_regular(240, 6, &mut rng).unwrap()
    };
    let partition = Partition::new(&graph, 5).unwrap();
    let mut coordinator: ShuffleCoordinator<'_, u32> =
        ShuffleCoordinator::new(&graph, &partition, CoordinatorConfig::all(21, 3)).unwrap();
    coordinator.admit_population((0..240u32).collect()).unwrap();
    coordinator.begin_exchange().unwrap();
    coordinator.run_rounds(20).unwrap();
    let outcome = coordinator.finalize(|_| 0).unwrap();
    assert_eq!(outcome.collected.report_count(), 240);
    assert_eq!(outcome.collected.dummy_count(), 0);
    let mut origins: Vec<usize> = outcome
        .collected
        .reports_with_submitter()
        .map(|(_, r)| r.origin)
        .collect();
    origins.sort_unstable();
    assert_eq!(origins, (0..240).collect::<Vec<_>>());
    assert_eq!(outcome.metrics.total_messages(), 240 * 20);
}

/// The k-shard split streams realize the *same walk distribution* as the
/// single engine: over many seeds, the return-to-origin rate and the
/// empty-holder fraction after mixing agree within Monte-Carlo tolerance.
#[test]
fn multi_shard_runs_are_statistically_equivalent_to_single_engine_runs() {
    let graph = {
        let mut rng = seeded_rng(4);
        ns_graph::generators::random_regular(400, 8, &mut rng).unwrap()
    };
    let partition = Partition::new(&graph, 4).unwrap();
    let rounds = 12;
    let trials = 60u64;
    let stats = |sharded: bool| -> (f64, f64) {
        let (mut returned, mut empty) = (0usize, 0usize);
        for trial in 0..trials {
            let positions: Vec<u32> = if sharded {
                let mut engine =
                    ShardedMixingEngine::one_walker_per_node(&graph, &partition, 1000 + trial)
                        .unwrap();
                for _ in 0..rounds {
                    engine.step(0.0, &mut ());
                }
                engine.positions().to_vec()
            } else {
                let mut engine = MixingEngine::one_walker_per_node(&graph).unwrap();
                let mut rng = seeded_rng(1000 + trial);
                for _ in 0..rounds {
                    engine.step_holder(0.0, &mut rng, &mut ());
                }
                engine.positions().to_vec()
            };
            returned += positions
                .iter()
                .enumerate()
                .filter(|&(w, &p)| w == p as usize)
                .count();
            let mut load = vec![0usize; 400];
            for &p in &positions {
                load[p as usize] += 1;
            }
            empty += load.iter().filter(|&&l| l == 0).count();
        }
        let denom = (400 * trials as usize) as f64;
        (returned as f64 / denom, empty as f64 / denom)
    };
    let (return_sharded, empty_sharded) = stats(true);
    let (return_single, empty_single) = stats(false);
    // Both should sit near 1/n ≈ 0.0025 and e^{-1} ≈ 0.368 respectively.
    assert!(
        (return_sharded - return_single).abs() < 0.01,
        "return rates diverged: sharded {return_sharded}, single {return_single}"
    );
    assert!(
        (empty_sharded - empty_single).abs() < 0.01,
        "empty fractions diverged: sharded {empty_sharded}, single {empty_single}"
    );
    assert!((empty_sharded - (-1.0f64).exp()).abs() < 0.02);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Cross-shard determinism on the graph zoo: a k-shard round sequence
    /// is bitwise invariant to the shard sampling order and to threaded
    /// execution, for any graph family, shard count, laziness and round
    /// budget.
    #[test]
    fn sharded_rounds_are_invariant_to_execution_order(
        graph in strategies::graph_zoo(40..160),
        shards in 1usize..7,
        rounds in 1usize..10,
        laziness_pct in 0usize..60,
    ) {
        let n = graph.node_count();
        prop_assume!(n >= 16);
        let k = shards.min(n);
        let laziness = laziness_pct as f64 / 100.0;
        let partition = Partition::new(&graph, k).unwrap();
        let seed = 0xC0FFEE;

        let mut forward = ShardedMixingEngine::one_walker_per_node(&graph, &partition, seed).unwrap();
        let mut backward = ShardedMixingEngine::one_walker_per_node(&graph, &partition, seed).unwrap();
        let mut threaded = ShardedMixingEngine::one_walker_per_node(&graph, &partition, seed).unwrap();
        let reversed: Vec<usize> = (0..k).rev().collect();
        for _ in 0..rounds {
            forward.step(laziness, &mut ());
            backward.step_in_order(laziness, &reversed, &mut ());
            threaded.step_threaded(laziness, &mut ());
        }
        prop_assert_eq!(forward.positions(), backward.positions());
        prop_assert_eq!(forward.positions(), threaded.positions());
        prop_assert_eq!(forward.walkers_by_holder(), backward.walkers_by_holder());
        prop_assert_eq!(forward.walkers_by_holder(), threaded.walkers_by_holder());
    }
}
