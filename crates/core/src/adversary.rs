//! The central adversary's view and empirical anonymity measurements.
//!
//! Section 3.3: the adversary sitting at the curator can link every uploaded
//! report to the user who uploaded it (the *last holder*) but — if the walk
//! has mixed — not to the user who produced it.  This module quantifies how
//! much linkage survives a concrete protocol run, which the test suite uses
//! as an empirical sanity check of the anonymity argument (it is *not* part
//! of the formal accounting, which lives in [`crate::accountant`]).

use crate::report::Submission;
use ns_graph::NodeId;
use serde::{Deserialize, Serialize};

/// Aggregated linkage statistics from one protocol run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkageStats {
    /// Total number of genuine reports observed by the adversary.
    pub genuine_reports: usize,
    /// Number of genuine reports whose submitter is also their origin, i.e.
    /// the random walk returned the report to its producer.  For a
    /// well-mixed walk on an (approximately regular) graph this should be
    /// close to `genuine_reports / n`.
    pub returned_to_origin: usize,
    /// Number of genuine reports whose submitter is a graph-neighbour of the
    /// origin (a weaker linkage signal).
    pub submitted_by_neighbor: usize,
    /// Number of users who uploaded at least one report.
    pub active_submitters: usize,
}

impl LinkageStats {
    /// Fraction of genuine reports that ended up back at their origin.
    pub fn return_rate(&self) -> f64 {
        if self.genuine_reports == 0 {
            0.0
        } else {
            self.returned_to_origin as f64 / self.genuine_reports as f64
        }
    }
}

/// The adversary's view: reports labelled with their submitter only.
///
/// Origins are available to this *measurement* code because the simulation
/// tags reports for evaluation purposes; a real adversary would not have
/// them.
#[derive(Debug, Clone)]
pub struct AdversaryView {
    /// `(origin, submitter, is_dummy)` triples for every observed report.
    observations: Vec<(NodeId, NodeId, bool)>,
}

impl AdversaryView {
    /// Builds the view from decrypted submissions.
    pub fn from_submissions<P>(submissions: &[Submission<P>]) -> Self {
        let observations = submissions
            .iter()
            .flat_map(|s| {
                s.reports
                    .iter()
                    .map(move |r| (r.origin, s.submitter, r.is_dummy))
            })
            .collect();
        AdversaryView { observations }
    }

    /// Number of observed reports (dummies included).
    pub fn observation_count(&self) -> usize {
        self.observations.len()
    }

    /// Computes linkage statistics against the communication graph.
    pub fn linkage_stats(&self, graph: &ns_graph::Graph) -> LinkageStats {
        let mut genuine = 0usize;
        let mut returned = 0usize;
        let mut neighbor = 0usize;
        let mut submitters: Vec<NodeId> = Vec::new();
        for &(origin, submitter, is_dummy) in &self.observations {
            submitters.push(submitter);
            if is_dummy {
                continue;
            }
            genuine += 1;
            if origin == submitter {
                returned += 1;
            } else if graph.has_edge(origin, submitter) {
                neighbor += 1;
            }
        }
        submitters.sort_unstable();
        submitters.dedup();
        LinkageStats {
            genuine_reports: genuine,
            returned_to_origin: returned,
            submitted_by_neighbor: neighbor,
            active_submitters: submitters.len(),
        }
    }

    /// Histogram of submission sizes per submitter (how many reports each
    /// uploading user carried) — the adversary's observable `L` vector.
    pub fn submitter_load(&self, n: usize) -> Vec<usize> {
        let mut load = vec![0usize; n];
        for &(_, submitter, _) in &self.observations {
            if submitter < n {
                load[submitter] += 1;
            }
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Report;
    use ns_graph::generators;

    fn submissions() -> Vec<Submission<u32>> {
        vec![
            Submission {
                submitter: 0,
                reports: vec![Report::genuine(0, 1), Report::genuine(3, 2)],
            },
            Submission {
                submitter: 1,
                reports: vec![Report::genuine(2, 3)],
            },
            Submission {
                submitter: 2,
                reports: vec![Report::dummy(2, 0)],
            },
            Submission::null(3),
        ]
    }

    #[test]
    fn linkage_stats_count_returns_and_neighbors() {
        // Cycle 0-1-2-3-0.
        let g = generators::cycle(4).unwrap();
        let view = AdversaryView::from_submissions(&submissions());
        assert_eq!(view.observation_count(), 4);
        let stats = view.linkage_stats(&g);
        assert_eq!(stats.genuine_reports, 3);
        // Report (origin 0, submitter 0) returned to origin.
        assert_eq!(stats.returned_to_origin, 1);
        // Origin 3 submitted by 0 (neighbours on the cycle) and origin 2
        // submitted by 1 (neighbours): two neighbour submissions.
        assert_eq!(stats.submitted_by_neighbor, 2);
        assert_eq!(stats.active_submitters, 3);
        assert!((stats.return_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn submitter_load_matches_report_counts() {
        let view = AdversaryView::from_submissions(&submissions());
        assert_eq!(view.submitter_load(4), vec![2, 1, 1, 0]);
    }

    #[test]
    fn empty_view_has_zero_rates() {
        let view = AdversaryView::from_submissions::<u32>(&[]);
        let g = generators::cycle(4).unwrap();
        let stats = view.linkage_stats(&g);
        assert_eq!(stats.genuine_reports, 0);
        assert_eq!(stats.return_rate(), 0.0);
    }
}
