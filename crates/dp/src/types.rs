//! Core differential-privacy types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, DpError>;

/// Errors produced by the DP substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum DpError {
    /// ε must be non-negative (and usually strictly positive).
    InvalidEpsilon(f64),
    /// δ must lie in `[0, 1)`.
    InvalidDelta(f64),
    /// A mechanism parameter was out of range.
    InvalidParameters(String),
    /// An input fell outside the mechanism's declared domain.
    DomainViolation(String),
}

impl fmt::Display for DpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DpError::InvalidEpsilon(e) => write!(f, "invalid epsilon {e}: must be non-negative"),
            DpError::InvalidDelta(d) => write!(f, "invalid delta {d}: must be in [0, 1)"),
            DpError::InvalidParameters(msg) => write!(f, "invalid parameters: {msg}"),
            DpError::DomainViolation(msg) => write!(f, "domain violation: {msg}"),
        }
    }
}

impl std::error::Error for DpError {}

/// An `(ε, δ)` differential-privacy guarantee (Definition 2.1 of the paper).
///
/// `δ = 0` is pure DP; `δ > 0` is approximate DP.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrivacyGuarantee {
    /// The ε parameter (privacy loss bound).
    pub epsilon: f64,
    /// The δ parameter (failure probability mass).
    pub delta: f64,
}

impl PrivacyGuarantee {
    /// Constructs a validated `(ε, δ)` guarantee.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidEpsilon`] / [`DpError::InvalidDelta`] for
    /// out-of-range or non-finite values.
    pub fn new(epsilon: f64, delta: f64) -> Result<Self> {
        if !epsilon.is_finite() || epsilon < 0.0 {
            return Err(DpError::InvalidEpsilon(epsilon));
        }
        if !delta.is_finite() || !(0.0..1.0).contains(&delta) {
            return Err(DpError::InvalidDelta(delta));
        }
        Ok(PrivacyGuarantee { epsilon, delta })
    }

    /// A pure-DP guarantee `(ε, 0)`.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidEpsilon`] if ε is negative or non-finite.
    pub fn pure(epsilon: f64) -> Result<Self> {
        Self::new(epsilon, 0.0)
    }

    /// `true` when `δ = 0`.
    pub fn is_pure(&self) -> bool {
        self.delta == 0.0
    }

    /// Whether this guarantee is at least as strong as `other` in both
    /// parameters (smaller ε and smaller δ).
    pub fn dominates(&self, other: &PrivacyGuarantee) -> bool {
        self.epsilon <= other.epsilon && self.delta <= other.delta
    }

    /// Naive sequential composition with another guarantee (ε and δ add).
    ///
    /// # Errors
    ///
    /// Propagates validation errors if the sum overflows the valid range
    /// (e.g. combined δ ≥ 1).
    pub fn compose(&self, other: &PrivacyGuarantee) -> Result<Self> {
        Self::new(self.epsilon + other.epsilon, self.delta + other.delta)
    }

    /// The multiplicative bound `e^ε` relating output probabilities under
    /// adjacent inputs.
    pub fn likelihood_ratio_bound(&self) -> f64 {
        self.epsilon.exp()
    }
}

impl fmt::Display for PrivacyGuarantee {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pure() {
            write!(f, "{:.6}-DP", self.epsilon)
        } else {
            write!(f, "({:.6}, {:.3e})-DP", self.epsilon, self.delta)
        }
    }
}

/// Checks that an ε value is valid (finite, strictly positive), returning it.
///
/// Local randomizers in this workspace require ε > 0: ε = 0 would mean the
/// report carries no information at all and the amplification formulas
/// degenerate.
pub fn validate_positive_epsilon(epsilon: f64) -> Result<f64> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(DpError::InvalidEpsilon(epsilon));
    }
    Ok(epsilon)
}

/// Checks that a δ value is valid (finite, in `(0, 1)`), returning it.
pub fn validate_delta(delta: f64) -> Result<f64> {
    if !delta.is_finite() || delta <= 0.0 || delta >= 1.0 {
        return Err(DpError::InvalidDelta(delta));
    }
    Ok(delta)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates_ranges() {
        assert!(PrivacyGuarantee::new(1.0, 1e-6).is_ok());
        assert!(PrivacyGuarantee::new(0.0, 0.0).is_ok());
        assert!(PrivacyGuarantee::new(-0.1, 0.0).is_err());
        assert!(PrivacyGuarantee::new(f64::NAN, 0.0).is_err());
        assert!(PrivacyGuarantee::new(1.0, 1.0).is_err());
        assert!(PrivacyGuarantee::new(1.0, -1e-9).is_err());
    }

    #[test]
    fn purity_and_domination() {
        let strong = PrivacyGuarantee::new(0.5, 1e-8).unwrap();
        let weak = PrivacyGuarantee::new(2.0, 1e-6).unwrap();
        assert!(strong.dominates(&weak));
        assert!(!weak.dominates(&strong));
        assert!(PrivacyGuarantee::pure(1.0).unwrap().is_pure());
        assert!(!strong.is_pure());
    }

    #[test]
    fn composition_adds_parameters() {
        let a = PrivacyGuarantee::new(0.5, 1e-7).unwrap();
        let b = PrivacyGuarantee::new(0.7, 2e-7).unwrap();
        let c = a.compose(&b).unwrap();
        assert!((c.epsilon - 1.2).abs() < 1e-12);
        assert!((c.delta - 3e-7).abs() < 1e-18);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            PrivacyGuarantee::pure(1.0).unwrap().to_string(),
            "1.000000-DP"
        );
        let g = PrivacyGuarantee::new(0.25, 1e-6).unwrap();
        assert!(g.to_string().contains("0.250000"));
        assert!(g.to_string().contains("1.000e-6"));
    }

    #[test]
    fn validators() {
        assert!(validate_positive_epsilon(0.3).is_ok());
        assert!(validate_positive_epsilon(0.0).is_err());
        assert!(validate_positive_epsilon(f64::INFINITY).is_err());
        assert!(validate_delta(1e-6).is_ok());
        assert!(validate_delta(0.0).is_err());
        assert!(validate_delta(1.0).is_err());
    }

    #[test]
    fn likelihood_ratio_bound_is_exp_epsilon() {
        let g = PrivacyGuarantee::pure(std::f64::consts::LN_2).unwrap();
        assert!((g.likelihood_ratio_bound() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn error_display() {
        assert!(DpError::InvalidEpsilon(-1.0).to_string().contains("-1"));
        assert!(DpError::InvalidDelta(2.0).to_string().contains('2'));
        assert!(DpError::InvalidParameters("oops".into())
            .to_string()
            .contains("oops"));
        assert!(DpError::DomainViolation("bad".into())
            .to_string()
            .contains("bad"));
    }
}
