//! Traffic and memory metrics backing the complexity comparison of Table 3.
//!
//! Table 3 of the paper compares Prochlo, mix-nets and network shuffling on
//! *entity space complexity* (memory needed by whoever performs the
//! shuffling) and *user traffic complexity* (reports sent per user).  The
//! simulation records the corresponding concrete quantities so the
//! `table3` experiment can show the empirical scaling.
//!
//! [`TrafficRecorder`] computes the measurements incrementally: it plugs
//! into the mixing engine's [`RoundObserver`] hook and folds each round's
//! sent/load vectors into the running totals, so no post-hoc sweep over
//! per-client counters is needed.

use ns_graph::mixing_engine::{RoundObserver, RoundStats};
use serde::{Deserialize, Serialize};

/// Per-run traffic and memory measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMetrics {
    /// Number of users `n`.
    pub user_count: usize,
    /// Number of communication rounds executed.
    pub rounds: usize,
    /// Relay messages sent by each user over the whole run.
    pub messages_per_user: Vec<usize>,
    /// Largest number of reports simultaneously held by each user.
    pub peak_reports_per_user: Vec<usize>,
    /// Total number of reports received by the curator.
    pub server_reports: usize,
}

impl TrafficMetrics {
    /// Total relay messages across all users.
    pub fn total_messages(&self) -> usize {
        self.messages_per_user.iter().sum()
    }

    /// Mean relay messages per user.
    pub fn mean_messages_per_user(&self) -> f64 {
        if self.user_count == 0 {
            0.0
        } else {
            self.total_messages() as f64 / self.user_count as f64
        }
    }

    /// Maximum relay messages sent by any single user.
    pub fn max_messages_per_user(&self) -> usize {
        self.messages_per_user.iter().copied().max().unwrap_or(0)
    }

    /// Maximum number of reports any user had to hold at once — the user-side
    /// memory requirement (`O(1)` in expectation for network shuffling).
    pub fn max_peak_reports(&self) -> usize {
        self.peak_reports_per_user
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    /// Mean of the per-user peak report counts.
    pub fn mean_peak_reports(&self) -> f64 {
        if self.user_count == 0 {
            0.0
        } else {
            self.peak_reports_per_user.iter().sum::<usize>() as f64 / self.user_count as f64
        }
    }
}

/// Streaming builder of [`TrafficMetrics`], driven by the mixing engine.
///
/// Every user starts as the holder of exactly her own report, so the peak
/// vector is initialised to 1; each observed round then adds the round's
/// sends to the per-user message totals and raises the per-user peaks to the
/// post-round loads.  (Within a round a holder's count only dips below its
/// boundary values, so round boundaries are where peaks occur — the same
/// quantity the per-client counters used to track.)
#[derive(Debug, Clone)]
pub struct TrafficRecorder {
    rounds: usize,
    messages_per_user: Vec<usize>,
    peak_reports_per_user: Vec<usize>,
}

impl TrafficRecorder {
    /// A recorder for `n` users, each initially holding one report.
    pub fn new(n: usize) -> Self {
        TrafficRecorder {
            rounds: 0,
            messages_per_user: vec![0; n],
            peak_reports_per_user: vec![1; n],
        }
    }

    /// A recorder whose per-user peaks start from an explicit initial load —
    /// used by the service layer, where batch admission can leave some users
    /// holding zero (or several) reports before the first round.  With one
    /// report per user this is exactly [`TrafficRecorder::new`].
    pub fn with_initial_load(initial_load: &[usize]) -> Self {
        TrafficRecorder {
            rounds: 0,
            messages_per_user: vec![0; initial_load.len()],
            peak_reports_per_user: initial_load.to_vec(),
        }
    }

    /// Reassembles a recorder from captured parts — the durable runtime's
    /// snapshot-restore hook.  The parts are exactly what
    /// [`TrafficRecorder::rounds`] / [`TrafficRecorder::messages_per_user`] /
    /// [`TrafficRecorder::peak_reports_per_user`] expose, so a capture →
    /// restore round trip continues the recording bit for bit.
    ///
    /// # Panics
    ///
    /// Panics if the two per-user vectors have different lengths.
    pub fn from_parts(
        rounds: usize,
        messages_per_user: Vec<usize>,
        peak_reports_per_user: Vec<usize>,
    ) -> Self {
        assert_eq!(
            messages_per_user.len(),
            peak_reports_per_user.len(),
            "per-user vectors must cover the same users"
        );
        TrafficRecorder {
            rounds,
            messages_per_user,
            peak_reports_per_user,
        }
    }

    /// Rounds observed so far.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Relay messages per user accumulated so far.
    pub fn messages_per_user(&self) -> &[usize] {
        &self.messages_per_user
    }

    /// Per-user peak held-report counts so far.
    pub fn peak_reports_per_user(&self) -> &[usize] {
        &self.peak_reports_per_user
    }

    /// Finishes the recording, attaching the curator-side report count.
    pub fn into_metrics(self, server_reports: usize) -> TrafficMetrics {
        TrafficMetrics {
            user_count: self.messages_per_user.len(),
            rounds: self.rounds,
            messages_per_user: self.messages_per_user,
            peak_reports_per_user: self.peak_reports_per_user,
            server_reports,
        }
    }
}

impl RoundObserver for TrafficRecorder {
    fn on_round(&mut self, stats: &RoundStats<'_>) {
        self.rounds = stats.round;
        for (total, &sent) in self.messages_per_user.iter_mut().zip(stats.sent) {
            *total += sent as usize;
        }
        for (peak, &load) in self.peak_reports_per_user.iter_mut().zip(stats.load) {
            *peak = (*peak).max(load as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> TrafficMetrics {
        TrafficMetrics {
            user_count: 4,
            rounds: 3,
            messages_per_user: vec![3, 4, 2, 3],
            peak_reports_per_user: vec![1, 2, 1, 3],
            server_reports: 4,
        }
    }

    #[test]
    fn aggregates() {
        let m = metrics();
        assert_eq!(m.total_messages(), 12);
        assert!((m.mean_messages_per_user() - 3.0).abs() < 1e-12);
        assert_eq!(m.max_messages_per_user(), 4);
        assert_eq!(m.max_peak_reports(), 3);
        assert!((m.mean_peak_reports() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let m = TrafficMetrics {
            user_count: 0,
            rounds: 0,
            messages_per_user: vec![],
            peak_reports_per_user: vec![],
            server_reports: 0,
        };
        assert_eq!(m.mean_messages_per_user(), 0.0);
        assert_eq!(m.mean_peak_reports(), 0.0);
        assert_eq!(m.max_messages_per_user(), 0);
        assert_eq!(m.max_peak_reports(), 0);
    }

    #[test]
    fn recorder_accumulates_messages_and_peaks() {
        let mut recorder = TrafficRecorder::new(3);
        recorder.on_round(&RoundStats {
            round: 1,
            sent: &[1, 1, 0],
            load: &[0, 2, 1],
        });
        recorder.on_round(&RoundStats {
            round: 2,
            sent: &[0, 2, 1],
            load: &[3, 0, 0],
        });
        let m = recorder.into_metrics(3);
        assert_eq!(m.user_count, 3);
        assert_eq!(m.rounds, 2);
        assert_eq!(m.messages_per_user, vec![1, 3, 1]);
        // Peaks start at 1 (own report) and track post-round loads.
        assert_eq!(m.peak_reports_per_user, vec![3, 2, 1]);
        assert_eq!(m.server_reports, 3);
    }
}
