//! # ns-store — the durable runtime
//!
//! A small storage engine, in the SimpleDB/bustub idiom, that makes a
//! network-shuffle epoch crash-recoverable:
//!
//! - [`page`] — fixed-size page segments, the only unit of disk I/O;
//! - [`buffer`] — a tiny clock-eviction buffer pool over a segment;
//! - [`checksum`] / [`codec`] — CRC-32 and the fixed little-endian codec
//!   every on-disk byte goes through;
//! - [`wal`] — the length-prefixed, checksummed write-ahead log;
//! - [`records`] — the logical record set (admissions, schedule, rounds,
//!   snapshot/finalize markers);
//! - [`snapshot`] — atomic snapshot / meta / budget-ledger files;
//! - [`durable`] — [`DurableCoordinator`], the WAL-before-state wrapper
//!   around [`network_shuffle::prelude::ShuffleCoordinator`] with group
//!   commit, periodic snapshots and checked replay recovery.
//!
//! ## The recovery invariant, and its scope
//!
//! Every exchange round is a pure function of the logged inputs (admitted
//! batches, realized outage schedule, configuration) and the per-shard
//! deterministic RNG streams.  [`DurableCoordinator::recover`] therefore
//! reconstructs — **bit for bit** — engine positions, bucket orders, RNG
//! stream positions, tracked accountant rows, traffic metrics, the live
//! quote and ledger charges, by loading the newest valid snapshot and
//! re-executing the logged round tail (each round checked against its
//! record's RNG clocks, draw mode and outage mask; any disagreement fails
//! closed as [`StoreError::ReplayDiverged`]).
//!
//! Outside that scope, deliberately: envelope *bytes* (the simulated PKI is
//! process-local, so replayed admissions re-seal payloads under the
//! recovering process's fresh curator key — the opened payloads, which are
//! all the protocol observes, are identical) and wall-clock concerns like
//! fsync timing, which bound *how much tail is replayed*, never *what state
//! is reached*.

#![forbid(unsafe_code)]

pub mod buffer;
pub mod checksum;
pub mod codec;
pub mod durable;
pub mod error;
pub mod page;
pub mod records;
pub mod snapshot;
pub mod telemetry;
pub mod wal;

pub use durable::{DurableConfig, DurableCoordinator};
pub use error::{Result, StoreError};

/// Convenient re-exports of the crate's public surface.
pub mod prelude {
    pub use crate::durable::{
        DurableConfig, DurableCoordinator, METRICS_FILE, TRACE_FILE, WAL_FILE,
    };
    pub use crate::error::{Result, StoreError};
    pub use crate::records::WalRecord;
    pub use crate::snapshot::{
        load_ledger, load_meta, load_snapshot, save_ledger, snapshot_path, StoreMeta,
    };
    pub use crate::telemetry::StoreTelemetry;
    pub use crate::wal::{scan_wal, TailStatus, WalScan, WalWriter};
}
