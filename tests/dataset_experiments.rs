//! Scaled-down versions of the paper's experiments, run as integration
//! tests so that the qualitative claims of every figure are checked on every
//! `cargo test` (the full-scale versions live in the `ns-bench` binaries).

use network_shuffle::prelude::*;
use ns_datasets::{Dataset, MeanEstimationWorkload, WorkloadConfig};
use ns_dp::amplification::clones_shuffling_epsilon;

const DELTA: f64 = 1e-6;

/// Figure 4 (shape): on a dataset stand-in the stationary-bound ε decreases
/// monotonically with the number of rounds and flattens by the mixing time.
#[test]
fn fig4_epsilon_decreases_and_flattens() {
    let generated = Dataset::Facebook.generate_scaled(16, 1).expect("dataset");
    let accountant = NetworkShuffleAccountant::new(&generated.graph).expect("accountant");
    let n = accountant.node_count();
    let params = AccountantParams::new(n, 2.0, DELTA, DELTA).expect("params");
    let t_max = (2 * accountant.mixing_time()).clamp(20, 600);
    let sweep = accountant
        .epsilon_vs_rounds(ProtocolKind::All, Scenario::Stationary, &params, t_max)
        .expect("sweep");
    for w in sweep.windows(2) {
        assert!(
            w[1].1 <= w[0].1 + 1e-12,
            "epsilon must be non-increasing in t"
        );
    }
    // Flattening: the last 10% of rounds changes epsilon by well under 1%.
    let near_end = sweep[sweep.len() * 9 / 10].1;
    let end = sweep.last().unwrap().1;
    assert!(
        (near_end - end) / end < 0.01,
        "curve should flatten near the mixing time"
    );
    // And the early value is substantially larger than the converged one.
    assert!(sweep[0].1 > 1.5 * end);
}

/// Figure 5 (shape): on k-regular graphs, larger k converges to the
/// asymptotic ε in fewer rounds.
#[test]
fn fig5_larger_degree_converges_faster() {
    let n = 2_000usize;
    let params = AccountantParams::new(n, 2.0, DELTA, DELTA).expect("params");
    let mut rounds_to_converge = Vec::new();
    for &k in &[4usize, 16] {
        let graph =
            ns_graph::generators::random_regular(n, k, &mut ns_graph::rng::seeded_rng(k as u64))
                .expect("graph");
        let accountant = NetworkShuffleAccountant::new(&graph).expect("accountant");
        let sweep = accountant
            .epsilon_vs_rounds(
                ProtocolKind::All,
                Scenario::Symmetric { origin: 0 },
                &params,
                60,
            )
            .expect("sweep");
        let asymptote = sweep.last().unwrap().1;
        let converged_at = sweep
            .iter()
            .find(|(_, eps)| (*eps - asymptote) / asymptote < 0.01)
            .map(|(t, _)| *t)
            .unwrap_or(60);
        rounds_to_converge.push(converged_at);
    }
    assert!(
        rounds_to_converge[1] < rounds_to_converge[0],
        "k = 16 should converge before k = 4: {rounds_to_converge:?}"
    );
}

/// Figure 6 (shape): the larger stand-in amplifies more than the smaller one
/// at every ε₀ in the paper's range.
#[test]
fn fig6_larger_population_amplifies_more() {
    let small = Dataset::Twitch.generate_scaled(8, 2).expect("dataset");
    let large = Dataset::Deezer.generate_scaled(2, 2).expect("dataset");
    let acc_small = NetworkShuffleAccountant::new(&small.graph).expect("accountant");
    let acc_large = NetworkShuffleAccountant::new(&large.graph).expect("accountant");
    assert!(acc_large.node_count() > 4 * acc_small.node_count());
    for &eps0 in &[0.4, 0.8, 1.2] {
        let p_small = AccountantParams::new(acc_small.node_count(), eps0, DELTA, DELTA).unwrap();
        let p_large = AccountantParams::new(acc_large.node_count(), eps0, DELTA, DELTA).unwrap();
        let e_small = acc_small
            .central_guarantee_at_mixing_time(ProtocolKind::All, Scenario::Stationary, &p_small)
            .unwrap();
        let e_large = acc_large
            .central_guarantee_at_mixing_time(ProtocolKind::All, Scenario::Stationary, &p_large)
            .unwrap();
        assert!(
            e_large.epsilon < e_small.epsilon,
            "eps0 = {eps0}: large-n epsilon {} should beat small-n {}",
            e_large.epsilon,
            e_small.epsilon
        );
    }
}

/// Figure 7 (shape): `A_single` overtakes `A_all` as ε₀ grows.
#[test]
fn fig7_single_overtakes_all_at_large_epsilon0() {
    let generated = Dataset::Twitch.generate_scaled(8, 3).expect("dataset");
    let accountant = NetworkShuffleAccountant::new(&generated.graph).expect("accountant");
    let n = accountant.node_count();
    let gap_at = |eps0: f64| {
        let params = AccountantParams::new(n, eps0, DELTA, DELTA).unwrap();
        let all = accountant
            .central_guarantee_at_mixing_time(ProtocolKind::All, Scenario::Stationary, &params)
            .unwrap()
            .epsilon;
        let single = accountant
            .central_guarantee_at_mixing_time(ProtocolKind::Single, Scenario::Stationary, &params)
            .unwrap()
            .epsilon;
        all - single
    };
    // At large eps0 A_single is strictly better; the advantage grows with eps0.
    assert!(gap_at(4.0) > 0.0);
    assert!(gap_at(4.0) > gap_at(1.0));
}

/// Table 1 (shape): network shuffling amplifies below ε₀ across the whole
/// range, and its weaker exponential dependence on ε₀ (e^{1.5ε₀} vs the
/// clones bound's e^{0.5ε₀}) makes the trusted-shuffler clones bound the
/// tighter one once ε₀ is large.
#[test]
fn table1_network_shuffling_sits_between_clones_and_no_amplification() {
    let n = 500_000usize;
    for &eps0 in &[0.3, 0.6, 1.0, 2.0, 3.0] {
        let params = AccountantParams::new(n, eps0, DELTA, DELTA).unwrap();
        let network = single_protocol_epsilon(&params, 1.0 / n as f64)
            .unwrap()
            .epsilon;
        assert!(
            network < eps0,
            "eps0={eps0}: network {network} should amplify below eps0"
        );
    }
    for &eps0 in &[2.0, 3.0] {
        let params = AccountantParams::new(n, eps0, DELTA, DELTA).unwrap();
        let network = single_protocol_epsilon(&params, 1.0 / n as f64)
            .unwrap()
            .epsilon;
        let clones = clones_shuffling_epsilon(eps0, n, DELTA).unwrap();
        assert!(
            clones < network,
            "eps0={eps0}: clones {clones} should be tighter than network {network} at large eps0"
        );
    }
}

/// Figure 9 (shape): at equal ε₀ the `A_all` estimate has lower squared
/// error than `A_single` on the Gaussian-mixture workload.
#[test]
fn fig9_a_all_beats_a_single_on_utility() {
    let generated = Dataset::Twitch.generate_scaled(16, 4).expect("dataset");
    let graph = &generated.graph;
    let n = graph.node_count();
    let workload = MeanEstimationWorkload::generate(&WorkloadConfig {
        dimension: 32,
        ..WorkloadConfig::paper_defaults(n, 5)
    });
    // A large eps0 keeps the PrivUnit noise small, so the systematic costs of
    // A_single (dummy bias, dropped duplicates) dominate the comparison and
    // the test is not at the mercy of noise fluctuations; errors are averaged
    // over a few seeds for the same reason.
    let rounds = 50;
    let epsilon_0 = 8.0;
    let mut all_error = 0.0;
    let mut single_error = 0.0;
    for seed in 0..3u64 {
        let all = run_mean_estimation(
            graph,
            &workload.data,
            &workload.dummy_pool,
            MeanEstimationConfig {
                epsilon_0,
                rounds,
                protocol: ProtocolKind::All,
                seed,
            },
        )
        .expect("A_all");
        let single = run_mean_estimation(
            graph,
            &workload.data,
            &workload.dummy_pool,
            MeanEstimationConfig {
                epsilon_0,
                rounds,
                protocol: ProtocolKind::Single,
                seed,
            },
        )
        .expect("A_single");
        all_error += all.squared_error;
        single_error += single.squared_error;
    }
    assert!(
        all_error < single_error,
        "A_all error {all_error} should be below A_single error {single_error}"
    );
}

/// Table 4 (calibration): every stand-in (at test scale) reproduces its
/// target irregularity to within 30% and is usable by the accountant.
#[test]
fn table4_standins_are_calibrated_and_ergodic() {
    for (dataset, divisor) in [
        (Dataset::Facebook, 8usize),
        (Dataset::Twitch, 4),
        (Dataset::Deezer, 8),
        (Dataset::Enron, 2),
        (Dataset::Google, 64),
    ] {
        let generated = dataset.generate_scaled(divisor, 6).expect("dataset");
        let relative = generated.irregularity_error();
        assert!(
            relative < 0.3,
            "{dataset}: Gamma achieved {} vs target {} (error {relative:.2})",
            generated.achieved.irregularity,
            generated.spec.irregularity
        );
        assert!(
            NetworkShuffleAccountant::new(&generated.graph).is_ok(),
            "{dataset} not ergodic"
        );
    }
}
