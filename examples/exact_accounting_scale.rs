//! Exact multi-origin accounting on a large irregular graph.
//!
//! ```text
//! cargo run --release --example exact_accounting_scale
//! NS_EXACT_N=100000 cargo run --release --features parallel --example exact_accounting_scale
//! ```
//!
//! Builds a Chung–Lu graph with a heterogeneous expected-degree sequence —
//! the setting where the spectral bound is a worst case over users and the
//! symmetric (single-origin) route does not represent anyone but its chosen
//! origin — and runs `Scenario::Exact`: every user's position distribution
//! is evolved to the mixing time through the batched ensemble kernel,
//! yielding the exact per-user `Σ_i P_i(t)²` and the worst user's central ε.
//!
//! The default population (`n = 10_000`) finishes in well under a minute on
//! one core.  Set `NS_EXACT_N` to scale up: `NS_EXACT_N=100000` is the
//! 100k-user demonstration (all 100k origins evolved exactly — an
//! `O(n · t · m)` computation; expect tens of minutes on a single core, and
//! use `--features parallel` on multi-core machines).

use network_shuffle::prelude::*;
use ns_graph::connectivity::largest_connected_component;
use ns_obs::say;
use std::time::Instant;

const TOPIC: &str = "exact_accounting_scale";

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::var("NS_EXACT_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10_000);
    let epsilon_0 = 1.0;

    // Chung–Lu stand-in: expected degrees from 3 to 12, mean ~ 6.
    let weights: Vec<f64> = (0..n)
        .map(|i| 3.0 + 9.0 * ((i % 10) as f64) / 9.0)
        .collect();
    let mut rng = ns_graph::rng::seeded_rng(20220408);
    let graph = largest_connected_component(&ns_graph::generators::chung_lu(&weights, &mut rng)?).0;
    let n = graph.node_count();
    let stats = ns_graph::degree::DegreeStats::compute(&graph).expect("non-trivial graph");
    say!(
        TOPIC,
        "Chung-Lu stand-in: n = {n}, m = {}, degrees {}..{}, Gamma_G = {:.3}",
        stats.edge_count,
        stats.min_degree,
        stats.max_degree,
        stats.irregularity
    );

    let accountant = NetworkShuffleAccountant::new(&graph)?;
    let rounds = accountant.mixing_time();
    say!(
        TOPIC,
        "spectral gap = {:.4}, stopping rule t = {rounds} rounds",
        accountant.mixing_profile().spectral_gap
    );

    let params = AccountantParams::with_defaults(n, epsilon_0)?;
    // Two horizons: mid-mixing, where users genuinely differ, and the
    // stopping time, where everyone has converged.  `NS_EXACT_T` overrides
    // both with a single horizon (handy for large-n runs, where the full
    // mixing-time pass is an `O(n · t_mix · m)` commitment).
    let horizons: Vec<usize> = match std::env::var("NS_EXACT_T")
        .ok()
        .and_then(|v| v.parse().ok())
    {
        Some(t) => vec![t],
        None => vec![(rounds / 3).max(1), rounds],
    };
    for t in horizons {
        let start = Instant::now();
        let per_origin = accountant.per_origin_guarantees(ProtocolKind::Single, &params, t)?;
        let elapsed = start.elapsed().as_secs_f64();
        let (worst_origin, worst) = per_origin
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.epsilon.total_cmp(&b.epsilon))
            .expect("non-empty population");
        let best = per_origin
            .iter()
            .map(|g| g.epsilon)
            .fold(f64::INFINITY, f64::min);
        let mean = per_origin.iter().map(|g| g.epsilon).sum::<f64>() / n as f64;
        let bound = accountant
            .central_guarantee(ProtocolKind::Single, Scenario::Stationary, &params, t)?
            .epsilon;
        println!();
        say!(
            TOPIC,
            "t = {t}: exact ensemble pass over all origins in {elapsed:.1} s \
             ({:.2} M origin-rounds/s)",
            n as f64 * t as f64 / elapsed / 1e6
        );
        say!(
            TOPIC,
            "  per-user epsilon (A_single, eps0 = {epsilon_0}): worst user {worst_origin} \
             (degree {}) at {:.4}, mean {mean:.4}, best {best:.4}",
            graph.degree(worst_origin),
            worst.epsilon
        );
        say!(
            TOPIC,
            "  stationary worst-case bound at t = {t}: {bound:.4} \
             (exact worst user / bound = {:.3})",
            worst.epsilon / bound
        );
    }
    println!();
    say!(
        TOPIC,
        "the exact route prices every user individually: low-degree users mix slower and\n\
         carry a measurably larger epsilon, which the one-number spectral bound cannot see."
    );
    Ok(())
}
