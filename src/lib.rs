//! Workspace umbrella crate.
//!
//! Exists to host the repository-level integration tests (`tests/`) and the
//! runnable examples (`examples/`); re-exports the member crates so examples
//! and docs can reach everything through one name.

#![forbid(unsafe_code)]

pub use network_shuffle;
pub use ns_datasets;
pub use ns_dp;
pub use ns_graph;
pub use ns_store;

pub mod crash_harness;
