//! Figure 6 — amplified ε vs. ε₀ for the five datasets (`A_all`).
//!
//! Each dataset stand-in is run through the stationary-bound accountant at
//! its own mixing time; the amplified ε is reported for ε₀ from 0.1 to 1.2.
//! The Google graph (largest `n`) shows the strongest amplification.
//!
//! ```text
//! cargo run --release -p ns-bench --bin fig6
//! ```

use network_shuffle::prelude::*;
use ns_bench::{dataset_graph, fmt, linspace, print_table, write_csv, DELTA};
use ns_datasets::Dataset;

fn main() {
    let epsilon_grid = linspace(0.1, 1.2, 12);

    let mut accountants = Vec::new();
    for dataset in Dataset::ALL {
        let generated = dataset_graph(dataset);
        let accountant = NetworkShuffleAccountant::new(&generated.graph).expect("ergodic graph");
        println!(
            "{}: n = {}, Gamma = {:.3}, mixing time = {}",
            generated.spec.name,
            accountant.node_count(),
            generated.achieved.irregularity,
            accountant.mixing_time()
        );
        accountants.push((generated.spec.name, accountant));
    }

    let headers: Vec<String> = std::iter::once("eps0".to_string())
        .chain(accountants.iter().map(|(name, _)| format!("{name} eps")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    for &eps0 in &epsilon_grid {
        let mut row = vec![fmt(eps0)];
        for (_, accountant) in &accountants {
            let params = AccountantParams::new(accountant.node_count(), eps0, DELTA, DELTA)
                .expect("valid params");
            let guarantee = accountant
                .central_guarantee_at_mixing_time(ProtocolKind::All, Scenario::Stationary, &params)
                .expect("guarantee");
            row.push(fmt(guarantee.epsilon));
        }
        rows.push(row);
    }

    print_table(
        "Figure 6: amplified central epsilon vs. eps0 per dataset (A_all, stationary bound, t = mixing time)",
        &header_refs,
        &rows,
    );
    write_csv("fig6", &header_refs, &rows);
    println!(
        "\nshape check: at every eps0 the Google stand-in (largest n) achieves the smallest central\n\
         epsilon, and smaller graphs amplify less, matching Figure 6."
    );
}
