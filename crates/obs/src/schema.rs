//! In-repo validation of the JSONL trace schema.
//!
//! The trace format is this workspace's own (see the README's
//! Observability section), so CI checks emitted files with this small
//! validator instead of an external tool.  Lines are flat JSON objects;
//! the scanner below parses exactly that shape (string / number / bool /
//! null values, no nesting) and the checker enforces the per-event
//! required fields and types.

/// The value kinds a flat trace line can carry.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Value {
    Str(String),
    Num,
    Bool,
    Null,
}

/// Parses one flat JSON object into `(key, value)` pairs.
fn parse_flat_object(line: &str) -> Result<Vec<(String, Value)>, String> {
    let s = line.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| "line is not a JSON object".to_string())?;
    let bytes: Vec<char> = inner.chars().collect();
    let mut i = 0usize;
    let mut pairs = Vec::new();
    let skip_ws = |i: &mut usize| {
        while *i < bytes.len() && bytes[*i].is_whitespace() {
            *i += 1;
        }
    };
    let parse_string = |i: &mut usize| -> Result<String, String> {
        if bytes.get(*i) != Some(&'"') {
            return Err(format!("expected string at offset {i:?}"));
        }
        *i += 1;
        let mut out = String::new();
        while let Some(&c) = bytes.get(*i) {
            *i += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    let esc = bytes.get(*i).ok_or("dangling escape")?;
                    *i += 1;
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        'n' => out.push('\n'),
                        't' => out.push('\t'),
                        'u' => {
                            if *i + 4 > bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            *i += 4;
                            out.push('?');
                        }
                        other => return Err(format!("unsupported escape \\{other}")),
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    };
    loop {
        skip_ws(&mut i);
        if i >= bytes.len() {
            break;
        }
        let key = parse_string(&mut i)?;
        skip_ws(&mut i);
        if bytes.get(i) != Some(&':') {
            return Err(format!("missing ':' after key {key:?}"));
        }
        i += 1;
        skip_ws(&mut i);
        let value = match bytes.get(i) {
            Some('"') => Value::Str(parse_string(&mut i)?),
            Some('t') if inner_matches(&bytes, i, "true") => {
                i += 4;
                Value::Bool
            }
            Some('f') if inner_matches(&bytes, i, "false") => {
                i += 5;
                Value::Bool
            }
            Some('n') if inner_matches(&bytes, i, "null") => {
                i += 4;
                Value::Null
            }
            Some(c) if c.is_ascii_digit() || *c == '-' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || matches!(bytes[i], '.' | '-' | '+' | 'e' | 'E'))
                {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                text.parse::<f64>()
                    .map_err(|_| format!("bad number {text:?}"))?;
                Value::Num
            }
            other => return Err(format!("unsupported value start {other:?} for key {key:?}")),
        };
        pairs.push((key, value));
        skip_ws(&mut i);
        match bytes.get(i) {
            Some(',') => i += 1,
            None => break,
            other => return Err(format!("expected ',' between pairs, found {other:?}")),
        }
    }
    Ok(pairs)
}

fn inner_matches(bytes: &[char], at: usize, word: &str) -> bool {
    bytes[at..].iter().take(word.len()).collect::<String>() == word
}

/// Field requirement: name plus whether it must be numeric (`true`) or a
/// string (`false`); booleans and null-able floats are special-cased
/// below.
const ROUND_FIELDS: &[&str] = &["round", "sent", "wal_len", "epsilon", "delta"];
const ADMIT_NUM_FIELDS: &[&str] = &["batch", "reports", "epsilon", "delta"];
const SNAPSHOT_FIELDS: &[&str] = &["round", "bytes", "elapsed_ns"];
const RECOVER_FIELDS: &[&str] = &["rounds_replayed", "elapsed_ns"];

fn require_num(pairs: &[(String, Value)], ev: &str, fields: &[&str]) -> Result<(), String> {
    for field in fields {
        match pairs.iter().find(|(k, _)| k == field) {
            // Floats may degrade to null (non-finite) by design.
            Some((_, Value::Num)) | Some((_, Value::Null)) => {}
            Some((_, other)) => {
                return Err(format!(
                    "{ev}: field {field:?} is {other:?}, expected number"
                ))
            }
            None => return Err(format!("{ev}: missing field {field:?}")),
        }
    }
    Ok(())
}

fn require_str(pairs: &[(String, Value)], ev: &str, field: &str) -> Result<(), String> {
    match pairs.iter().find(|(k, _)| k == field) {
        Some((_, Value::Str(_))) => Ok(()),
        Some((_, other)) => Err(format!(
            "{ev}: field {field:?} is {other:?}, expected string"
        )),
        None => Err(format!("{ev}: missing field {field:?}")),
    }
}

/// Validates one trace line against the documented schema.
///
/// # Errors
///
/// A human-readable description of the first violation.
pub fn validate_line(line: &str) -> Result<(), String> {
    let pairs = parse_flat_object(line)?;
    match pairs.first() {
        Some((k, Value::Num)) if k == "ts" => {}
        _ => return Err("first field must be numeric \"ts\"".to_string()),
    }
    let ev = match pairs.get(1) {
        Some((k, Value::Str(ev))) if k == "ev" => ev.clone(),
        _ => return Err("second field must be string \"ev\"".to_string()),
    };
    match ev.as_str() {
        "round" => require_num(&pairs, "round", ROUND_FIELDS),
        "admit" => {
            require_num(&pairs, "admit", ADMIT_NUM_FIELDS)?;
            require_str(&pairs, "admit", "reason")?;
            match pairs.iter().find(|(k, _)| k == "accepted") {
                Some((_, Value::Bool)) => Ok(()),
                Some((_, other)) => Err(format!(
                    "admit: field \"accepted\" is {other:?}, expected bool"
                )),
                None => Err("admit: missing field \"accepted\"".to_string()),
            }
        }
        "snapshot" => require_num(&pairs, "snapshot", SNAPSHOT_FIELDS),
        "recover" => require_num(&pairs, "recover", RECOVER_FIELDS),
        "phase" => {
            require_str(&pairs, "phase", "name")?;
            require_num(&pairs, "phase", &["round"])
        }
        "note" => {
            require_str(&pairs, "note", "topic")?;
            require_num(&pairs, "note", &["value"])
        }
        other => Err(format!("unknown event kind {other:?}")),
    }
}

/// Validates a whole JSONL document (one event per non-empty line).
///
/// # Errors
///
/// The first offending line number and its violation.
pub fn validate_jsonl(text: &str) -> Result<usize, String> {
    let mut events = 0;
    for (line_no, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_line(line).map_err(|e| format!("line {}: {e}", line_no + 1))?;
        events += 1;
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_documented_lines() {
        let ok = [
            r#"{"ts": 1, "ev": "round", "round": 1, "sent": 9, "wal_len": 0, "epsilon": 0.5, "delta": 0.00001}"#,
            r#"{"ts": 2, "ev": "admit", "batch": 1, "reports": 4, "accepted": true, "reason": "ok", "epsilon": 1.0, "delta": 0.00001}"#,
            r#"{"ts": 3, "ev": "snapshot", "round": 4, "bytes": 100, "elapsed_ns": 12}"#,
            r#"{"ts": 4, "ev": "recover", "rounds_replayed": 2, "elapsed_ns": 99}"#,
            r#"{"ts": 5, "ev": "phase", "name": "finalize", "round": 6}"#,
            r#"{"ts": 6, "ev": "note", "topic": "cut", "value": 0.25}"#,
            r#"{"ts": 7, "ev": "note", "topic": "nan", "value": null}"#,
        ];
        for line in ok {
            validate_line(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        }
        assert_eq!(validate_jsonl(&ok.join("\n")).unwrap(), ok.len());
    }

    #[test]
    fn rejects_malformed_lines() {
        let bad = [
            "not json",
            r#"{"ev": "round", "ts": 1}"#,             // ts must lead
            r#"{"ts": 1, "ev": "bogus"}"#,             // unknown kind
            r#"{"ts": 1, "ev": "round", "round": 1}"#, // missing fields
            r#"{"ts": 1, "ev": "admit", "batch": 1, "reports": 1, "accepted": "yes", "reason": "ok", "epsilon": 1, "delta": 1}"#,
            r#"{"ts": 1, "ev": "phase", "name": 7, "round": 1}"#, // name not a string
        ];
        for line in bad {
            assert!(validate_line(line).is_err(), "accepted: {line}");
        }
        assert!(validate_jsonl("{\"ts\": 1, \"ev\": \"bogus\"}\n").is_err());
    }
}
