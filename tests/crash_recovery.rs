//! Crash-injection recovery tests: the durable store survives real process
//! death.
//!
//! Each scenario runs the `crash_child` binary against a store directory:
//! the child aborts without cleanup at injected rounds (optionally after
//! writing a *torn* WAL frame mid-append), is relaunched to recover and
//! continue, and on its final clean run writes a canonical state summary —
//! engine round, every walker position, per-shard RNG clocks, live-quote
//! bits, traffic metrics and a CRC-32 digest of the collected reports.
//! That summary must be **byte-identical** to an uninterrupted in-process
//! reference run, across draw modes, shard counts, outage schedules and
//! crash points.  One smoke test kills the child with a real SIGKILL at an
//! arbitrary wall-clock moment.

mod common;

use common::strategies;
use ns_graph::generators::random_regular;
use ns_graph::prelude::Graph;
use ns_graph::rng::seeded_rng;
use ns_suite::crash_harness::{build_partition, reference_summary, CrashScenario};
use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;

const CHILD: &str = env!("CARGO_BIN_EXE_crash_child");

/// A crash to inject: `(round, torn-frame bytes to keep before aborting)`.
type CrashPoint = (usize, Option<usize>);

fn scenario_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ns_crash_recovery").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scenario dir");
    dir
}

fn child_command(scenario: &CrashScenario, group_commit: usize, snapshot_every: usize) -> Command {
    let mut cmd = Command::new(CHILD);
    cmd.envs(scenario.to_env());
    cmd.env("NS_WAL_GROUP_COMMIT", group_commit.to_string());
    cmd.env("NS_SNAPSHOT_EVERY", snapshot_every.to_string());
    cmd
}

/// Runs `scenario` through the child binary: one aborting run per crash
/// point, then a clean run to completion, returning the child's summary.
fn run_with_crashes(
    dir: &Path,
    base: &CrashScenario,
    crashes: &[CrashPoint],
    group_commit: usize,
    snapshot_every: usize,
) -> String {
    for &(round, keep) in crashes {
        let mut scenario = base.clone();
        scenario.crash_at_round = Some(round);
        scenario.midwrite_keep = keep;
        scenario.out_path = None;
        let status = child_command(&scenario, group_commit, snapshot_every)
            .status()
            .expect("spawn crash_child");
        assert!(
            !status.success(),
            "child asked to crash at round {round} exited cleanly ({status})"
        );
    }
    let out_path = dir.join("summary.txt");
    let mut scenario = base.clone();
    scenario.out_path = Some(out_path.clone());
    let output = child_command(&scenario, group_commit, snapshot_every)
        .output()
        .expect("spawn crash_child");
    assert!(
        output.status.success(),
        "final child run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    std::fs::read_to_string(&out_path).expect("child summary")
}

fn base_scenario(dir: &Path, shards: usize, seed: u64, total_rounds: usize) -> CrashScenario {
    CrashScenario {
        store_dir: dir.join("store"),
        graph_path: dir.join("graph.edges"),
        shards,
        seed,
        laziness: 0.0,
        single: false,
        fast: false,
        outage_rounds: 0,
        total_rounds,
        crash_at_round: None,
        midwrite_keep: None,
        sleep_ms: 0,
        out_path: None,
    }
}

fn assert_recovery_is_bitwise(
    name: &str,
    graph: &Graph,
    mut scenario: CrashScenario,
    crashes: &[CrashPoint],
    group_commit: usize,
    snapshot_every: usize,
) {
    let dir = scenario_dir(name);
    scenario.store_dir = dir.join("store");
    scenario.graph_path = dir.join("graph.edges");
    // The child reads the graph back from the edge-list file, which is not
    // adjacency-order-preserving — round-trip it here too so the reference
    // runs on the byte-identical graph the child sees.
    ns_graph::io::write_edge_list_file(graph, &scenario.graph_path).expect("write graph");
    let (graph, _) = ns_graph::io::read_edge_list_file(&scenario.graph_path).expect("reload graph");
    let partition = build_partition(&graph, scenario.shards).expect("partition");
    let reference = reference_summary(&graph, &partition, &scenario);
    let recovered = run_with_crashes(&dir, &scenario, crashes, group_commit, snapshot_every);
    assert_eq!(
        recovered, reference,
        "{name}: recovered run diverged from the uninterrupted reference"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The deterministic matrix: {compat, fast} × k ∈ {1, 4}, with outages and a
/// three-crash gauntlet — a pre-exchange-tail crash, a torn mid-frame crash
/// and a torn single-byte crash — against group commit 3 and snapshots
/// every 4 rounds.
#[test]
fn kill_matrix_recovers_bitwise_across_modes_and_shards() {
    let graph = random_regular(40, 4, &mut seeded_rng(0xC0FFEE)).unwrap();
    for (fast, shards) in [(false, 1), (false, 4), (true, 1), (true, 4)] {
        let name = format!("matrix_fast{}_k{}", u8::from(fast), shards);
        let mut scenario = base_scenario(Path::new("."), shards, 23, 13);
        scenario.fast = fast;
        scenario.outage_rounds = 9;
        assert_recovery_is_bitwise(
            &name,
            &graph,
            scenario,
            &[(2, None), (5, Some(7)), (9, Some(1))],
            3,
            4,
        );
    }
}

/// Crashing at round 0 — before any round executed, right after admission
/// and `begin_exchange` hit the log — recovers and completes bitwise.
#[test]
fn kill_before_first_round_recovers_bitwise() {
    let graph = random_regular(24, 4, &mut seeded_rng(7)).unwrap();
    let mut scenario = base_scenario(Path::new("."), 4, 41, 8);
    scenario.single = true;
    assert_recovery_is_bitwise("round_zero", &graph, scenario, &[(0, Some(3))], 1, 0);
}

/// A real SIGKILL at an arbitrary wall-clock moment: the child paces itself
/// with a per-round sleep, the parent kills it mid-flight, and the relaunch
/// still completes bitwise against the reference.
#[test]
fn sigkill_mid_flight_recovers_bitwise() {
    let graph = random_regular(30, 4, &mut seeded_rng(99)).unwrap();
    let dir = scenario_dir("sigkill");
    let mut scenario = base_scenario(&dir, 4, 77, 40);
    scenario.outage_rounds = 12;
    ns_graph::io::write_edge_list_file(&graph, &scenario.graph_path).expect("write graph");
    let (graph, _) = ns_graph::io::read_edge_list_file(&scenario.graph_path).expect("reload graph");
    let mut paced = scenario.clone();
    paced.sleep_ms = 20;
    let mut child = child_command(&paced, 2, 8)
        .spawn()
        .expect("spawn crash_child");
    std::thread::sleep(std::time::Duration::from_millis(250));
    child.kill().expect("SIGKILL");
    let status = child.wait().expect("reap child");
    assert!(!status.success(), "killed child exited cleanly ({status})");
    let out_path = dir.join("summary.txt");
    scenario.out_path = Some(out_path.clone());
    let output = child_command(&scenario, 2, 8).output().expect("final run");
    assert!(
        output.status.success(),
        "final child run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let partition = build_partition(&graph, scenario.shards).expect("partition");
    let reference = reference_summary(&graph, &partition, &scenario);
    let recovered = std::fs::read_to_string(&out_path).expect("child summary");
    assert_eq!(recovered, reference, "SIGKILL recovery diverged");
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Randomized crash gauntlet over the graph zoo: random topology, draw
    /// mode, shard count (1 or 4), outage coverage, crash rounds, torn-frame
    /// prefixes and durability knobs — recovery is always bitwise.
    #[test]
    fn randomized_crashes_recover_bitwise(
        graph in strategies::degree_bounded(12..60, 3..6),
        fast in 0u8..2,
        wide in 0u8..2,
        outages in 0u8..2,
        seed in 0u64..1_000,
        crash_a in 0usize..6,
        crash_b in 6usize..11,
        keep_sel in 0usize..41,
        group_commit in 1usize..5,
        snapshots in 0u8..2,
        case in 0u64..u64::MAX,
    ) {
        let shards = if wide == 1 { 4 } else { 1 };
        // 40 is the "no torn frame" sentinel; anything else is a torn-frame
        // byte prefix to keep before aborting.
        let keep = (keep_sel < 40).then_some(keep_sel);
        let mut scenario = base_scenario(Path::new("."), shards, seed, 11);
        scenario.fast = fast == 1;
        scenario.outage_rounds = if outages == 1 { 7 } else { 0 };
        assert_recovery_is_bitwise(
            &format!("prop_{case:016x}"),
            &graph,
            scenario,
            &[(crash_a, keep), (crash_b, None)],
            group_commit,
            if snapshots == 1 { 4 } else { 0 },
        );
    }
}
