//! Erdős–Rényi random graphs `G(n, p)` and `G(n, m)`.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;
use rand::Rng;

/// Generates `G(n, p)`: each of the `n(n−1)/2` possible edges is present
/// independently with probability `p`.
///
/// Uses geometric skipping over the edge enumeration, so the cost is
/// `O(n + m)` rather than `O(n²)` for sparse graphs.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if `n < 2` or `p ∉ [0, 1]`.
pub fn gnp<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Result<Graph> {
    if n < 2 {
        return Err(GraphError::InvalidParameters(format!(
            "gnp requires n >= 2, got {n}"
        )));
    }
    if !(0.0..=1.0).contains(&p) {
        return Err(GraphError::InvalidParameters(format!(
            "p must be in [0, 1], got {p}"
        )));
    }
    let mut builder = GraphBuilder::new(n);
    if p == 0.0 {
        return Ok(builder.build());
    }
    if p == 1.0 {
        for u in 0..n {
            for v in (u + 1)..n {
                builder.add_edge(u, v)?;
            }
        }
        return Ok(builder.build());
    }

    // Enumerate candidate edges lexicographically and jump ahead by
    // geometrically-distributed gaps (Batagelj–Brandes).
    let log_q = (1.0 - p).ln();
    let mut u: usize = 0;
    let mut v: i64 = -1;
    while u < n {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log_q).floor() as i64 + 1;
        v += skip;
        while u < n && v >= (n as i64 - u as i64 - 1) {
            v -= n as i64 - u as i64 - 1;
            u += 1;
        }
        if u < n {
            let w = u as i64 + 1 + v;
            builder.add_edge(u, w as usize)?;
        }
    }
    Ok(builder.build())
}

/// Generates `G(n, m)`: a graph with exactly `m` distinct edges chosen
/// uniformly among all `n(n−1)/2` candidates.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if `n < 2` or `m` exceeds the number of
/// possible edges.
pub fn gnm<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Graph> {
    if n < 2 {
        return Err(GraphError::InvalidParameters(format!(
            "gnm requires n >= 2, got {n}"
        )));
    }
    let max_edges = n * (n - 1) / 2;
    if m > max_edges {
        return Err(GraphError::InvalidParameters(format!(
            "m = {m} exceeds the maximum {max_edges} edges for n = {n}"
        )));
    }
    let mut builder = GraphBuilder::new(n);
    let mut added = 0usize;
    // Rejection sampling is efficient while m is well below max_edges; when
    // the graph is dense, fall back to sampling from the complement size.
    while added < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v || builder.has_edge(u, v) {
            continue;
        }
        builder.add_edge(u, v)?;
        added += 1;
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn gnp_edge_count_concentrates_around_mean() {
        let mut rng = seeded_rng(5);
        let n = 400usize;
        let p = 0.02;
        let g = gnp(n, p, &mut rng).unwrap();
        let expected = p * (n * (n - 1) / 2) as f64;
        let m = g.edge_count() as f64;
        assert!(
            (m - expected).abs() < 4.0 * expected.sqrt() + 10.0,
            "m = {m}, expected {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        let mut rng = seeded_rng(6);
        assert_eq!(gnp(10, 0.0, &mut rng).unwrap().edge_count(), 0);
        assert_eq!(gnp(10, 1.0, &mut rng).unwrap().edge_count(), 45);
        assert!(gnp(1, 0.5, &mut rng).is_err());
        assert!(gnp(10, 1.5, &mut rng).is_err());
    }

    #[test]
    fn gnm_exact_edge_count() {
        let mut rng = seeded_rng(7);
        let g = gnm(50, 120, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 120);
        assert!(gnm(5, 11, &mut rng).is_err());
        assert_eq!(gnm(5, 10, &mut rng).unwrap().edge_count(), 10);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = gnp(100, 0.05, &mut seeded_rng(42)).unwrap();
        let b = gnp(100, 0.05, &mut seeded_rng(42)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn supercritical_gnp_is_mostly_connected() {
        // p = 3 ln n / n is well above the connectivity threshold.
        let mut rng = seeded_rng(8);
        let n = 300usize;
        let p = 3.0 * (n as f64).ln() / n as f64;
        let g = gnp(n, p, &mut rng).unwrap();
        let (lcc, _) = crate::connectivity::largest_connected_component(&g);
        assert!(lcc.node_count() as f64 >= 0.99 * n as f64);
    }
}
