//! Parity, dominance and determinism tests for the distribution-ensemble
//! kernel.
//!
//! The refactor's contract: the blocked multi-origin kernel must agree with
//! the historical single-distribution route bit for bit, the exact route
//! must relate to the spectral bound the way the theory says, and the
//! `parallel` feature must never change a single bit of any result.

mod common;

use common::strategies;
use network_shuffle::prelude::*;
use ns_graph::connectivity::largest_connected_component;
use ns_graph::distribution::PositionDistribution;
use ns_graph::ensemble::{self, DistributionEnsemble};
use ns_graph::rng::seeded_rng;
use ns_graph::transition::TransitionMatrix;
use ns_graph::Graph;
use proptest::prelude::*;

/// A small zoo of connected, non-bipartite irregular graphs.
fn irregular_zoo() -> Vec<(&'static str, Graph)> {
    let mut rng = seeded_rng(20220408);
    let weights: Vec<f64> = (0..600)
        .map(|i| 3.0 + 9.0 * ((i % 10) as f64) / 9.0)
        .collect();
    let chung_lu =
        largest_connected_component(&ns_graph::generators::chung_lu(&weights, &mut rng).unwrap()).0;
    let ba = ns_graph::generators::barabasi_albert(600, 3, &mut rng).unwrap();
    let sbm = largest_connected_component(
        &ns_graph::generators::stochastic_block_model(600, 6, 0.05, 0.005, &mut rng).unwrap(),
    )
    .0;
    vec![
        ("chung-lu", chung_lu),
        ("barabasi-albert", ba),
        ("sbm", sbm),
    ]
}

/// `Scenario::Exact` restricted to one row reproduces
/// `PositionDistribution::advance` bit for bit — including rows that sit in
/// the middle of a multi-lane block.
#[test]
fn exact_ensemble_rows_match_position_distribution_bitwise() {
    for (name, graph) in irregular_zoo() {
        let n = graph.node_count();
        let transition = TransitionMatrix::with_laziness(&graph, 0.1).unwrap();
        let mut full = DistributionEnsemble::all_origins(n).unwrap();
        full.advance(&transition, 12);
        // Spot-check a spread of origins, including block boundaries.
        for origin in [0usize, 1, 7, 8, 9, n / 2, n - 2, n - 1] {
            let mut single = PositionDistribution::point_mass(n, origin).unwrap();
            single.advance(&transition, 12);
            assert_eq!(
                full.row(origin),
                single.probabilities(),
                "{name}: origin {origin} diverged from the single-origin route"
            );
            assert_eq!(
                full.row_stats(origin).sum_of_squares,
                single.sum_of_squares(),
                "{name}: origin {origin} stats diverged"
            );
        }
    }
}

/// The accountant's exact scenario agrees with the symmetric scenario
/// origin by origin (same kernel underneath), and the worst-user pair
/// dominates every origin.
#[test]
fn accountant_exact_scenario_is_the_worst_symmetric_origin() {
    let (_, graph) = irregular_zoo().remove(1);
    let accountant = NetworkShuffleAccountant::new(&graph).unwrap();
    let rounds = 9;
    let moments = accountant.exact_moments(rounds).unwrap();
    let (worst_sum_sq, _) = accountant.sum_p_squared(Scenario::Exact, rounds).unwrap();
    let mut max_seen = 0.0f64;
    for origin in (0..graph.node_count()).step_by(41) {
        let (sum_sq, rho) = accountant
            .sum_p_squared(Scenario::Symmetric { origin }, rounds)
            .unwrap();
        assert_eq!(moments[origin].sum_of_squares, sum_sq);
        assert_eq!(moments[origin].support_ratio, rho);
        max_seen = max_seen.max(sum_sq);
    }
    assert!(worst_sum_sq >= max_seen);
}

/// Relationship between the exact route and the Eq. 7 spectral bound on
/// irregular graphs:
///
/// * by the paper's stopping time `t_mix` the worst origin's exact `Σ P²`
///   has dropped to the (clamped) bound and stays there (1% slack for the
///   asymptotic residuals), and both settle at the stationary `Σ π²`;
/// * **pre**-mixing, the bound is not trustworthy per user: low-degree
///   origins concentrate mass (a degree-1 origin's report sits on its only
///   neighbour with probability 1 at `t = 1`) and can exceed the
///   regular-graph-derived bound outright, while well-connected origins sit
///   far below it.  The exact ensemble is the only route that sees this
///   per-user spread — that is its payoff.
#[test]
fn exact_route_vs_spectral_bound_on_irregular_graphs() {
    for (name, graph) in irregular_zoo() {
        let accountant = NetworkShuffleAccountant::new(&graph).unwrap();
        let profile = accountant.mixing_profile();
        let t_mix = accountant.mixing_time();
        let rounds = 2 * t_mix;
        let mut worst = vec![0.0f64; rounds];
        let mut best = vec![f64::INFINITY; rounds];
        ensemble::all_origin_trajectories(accountant.transition(), rounds, |_, trajectory| {
            for row in 0..trajectory.sources() {
                for (index, stats) in trajectory.row(row).iter().enumerate() {
                    worst[index] = worst[index].max(stats.sum_of_squares);
                    best[index] = best[index].min(stats.sum_of_squares);
                }
            }
            Ok::<(), ns_graph::GraphError>(())
        })
        .unwrap();
        // Dominance from the stopping time onwards.
        let dominated_from = (1..=rounds)
            .find(|&t0| {
                (t0..=rounds)
                    .all(|t| worst[t - 1] <= profile.sum_p_squared_bound_clamped(t) * 1.01 + 1e-12)
            })
            .unwrap_or(rounds + 1);
        assert!(
            dominated_from <= t_mix,
            "{name}: bound only dominates from t = {dominated_from}, mixing time {t_mix}"
        );
        // Pre-mixing the exact route resolves a real per-user spread: the
        // best-connected origin is already well below the bound while the
        // worst origin is still far above the stationary value.
        let probe_t = 3.min(t_mix);
        let bound_at_probe = profile.sum_p_squared_bound_clamped(probe_t);
        assert!(
            best[probe_t - 1] < bound_at_probe,
            "{name}: even the best origin ({}) is above the bound {bound_at_probe} at t = {probe_t}",
            best[probe_t - 1]
        );
        assert!(
            worst[probe_t - 1] > best[probe_t - 1] * 1.05,
            "{name}: no per-origin spread at t = {probe_t}"
        );
        // Both settle at the stationary collision probability.
        let stationary = profile.stationary_sum_of_squares;
        assert!(
            (worst[rounds - 1] - stationary).abs() / stationary < 0.01,
            "{name}: exact tail {} far from stationary {stationary}",
            worst[rounds - 1]
        );
    }
}

/// The streaming all-origin driver, which the accountant uses for large
/// graphs, matches the materialized `n × n` ensemble.
#[test]
fn streaming_moments_match_materialized_ensemble() {
    let (_, graph) = irregular_zoo().remove(0);
    let n = graph.node_count();
    let transition = TransitionMatrix::new(&graph).unwrap();
    let moments = ensemble::all_origin_moments(&transition, 7).unwrap();
    let mut full = DistributionEnsemble::all_origins(n).unwrap();
    full.advance(&transition, 7);
    assert_eq!(moments.len(), n);
    for (origin, stats) in moments.iter().enumerate() {
        assert_eq!(*stats, full.row_stats(origin), "origin {origin}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Parallel-vs-sequential determinism across generator families (the
    /// shared mixed-family strategy: degree-bounded, connected G(n, p) and
    /// SBM draws): the block-parallel ensemble advance must produce
    /// bitwise-identical rows and trajectories for any graph, origin set,
    /// laziness and round count.  (The root test target enables the
    /// `parallel` feature of ns-graph, so both paths are available in one
    /// build.)
    #[test]
    fn parallel_ensemble_is_bitwise_deterministic(
        graph in strategies::graph_zoo(60..220),
        rounds in 1usize..12,
        laziness_pct in 0usize..60,
    ) {
        let nodes = graph.node_count();
        prop_assume!(nodes >= 8);
        let laziness = laziness_pct as f64 / 100.0;
        let transition = TransitionMatrix::with_laziness(&graph, laziness).unwrap();
        let origins: Vec<usize> = (0..nodes).step_by(3).collect();

        let mut sequential = DistributionEnsemble::point_masses(nodes, &origins).unwrap();
        let seq_trajectory = sequential.advance_tracked(&transition, rounds);
        let mut parallel = DistributionEnsemble::point_masses(nodes, &origins).unwrap();
        let par_trajectory = parallel.advance_tracked_parallel(&transition, rounds);
        prop_assert_eq!(&sequential, &parallel);
        prop_assert_eq!(&seq_trajectory, &par_trajectory);

        // And the untracked parallel path agrees with both.
        let mut untracked = DistributionEnsemble::point_masses(nodes, &origins).unwrap();
        untracked.advance_parallel(&transition, rounds);
        prop_assert_eq!(&sequential, &untracked);
    }
}
