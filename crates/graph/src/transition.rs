//! The random-walk transition matrix `M = A B⁻¹` and distribution updates.
//!
//! `M_{ij} = A_{ij} / deg(i)` is the probability that a report held by user
//! `i` is relayed to user `j` in one round.  The position probability
//! distribution evolves as `P(t+1) = Mᵀ P(t)` (Section 4.1).  The matrix is
//! never materialized densely; updates stream over the CSR adjacency so a
//! single round costs `O(n + m)`.

use crate::error::{GraphError, Result};
use crate::graph::Graph;

/// A backend that can evolve position distributions by one round.
///
/// The distribution-ensemble kernel ([`crate::ensemble`]) consumes the walk
/// only through this trait, so the concrete [`TransitionMatrix`] and
/// black-box backends (dynamic graphs, availability-dependent routing, …)
/// plug in interchangeably.  Implementors only have to provide the
/// single-distribution update; the batched interleaved form has a default
/// implementation that routes each lane through [`TransitionModel::propagate_into`],
/// and backends with structure to exploit (like the CSR matrix) override it
/// with a fused kernel.
pub trait TransitionModel {
    /// Number of nodes the distributions range over.
    fn node_count(&self) -> usize;

    /// One step of the distribution update, writing `P(t+1) = Mᵀ P(t)` into
    /// `out`.  Both slices have length [`TransitionModel::node_count`].
    fn propagate_into(&self, p: &[f64], out: &mut [f64]);

    /// One step applied to `lanes` distributions stored interleaved:
    /// `input[i * lanes + l]` is entry `i` of distribution `l`.
    ///
    /// The contract mirrors [`TransitionModel::propagate_into`] lane by lane:
    /// each lane's output must be exactly what `propagate_into` would have
    /// produced for that lane alone (the ensemble kernel's parity guarantees
    /// rest on this).  The default implementation gathers each lane into a
    /// scratch row and delegates; override it when the backend can fuse the
    /// lanes (see [`TransitionMatrix::propagate_interleaved`]).
    ///
    /// # Panics
    ///
    /// Panics if `input` or `output` do not have length `lanes * n`.
    fn propagate_interleaved(&self, lanes: usize, input: &[f64], output: &mut [f64]) {
        let n = self.node_count();
        assert_eq!(input.len(), lanes * n, "interleaved input has wrong length");
        assert_eq!(
            output.len(),
            lanes * n,
            "interleaved output has wrong length"
        );
        let mut row_in = vec![0.0; n];
        let mut row_out = vec![0.0; n];
        for lane in 0..lanes {
            for i in 0..n {
                row_in[i] = input[i * lanes + lane];
            }
            self.propagate_into(&row_in, &mut row_out);
            for i in 0..n {
                output[i * lanes + lane] = row_out[i];
            }
        }
    }

    /// [`TransitionModel::propagate_into`] for the step taken at absolute
    /// round `round` (0-based: the step evolving `P(round)` to
    /// `P(round + 1)`).
    ///
    /// Static backends ignore `round` — the default delegates to
    /// [`TransitionModel::propagate_into`], so every existing implementor is
    /// unchanged bit for bit.  Time-varying backends (see
    /// [`crate::dynamic::TimeVaryingModel`]) override this to dispatch to
    /// the operator scheduled for that round.  The ensemble kernel drives
    /// models exclusively through the round-aware entry points, threading
    /// its own absolute clock through, which is what lets one kernel serve
    /// static and dynamic topologies alike.
    fn propagate_round_into(&self, round: usize, p: &[f64], out: &mut [f64]) {
        let _ = round;
        self.propagate_into(p, out);
    }

    /// [`TransitionModel::propagate_interleaved`] for the step taken at
    /// absolute round `round`; same contract and default-delegation rules as
    /// [`TransitionModel::propagate_round_into`].
    ///
    /// # Panics
    ///
    /// Panics if `input` or `output` do not have length `lanes * n`.
    fn propagate_round_interleaved(
        &self,
        round: usize,
        lanes: usize,
        input: &[f64],
        output: &mut [f64],
    ) {
        let _ = round;
        self.propagate_interleaved(lanes, input, output);
    }

    /// Recomputes only `out[j]` for `j ∈ columns` of the step taken at
    /// absolute round `round`, leaving every other entry of `out` untouched.
    ///
    /// The contract is *bitwise per column*: each recomputed entry must equal
    /// what [`TransitionModel::propagate_round_into`] would have written
    /// there.  This is the sparse-correction hook of the delta-incremental
    /// ensemble advance ([`crate::ensemble::DistributionEnsemble::correct_columns`]):
    /// after a speculative advance under a stale operator, only the columns
    /// whose incoming mass could differ under the realized operator (see
    /// [`crate::delta::affected_columns`]) are recomputed, at `O(Σ deg(j))`
    /// instead of `O(n + m)`.
    ///
    /// The default recomputes the full round into a scratch buffer and
    /// copies the requested columns — always correct, never fast.  Backends
    /// with a per-column pull form override it (see
    /// [`TransitionMatrix`]'s implementation).
    ///
    /// # Panics
    ///
    /// Panics if `p`/`out` do not have length `n` or a column is out of
    /// range.
    fn propagate_round_columns(&self, round: usize, p: &[f64], out: &mut [f64], columns: &[usize]) {
        let n = self.node_count();
        assert_eq!(p.len(), n, "input distribution has wrong length");
        assert_eq!(out.len(), n, "output buffer has wrong length");
        let mut full = vec![0.0f64; n];
        self.propagate_round_into(round, p, &mut full);
        for &j in columns {
            out[j] = full[j];
        }
    }

    /// [`TransitionModel::propagate_round_columns`] over `rows` row-major
    /// concatenated distributions at once — the shape
    /// [`crate::ensemble::DistributionEnsemble::correct_columns`] calls with.
    ///
    /// The contract is the per-row one, row by row: each recomputed entry
    /// must be **bitwise** what the single-row form writes.  The default
    /// simply loops; sparse backends override it to walk each column's
    /// neighbour list *once* for the whole row block (accumulator blocking),
    /// which is what makes the sparse correction beat the dense advance at
    /// realistic tracked-row counts — the per-row form re-reads the CSR per
    /// row, the blocked form amortizes it across all of them.  Overrides
    /// keep every row's accumulation order identical to the per-row kernel
    /// (same source order, same expression shapes), so blocking never
    /// changes a bit.
    ///
    /// # Panics
    ///
    /// Panics if `prev`/`out` do not have length `rows * n` or a column is
    /// out of range.
    fn propagate_round_columns_rows(
        &self,
        round: usize,
        rows: usize,
        prev: &[f64],
        out: &mut [f64],
        columns: &[usize],
    ) {
        let n = self.node_count();
        assert_eq!(prev.len(), rows * n, "input block has wrong length");
        assert_eq!(out.len(), rows * n, "output block has wrong length");
        for (prev_row, out_row) in prev.chunks(n).zip(out.chunks_mut(n)) {
            self.propagate_round_columns(round, prev_row, out_row, columns);
        }
    }

    /// [`TransitionModel::propagate_round_columns_rows`] reading the
    /// pre-round state in **interleaved** layout: `prev_il[i * rows + r]`
    /// holds row `r`'s mass at node `i` (see
    /// [`crate::ensemble::interleave_rows`]), while `out` stays row-major.
    ///
    /// This is the cache shape of the delta runtime's critical path.  The
    /// correction's cost is dominated by gathering each source node's mass
    /// for every tracked row: row-major, those `rows` values sit on `rows`
    /// different cache lines; interleaved they are contiguous.  Producing
    /// `prev_il` is a streaming transpose that rides along with the
    /// speculative advance — *off* the critical path — so the correction
    /// keeps the locality without paying for it.
    ///
    /// Same bitwise contract as the row-major form: interleaving changes
    /// where a value is read from, never which value or in which order it
    /// is accumulated.  The default materializes the row-major block and
    /// delegates — correct, allocating, never fast; sparse backends
    /// override.
    ///
    /// # Panics
    ///
    /// Panics if `prev_il`/`out` do not have length `rows * n` or a column
    /// is out of range.
    fn propagate_round_columns_rows_interleaved(
        &self,
        round: usize,
        rows: usize,
        prev_il: &[f64],
        out: &mut [f64],
        columns: &[usize],
    ) {
        let n = self.node_count();
        assert_eq!(prev_il.len(), rows * n, "input block has wrong length");
        assert_eq!(out.len(), rows * n, "output block has wrong length");
        let mut prev = vec![0.0f64; rows * n];
        for i in 0..n {
            for r in 0..rows {
                prev[r * n + i] = prev_il[i * rows + r];
            }
        }
        self.propagate_round_columns_rows(round, rows, &prev, out, columns);
    }
}

/// A black-box transition backend defined by a closure.
///
/// This is the escape hatch for transition structures that are only
/// available as a simulator — time-varying graphs, availability-dependent
/// routing — which the paper lists as future work.  The closure receives the
/// current distribution and must write the next one; it is used through
/// [`TransitionModel`], so everything built on the ensemble kernel (exact
/// accounting, trajectory sweeps) works unchanged.
#[derive(Debug, Clone)]
pub struct BlackBoxModel<F> {
    node_count: usize,
    update: F,
}

impl<F: Fn(&[f64], &mut [f64])> BlackBoxModel<F> {
    /// Wraps `update` as a transition model over `node_count` nodes.
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] if `node_count == 0`.
    pub fn new(node_count: usize, update: F) -> Result<Self> {
        if node_count == 0 {
            return Err(GraphError::EmptyGraph);
        }
        Ok(BlackBoxModel { node_count, update })
    }
}

impl<F: Fn(&[f64], &mut [f64])> TransitionModel for BlackBoxModel<F> {
    fn node_count(&self) -> usize {
        self.node_count
    }

    fn propagate_into(&self, p: &[f64], out: &mut [f64]) {
        (self.update)(p, out);
    }
}

/// A sparse, implicit representation of the transition matrix of the simple
/// (optionally lazy) random walk on a graph.
#[derive(Debug, Clone)]
pub struct TransitionMatrix {
    /// Reciprocal degrees `1 / deg(i)`.
    inv_degree: Vec<f64>,
    /// Offsets/neighbors copied from the graph (borrowing would tie the
    /// matrix's lifetime to the graph; the copy is 2m + n words and keeps the
    /// API simple).
    offsets: Vec<usize>,
    neighbors: Vec<usize>,
    /// Probability of staying put in one round (0 for the simple walk).
    laziness: f64,
}

impl TransitionMatrix {
    /// Builds the transition matrix of the simple random walk on `graph`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::EmptyGraph`] if the graph has no nodes.
    /// * [`GraphError::IsolatedNode`] if some node has degree zero.
    pub fn new(graph: &Graph) -> Result<Self> {
        Self::with_laziness(graph, 0.0)
    }

    /// Builds the transition matrix of a lazy random walk that stays at the
    /// current node with probability `laziness` and otherwise moves to a
    /// uniformly random neighbour.
    ///
    /// Laziness models temporarily unavailable users (Section 4.5) and also
    /// restores ergodicity on bipartite graphs.
    ///
    /// # Errors
    ///
    /// Same as [`TransitionMatrix::new`], plus
    /// [`GraphError::InvalidParameters`] if `laziness` is outside `[0, 1)`.
    pub fn with_laziness(graph: &Graph, laziness: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&laziness) {
            return Err(GraphError::InvalidParameters(format!(
                "laziness must be in [0, 1), got {laziness}"
            )));
        }
        let n = graph.node_count();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if let Some(u) = graph.find_isolated_node() {
            return Err(GraphError::IsolatedNode(u));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0usize);
        for u in graph.nodes() {
            neighbors.extend(graph.neighbors(u).iter().map(|&v| v as usize));
            offsets.push(neighbors.len());
        }
        let inv_degree = graph
            .nodes()
            .map(|u| 1.0 / graph.degree(u) as f64)
            .collect();
        Ok(TransitionMatrix {
            inv_degree,
            offsets,
            neighbors,
            laziness,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.inv_degree.len()
    }

    /// The laziness (self-loop probability) of the walk.
    pub fn laziness(&self) -> f64 {
        self.laziness
    }

    /// Transition probability `Pr[next = j | current = i]`.
    pub fn probability(&self, i: usize, j: usize) -> f64 {
        let stay = if i == j { self.laziness } else { 0.0 };
        let nbrs = &self.neighbors[self.offsets[i]..self.offsets[i + 1]];
        let move_mass = if nbrs.binary_search(&j).is_ok() {
            (1.0 - self.laziness) * self.inv_degree[i]
        } else {
            0.0
        };
        stay + move_mass
    }

    /// One step of the distribution update: returns `P(t+1) = Mᵀ P(t)`.
    ///
    /// The output is allocated; use [`TransitionMatrix::propagate_into`] to
    /// reuse buffers in hot loops.
    pub fn propagate(&self, p: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; p.len()];
        self.propagate_into(p, &mut out);
        out
    }

    /// One step of the distribution update writing into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `out` do not have length `n`.
    pub fn propagate_into(&self, p: &[f64], out: &mut [f64]) {
        let n = self.node_count();
        assert_eq!(p.len(), n, "input distribution has wrong length");
        assert_eq!(out.len(), n, "output buffer has wrong length");
        let move_factor = 1.0 - self.laziness;
        for x in out.iter_mut() {
            *x = 0.0;
        }
        // Scatter: node i sends (1-laziness) * P_i / deg(i) to each neighbour
        // and keeps laziness * P_i.
        for i in 0..n {
            let mass = p[i];
            if mass == 0.0 {
                continue;
            }
            out[i] += self.laziness * mass;
            let share = move_factor * mass * self.inv_degree[i];
            for &j in &self.neighbors[self.offsets[i]..self.offsets[i + 1]] {
                out[j] += share;
            }
        }
    }

    /// One step applied to `lanes` interleaved distributions
    /// (`input[i * lanes + l]` is entry `i` of lane `l`) in a single fused
    /// sweep of the CSR structure.
    ///
    /// This is the hot kernel behind [`crate::ensemble::DistributionEnsemble`]:
    /// the offsets/neighbour arrays — the dominant memory traffic of
    /// [`TransitionMatrix::propagate_into`] — are streamed once per *block*
    /// of lanes instead of once per distribution, and every delivered share
    /// updates `lanes` adjacent f64s (one cache line for 8 lanes) instead of
    /// a single scattered one.  Lane `l`'s result is bit-for-bit identical to
    /// `propagate_into` applied to lane `l` alone: the per-node and
    /// per-neighbour iteration order, and the rounding of every intermediate,
    /// are the same.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `output` do not have length `lanes * n`.
    pub fn propagate_interleaved(&self, lanes: usize, input: &[f64], output: &mut [f64]) {
        let n = self.node_count();
        assert_eq!(input.len(), lanes * n, "interleaved input has wrong length");
        assert_eq!(
            output.len(),
            lanes * n,
            "interleaved output has wrong length"
        );
        // Dispatch to a compile-time lane width where possible: the per-edge
        // inner loop is the hottest code in the crate, and a fixed trip
        // count lets the compiler unroll and vectorize it (8 lanes of f64 =
        // one cache line per delivered share).  The arithmetic is identical
        // in every arm.
        match lanes {
            // Degenerate block: the interleaved layout *is* the row layout.
            1 => self.propagate_into(input, output),
            2 => self.propagate_fixed::<2>(input, output),
            4 => self.propagate_fixed::<4>(input, output),
            8 => {
                #[cfg(target_arch = "x86_64")]
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: the AVX2 requirement was just checked.
                    #[allow(unsafe_code)]
                    unsafe {
                        self.propagate_gather8_avx2(input, output);
                    }
                    return;
                }
                self.propagate_fixed::<8>(input, output)
            }
            _ => self.propagate_dyn(lanes, input, output),
        }
    }

    /// AVX2 instantiation of the 8-lane gather kernel.
    ///
    /// Emits exactly the scalar kernel's arithmetic — per lane, each edge
    /// contributes `(move_factor · mass) · inv_degree` via two `vmulpd`s
    /// and one `vaddpd`, never an FMA — so results stay bitwise identical
    /// to [`TransitionMatrix::propagate_fixed`] and hence to
    /// [`TransitionMatrix::propagate_into`]; only the instruction-level
    /// parallelism changes (two independent 4-lane accumulator chains).
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    #[allow(unsafe_code)]
    unsafe fn propagate_gather8_avx2(&self, input: &[f64], output: &mut [f64]) {
        use std::arch::x86_64::*;
        const L: usize = 8;
        const PREFETCH_DISTANCE: usize = 8;
        let n = self.node_count();
        let move_factor = _mm256_set1_pd(1.0 - self.laziness);
        let laziness = _mm256_set1_pd(self.laziness);
        let in_ptr = input.as_ptr();
        let out_ptr = output.as_mut_ptr();
        let edge_count = self.neighbors.len();
        for j in 0..n {
            let base = j * L;
            let in_j0 = _mm256_loadu_pd(in_ptr.add(base));
            let in_j1 = _mm256_loadu_pd(in_ptr.add(base + 4));
            let mut acc0 = _mm256_setzero_pd();
            let mut acc1 = _mm256_setzero_pd();
            let mut lazy_pending = true;
            for idx in *self.offsets.get_unchecked(j)..*self.offsets.get_unchecked(j + 1) {
                if idx + PREFETCH_DISTANCE < edge_count {
                    let ahead = *self.neighbors.get_unchecked(idx + PREFETCH_DISTANCE);
                    _mm_prefetch(in_ptr.add(ahead * L) as *const i8, _MM_HINT_T0);
                }
                let i = *self.neighbors.get_unchecked(idx);
                if lazy_pending && i > j {
                    acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(laziness, in_j0));
                    acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(laziness, in_j1));
                    lazy_pending = false;
                }
                let inv_degree = _mm256_set1_pd(*self.inv_degree.get_unchecked(i));
                let ib = i * L;
                let v0 = _mm256_loadu_pd(in_ptr.add(ib));
                let v1 = _mm256_loadu_pd(in_ptr.add(ib + 4));
                acc0 = _mm256_add_pd(
                    acc0,
                    _mm256_mul_pd(_mm256_mul_pd(move_factor, v0), inv_degree),
                );
                acc1 = _mm256_add_pd(
                    acc1,
                    _mm256_mul_pd(_mm256_mul_pd(move_factor, v1), inv_degree),
                );
            }
            if lazy_pending {
                acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(laziness, in_j0));
                acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(laziness, in_j1));
            }
            _mm256_storeu_pd(out_ptr.add(base), acc0);
            _mm256_storeu_pd(out_ptr.add(base + 4), acc1);
        }
    }

    /// Fixed-lane-width body of [`TransitionMatrix::propagate_interleaved`].
    ///
    /// The kernel is *pull*-based: instead of scattering each node's share
    /// to its neighbours (a random read-for-ownership per edge, whose miss
    /// latency serializes the loop), each destination row gathers
    /// `move_factor · mass_i · inv_deg_i` from its sorted neighbour list
    /// and accumulates in registers, writing each output line exactly once.
    /// Random memory traffic becomes plain reads, which the core can keep
    /// many of in flight (helped along by an explicit prefetch a few edges
    /// ahead).
    ///
    /// Bit parity with [`TransitionMatrix::propagate_into`] per lane:
    /// the push form accumulates `out[j]` in ascending source order over
    /// one sweep (`i = 0..n`), the lazy self-term landing when the sweep
    /// passes `i = j`.  Neighbour lists are sorted ascending, so gathering
    /// in list order and folding the self-term in at the first neighbour
    /// `> j` reproduces that sequence of adds — and its roundings — exactly
    /// (contributions from zero-mass sources, which the push form skips,
    /// add `±0.0`, which never changes a non-negative accumulation).
    ///
    /// This is the one stretch of `unsafe` in the crate: the per-edge loads
    /// go through raw pointers because checked indexing costs more than the
    /// arithmetic.  It relies on construction invariants — every neighbour
    /// id is `< n`, `inv_degree` has `n` entries, and the dispatcher
    /// asserted both buffers hold `n * L` f64s.
    #[allow(unsafe_code)]
    fn propagate_fixed<const L: usize>(&self, input: &[f64], output: &mut [f64]) {
        /// How many edges ahead source lines are prefetched.
        const PREFETCH_DISTANCE: usize = 8;
        let n = self.node_count();
        let move_factor = 1.0 - self.laziness;
        let in_ptr = input.as_ptr();
        let edge_count = self.neighbors.len();
        for j in 0..n {
            let base = j * L;
            let in_j: &[f64; L] = input[base..base + L].try_into().expect("lane width");
            let mut acc = [0.0f64; L];
            let mut lazy_pending = true;
            for idx in self.offsets[j]..self.offsets[j + 1] {
                // SAFETY: see the function docs; `idx` stays inside node
                // `j`'s CSR window, every neighbour id is `< n`, and the
                // prefetch look-ahead is bounds-checked explicitly.
                unsafe {
                    #[cfg(target_arch = "x86_64")]
                    if idx + PREFETCH_DISTANCE < edge_count {
                        let ahead = *self.neighbors.get_unchecked(idx + PREFETCH_DISTANCE);
                        std::arch::x86_64::_mm_prefetch(
                            in_ptr.add(ahead * L) as *const i8,
                            std::arch::x86_64::_MM_HINT_T0,
                        );
                    }
                    let i = *self.neighbors.get_unchecked(idx);
                    if lazy_pending && i > j {
                        for lane in 0..L {
                            acc[lane] += self.laziness * in_j[lane];
                        }
                        lazy_pending = false;
                    }
                    let inv_degree = *self.inv_degree.get_unchecked(i);
                    let in_i = in_ptr.add(i * L);
                    for (lane, acc_lane) in acc.iter_mut().enumerate() {
                        *acc_lane += move_factor * *in_i.add(lane) * inv_degree;
                    }
                }
            }
            if lazy_pending {
                for lane in 0..L {
                    acc[lane] += self.laziness * in_j[lane];
                }
            }
            let out_j: &mut [f64; L] = (&mut output[base..base + L]).try_into().expect("lane");
            *out_j = acc;
        }
    }

    /// Runtime-lane-width fallback (ragged tail blocks).
    fn propagate_dyn(&self, lanes: usize, input: &[f64], output: &mut [f64]) {
        let n = self.node_count();
        let move_factor = 1.0 - self.laziness;
        output.fill(0.0);
        let mut share = vec![0.0f64; lanes];
        for i in 0..n {
            let base = i * lanes;
            let inv_degree = self.inv_degree[i];
            {
                let in_i = &input[base..base + lanes];
                let out_i = &mut output[base..base + lanes];
                for lane in 0..lanes {
                    let mass = in_i[lane];
                    out_i[lane] += self.laziness * mass;
                    share[lane] = move_factor * mass * inv_degree;
                }
            }
            for &j in &self.neighbors[self.offsets[i]..self.offsets[i + 1]] {
                let out_j = &mut output[j * lanes..j * lanes + lanes];
                for (out, &s) in out_j.iter_mut().zip(share.iter()) {
                    *out += s;
                }
            }
        }
    }

    /// Evolves a distribution for `steps` rounds, returning `P(t)`.
    pub fn evolve(&self, p0: &[f64], steps: usize) -> Vec<f64> {
        let mut current = p0.to_vec();
        let mut scratch = vec![0.0; p0.len()];
        for _ in 0..steps {
            self.propagate_into(&current, &mut scratch);
            std::mem::swap(&mut current, &mut scratch);
        }
        current
    }
}

impl TransitionModel for TransitionMatrix {
    fn node_count(&self) -> usize {
        TransitionMatrix::node_count(self)
    }

    fn propagate_into(&self, p: &[f64], out: &mut [f64]) {
        TransitionMatrix::propagate_into(self, p, out);
    }

    fn propagate_interleaved(&self, lanes: usize, input: &[f64], output: &mut [f64]) {
        TransitionMatrix::propagate_interleaved(self, lanes, input, output);
    }

    /// Pull-form per-column recompute, bitwise identical to the scatter
    /// sweep of [`TransitionMatrix::propagate_into`]: column `j` gathers
    /// `move_factor · P_i · inv_deg(i)` from its sorted neighbour list with
    /// the lazy self-term folded in at the first neighbour `> j` — the same
    /// parity argument as `TransitionMatrix::propagate_fixed`
    /// (contributions from zero-mass sources, which the scatter form skips,
    /// add `±0.0`, which never changes a non-negative accumulation).
    fn propagate_round_columns(
        &self,
        _round: usize,
        p: &[f64],
        out: &mut [f64],
        columns: &[usize],
    ) {
        let n = self.node_count();
        assert_eq!(p.len(), n, "input distribution has wrong length");
        assert_eq!(out.len(), n, "output buffer has wrong length");
        let move_factor = 1.0 - self.laziness;
        for &j in columns {
            let lazy = self.laziness * p[j];
            let mut acc = 0.0f64;
            let mut lazy_pending = true;
            for &i in &self.neighbors[self.offsets[j]..self.offsets[j + 1]] {
                if lazy_pending && i > j {
                    acc += lazy;
                    lazy_pending = false;
                }
                acc += move_factor * p[i] * self.inv_degree[i];
            }
            if lazy_pending {
                acc += lazy;
            }
            out[j] = acc;
        }
    }

    /// Accumulator-blocked form of the per-column pull: each column's
    /// neighbour list is walked once for up to 8 rows at a time, every row
    /// evaluating exactly the per-row kernel's expressions in exactly its
    /// order — bitwise the per-row result, at a fraction of the CSR
    /// traffic.
    fn propagate_round_columns_rows(
        &self,
        _round: usize,
        rows: usize,
        prev: &[f64],
        out: &mut [f64],
        columns: &[usize],
    ) {
        let n = self.node_count();
        assert_eq!(prev.len(), rows * n, "input block has wrong length");
        assert_eq!(out.len(), rows * n, "output block has wrong length");
        let move_factor = 1.0 - self.laziness;
        const BLOCK: usize = 8;
        let mut base = 0;
        while base < rows {
            let b = BLOCK.min(rows - base);
            let prev_block = &prev[base * n..(base + b) * n];
            let out_block = &mut out[base * n..(base + b) * n];
            for &j in columns {
                let mut acc = [0.0f64; BLOCK];
                let mut lazy_pending = true;
                for &i in &self.neighbors[self.offsets[j]..self.offsets[j + 1]] {
                    if lazy_pending && i > j {
                        for (r, a) in acc.iter_mut().enumerate().take(b) {
                            *a += self.laziness * prev_block[r * n + j];
                        }
                        lazy_pending = false;
                    }
                    for (r, a) in acc.iter_mut().enumerate().take(b) {
                        *a += move_factor * prev_block[r * n + i] * self.inv_degree[i];
                    }
                }
                if lazy_pending {
                    for (r, a) in acc.iter_mut().enumerate().take(b) {
                        *a += self.laziness * prev_block[r * n + j];
                    }
                }
                for (r, &a) in acc.iter().enumerate().take(b) {
                    out_block[r * n + j] = a;
                }
            }
            base += BLOCK;
        }
    }

    fn propagate_round_columns_rows_interleaved(
        &self,
        _round: usize,
        rows: usize,
        prev_il: &[f64],
        out: &mut [f64],
        columns: &[usize],
    ) {
        let n = self.node_count();
        assert_eq!(prev_il.len(), rows * n, "input block has wrong length");
        assert_eq!(out.len(), rows * n, "output block has wrong length");
        let move_factor = 1.0 - self.laziness;
        const BLOCK: usize = 8;
        let mut base = 0;
        while base < rows {
            let b = BLOCK.min(rows - base);
            let out_block = &mut out[base * n..(base + b) * n];
            for &j in columns {
                let mut acc = [0.0f64; BLOCK];
                let mut lazy_pending = true;
                let stay = &prev_il[j * rows + base..j * rows + base + b];
                for &i in &self.neighbors[self.offsets[j]..self.offsets[j + 1]] {
                    if lazy_pending && i > j {
                        for (r, a) in acc.iter_mut().enumerate().take(b) {
                            *a += self.laziness * stay[r];
                        }
                        lazy_pending = false;
                    }
                    let src = &prev_il[i * rows + base..i * rows + base + b];
                    for (r, a) in acc.iter_mut().enumerate().take(b) {
                        *a += move_factor * src[r] * self.inv_degree[i];
                    }
                }
                if lazy_pending {
                    for (r, a) in acc.iter_mut().enumerate().take(b) {
                        *a += self.laziness * stay[r];
                    }
                }
                for (r, &a) in acc.iter().enumerate().take(b) {
                    out_block[r * n + j] = a;
                }
            }
            base += BLOCK;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn probabilities_of_simple_walk_on_path() {
        let g = generators::path(3).unwrap(); // 0-1-2
        let m = TransitionMatrix::new(&g).unwrap();
        assert!((m.probability(0, 1) - 1.0).abs() < 1e-12);
        assert!((m.probability(1, 0) - 0.5).abs() < 1e-12);
        assert!((m.probability(1, 2) - 0.5).abs() < 1e-12);
        assert!((m.probability(0, 2) - 0.0).abs() < 1e-12);
        assert!((m.probability(0, 0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn lazy_walk_probabilities() {
        let g = generators::path(3).unwrap();
        let m = TransitionMatrix::with_laziness(&g, 0.5).unwrap();
        assert!((m.probability(1, 1) - 0.5).abs() < 1e-12);
        assert!((m.probability(1, 0) - 0.25).abs() < 1e-12);
        assert!((m.probability(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn propagate_preserves_probability_mass() {
        let g = generators::star(6).unwrap();
        let m = TransitionMatrix::new(&g).unwrap();
        let mut p = vec![0.0; 6];
        p[2] = 0.7;
        p[5] = 0.3;
        let q = m.propagate(&p);
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(q.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn point_mass_on_star_leaf_moves_to_hub() {
        let g = generators::star(4).unwrap();
        let m = TransitionMatrix::new(&g).unwrap();
        let mut p = vec![0.0; 4];
        p[1] = 1.0; // a leaf
        let q = m.propagate(&p);
        assert!((q[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evolve_converges_towards_stationary_on_odd_cycle() {
        let g = generators::cycle(5).unwrap();
        let m = TransitionMatrix::new(&g).unwrap();
        let mut p0 = vec![0.0; 5];
        p0[0] = 1.0;
        let p = m.evolve(&p0, 500);
        for &x in &p {
            assert!((x - 0.2).abs() < 1e-6);
        }
    }

    #[test]
    fn lazy_walk_mixes_on_bipartite_graph() {
        let g = generators::cycle(4).unwrap();
        let lazy = TransitionMatrix::with_laziness(&g, 0.5).unwrap();
        let mut p0 = vec![0.0; 4];
        p0[0] = 1.0;
        let p = lazy.evolve(&p0, 300);
        for &x in &p {
            assert!((x - 0.25).abs() < 1e-6);
        }
        // The non-lazy walk oscillates and never mixes.
        let simple = TransitionMatrix::new(&g).unwrap();
        let q = simple.evolve(&p0, 300);
        assert!((q[0] - 0.5).abs() < 1e-9);
        assert!((q[1] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_invalid_laziness_and_degenerate_graphs() {
        let g = generators::path(3).unwrap();
        assert!(TransitionMatrix::with_laziness(&g, 1.0).is_err());
        assert!(TransitionMatrix::with_laziness(&g, -0.1).is_err());
        assert!(TransitionMatrix::new(&Graph::from_edges(0, &[]).unwrap()).is_err());
        assert!(TransitionMatrix::new(&Graph::from_edges(2, &[]).unwrap()).is_err());
    }
}
