//! Integration tests for the churn runtime: static-schedule degeneracy,
//! feature-config determinism, and the dropout-vs-laziness parity the paper
//! asserts.
//!
//! Acceptance contract of the time-varying refactor:
//!
//! * a [`TimeVaryingModel`] with a constant schedule reproduces the static
//!   [`TransitionMatrix`] ensemble results **bitwise**, sequential and
//!   parallel (the root test target builds ns-graph with the `parallel`
//!   feature, so both paths are exercised in every configuration);
//! * the engine's masked rounds with a fully-available mask are **bitwise**
//!   the static rounds (RNG stream included), so the churn protocol path
//!   degenerates to the classic one exactly;
//! * i.i.d. dropout simulated through the engine matches the equivalent
//!   lazy walk's moment trajectory within sampling tolerance — the
//!   laziness-equivalence that justifies `DropoutModel::as_laziness`.

mod common;

use common::strategies;
use network_shuffle::prelude::*;
use ns_graph::distribution::PositionDistribution;
use ns_graph::dynamic::{DynTransition, TimeVaryingModel};
use ns_graph::ensemble::DistributionEnsemble;
use ns_graph::mixing_engine::MixingEngine;
use ns_graph::rng::seeded_rng;
use ns_graph::transition::TransitionMatrix;
use proptest::prelude::*;
use std::sync::Arc;

/// Constant schedules degenerate to the static matrix bitwise, through the
/// sequential *and* the block-parallel ensemble drivers.
#[test]
fn constant_schedule_is_bitwise_static_sequential_and_parallel() {
    let g = ns_graph::generators::barabasi_albert(300, 3, &mut seeded_rng(1)).unwrap();
    let matrix = TransitionMatrix::with_laziness(&g, 0.2).unwrap();
    let schedule = TimeVaryingModel::constant(Arc::new(matrix.clone())).unwrap();
    let origins: Vec<usize> = (0..300).step_by(2).collect();
    let rounds = 12;

    let mut static_seq = DistributionEnsemble::point_masses(300, &origins).unwrap();
    let static_trajectory = static_seq.advance_tracked(&matrix, rounds);
    let mut scheduled_seq = DistributionEnsemble::point_masses(300, &origins).unwrap();
    let scheduled_trajectory = scheduled_seq.advance_tracked(&schedule, rounds);
    assert_eq!(static_seq, scheduled_seq);
    assert_eq!(static_trajectory, scheduled_trajectory);

    let mut scheduled_par = DistributionEnsemble::point_masses(300, &origins).unwrap();
    let parallel_trajectory = scheduled_par.advance_tracked_parallel(&schedule, rounds);
    assert_eq!(static_seq, scheduled_par);
    assert_eq!(static_trajectory, parallel_trajectory);
}

/// The masked engine path with everyone available reproduces the classic
/// protocol run bit for bit — submissions, origins, dummies and traffic
/// metrics — including with intrinsic laziness (the "schedule degenerates
/// to static" case of the dropout parity).
#[test]
fn fully_available_outages_reproduce_the_classic_protocol_bitwise() {
    let g = ns_graph::generators::random_regular(80, 5, &mut seeded_rng(2)).unwrap();
    let schedule = OutageSchedule::fully_available(80, 14).unwrap();
    for (protocol, laziness) in [
        (ProtocolKind::All, 0.0),
        (ProtocolKind::All, 0.3),
        (ProtocolKind::Single, 0.0),
        (ProtocolKind::Single, 0.3),
    ] {
        let config = SimulationConfig {
            rounds: 14,
            laziness,
            protocol,
            seed: 99,
        };
        let payloads: Vec<u32> = (0..80).collect();
        let classic = run_protocol(&g, payloads.clone(), config, |_| 7).unwrap();
        let churn = run_protocol_under_outages(&g, payloads, config, &schedule, |_| 7).unwrap();
        let view = |o: &SimulationOutcome<u32>| {
            o.collected
                .reports_with_submitter()
                .map(|(s, r)| (s, r.origin, r.is_dummy, r.payload))
                .collect::<Vec<_>>()
        };
        assert_eq!(view(&classic), view(&churn));
        assert_eq!(classic.metrics, churn.metrics);
    }
}

/// Statistical parity for `DropoutModel`: a report walked through the
/// engine under realized i.i.d. dropout masks has the same per-round moment
/// trajectory as the equivalent lazy walk, within Monte-Carlo tolerance.
#[test]
fn iid_dropout_through_the_engine_matches_the_lazy_walk_moments() {
    let n = 100;
    let g = ns_graph::generators::random_regular(n, 6, &mut seeded_rng(3)).unwrap();
    let dropout = DropoutModel::new(0.35).unwrap();
    let rounds = 6;
    let origin = 17;
    let trials = 3_000;

    // Empirical per-round distribution of one report's position across
    // trials, each trial with fresh i.i.d. availability masks and no
    // intrinsic laziness (all staying comes from failed deliveries).
    let outage = dropout.outage_model();
    let mut counts = vec![vec![0u32; n]; rounds];
    for trial in 0..trials {
        let schedule = outage
            .sample_schedule(n, rounds, 1_000 + trial as u64)
            .unwrap();
        let mut engine = MixingEngine::with_starts(&g, vec![origin]).unwrap();
        let mut rng = seeded_rng(500_000 + trial as u64);
        for (t, round_counts) in counts.iter_mut().enumerate() {
            engine.step_masked(0.0, schedule.mask(t), &mut rng);
            round_counts[engine.position(0)] += 1;
        }
    }

    // Exact trajectory of the equivalent lazy walk.
    let lazy = TransitionMatrix::with_laziness(&g, dropout.as_laziness()).unwrap();
    let mut exact = PositionDistribution::point_mass(n, origin).unwrap();
    for (t, round_counts) in counts.iter().enumerate() {
        exact.step(&lazy);
        let empirical: Vec<f64> = round_counts
            .iter()
            .map(|&c| c as f64 / trials as f64)
            .collect();
        // Total-variation distance of the realized distribution (the
        // un-halved L1 of Definition 4.4)…
        let tv = exact.tv_distance(&empirical);
        assert!(tv < 0.25, "round {}: TV distance {tv}", t + 1);
        // …and the accounting moment itself.
        let empirical_sum_sq: f64 = empirical.iter().map(|p| p * p).sum();
        let exact_sum_sq = exact.sum_of_squares();
        assert!(
            (empirical_sum_sq - exact_sum_sq).abs() / exact_sum_sq < 0.2,
            "round {}: empirical sum of squares {empirical_sum_sq} vs exact {exact_sum_sq}",
            t + 1
        );
    }
    // And the exact accountant agrees: the masked-operator expectation
    // argument means the i.i.d. schedule's *average* operator is the lazy
    // walk, so after several rounds the lazy trajectory must have left the
    // point mass far behind (sanity that the walk actually mixed here).
    assert!(exact.sum_of_squares() < 0.15);
}

/// The laziness equivalence is an expectation over masks, and the exact
/// operator algebra shows it directly: averaging `MaskedTransition` over
/// many i.i.d. masks converges to the lazy matrix row by row.
#[test]
fn averaged_masked_operators_converge_to_the_lazy_matrix() {
    let n = 60;
    let g = ns_graph::generators::random_regular(n, 4, &mut seeded_rng(4)).unwrap();
    let q = 0.3;
    let lazy = TransitionMatrix::with_laziness(&g, q).unwrap();
    let trials = 2_000;
    let mut rng = seeded_rng(5);
    use rand::Rng;
    let p: Vec<f64> = {
        // A fixed non-degenerate input distribution.
        let mut v = vec![0.0; n];
        v[0] = 0.5;
        v[n / 2] = 0.25;
        v[n - 1] = 0.25;
        v
    };
    let mut mean = vec![0.0f64; n];
    let mut out = vec![0.0f64; n];
    for _ in 0..trials {
        let mask: Vec<bool> = (0..n).map(|_| rng.gen::<f64>() >= q).collect();
        let masked = ns_graph::dynamic::MaskedTransition::new(&g, mask, 0.0).unwrap();
        ns_graph::transition::TransitionModel::propagate_into(&masked, &p, &mut out);
        for (m, &o) in mean.iter_mut().zip(out.iter()) {
            *m += o;
        }
    }
    for m in mean.iter_mut() {
        *m /= trials as f64;
    }
    let expected = lazy.propagate(&p);
    let l1: f64 = mean
        .iter()
        .zip(expected.iter())
        .map(|(a, b)| (a - b).abs())
        .sum();
    assert!(l1 < 0.05, "operator expectation L1 gap {l1}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Scheduled ensembles are deterministic across the sequential and
    /// block-parallel drivers for *genuinely time-varying* schedules too:
    /// distinct per-round masked operators on graphs from every strategy
    /// family must produce bitwise-identical results regardless of the
    /// dispatch path (and hence of the feature configuration).
    #[test]
    fn scheduled_ensembles_are_bitwise_deterministic_across_drivers(
        graph in strategies::graph_zoo(40..160),
        rounds in 1usize..10,
        dark_stride in 2usize..6,
        laziness_pct in 0usize..50,
    ) {
        let n = graph.node_count();
        prop_assume!(n >= 8);
        prop_assume!(graph.find_isolated_node().is_none());
        let laziness = laziness_pct as f64 / 100.0;
        // A schedule of distinct masks: round t blacks out every
        // (dark_stride + t)-th node.
        let masks: Vec<Vec<bool>> = (0..rounds)
            .map(|t| {
                (0..n)
                    .map(|u| u % (dark_stride + t) != 0)
                    .collect()
            })
            .collect();
        let model = TimeVaryingModel::from_availability(&graph, laziness, &masks).unwrap();
        let origins: Vec<usize> = (0..n).step_by(3).collect();
        let mut sequential = DistributionEnsemble::point_masses(n, &origins).unwrap();
        let seq_trajectory = sequential.advance_tracked(&model, rounds);
        let mut parallel = DistributionEnsemble::point_masses(n, &origins).unwrap();
        let par_trajectory = parallel.advance_tracked_parallel(&model, rounds);
        prop_assert_eq!(&sequential, &parallel);
        prop_assert_eq!(&seq_trajectory, &par_trajectory);
        // Mass stays conserved through the whole scheduled product.
        for row in 0..sequential.sources() {
            let sum: f64 = sequential.row(row).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}

/// End-to-end: an accountant with an attached cycled day/night schedule
/// quotes a worse (or equal) exact guarantee than the static walk at the
/// same budget, and the scheduled run stays deterministic.
#[test]
fn scheduled_accounting_is_deterministic_and_dominated_by_outages() {
    let g = ns_graph::generators::random_regular(150, 4, &mut seeded_rng(6)).unwrap();
    let accountant = NetworkShuffleAccountant::new(&g).unwrap();
    let mut night = vec![true; 150];
    for slot in night.iter_mut().take(50) {
        *slot = false;
    }
    let day_op = ns_graph::dynamic::MaskedTransition::new(&g, vec![true; 150], 0.0).unwrap();
    let night_op = ns_graph::dynamic::MaskedTransition::new(&g, night, 0.0).unwrap();
    let schedule = TimeVaryingModel::cycling(vec![
        Arc::new(day_op) as DynTransition,
        Arc::new(night_op) as DynTransition,
    ])
    .unwrap();
    let churned = accountant.clone().with_schedule(schedule).unwrap();
    let params = AccountantParams::with_defaults(150, 1.0).unwrap();
    let rounds = 10;
    let static_eps = accountant
        .central_guarantee(ProtocolKind::Single, Scenario::Exact, &params, rounds)
        .unwrap()
        .epsilon;
    let churn_eps = churned
        .central_guarantee(ProtocolKind::Single, Scenario::Exact, &params, rounds)
        .unwrap()
        .epsilon;
    assert!(churn_eps >= static_eps);
    // Determinism of the scheduled exact sweep.
    let sweep_a = churned
        .epsilon_vs_rounds(ProtocolKind::Single, Scenario::Exact, &params, rounds)
        .unwrap();
    let sweep_b = churned
        .epsilon_vs_rounds(ProtocolKind::Single, Scenario::Exact, &params, rounds)
        .unwrap();
    assert_eq!(sweep_a, sweep_b);
    assert_eq!(sweep_a.last().unwrap().1, churn_eps);
}
