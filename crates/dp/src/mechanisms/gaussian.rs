//! The Gaussian mechanism for bounded scalar values (approximate DP).
//!
//! The Gaussian mechanism only satisfies `(ε, δ)`-DP with `δ > 0`, so it is
//! the natural fixture for exercising the approximate-DP branches of the
//! paper's theorems (the corollaries of Theorems 5.3–5.6 that route through
//! Lemma 5.2).  The classical calibration `σ = Δ √(2 ln(1.25/δ)) / ε`
//! (valid for ε ≤ 1) is used.

use crate::randomizer::LocalRandomizer;
use crate::types::{validate_delta, validate_positive_epsilon, DpError, PrivacyGuarantee, Result};
use rand::Rng;

/// Gaussian local randomizer over the interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gaussian {
    lo: f64,
    hi: f64,
    epsilon: f64,
    delta: f64,
    sigma: f64,
}

impl Gaussian {
    /// Creates a Gaussian mechanism clamping inputs to `[lo, hi]` with
    /// guarantee `(epsilon, delta)`.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidParameters`] for an empty/unbounded interval or
    /// `epsilon > 1` (where the classical calibration is not valid);
    /// [`DpError::InvalidEpsilon`] / [`DpError::InvalidDelta`] for
    /// out-of-range privacy parameters.
    pub fn new(lo: f64, hi: f64, epsilon: f64, delta: f64) -> Result<Self> {
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Err(DpError::InvalidParameters(format!(
                "invalid interval [{lo}, {hi}]: must be finite with hi > lo"
            )));
        }
        let epsilon = validate_positive_epsilon(epsilon)?;
        if epsilon > 1.0 {
            return Err(DpError::InvalidParameters(format!(
                "classical Gaussian calibration requires epsilon <= 1, got {epsilon}"
            )));
        }
        let delta = validate_delta(delta)?;
        let sensitivity = hi - lo;
        let sigma = sensitivity * (2.0 * (1.25 / delta).ln()).sqrt() / epsilon;
        Ok(Gaussian {
            lo,
            hi,
            epsilon,
            delta,
            sigma,
        })
    }

    /// The noise standard deviation σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws one standard-normal sample via the Box–Muller transform.
    fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }
}

impl LocalRandomizer for Gaussian {
    type Input = f64;
    type Output = f64;

    fn randomize<R: Rng + ?Sized>(&self, input: &f64, rng: &mut R) -> Result<f64> {
        if !input.is_finite() {
            return Err(DpError::DomainViolation(format!(
                "input {input} is not finite"
            )));
        }
        let clamped = input.clamp(self.lo, self.hi);
        Ok(clamped + self.sigma * Self::sample_standard_normal(rng))
    }

    fn guarantee(&self) -> PrivacyGuarantee {
        PrivacyGuarantee::new(self.epsilon, self.delta).expect("validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn construction_validates_parameters() {
        assert!(Gaussian::new(0.0, 1.0, 0.5, 1e-6).is_ok());
        assert!(Gaussian::new(0.0, 1.0, 1.5, 1e-6).is_err());
        assert!(Gaussian::new(0.0, 1.0, 0.5, 0.0).is_err());
        assert!(Gaussian::new(1.0, 0.0, 0.5, 1e-6).is_err());
        assert!(Gaussian::new(0.0, 1.0, 0.0, 1e-6).is_err());
    }

    #[test]
    fn sigma_matches_classical_calibration() {
        let g = Gaussian::new(0.0, 1.0, 0.5, 1e-5).unwrap();
        let expected = (2.0 * (1.25e5f64).ln()).sqrt() / 0.5;
        assert!((g.sigma() - expected).abs() < 1e-9);
    }

    #[test]
    fn noise_is_unbiased_with_declared_variance() {
        let g = Gaussian::new(0.0, 1.0, 1.0, 1e-4).unwrap();
        let mut rng = seeded_rng(5);
        let trials = 50_000;
        let samples: Vec<f64> = (0..trials)
            .map(|_| g.randomize(&0.3, &mut rng).unwrap())
            .collect();
        let mean = samples.iter().sum::<f64>() / trials as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / trials as f64;
        assert!((mean - 0.3).abs() < 0.1, "mean = {mean}");
        let expected_var = g.sigma() * g.sigma();
        assert!(
            (var / expected_var - 1.0).abs() < 0.05,
            "var ratio = {}",
            var / expected_var
        );
    }

    #[test]
    fn guarantee_is_approximate() {
        let g = Gaussian::new(-1.0, 1.0, 0.8, 1e-6).unwrap();
        let guarantee = g.guarantee();
        assert!(!guarantee.is_pure());
        assert!((guarantee.epsilon - 0.8).abs() < 1e-12);
        assert!((guarantee.delta - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn rejects_non_finite_input() {
        let g = Gaussian::new(0.0, 1.0, 0.5, 1e-6).unwrap();
        let mut rng = seeded_rng(6);
        assert!(g.randomize(&f64::INFINITY, &mut rng).is_err());
    }
}
