//! The crash-recoverable coordinator: WAL-before-state over
//! [`ShuffleCoordinator`].
//!
//! # What is logged, what is derived
//!
//! Every *input* the run cannot re-derive is appended to the WAL before it
//! is applied: admitted batches, the realized outage schedule, the phase
//! change into the exchange, and one [`WalRecord::Round`] per executed
//! round.  Everything else — positions, bucket orders, RNG streams, tracked
//! ensembles, traffic metrics, the live quote — is a deterministic function
//! of those inputs, so [`DurableCoordinator::recover`] replays the log
//! (fast-forwarded through the newest valid snapshot) and lands **bit for
//! bit** where the crashed process would have been.
//!
//! # Durability points
//!
//! Appends reach the OS immediately but are fsynced in groups of
//! [`DurableConfig::group_commit`] round records (admission, schedule,
//! phase-change, snapshot and finalize records always sync eagerly — they
//! are rare and order-critical).  A crash can therefore lose up to
//! `group_commit − 1` *tail* rounds of log; recovery then resumes from an
//! earlier round of the same deterministic trajectory, which re-executes
//! identically — the bitwise invariant is about *state at a given round*,
//! not about never re-running a round.
//!
//! # Replay is checked, not trusted
//!
//! Round records carry the pre-round per-shard RNG clocks, the draw mode
//! and the realized outage mask.  During recovery every replayed round is
//! compared against its record; any mismatch fails closed with
//! [`StoreError::ReplayDiverged`] rather than silently continuing a
//! different run.
//!
//! # Scope of the bitwise guarantee
//!
//! Engine positions, bucket orders, RNG streams, accountant rows, traffic
//! metrics, quotes and ledger charges recover exactly.  Envelope *bytes* do
//! not: the simulated PKI is process-local, so replayed admissions re-seal
//! payloads under the recovering process's fresh curator key.  The opened
//! payloads — the only thing the protocol observes — are identical.

use crate::error::{Result, StoreError};
use crate::records::{encode_round, WalRecord};
use crate::snapshot::{
    load_ledger, load_meta, load_snapshot, save_ledger, save_meta, save_snapshot, snapshot_path,
    StoreMeta,
};
use crate::telemetry::StoreTelemetry;
use crate::wal::{scan_wal, TailStatus, WalWriter};
use network_shuffle::prelude::{
    AccountantParams, AuditSink, CoordinatorConfig, CoordinatorTelemetry, OutageSchedule,
    ShuffleCoordinator, SimulationOutcome,
};
use ns_dp::prelude::BudgetLedger;
use ns_dp::prelude::PrivacyGuarantee;
use ns_graph::prelude::{Graph, NodeId, Partition};
use ns_graph::rng::SimRng;
use ns_obs::{MetricsRegistry, TraceEvent, TraceWriter};
use std::path::{Path, PathBuf};

/// Name of the log segment inside a store directory.
pub const WAL_FILE: &str = "wal.bin";

/// Structured-trace JSONL the telemetry layer appends to inside a store
/// directory ([`DurableCoordinator::flush_observability`]).
pub const TRACE_FILE: &str = "trace.jsonl";

/// Rendered metrics exposition rewritten alongside [`TRACE_FILE`].
pub const METRICS_FILE: &str = "metrics.txt";

/// Durability knobs of a [`DurableCoordinator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurableConfig {
    /// Fsync the WAL every this many round records (`NS_WAL_GROUP_COMMIT`).
    /// 1 syncs every round; larger values trade a bounded tail of replayable
    /// rounds for fewer fsyncs.
    pub group_commit: usize,
    /// Persist a full snapshot every this many rounds (`NS_SNAPSHOT_EVERY`);
    /// 0 disables snapshots and recovery replays from round zero.
    pub snapshot_every: usize,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            group_commit: 4,
            snapshot_every: 16,
        }
    }
}

impl DurableConfig {
    /// Reads `NS_WAL_GROUP_COMMIT` / `NS_SNAPSHOT_EVERY` from the
    /// environment, falling back to the defaults for unset or unparsable
    /// values.  `group_commit` is clamped to at least 1.
    pub fn from_env() -> Self {
        let defaults = DurableConfig::default();
        let parse = |key: &str, fallback: usize| {
            std::env::var(key)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap_or(fallback)
        };
        DurableConfig {
            group_commit: parse("NS_WAL_GROUP_COMMIT", defaults.group_commit).max(1),
            snapshot_every: parse("NS_SNAPSHOT_EVERY", defaults.snapshot_every),
        }
    }
}

/// A [`ShuffleCoordinator`] whose lifecycle is durably logged and which can
/// be [`DurableCoordinator::recover`]ed after a crash, bit for bit.
///
/// Payloads are opaque byte strings: a durable store needs a stable wire
/// form, and `Vec<u8>` is the one every caller can encode into.
pub struct DurableCoordinator<'g> {
    dir: PathBuf,
    durable: DurableConfig,
    coordinator: ShuffleCoordinator<'g, Vec<u8>>,
    node_count: usize,
    wal: WalWriter,
    /// Reused record-encoding scratch; cleared, never shrunk.
    scratch: Vec<u8>,
    /// Reused per-round RNG clock staging; cleared, never shrunk.
    clocks: Vec<(u64, u32)>,
    /// Round records appended since the last fsync.
    unsynced_rounds: usize,
    /// Distinct admitted origins, in first-admission order (the ledger's
    /// charge list at finalize), with a membership bitmap for O(1) dedup.
    charged_origins: Vec<NodeId>,
    seen_origins: Vec<bool>,
    ledger: Option<(PathBuf, BudgetLedger)>,
    /// How the recovered WAL's tail ended (`None` for a fresh store).
    recovered_tail: Option<TailStatus>,
    /// Attached observability bundle, if any
    /// ([`DurableCoordinator::attach_telemetry`]).
    telemetry: Option<DurableTelemetry>,
    /// Replay cost measured by [`DurableCoordinator::recover`], published
    /// when telemetry attaches afterwards.
    recovery_stats: Option<RecoveryStats>,
}

/// The store-level observability bundle: durable-runtime metric handles,
/// the shared structured-trace/audit ring and the registry the flush
/// renders.  The service-layer share lives inside the wrapped coordinator
/// (attached by [`DurableCoordinator::attach_telemetry`]).
struct DurableTelemetry {
    registry: MetricsRegistry,
    store: StoreTelemetry,
    audit: AuditSink,
    /// With parameters attached, every `round` trace event carries the live
    /// worst-user quote — an explicitly opted-into per-round cost.
    quote_params: Option<AccountantParams>,
}

/// What a recovery cost, kept until telemetry attaches.
#[derive(Clone, Copy, Debug)]
struct RecoveryStats {
    rounds_replayed: u64,
    elapsed_ns: u64,
    /// `(hits, misses, evictions)` of the WAL scan's page cache.
    pool_stats: (u64, u64, u64),
}

impl<'g> DurableCoordinator<'g> {
    /// Creates a fresh durable store in `dir` (created if absent) and the
    /// idle coordinator inside it.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidState`] if `dir` already holds a store;
    /// coordinator construction and I/O errors otherwise.
    pub fn create(
        graph: &'g Graph,
        partition: &'g Partition,
        config: CoordinatorConfig,
        durable: DurableConfig,
        dir: &Path,
    ) -> Result<Self> {
        std::fs::create_dir_all(dir)?;
        if dir.join("meta.bin").exists() {
            return Err(StoreError::InvalidState(format!(
                "{} already holds a store; use recover()",
                dir.display()
            )));
        }
        let coordinator = ShuffleCoordinator::new(graph, partition, config)?;
        save_meta(
            dir,
            &StoreMeta {
                config,
                node_count: graph.node_count(),
                shard_count: partition.shard_count(),
            },
        )?;
        let wal = WalWriter::open(dir.join(WAL_FILE), 0)?;
        Ok(DurableCoordinator {
            dir: dir.to_path_buf(),
            durable,
            coordinator,
            node_count: graph.node_count(),
            wal,
            scratch: Vec::new(),
            clocks: Vec::new(),
            unsynced_rounds: 0,
            charged_origins: Vec::new(),
            seen_origins: vec![false; graph.node_count()],
            ledger: None,
            recovered_tail: None,
            telemetry: None,
            recovery_stats: None,
        })
    }

    /// Rebuilds the coordinator from the store in `dir`: loads `meta.bin`,
    /// replays the valid WAL prefix (re-admitting batches, re-attaching the
    /// schedule), fast-forwards through the newest loadable snapshot and
    /// re-executes the remaining logged rounds — verifying each against its
    /// record's RNG clocks, draw mode and mask.  The torn tail, if any, is
    /// physically truncated before new appends land.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for unreadable meta or malformed records;
    /// [`StoreError::InvalidState`] for a finalized epoch or a
    /// graph/partition mismatch; [`StoreError::ReplayDiverged`] when a
    /// replayed round contradicts its logged record.
    pub fn recover(
        graph: &'g Graph,
        partition: &'g Partition,
        durable: DurableConfig,
        dir: &Path,
    ) -> Result<Self> {
        let recovery_started = std::time::Instant::now();
        let meta = load_meta(dir)?;
        if meta.node_count != graph.node_count() || meta.shard_count != partition.shard_count() {
            return Err(StoreError::InvalidState(format!(
                "store was created for {} nodes / {} shards, recovery got {} / {}",
                meta.node_count,
                meta.shard_count,
                graph.node_count(),
                partition.shard_count()
            )));
        }
        let scan = scan_wal(dir.join(WAL_FILE))?;

        // Structural pass over the valid prefix.
        /// One logged round awaiting replay: RNG clocks + realized mask.
        type LoggedRound = (Vec<(u64, u32)>, Option<Vec<bool>>);
        let mut batches: Vec<Vec<(NodeId, Vec<u8>)>> = Vec::new();
        let mut schedule: Option<OutageSchedule> = None;
        let mut begun = false;
        let mut rounds: Vec<LoggedRound> = Vec::new();
        let mut markers: Vec<usize> = Vec::new();
        for payload in &scan.records {
            match WalRecord::decode(payload)? {
                WalRecord::AdmittedBatch { entries } => {
                    if begun {
                        return Err(StoreError::Corrupt(
                            "admission record after BeginExchange".into(),
                        ));
                    }
                    batches.push(
                        entries
                            .into_iter()
                            .map(|(origin, bytes)| (origin as NodeId, bytes))
                            .collect(),
                    );
                }
                WalRecord::ScheduleAttached { masks } => {
                    if begun || schedule.is_some() {
                        return Err(StoreError::Corrupt(
                            "schedule record after BeginExchange or duplicated".into(),
                        ));
                    }
                    schedule = Some(OutageSchedule::from_masks(masks)?);
                }
                WalRecord::BeginExchange => {
                    if begun {
                        return Err(StoreError::Corrupt("duplicate BeginExchange".into()));
                    }
                    begun = true;
                }
                WalRecord::Round {
                    round,
                    draw_mode,
                    clocks,
                    mask,
                } => {
                    if !begun {
                        return Err(StoreError::Corrupt(
                            "round record before BeginExchange".into(),
                        ));
                    }
                    if round as usize != rounds.len() {
                        return Err(StoreError::Corrupt(format!(
                            "round records out of order: got {round}, expected {}",
                            rounds.len()
                        )));
                    }
                    if draw_mode != meta.config.draw_mode {
                        return Err(StoreError::ReplayDiverged(format!(
                            "round {round} was logged in {draw_mode:?} but the store is configured for {:?}",
                            meta.config.draw_mode
                        )));
                    }
                    rounds.push((clocks, mask));
                }
                WalRecord::SnapshotMarker { round } => markers.push(round as usize),
                WalRecord::Finalized { round } => {
                    return Err(StoreError::InvalidState(format!(
                        "epoch already finalized at round {round}; nothing to recover"
                    )));
                }
            }
        }

        // Rebuild the coordinator's input phase.
        let mut coordinator = ShuffleCoordinator::new(graph, partition, meta.config)?;
        let mut charged_origins: Vec<NodeId> = Vec::new();
        let mut seen_origins = vec![false; graph.node_count()];
        for batch in batches {
            for &(origin, _) in &batch {
                if origin < seen_origins.len() && !seen_origins[origin] {
                    seen_origins[origin] = true;
                    charged_origins.push(origin);
                }
            }
            coordinator.admit(batch)?;
        }
        if let Some(schedule) = schedule {
            coordinator.with_outages(schedule)?;
        }
        if begun {
            coordinator.begin_exchange()?;
        }

        // Fast-forward through the newest snapshot that still verifies.
        markers.sort_unstable();
        for &marker in markers.iter().rev() {
            if marker > rounds.len() {
                continue;
            }
            match load_snapshot(dir, marker) {
                Ok(checkpoint) if checkpoint.engine.round == marker => {
                    coordinator.install_checkpoint(&checkpoint)?;
                    break;
                }
                // A missing/damaged/mislabeled snapshot is not fatal — fall
                // back to the next older one (or full replay).
                Ok(_) | Err(StoreError::Corrupt(_)) | Err(StoreError::Io(_)) => continue,
                Err(e) => return Err(e),
            }
        }

        // Re-execute the remaining logged rounds, verifying each record.
        let mut recovered = DurableCoordinator {
            dir: dir.to_path_buf(),
            durable,
            coordinator,
            node_count: graph.node_count(),
            wal: WalWriter::open(dir.join(WAL_FILE), scan.valid_len)?,
            scratch: Vec::new(),
            clocks: Vec::new(),
            unsynced_rounds: 0,
            charged_origins,
            seen_origins,
            ledger: None,
            recovered_tail: Some(scan.tail),
            telemetry: None,
            recovery_stats: None,
        };
        let start = recovered.coordinator.round();
        for (round, (clocks, mask)) in rounds.iter().enumerate().skip(start) {
            recovered.verify_round_record(round, clocks, mask.as_deref())?;
            recovered.coordinator.run_rounds(1)?;
        }
        // Wall-clock here is measurement only — it never shapes the replayed
        // state, so the bitwise recovery invariant is untouched.
        recovered.recovery_stats = Some(RecoveryStats {
            rounds_replayed: rounds.len().saturating_sub(start) as u64,
            elapsed_ns: recovery_started.elapsed().as_nanos() as u64,
            pool_stats: scan.pool_stats,
        });
        Ok(recovered)
    }

    /// Checks one logged round record against the live engine before
    /// re-executing it.
    fn verify_round_record(
        &mut self,
        round: usize,
        clocks: &[(u64, u32)],
        mask: Option<&[bool]>,
    ) -> Result<()> {
        if self.coordinator.round() != round {
            return Err(StoreError::ReplayDiverged(format!(
                "replay is at round {}, record says {round}",
                self.coordinator.round()
            )));
        }
        let engine = self
            .coordinator
            .engine()
            .ok_or_else(|| StoreError::InvalidState("round record before the exchange".into()))?;
        if clocks.len() != engine.shard_count() {
            return Err(StoreError::ReplayDiverged(format!(
                "round {round} logs {} shard clocks, engine has {} shards",
                clocks.len(),
                engine.shard_count()
            )));
        }
        for (shard, &(counter, cursor)) in clocks.iter().enumerate() {
            let live = engine.rng_clock(shard);
            if live != (counter, cursor) {
                return Err(StoreError::ReplayDiverged(format!(
                    "round {round} shard {shard}: logged rng clock {:?}, replayed {:?}",
                    (counter, cursor),
                    live
                )));
            }
        }
        let live_mask = self.coordinator.outages().map(|s| s.mask(round));
        match (mask, live_mask) {
            (None, None) => {}
            (Some(logged), Some(live)) if logged == live => {}
            _ => {
                return Err(StoreError::ReplayDiverged(format!(
                    "round {round}: logged outage mask disagrees with the attached schedule"
                )));
            }
        }
        Ok(())
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The wrapped coordinator (read-only).
    pub fn coordinator(&self) -> &ShuffleCoordinator<'g, Vec<u8>> {
        &self.coordinator
    }

    /// Rounds executed so far.
    pub fn round(&self) -> usize {
        self.coordinator.round()
    }

    /// Reports admitted so far.
    pub fn report_count(&self) -> usize {
        self.coordinator.report_count()
    }

    /// How the WAL tail ended at recovery (`None` for a store created, not
    /// recovered, by this process).
    pub fn recovered_tail(&self) -> Option<TailStatus> {
        self.recovered_tail
    }

    /// The attached budget ledger, if any.
    pub fn ledger(&self) -> Option<&BudgetLedger> {
        self.ledger.as_ref().map(|(_, ledger)| ledger)
    }

    /// Attaches the full observability stack: registers the durable-runtime
    /// metrics in `registry`, wires the service/engine telemetry bundle into
    /// the wrapped coordinator, and routes the admission audit plus the
    /// structured `round` / `snapshot` / `recover` / `phase` events into one
    /// shared trace ring, drained to [`TRACE_FILE`] in the store directory
    /// at snapshot and finalize boundaries (or explicitly via
    /// [`DurableCoordinator::flush_observability`]).
    ///
    /// With `quote_params`, every `round` event and admission audit record
    /// carries the live worst-user `(ε, δ)` — a per-round quote computation
    /// the caller opts into; with `None` both fields render as `null`.
    ///
    /// Telemetry is inert by construction: no durable byte, RNG draw or
    /// replayed state changes whether it is attached or not.
    pub fn attach_telemetry(
        &mut self,
        registry: &MetricsRegistry,
        quote_params: Option<AccountantParams>,
    ) {
        let store = StoreTelemetry::register(registry);
        let audit = AuditSink::new(TraceWriter::new(
            registry.clock().clone(),
            ns_obs::env_ring_capacity(),
        ));
        let mut service = CoordinatorTelemetry::register(registry).with_audit(audit.clone());
        if let Some(params) = quote_params {
            service = service.with_quote_params(params);
        }
        self.coordinator.set_telemetry(Some(service));
        if let Some(stats) = self.recovery_stats {
            store.replay_ns.record(stats.elapsed_ns);
            store.record_pool_stats(stats.pool_stats);
            audit.record(TraceEvent::Recover {
                rounds_replayed: stats.rounds_replayed,
                elapsed_ns: stats.elapsed_ns,
            });
        }
        store.wal_len.set(self.wal.len());
        self.telemetry = Some(DurableTelemetry {
            registry: registry.clone(),
            store,
            audit,
            quote_params,
        });
    }

    /// Detaches observability from the store and the wrapped coordinator.
    pub fn detach_telemetry(&mut self) {
        self.coordinator.set_telemetry(None);
        self.telemetry = None;
    }

    /// Drains the structured trace ring into [`TRACE_FILE`] (append) and
    /// rewrites [`METRICS_FILE`] in the store directory.  Runs
    /// automatically at snapshot and finalize boundaries — both already off
    /// the steady-state round path — and is a no-op without telemetry.
    ///
    /// # Errors
    ///
    /// I/O errors writing either file.
    pub fn flush_observability(&self) -> Result<()> {
        let Some(obs) = &self.telemetry else {
            return Ok(());
        };
        let mut trace = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.dir.join(TRACE_FILE))?;
        obs.audit.flush_to(&mut trace)?;
        std::fs::write(self.dir.join(METRICS_FILE), obs.registry.render())?;
        Ok(())
    }

    /// Records one completed round into the trace ring: messages sent, WAL
    /// length and (with quote parameters attached) the live worst quote.
    fn record_round_event(&self, completed: usize) {
        let Some(obs) = &self.telemetry else {
            return;
        };
        let wal_len = self.wal.len();
        obs.store.wal_len.set(wal_len);
        let sent = self
            .coordinator
            .engine()
            .map(|e| e.sent_counts().iter().map(|&s| u64::from(s)).sum())
            .unwrap_or(0);
        let (epsilon, delta) = match &obs.quote_params {
            Some(params) => self
                .coordinator
                .live_quote(params)
                .map(|(_, quote)| (quote.epsilon, quote.delta))
                .unwrap_or((f64::NAN, f64::NAN)),
            None => (f64::NAN, f64::NAN),
        };
        obs.audit.record(TraceEvent::Round {
            round: completed as u64,
            sent,
            wal_len,
            epsilon,
            delta,
        });
    }

    /// Audits a batch the durable layer refused before the service's own
    /// admission path ran.  `remaining` carries the refused origin's ledger
    /// headroom for budget refusals; `None` renders as `null`.
    fn audit_refusal(&self, reports: usize, reason: &'static str, remaining: Option<(f64, f64)>) {
        let Some(obs) = &self.telemetry else {
            return;
        };
        let batch = self
            .coordinator
            .telemetry()
            .map(|t| t.record_external_refusal())
            .unwrap_or(0);
        let (epsilon, delta) = remaining.unwrap_or((f64::NAN, f64::NAN));
        obs.audit.record(TraceEvent::Admit {
            batch,
            reports: reports as u64,
            accepted: false,
            reason,
            epsilon,
            delta,
        });
    }

    /// Records a lifecycle phase change into the trace ring.
    fn record_phase(&self, name: &'static str) {
        if let Some(obs) = &self.telemetry {
            obs.audit.record(TraceEvent::Phase {
                name,
                round: self.coordinator.round() as u64,
            });
        }
    }

    /// Attaches (loading, or creating with a uniform `default_budget`) the
    /// persistent per-user budget ledger at `path`.  Once attached,
    /// admission refuses users whose budget is exhausted, and
    /// [`DurableCoordinator::finalize`] draws the epoch's worst quote down
    /// from every admitted user's ledger row and persists the result.
    ///
    /// # Errors
    ///
    /// Ledger I/O/validation errors; [`StoreError::InvalidState`] if the
    /// ledger's user count differs from the graph's.
    pub fn attach_ledger(&mut self, path: &Path, default_budget: PrivacyGuarantee) -> Result<()> {
        let node_count = self.node_count;
        let ledger = if path.exists() {
            let ledger = load_ledger(path)?;
            if ledger.user_count() != node_count {
                return Err(StoreError::InvalidState(format!(
                    "ledger tracks {} users, the graph has {node_count}",
                    ledger.user_count()
                )));
            }
            ledger
        } else {
            let ledger = BudgetLedger::uniform(node_count, default_budget)?;
            save_ledger(path, &ledger)?;
            ledger
        };
        self.ledger = Some((path.to_path_buf(), ledger));
        Ok(())
    }

    /// Admits one batch, WAL-first.  With a ledger attached, every origin in
    /// the batch must still hold budget.
    ///
    /// # Errors
    ///
    /// [`StoreError::InvalidState`] for an exhausted origin; coordinator
    /// admission errors; WAL I/O errors.
    pub fn admit(&mut self, batch: Vec<(NodeId, Vec<u8>)>) -> Result<()> {
        // Validate before logging: a WAL record whose apply step fails would
        // fail identically on every recovery and wedge the store.
        if self.coordinator.engine().is_some() {
            self.audit_refusal(batch.len(), "exchange-started", None);
            return Err(StoreError::InvalidState(
                "cannot admit reports after the exchange phase started".into(),
            ));
        }
        if let Some(&(origin, _)) = batch.iter().find(|&&(origin, _)| origin >= self.node_count) {
            self.audit_refusal(batch.len(), "origin-out-of-range", None);
            return Err(StoreError::InvalidState(format!(
                "origin {origin} is out of range for {} users",
                self.node_count
            )));
        }
        if let Some((_, ledger)) = &self.ledger {
            if let Some(&(origin, _)) = batch
                .iter()
                .find(|&&(origin, _)| origin < ledger.user_count() && !ledger.can_admit(origin))
            {
                // The audited (ε, δ) is the refused origin's remaining
                // headroom — the ledger state that forced the refusal.
                self.audit_refusal(
                    batch.len(),
                    "budget-exhausted",
                    Some(ledger.remaining(origin)),
                );
                return Err(StoreError::InvalidState(format!(
                    "user {origin} has exhausted her privacy budget; batch refused"
                )));
            }
        }
        let record = WalRecord::AdmittedBatch {
            entries: batch
                .iter()
                .map(|(origin, payload)| (*origin as u64, payload.clone()))
                .collect(),
        };
        record.encode(&mut self.scratch);
        self.wal.append(&self.scratch)?;
        self.wal.sync()?;
        // Admission is all-or-nothing; only mark origins once it succeeded.
        let origins: Vec<NodeId> = batch.iter().map(|&(origin, _)| origin).collect();
        self.coordinator.admit(batch)?;
        for origin in origins {
            if origin < self.seen_origins.len() && !self.seen_origins[origin] {
                self.seen_origins[origin] = true;
                self.charged_origins.push(origin);
            }
        }
        Ok(())
    }

    /// Admits the canonical full population (`payloads[i]` is user `i`'s).
    ///
    /// # Errors
    ///
    /// As [`DurableCoordinator::admit`].
    pub fn admit_population(&mut self, payloads: Vec<Vec<u8>>) -> Result<()> {
        let batch: Vec<(NodeId, Vec<u8>)> = payloads.into_iter().enumerate().collect();
        self.admit(batch)
    }

    /// Attaches the realized outage schedule, WAL-first.
    ///
    /// # Errors
    ///
    /// Coordinator errors; WAL I/O errors.
    pub fn with_outages(&mut self, schedule: OutageSchedule) -> Result<()> {
        if self.coordinator.engine().is_some() || self.coordinator.outages().is_some() {
            return Err(StoreError::InvalidState(
                "attach the outage schedule once, before the exchange phase".into(),
            ));
        }
        if schedule.node_count() != self.node_count {
            return Err(StoreError::InvalidState(format!(
                "schedule covers {} users, the graph has {}",
                schedule.node_count(),
                self.node_count
            )));
        }
        let record = WalRecord::ScheduleAttached {
            masks: schedule.masks().to_vec(),
        };
        record.encode(&mut self.scratch);
        self.wal.append(&self.scratch)?;
        self.wal.sync()?;
        Ok(self.coordinator.with_outages(schedule)?)
    }

    /// Closes admission and builds the engine, WAL-first.
    ///
    /// # Errors
    ///
    /// Coordinator errors; WAL I/O errors.
    pub fn begin_exchange(&mut self) -> Result<()> {
        if self.coordinator.engine().is_some() {
            return Err(StoreError::InvalidState(
                "the exchange phase already started".into(),
            ));
        }
        if self.coordinator.report_count() == 0 {
            return Err(StoreError::InvalidState(
                "no reports admitted; nothing to exchange".into(),
            ));
        }
        WalRecord::BeginExchange.encode(&mut self.scratch);
        self.wal.append(&self.scratch)?;
        self.wal.sync()?;
        self.coordinator.begin_exchange()?;
        self.record_phase("begin-exchange");
        Ok(())
    }

    /// Executes `rounds` exchange rounds, each preceded by its WAL record
    /// (group-committed) and followed, every
    /// [`DurableConfig::snapshot_every`] rounds, by a durable snapshot.
    /// Outside snapshot boundaries the append path performs no steady-state
    /// allocations — the encode scratch and clock staging are reused.
    ///
    /// # Errors
    ///
    /// Coordinator errors; WAL/snapshot I/O errors.
    pub fn run_rounds(&mut self, rounds: usize) -> Result<()> {
        for _ in 0..rounds {
            let round = self.coordinator.round();
            {
                let engine = self.coordinator.engine().ok_or_else(|| {
                    StoreError::InvalidState("call begin_exchange() before running rounds".into())
                })?;
                self.clocks.clear();
                for shard in 0..engine.shard_count() {
                    self.clocks.push(engine.rng_clock(shard));
                }
                let mask = self.coordinator.outages().map(|s| s.mask(round));
                encode_round(
                    &mut self.scratch,
                    round as u64,
                    self.coordinator.config().draw_mode,
                    &self.clocks,
                    mask,
                );
            }
            {
                let _span = self
                    .telemetry
                    .as_ref()
                    .map(|o| o.store.wal_append_ns.span(&o.store.clock));
                self.wal.append(&self.scratch)?;
            }
            self.unsynced_rounds += 1;
            if self.unsynced_rounds >= self.durable.group_commit.max(1) {
                // Two spans over one sync: the fsync histogram sees every
                // sync, the group-commit one only these boundary syncs.
                let _group = self
                    .telemetry
                    .as_ref()
                    .map(|o| o.store.group_commit_ns.span(&o.store.clock));
                let _fsync = self
                    .telemetry
                    .as_ref()
                    .map(|o| o.store.wal_fsync_ns.span(&o.store.clock));
                self.wal.sync()?;
                self.unsynced_rounds = 0;
            }
            self.coordinator.run_rounds(1)?;
            let completed = self.coordinator.round();
            self.record_round_event(completed);
            if self.durable.snapshot_every > 0
                && completed.is_multiple_of(self.durable.snapshot_every)
            {
                self.snapshot()?;
            }
        }
        Ok(())
    }

    /// Appends only the first `keep` bytes of the round record the next
    /// round would log — the torn write a crash mid-append leaves behind.
    /// Crash-injection hook for the recovery tests; not part of the durable
    /// API.
    ///
    /// # Errors
    ///
    /// WAL I/O errors; [`StoreError::InvalidState`] before the exchange.
    #[doc(hidden)]
    pub fn simulate_torn_round_append(&mut self, keep: usize) -> Result<()> {
        let round = self.coordinator.round();
        let engine = self.coordinator.engine().ok_or_else(|| {
            StoreError::InvalidState("call begin_exchange() before running rounds".into())
        })?;
        self.clocks.clear();
        for shard in 0..engine.shard_count() {
            self.clocks.push(engine.rng_clock(shard));
        }
        let mask = self.coordinator.outages().map(|s| s.mask(round));
        encode_round(
            &mut self.scratch,
            round as u64,
            self.coordinator.config().draw_mode,
            &self.clocks,
            mask,
        );
        self.wal.append_torn(&self.scratch, keep)?;
        self.wal.sync()
    }

    /// Forces a durable snapshot of the current round right now.
    ///
    /// # Errors
    ///
    /// Checkpoint capture and I/O errors.
    pub fn snapshot(&mut self) -> Result<()> {
        let started = self.telemetry.as_ref().map(|o| o.store.clock.now_ns());
        // The snapshot must not land before the log records it summarizes.
        {
            let _fsync = self
                .telemetry
                .as_ref()
                .map(|o| o.store.wal_fsync_ns.span(&o.store.clock));
            self.wal.sync()?;
        }
        self.unsynced_rounds = 0;
        let checkpoint = self.coordinator.checkpoint()?;
        save_snapshot(&self.dir, &checkpoint)?;
        let round = checkpoint.engine.round;
        WalRecord::SnapshotMarker {
            round: round as u64,
        }
        .encode(&mut self.scratch);
        self.wal.append(&self.scratch)?;
        {
            let _fsync = self
                .telemetry
                .as_ref()
                .map(|o| o.store.wal_fsync_ns.span(&o.store.clock));
            self.wal.sync()?;
        }
        if let Some(obs) = &self.telemetry {
            let elapsed_ns = obs
                .store
                .clock
                .now_ns()
                .saturating_sub(started.unwrap_or(0));
            obs.store.snapshot_write_ns.record(elapsed_ns);
            let bytes = std::fs::metadata(snapshot_path(&self.dir, round))
                .map(|m| m.len())
                .unwrap_or(0);
            obs.audit.record(TraceEvent::Snapshot {
                round: round as u64,
                bytes,
                elapsed_ns,
            });
        }
        self.flush_observability()
    }

    /// The worst tracked user's current guarantee — read-only passthrough.
    ///
    /// # Errors
    ///
    /// Parameter validation errors from the closed forms.
    pub fn live_quote(&self, params: &AccountantParams) -> Result<(NodeId, PrivacyGuarantee)> {
        Ok(self.coordinator.live_quote(params)?)
    }

    /// Runs (durably logged) rounds until the live worst-user ε reaches
    /// `target_epsilon` or `max_rounds` rounds have executed.
    ///
    /// # Errors
    ///
    /// As [`DurableCoordinator::run_rounds`] and
    /// [`DurableCoordinator::live_quote`].
    pub fn run_until_epsilon(
        &mut self,
        params: &AccountantParams,
        target_epsilon: f64,
        max_rounds: usize,
    ) -> Result<(usize, PrivacyGuarantee)> {
        loop {
            let (_, quote) = self.live_quote(params)?;
            let round = self.round();
            if quote.epsilon <= target_epsilon || round >= max_rounds {
                return Ok((round, quote));
            }
            self.run_rounds(1)?;
        }
    }

    /// Finalizes the epoch: logs the `Finalized` record durably, charges
    /// every distinct admitted origin the epoch's final worst quote against
    /// the attached ledger (persisting it atomically), then applies the
    /// protocol's submission rule.  Returns the curator's outcome and the
    /// quote that was charged.
    ///
    /// # Errors
    ///
    /// Coordinator finalize errors; quote/ledger/WAL errors.
    pub fn finalize(
        mut self,
        params: &AccountantParams,
        make_dummy: impl FnMut(&mut SimRng) -> Vec<u8>,
    ) -> Result<(SimulationOutcome<Vec<u8>>, PrivacyGuarantee)> {
        let (_, quote) = self.coordinator.live_quote(params)?;
        WalRecord::Finalized {
            round: self.coordinator.round() as u64,
        }
        .encode(&mut self.scratch);
        self.wal.append(&self.scratch)?;
        self.wal.sync()?;
        if let Some((path, ledger)) = &mut self.ledger {
            for &origin in &self.charged_origins {
                ledger.charge(origin, &quote)?;
            }
            save_ledger(path, ledger)?;
        }
        self.record_phase("finalize");
        // The coordinator is consumed below; drain the trace ring first so
        // the finalize phase event reaches the on-disk trace.
        self.flush_observability()?;
        let outcome = self.coordinator.finalize(make_dummy)?;
        Ok((outcome, quote))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_graph::generators;
    use ns_graph::rng::seeded_rng;
    use std::fs;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("ns_store_durable_test")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn graph(n: usize, k: usize, seed: u64) -> Graph {
        generators::random_regular(n, k, &mut seeded_rng(seed)).unwrap()
    }

    fn payloads(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| vec![i as u8, (i * 7) as u8]).collect()
    }

    #[test]
    fn drop_and_recover_continues_bitwise() {
        let g = graph(40, 4, 11);
        let p = Partition::new(&g, 4).unwrap();
        let config = CoordinatorConfig::all(23, usize::MAX);
        let dir = temp_dir("roundtrip");
        let durable_cfg = DurableConfig {
            group_commit: 3,
            snapshot_every: 4,
        };
        {
            let mut store = DurableCoordinator::create(&g, &p, config, durable_cfg, &dir).unwrap();
            store.admit_population(payloads(40)).unwrap();
            store.begin_exchange().unwrap();
            store.run_rounds(10).unwrap();
            // Dropped without finalize: the "crash".
        }
        let mut recovered = DurableCoordinator::recover(&g, &p, durable_cfg, &dir).unwrap();
        assert_eq!(recovered.recovered_tail(), Some(TailStatus::Clean));
        assert_eq!(recovered.round(), 10);
        recovered.run_rounds(5).unwrap();

        // Uninterrupted reference.
        let mut reference: ShuffleCoordinator<'_, Vec<u8>> =
            ShuffleCoordinator::new(&g, &p, config).unwrap();
        reference.admit_population(payloads(40)).unwrap();
        reference.begin_exchange().unwrap();
        reference.run_rounds(15).unwrap();

        let live = recovered.coordinator().engine().unwrap();
        let want = reference.engine().unwrap();
        assert_eq!(live.round(), want.round());
        for shard in 0..p.shard_count() {
            assert_eq!(live.rng_clock(shard), want.rng_clock(shard));
        }
        assert_eq!(live.checkpoint().positions, want.checkpoint().positions);
        let params = AccountantParams::new(40, 1.0, 1e-6, 1e-6).unwrap();
        let (_, q_live) = recovered.live_quote(&params).unwrap();
        let (_, q_want) = reference.live_quote(&params).unwrap();
        assert_eq!(q_live.epsilon.to_bits(), q_want.epsilon.to_bits());
        assert_eq!(q_live.delta.to_bits(), q_want.delta.to_bits());
    }

    #[test]
    fn recover_refuses_finalized_and_mismatched_stores() {
        let g = graph(30, 4, 5);
        let p = Partition::new(&g, 2).unwrap();
        let config = CoordinatorConfig::single(9, 4);
        let dir = temp_dir("finalized");
        let durable_cfg = DurableConfig::default();
        let mut store = DurableCoordinator::create(&g, &p, config, durable_cfg, &dir).unwrap();
        assert!(DurableCoordinator::create(&g, &p, config, durable_cfg, &dir).is_err());
        store.admit_population(payloads(30)).unwrap();
        store.begin_exchange().unwrap();
        store.run_rounds(3).unwrap();
        let params = AccountantParams::new(30, 1.0, 1e-6, 1e-6).unwrap();
        store.finalize(&params, |_| Vec::new()).unwrap();
        assert!(matches!(
            DurableCoordinator::recover(&g, &p, durable_cfg, &dir),
            Err(StoreError::InvalidState(_))
        ));
        // A different topology is refused outright.
        let other = graph(20, 4, 6);
        let p_other = Partition::new(&other, 2).unwrap();
        assert!(matches!(
            DurableCoordinator::recover(&other, &p_other, durable_cfg, &dir),
            Err(StoreError::InvalidState(_))
        ));
    }

    #[test]
    fn lifecycle_violations_are_rejected_before_logging() {
        let g = graph(30, 4, 7);
        let p = Partition::new(&g, 2).unwrap();
        let dir = temp_dir("lifecycle");
        let mut store = DurableCoordinator::create(
            &g,
            &p,
            CoordinatorConfig::all(1, 4),
            DurableConfig::default(),
            &dir,
        )
        .unwrap();
        assert!(store.begin_exchange().is_err()); // nothing admitted
        assert!(store.admit(vec![(30, vec![])]).is_err()); // out of range
        store.admit_population(payloads(30)).unwrap();
        store.begin_exchange().unwrap();
        assert!(store.begin_exchange().is_err());
        assert!(store.admit(vec![(0, vec![])]).is_err());
        // None of the rejected calls may have polluted the log: recovery
        // replays cleanly.
        store.run_rounds(2).unwrap();
        drop(store);
        let recovered =
            DurableCoordinator::recover(&g, &p, DurableConfig::default(), &dir).unwrap();
        assert_eq!(recovered.round(), 2);
    }
}
