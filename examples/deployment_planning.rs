//! Planning a deployment: how many rounds, and how much local noise?
//!
//! ```text
//! cargo run --release --example deployment_planning
//! ```
//!
//! A service owner wants the collection to satisfy a central (ε = 1, δ ≈
//! 2·10⁻⁶) guarantee on a Facebook-like social graph.  The example uses the
//! planning API to answer the two questions a deployment actually asks:
//!
//! 1. how many exchange rounds are needed before more communication stops
//!    buying privacy, and
//! 2. the largest local ε₀ (i.e. the least local noise, hence the best
//!    utility) that still meets the central target,
//!
//! and then cross-checks the accountant's graph inputs with a Monte-Carlo
//! estimate from actual walk simulations.

use network_shuffle::accountant::planning::epsilon_0_for_central_target_on_graph;
use network_shuffle::prelude::*;
use ns_datasets::Dataset;
use ns_obs::say;

const TOPIC: &str = "deployment_planning";

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let target_central_epsilon = 1.0;
    let seed = 17;

    // Facebook stand-in scaled 4x down so the example runs in seconds.
    let generated = Dataset::Facebook.generate_scaled(4, seed)?;
    let graph = &generated.graph;
    let n = graph.node_count();
    say!(
        TOPIC,
        "{} stand-in: n = {n}, Gamma_G = {:.2}",
        generated.spec.name,
        generated.achieved.irregularity
    );

    let accountant = NetworkShuffleAccountant::new(graph)?;
    say!(
        TOPIC,
        "spectral gap {:.4}  =>  paper stopping rule t = {} rounds",
        accountant.mixing_profile().spectral_gap,
        accountant.mixing_time()
    );

    // Question 1: rounds until the guarantee stops improving (within 1%).
    let probe = AccountantParams::with_defaults(n, 1.0)?;
    let (rounds, eps_at_rounds) = rounds_for_target_epsilon(
        &accountant,
        ProtocolKind::Single,
        Scenario::Stationary,
        &probe,
        0.01,
        4 * accountant.mixing_time(),
    )?;
    say!(
        TOPIC,
        "rounds needed before extra communication stops helping: {rounds} (eps there = {:.4})",
        eps_at_rounds
    );

    // Question 2: the largest local eps0 that still meets the central target.
    let calibrated = epsilon_0_for_central_target_on_graph(
        &accountant,
        &probe,
        ProtocolKind::Single,
        Scenario::Stationary,
        target_central_epsilon,
    )?;
    match calibrated {
        Some(eps0) => {
            say!(TOPIC,
                "largest local eps0 meeting a central epsilon of {target_central_epsilon}: {eps0:.4}"
            );
            let params = AccountantParams::with_defaults(n, eps0)?;
            let achieved = accountant.central_guarantee_at_mixing_time(
                ProtocolKind::Single,
                Scenario::Stationary,
                &params,
            )?;
            say!(TOPIC, "check: running at that eps0 yields {achieved}");
        }
        None => say!(TOPIC, "the central target is unreachable on this graph"),
    }

    // Cross-check the accountant's graph input with a Monte-Carlo estimate.
    let empirical = estimate_mixing(graph, rounds, 0.0, 32, seed)?;
    let (bound, _) = accountant.sum_p_squared(Scenario::Stationary, rounds)?;
    say!(
        TOPIC,
        "sum of squared position probabilities after {rounds} rounds: spectral bound {:.3e}, \
         Monte-Carlo estimate {:.3e} ({} trials)",
        bound,
        empirical.sum_p_squared,
        empirical.trials
    );
    say!(
        TOPIC,
        "(the estimate sitting below the bound is expected: the bound is worst-case)"
    );
    Ok(())
}
