//! Micro-benchmarks of full protocol executions (Table 3's measured side).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use network_shuffle::prelude::*;
use ns_graph::generators::random_regular;
use ns_graph::rng::seeded_rng;

fn bench_protocol_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("protocol_run");
    group.sample_size(10);
    for &n in &[500usize, 2_000] {
        let graph = random_regular(n, 8, &mut seeded_rng(1)).expect("graph");
        let payloads: Vec<u32> = (0..n as u32).collect();
        group.bench_with_input(BenchmarkId::new("a_all_20_rounds", n), &n, |b, _| {
            b.iter(|| {
                let outcome = run_protocol(
                    &graph,
                    payloads.clone(),
                    SimulationConfig::all(20, 7),
                    |_| 0u32,
                )
                .expect("run");
                black_box(outcome.collected.report_count())
            });
        });
        group.bench_with_input(BenchmarkId::new("a_single_20_rounds", n), &n, |b, _| {
            b.iter(|| {
                let outcome = run_protocol(
                    &graph,
                    payloads.clone(),
                    SimulationConfig::single(20, 7),
                    |_| 0u32,
                )
                .expect("run");
                black_box(outcome.collected.dummy_count())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_protocol_runs);
criterion_main!(benches);
