//! The crash-injection child process.
//!
//! Reads a [`ns_suite::crash_harness::CrashScenario`] from the environment,
//! creates or recovers the durable store at `NS_CRASH_DIR`, and drives it to
//! `NS_CRASH_TOTAL_ROUNDS` — aborting without cleanup at `NS_CRASH_AT_ROUND`
//! (optionally after a torn mid-frame append) when told to crash.  On a
//! completed run it finalizes the epoch and writes the canonical state
//! summary to `NS_CRASH_OUT` for the parent test to compare.

use ns_suite::crash_harness::{run_child, CrashScenario};

fn main() {
    let scenario = CrashScenario::from_env();
    if let Err(message) = run_child(&scenario) {
        eprintln!("crash_child: {message}");
        std::process::exit(1);
    }
}
