//! Shard-count sweep of the sharded mixing engine at fixed population.
//!
//! Measures the cost of one exchange-round budget (engine construction plus
//! `ROUNDS` holder-order rounds) as the shard count grows at `n = 100_000`:
//! the sequential sweep isolates the overhead of the per-shard sampling
//! phase plus the counting-sort exchange versus the monolithic engine
//! (`k = 1` is bit-for-bit the single-engine path).  With
//! `--features parallel` the same sweep exercises the threaded sampling
//! phase instead.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ns_graph::generators::random_regular;
use ns_graph::partition::Partition;
use ns_graph::rng::seeded_rng;
use ns_graph::sharded_engine::ShardedMixingEngine;

const USERS: usize = 100_000;
const DEGREE: usize = 8;
const ROUNDS: usize = 10;

fn bench_shard_count_sweep(c: &mut Criterion) {
    let graph = random_regular(USERS, DEGREE, &mut seeded_rng(1)).expect("graph");
    let mut group = c.benchmark_group("sharded_mixing_100k");
    group.sample_size(10);
    for shards in [1usize, 2, 4, 8] {
        let partition = Partition::new(&graph, shards).expect("partition");
        group.bench_with_input(
            BenchmarkId::new("rounds", shards),
            &partition,
            |b, partition| {
                b.iter(|| {
                    let mut engine = ShardedMixingEngine::one_walker_per_node(&graph, partition, 7)
                        .expect("engine");
                    for _ in 0..ROUNDS {
                        engine.step_auto(0.0, &mut ());
                    }
                    black_box(engine.position(0))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_shard_count_sweep);
criterion_main!(benches);
