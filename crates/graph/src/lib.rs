//! Graph and random-walk substrate for the network-shuffling reproduction.
//!
//! The privacy analysis of network shuffling (Liew et al., SIGMOD 2022) models
//! the exchange of locally-randomized reports between users as a random walk
//! on an undirected communication graph `G = (V, E)`.  Everything the privacy
//! accountant needs from the graph is provided by this crate:
//!
//! * a compact CSR representation of undirected graphs ([`Graph`]),
//! * generators for the graph families studied in the paper
//!   ([`generators`]): k-regular, Erdős–Rényi, Barabási–Albert,
//!   Watts–Strogatz, Chung–Lu configuration models and several classic
//!   topologies,
//! * connectivity / bipartiteness checks that decide ergodicity of the walk
//!   ([`connectivity`], Theorem 4.3 of the paper),
//! * the transition matrix `M = A B⁻¹` and the evolution of the position
//!   probability distribution `P(t+1) = Mᵀ P(t)` ([`transition`],
//!   [`distribution`]),
//! * batched evolution of whole *ensembles* of position distributions — one
//!   per report origin — through a blocked, lane-interleaved kernel behind
//!   the [`transition::TransitionModel`] trait, enabling exact multi-origin
//!   accounting on irregular graphs ([`ensemble`]),
//! * the stationary distribution `k / 2m` and the irregularity measure
//!   `Γ_G = n · Σ_i π_i²` ([`stationary`], [`degree`]),
//! * spectral-gap estimation via deflated power iteration ([`spectral`]) and
//!   the mixing-time rule `t ≈ α⁻¹ log n` ([`mixing`]),
//! * a batched, struct-of-arrays round-execution core shared by the walk
//!   engine and the protocol simulation, with streaming per-round metrics,
//!   per-round availability masks and optional data-parallel rounds
//!   ([`mixing_engine`]),
//! * time-varying topologies: a dynamic-graph delta layer with incremental
//!   CSR snapshots, availability-masked transition operators and per-round
//!   operator schedules that drive the ensemble kernel through products of
//!   distinct per-round transitions ([`dynamic`]), plus the delta-incremental
//!   ensemble advance — speculative rounds under the held operator repaired
//!   by a bitwise-exact sparse column correction over the churn-affected
//!   neighbourhoods ([`delta`], [`ensemble`]),
//! * a sharded runtime: a deterministic degree-balanced graph partitioner
//!   with shard-local CSRs, frontier tables and quality metrics
//!   ([`partition`]), and a multi-shard round executor with per-shard
//!   ChaCha8 streams and a counting-sort cross-shard exchange phase that
//!   degenerates bit for bit to the single engine under a 1-shard
//!   partition ([`sharded_engine`]),
//! * a discrete random-walk engine that moves actual reports between nodes,
//!   including the lazy walk used for fault-tolerance modelling ([`walk`]),
//! * simple edge-list I/O ([`io`]).
//!
//! # Example
//!
//! ```
//! use ns_graph::generators::random_regular;
//! use ns_graph::prelude::*;
//!
//! let mut rng = ns_graph::rng::seeded_rng(7);
//! let g = random_regular(1_000, 8, &mut rng).unwrap();
//! assert!(g.is_connected());
//! let spectrum = ns_graph::spectral::SpectralAnalysis::compute(&g, Default::default());
//! let t_mix = ns_graph::mixing::mixing_time(spectrum.spectral_gap(), g.node_count());
//! assert!(t_mix > 0);
//! ```

// `deny` rather than `forbid`: the distribution-ensemble gather kernels in
// `transition.rs` (`TransitionMatrix::propagate_fixed` and its AVX2
// instantiation `propagate_gather8_avx2`) carry audited
// `allow(unsafe_code)` blocks — unchecked CSR/neighbour indexing and
// raw-pointer lane loads justified by construction invariants, plus an
// x86-64 prefetch hint.  Everything else in the crate stays safe.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod connectivity;
pub mod degree;
pub mod delta;
pub mod distribution;
pub mod dynamic;
pub mod ensemble;
pub mod error;
pub mod generators;
pub mod graph;
pub mod io;
pub mod mixing;
pub mod mixing_engine;
pub mod partition;
pub mod rng;
pub mod round;
pub mod sharded_engine;
pub mod spectral;
pub mod stationary;
pub mod telemetry;
pub mod transition;
pub mod walk;

pub use builder::GraphBuilder;
pub use error::{GraphError, Result};
pub use graph::{Graph, NodeId};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::builder::GraphBuilder;
    pub use crate::connectivity::{
        connected_components, is_bipartite, largest_connected_component,
    };
    pub use crate::degree::DegreeStats;
    pub use crate::distribution::PositionDistribution;
    pub use crate::dynamic::{DynTransition, DynamicGraph, MaskedTransition, TimeVaryingModel};
    pub use crate::ensemble::{DistributionEnsemble, EnsembleTrajectory, RowStats};
    pub use crate::error::{GraphError, Result};
    pub use crate::graph::{Graph, NodeId};
    pub use crate::mixing::{mixing_time, sum_p_squared_bound, tv_bound};
    pub use crate::mixing_engine::{MixingEngine, RoundObserver, RoundStats};
    pub use crate::partition::{FrontierEdge, IntraShardTransition, Partition, Shard};
    pub use crate::sharded_engine::{
        shard_stream, EngineCheckpoint, ShardCheckpoint, ShardedMixingEngine,
    };
    pub use crate::spectral::{SpectralAnalysis, SpectralOptions};
    pub use crate::stationary::stationary_distribution;
    pub use crate::transition::{BlackBoxModel, TransitionMatrix, TransitionModel};
    pub use crate::walk::{LazyWalk, WalkConfig, WalkEngine};
}
