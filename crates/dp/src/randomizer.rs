//! The local-randomizer abstraction (Definition 2.2 of the paper).
//!
//! A local randomizer `A : D → R` guarantees that for any two inputs
//! `x, x'`, the output distributions `A(x)` and `A(x')` are
//! `(ε₀, δ₀)`-indistinguishable.  Every user applies such a randomizer to her
//! raw value before participating in network shuffling; this is the
//! worst-case privacy floor that holds even when every other party colludes
//! (Section 3.3).

use crate::types::{PrivacyGuarantee, Result};
use rand::Rng;

/// A locally differentially private randomizer.
///
/// Implementations declare their input and output types and the `(ε₀, δ₀)`
/// guarantee they provide.  Randomization is fallible so that mechanisms can
/// reject inputs outside their declared domain (e.g. a category index out of
/// range, or a non-unit vector handed to PrivUnit).
pub trait LocalRandomizer {
    /// The raw input type.
    type Input: ?Sized;
    /// The randomized-report type.
    type Output;

    /// Randomizes one input value.
    ///
    /// # Errors
    ///
    /// [`crate::types::DpError::DomainViolation`] if the input is outside the
    /// mechanism's domain.
    fn randomize<R: Rng + ?Sized>(&self, input: &Self::Input, rng: &mut R) -> Result<Self::Output>;

    /// The local guarantee `(ε₀, δ₀)` this randomizer provides.
    fn guarantee(&self) -> PrivacyGuarantee;

    /// Shorthand for `self.guarantee().epsilon`.
    fn epsilon(&self) -> f64 {
        self.guarantee().epsilon
    }

    /// Shorthand for `self.guarantee().delta`.
    fn delta(&self) -> f64 {
        self.guarantee().delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::PrivacyGuarantee;

    /// A trivial randomizer used to exercise the trait's default methods.
    struct Identity;

    impl LocalRandomizer for Identity {
        type Input = u8;
        type Output = u8;

        fn randomize<R: Rng + ?Sized>(&self, input: &u8, _rng: &mut R) -> Result<u8> {
            Ok(*input)
        }

        fn guarantee(&self) -> PrivacyGuarantee {
            // The identity offers no privacy; advertise an effectively
            // unbounded epsilon (large but finite so validation passes).
            PrivacyGuarantee::new(1e9, 0.0).expect("valid")
        }
    }

    #[test]
    fn default_accessors_delegate_to_guarantee() {
        let id = Identity;
        assert_eq!(id.epsilon(), 1e9);
        assert_eq!(id.delta(), 0.0);
        let mut rng = crate::rng::seeded_rng(1);
        assert_eq!(id.randomize(&7, &mut rng).unwrap(), 7);
    }
}
