//! Connectivity and bipartiteness analysis.
//!
//! Theorem 4.3 of the paper: a random walk on `G` is ergodic (converges to
//! the stationary distribution from any start) if and only if `G` is
//! connected and not bipartite.  The functions here decide both conditions
//! and extract the largest connected component, which is how the paper
//! preprocesses its real-world datasets (Table 4 uses the largest connected
//! subgraph of each network).

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Assigns each node a component id in `0..component_count` via BFS.
///
/// Returns `(component_of_node, component_count)`.  The empty graph yields
/// `(vec![], 0)`.
pub fn connected_components(graph: &Graph) -> (Vec<usize>, usize) {
    let n = graph.node_count();
    let mut component = vec![usize::MAX; n];
    let mut next_component = 0usize;
    let mut queue = VecDeque::new();

    for start in 0..n {
        if component[start] != usize::MAX {
            continue;
        }
        component[start] = next_component;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                let v = v as usize;
                if component[v] == usize::MAX {
                    component[v] = next_component;
                    queue.push_back(v);
                }
            }
        }
        next_component += 1;
    }
    (component, next_component)
}

/// Returns `true` if the graph is connected.
///
/// The empty graph is considered connected (vacuously); a single node is
/// connected.
pub fn is_connected(graph: &Graph) -> bool {
    let (_, count) = connected_components(graph);
    count <= 1
}

/// Returns `true` if the graph is bipartite (2-colourable).
///
/// Bipartite graphs never mix under the simple random walk because the walk
/// alternates between the two sides; the paper's remedy is a lazy walk
/// ([`crate::walk::LazyWalk`]).
pub fn is_bipartite(graph: &Graph) -> bool {
    let n = graph.node_count();
    let mut color = vec![u8::MAX; n];
    let mut queue = VecDeque::new();

    for start in 0..n {
        if color[start] != u8::MAX {
            continue;
        }
        color[start] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in graph.neighbors(u) {
                let v = v as usize;
                if color[v] == u8::MAX {
                    color[v] = 1 - color[u];
                    queue.push_back(v);
                } else if color[v] == color[u] {
                    return false;
                }
            }
        }
    }
    true
}

/// Extracts the largest connected component as a new graph.
///
/// Returns the component graph together with the mapping
/// `new_id -> original_id`.  Ties between equally-sized components are broken
/// towards the component containing the smallest original node id, which
/// keeps the operation deterministic.
pub fn largest_connected_component(graph: &Graph) -> (Graph, Vec<NodeId>) {
    let n = graph.node_count();
    if n == 0 {
        return (Graph::from_edges(0, &[]).expect("empty graph"), Vec::new());
    }
    let (component, count) = connected_components(graph);
    let mut sizes = vec![0usize; count];
    for &c in &component {
        sizes[c] += 1;
    }
    let best = sizes
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0)))
        .map(|(idx, _)| idx)
        .expect("at least one component");

    let mut old_to_new = vec![usize::MAX; n];
    let mut new_to_old = Vec::new();
    for u in 0..n {
        if component[u] == best {
            old_to_new[u] = new_to_old.len();
            new_to_old.push(u);
        }
    }

    let mut builder = crate::builder::GraphBuilder::new(new_to_old.len());
    for (u, v) in graph.edges() {
        if component[u] == best && component[v] == best {
            builder
                .add_edge(old_to_new[u], old_to_new[v])
                .expect("remapped edge endpoints are in range");
        }
    }
    (builder.build(), new_to_old)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_disjoint_triangles() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).unwrap();
        let (comp, count) = connected_components(&g);
        assert_eq!(count, 2);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[0], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn single_node_and_empty_graph_are_connected() {
        assert!(is_connected(&Graph::from_edges(1, &[]).unwrap()));
        assert!(is_connected(&Graph::from_edges(0, &[]).unwrap()));
    }

    #[test]
    fn isolated_node_breaks_connectivity() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(!is_connected(&g));
    }

    #[test]
    fn bipartiteness_of_cycles() {
        assert!(is_bipartite(&generators::cycle(4).unwrap()));
        assert!(is_bipartite(&generators::cycle(10).unwrap()));
        assert!(!is_bipartite(&generators::cycle(5).unwrap()));
        assert!(!is_bipartite(&generators::cycle(11).unwrap()));
    }

    #[test]
    fn star_and_path_are_bipartite_complete_is_not() {
        assert!(is_bipartite(&generators::star(6).unwrap()));
        assert!(is_bipartite(&generators::path(5).unwrap()));
        assert!(!is_bipartite(&generators::complete(4).unwrap()));
    }

    #[test]
    fn largest_component_extraction() {
        // Component A: 0-1-2 triangle; component B: 3-4 edge; isolated: 5.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let (lcc, map) = largest_connected_component(&g);
        assert_eq!(lcc.node_count(), 3);
        assert_eq!(lcc.edge_count(), 3);
        assert_eq!(map, vec![0, 1, 2]);
        assert!(lcc.is_connected());
    }

    #[test]
    fn largest_component_of_connected_graph_is_identity() {
        let g = generators::complete(5).unwrap();
        let (lcc, map) = largest_connected_component(&g);
        assert_eq!(lcc.node_count(), 5);
        assert_eq!(map, vec![0, 1, 2, 3, 4]);
        assert_eq!(lcc.edge_count(), g.edge_count());
    }

    #[test]
    fn largest_component_of_empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        let (lcc, map) = largest_connected_component(&g);
        assert_eq!(lcc.node_count(), 0);
        assert!(map.is_empty());
    }
}
