//! `A_fix` — local responses with fixed report sizes (Algorithm 3), and the
//! swap reduction used in the proof of Theorem 6.1.
//!
//! These are *analysis devices*: the privacy proof conditions the output of
//! `A_all` on the vector of report sizes `L = (L_1, …, L_n)` and observes
//! that the conditioned distribution equals the output of `A_fix` run on a
//! permuted dataset.  Exposing them as runnable code lets the test suite
//! check the reduction numerically (e.g. that report counts are preserved
//! and that swapping only relocates the first element).

use crate::error::{Error, Result};
use rand::Rng;

/// Algorithm 3: given a dataset `x_1..x_n`, report sizes `ℓ` with
/// `Σ ℓ_i = n`, and a local randomizer, produce the per-user report sets
/// `S_1..S_n` where user `i` receives the randomized reports of the next
/// `ℓ_i` dataset elements in order.
///
/// # Errors
///
/// [`Error::InvalidConfiguration`] if `ℓ` has the wrong length or does not
/// sum to `n`.
pub fn fixed_size_responses<X, P, R: Rng + ?Sized>(
    dataset: &[X],
    report_sizes: &[usize],
    mut randomizer: impl FnMut(&X, &mut R) -> P,
    rng: &mut R,
) -> Result<Vec<Vec<P>>> {
    let n = dataset.len();
    if report_sizes.len() != n {
        return Err(Error::InvalidConfiguration(format!(
            "report_sizes has length {} but the dataset has {n} elements",
            report_sizes.len()
        )));
    }
    let total: usize = report_sizes.iter().sum();
    if total != n {
        return Err(Error::InvalidConfiguration(format!(
            "report sizes must sum to n = {n}, got {total}"
        )));
    }

    let mut output = Vec::with_capacity(n);
    let mut next = 0usize;
    for &size in report_sizes {
        let mut bucket = Vec::with_capacity(size);
        for _ in 0..size {
            bucket.push(randomizer(&dataset[next], rng));
            next += 1;
        }
        output.push(bucket);
    }
    Ok(output)
}

/// The swap operation `σ(D)` of Theorem 6.1: exchange `x_1` with `x_I` for
/// `I` drawn uniformly from `[n]` (possibly `I = 1`, a no-op).
///
/// Returns the swapped dataset together with the chosen index.
///
/// # Errors
///
/// [`Error::InvalidConfiguration`] for an empty dataset.
pub fn swap_first_uniform<X: Clone, R: Rng + ?Sized>(
    dataset: &[X],
    rng: &mut R,
) -> Result<(Vec<X>, usize)> {
    if dataset.is_empty() {
        return Err(Error::InvalidConfiguration(
            "cannot swap within an empty dataset".into(),
        ));
    }
    let mut swapped = dataset.to_vec();
    let index = rng.gen_range(0..dataset.len());
    swapped.swap(0, index);
    Ok((swapped, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_graph::rng::seeded_rng;

    #[test]
    fn buckets_have_requested_sizes_and_consume_dataset_in_order() {
        let dataset: Vec<u32> = (0..6).collect();
        let sizes = vec![2, 0, 3, 0, 1, 0];
        let mut rng = seeded_rng(1);
        let out = fixed_size_responses(&dataset, &sizes, |x, _| *x * 10, &mut rng).unwrap();
        assert_eq!(out.len(), 6);
        assert_eq!(out[0], vec![0, 10]);
        assert!(out[1].is_empty());
        assert_eq!(out[2], vec![20, 30, 40]);
        assert_eq!(out[4], vec![50]);
        let total: usize = out.iter().map(|b| b.len()).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn validates_report_sizes() {
        let dataset: Vec<u32> = (0..4).collect();
        let mut rng = seeded_rng(2);
        assert!(fixed_size_responses(&dataset, &[1, 1, 1], |x, _| *x, &mut rng).is_err());
        assert!(fixed_size_responses(&dataset, &[2, 2, 1, 0], |x, _| *x, &mut rng).is_err());
        assert!(fixed_size_responses(&dataset, &[4, 0, 0, 0], |x, _| *x, &mut rng).is_ok());
    }

    #[test]
    fn swap_relocates_only_the_first_element() {
        let dataset = vec!["a", "b", "c", "d"];
        let mut rng = seeded_rng(3);
        for _ in 0..50 {
            let (swapped, index) = swap_first_uniform(&dataset, &mut rng).unwrap();
            assert_eq!(swapped.len(), 4);
            assert_eq!(swapped[0], dataset[index]);
            assert_eq!(swapped[index], "a");
            // All other positions unchanged.
            for (i, value) in swapped.iter().enumerate() {
                if i != 0 && i != index {
                    assert_eq!(*value, dataset[i]);
                }
            }
        }
        assert!(swap_first_uniform::<u32, _>(&[], &mut rng).is_err());
    }

    #[test]
    fn swap_index_is_roughly_uniform() {
        let dataset: Vec<u32> = (0..5).collect();
        let mut rng = seeded_rng(4);
        let mut counts = [0usize; 5];
        let trials = 20_000;
        for _ in 0..trials {
            let (_, index) = swap_first_uniform(&dataset, &mut rng).unwrap();
            counts[index] += 1;
        }
        for &c in &counts {
            let freq = c as f64 / trials as f64;
            assert!((freq - 0.2).abs() < 0.02, "freq = {freq}");
        }
    }
}
