//! Page-granular segment files — the storage primitive under the WAL and
//! snapshot layers, in the SimpleDB/bustub idiom: a segment is an array of
//! fixed-size pages addressed by page number, and *all* disk I/O in this
//! crate moves whole pages (the tail page of an append-only log being the
//! one partially-filled exception).

use crate::error::Result;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Fixed page size of every segment file.
pub const PAGE_SIZE: usize = 4096;

/// A file of fixed-size pages.
#[derive(Debug)]
pub struct SegmentFile {
    file: File,
}

impl SegmentFile {
    /// Opens (creating if absent) the segment at `path` for reading and
    /// writing.
    ///
    /// # Errors
    ///
    /// I/O errors from open/create.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(SegmentFile { file })
    }

    /// Current byte length of the segment.
    ///
    /// # Errors
    ///
    /// I/O errors from metadata.
    pub fn len(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// Whether the segment holds no bytes.
    ///
    /// # Errors
    ///
    /// I/O errors from metadata.
    pub fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Reads page `page_no` into `buf` (which must be `PAGE_SIZE` long),
    /// returning how many bytes were actually present — the tail page of an
    /// append-only segment may be partial; the rest of `buf` is zeroed.
    ///
    /// # Errors
    ///
    /// I/O errors from seek/read.
    pub fn read_page(&mut self, page_no: u64, buf: &mut [u8]) -> Result<usize> {
        assert_eq!(buf.len(), PAGE_SIZE, "page buffers are PAGE_SIZE bytes");
        self.file
            .seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
        let mut filled = 0;
        while filled < PAGE_SIZE {
            let n = self.file.read(&mut buf[filled..])?;
            if n == 0 {
                break;
            }
            filled += n;
        }
        buf[filled..].fill(0);
        Ok(filled)
    }

    /// Writes the first `len` bytes of `buf` as page `page_no` (the
    /// append-only tail-page case writes `len < PAGE_SIZE`).
    ///
    /// # Errors
    ///
    /// I/O errors from seek/write.
    pub fn write_page(&mut self, page_no: u64, buf: &[u8], len: usize) -> Result<()> {
        assert!(len <= buf.len() && buf.len() == PAGE_SIZE);
        self.file
            .seek(SeekFrom::Start(page_no * PAGE_SIZE as u64))?;
        self.file.write_all(&buf[..len])?;
        Ok(())
    }

    /// Truncates the segment to `len` bytes — recovery's discard of a torn
    /// tail.
    ///
    /// # Errors
    ///
    /// I/O errors from set_len.
    pub fn truncate(&mut self, len: u64) -> Result<()> {
        self.file.set_len(len)?;
        Ok(())
    }

    /// Forces written pages to stable storage (`fdatasync`).
    ///
    /// # Errors
    ///
    /// I/O errors from the sync.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pages_roundtrip_and_tail_pages_are_partial() {
        let dir = std::env::temp_dir().join("ns_store_page_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.bin");
        let _ = std::fs::remove_file(&path);
        let mut seg = SegmentFile::open(&path).unwrap();
        assert!(seg.is_empty().unwrap());
        let mut page = vec![0u8; PAGE_SIZE];
        page[0] = 0xAB;
        page[PAGE_SIZE - 1] = 0xCD;
        seg.write_page(0, &page, PAGE_SIZE).unwrap();
        let mut tail = vec![0u8; PAGE_SIZE];
        tail[0] = 0xEE;
        tail[9] = 0xFF;
        seg.write_page(1, &tail, 10).unwrap();
        assert_eq!(seg.len().unwrap(), PAGE_SIZE as u64 + 10);
        let mut buf = vec![0u8; PAGE_SIZE];
        assert_eq!(seg.read_page(0, &mut buf).unwrap(), PAGE_SIZE);
        assert_eq!(buf, page);
        assert_eq!(seg.read_page(1, &mut buf).unwrap(), 10);
        assert_eq!(buf[0], 0xEE);
        assert_eq!(buf[9], 0xFF);
        assert!(buf[10..].iter().all(|&b| b == 0));
        seg.truncate(PAGE_SIZE as u64).unwrap();
        assert_eq!(seg.read_page(1, &mut buf).unwrap(), 0);
        seg.sync().unwrap();
        std::fs::remove_file(&path).unwrap();
    }
}
