//! Figure 8 — parameter dependencies at the stationary limit.
//!
//! Graph-free sweep of the closed-form bounds: for `Γ_G ∈ {1, 10}` and
//! `n ∈ {10⁴, 10⁶}`, the central ε of both protocols is plotted against ε₀,
//! next to the no-amplification reference `ε = ε₀`.
//!
//! ```text
//! cargo run --release -p ns-bench --bin fig8
//! ```

use network_shuffle::prelude::{all_protocol_epsilon, single_protocol_epsilon, AccountantParams};
use ns_bench::{fmt, linspace, print_table, write_csv, DELTA};

fn main() {
    let epsilon_grid = linspace(0.2, 2.0, 10);
    let populations = [10_000usize, 1_000_000];
    let gammas = [1.0f64, 10.0];

    let mut headers: Vec<String> = vec!["eps0".into(), "no amp".into()];
    for &n in &populations {
        for &gamma in &gammas {
            for protocol in ["A_all", "A_single"] {
                headers.push(format!(
                    "n=1e{} G={} {}",
                    (n as f64).log10() as u32,
                    gamma,
                    protocol
                ));
            }
        }
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    for &eps0 in &epsilon_grid {
        let mut row = vec![fmt(eps0), fmt(eps0)];
        for &n in &populations {
            for &gamma in &gammas {
                let params = AccountantParams::new(n, eps0, DELTA, DELTA).expect("valid params");
                let sum_p_sq = gamma / n as f64;
                let all = all_protocol_epsilon(&params, sum_p_sq, 1.0)
                    .expect("valid")
                    .epsilon;
                let single = single_protocol_epsilon(&params, sum_p_sq)
                    .expect("valid")
                    .epsilon;
                row.push(fmt(all));
                row.push(fmt(single));
            }
        }
        rows.push(row);
    }

    print_table(
        "Figure 8: stationary-limit central epsilon vs. eps0 for Gamma in {1, 10}, n in {1e4, 1e6}",
        &header_refs,
        &rows,
    );
    write_csv("fig8", &header_refs, &rows);
    println!(
        "\nshape check: larger n and smaller Gamma give stronger amplification; regular graphs\n\
         (Gamma = 1) dominate irregular ones (Gamma = 10) for both protocols, and at large eps0\n\
         the A_single curves drop below the A_all curves, matching Figure 8."
    );
}
