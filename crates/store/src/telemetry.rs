//! Durable-runtime telemetry: WAL latency histograms, buffer-pool and
//! snapshot/replay accounting over the `ns-obs` registry.
//!
//! Same contract as the engine and service bundles: preregistered slots,
//! relaxed atomic recording, no effect on any durable byte — a run with
//! telemetry attached writes the identical WAL, snapshots and ledger.
//! The trace side (round events, snapshot/recover events, the admission
//! audit) funnels through the service layer's shared
//! [`network_shuffle::telemetry::AuditSink`] so one `trace.jsonl` carries
//! the whole story in record order.

use ns_obs::{Clock, Gauge, Histogram, MetricsRegistry};

/// Metric names the durable runtime registers (the README's catalogue).
pub mod names {
    /// WAL record append latency (buffered write + tail-page update), ns.
    pub const WAL_APPEND_NS: &str = "ns_wal_append_ns";
    /// WAL fsync latency — every sync, eager or group boundary, ns.
    pub const WAL_FSYNC_NS: &str = "ns_wal_fsync_ns";
    /// Latency of the syncs closing a round group commit, ns.
    pub const WAL_GROUP_COMMIT_NS: &str = "ns_wal_group_commit_ns";
    /// WAL length in bytes after the latest append.
    pub const WAL_LEN_BYTES: &str = "ns_wal_len_bytes";
    /// Snapshot capture-and-write latency, ns.
    pub const SNAPSHOT_WRITE_NS: &str = "ns_snapshot_write_ns";
    /// Recovery replay latency (scan + snapshot load + round re-execution),
    /// ns.
    pub const REPLAY_NS: &str = "ns_replay_ns";
    /// Buffer-pool page hits (cumulative, latest folded pool).
    pub const POOL_HITS: &str = "ns_pool_hits";
    /// Buffer-pool page misses.
    pub const POOL_MISSES: &str = "ns_pool_misses";
    /// Buffer-pool clock evictions.
    pub const POOL_EVICTIONS: &str = "ns_pool_evictions";
}

/// Preregistered handles for the durable runtime.  Clone-cheap (`Arc`
/// bumps).
#[derive(Clone, Debug)]
pub struct StoreTelemetry {
    pub(crate) clock: Clock,
    pub(crate) wal_append_ns: Histogram,
    pub(crate) wal_fsync_ns: Histogram,
    pub(crate) group_commit_ns: Histogram,
    pub(crate) wal_len: Gauge,
    pub(crate) snapshot_write_ns: Histogram,
    pub(crate) replay_ns: Histogram,
    pool_hits: Gauge,
    pool_misses: Gauge,
    pool_evictions: Gauge,
}

impl StoreTelemetry {
    /// Registers (or re-binds) the durable-runtime metrics in `registry`.
    pub fn register(registry: &MetricsRegistry) -> Self {
        StoreTelemetry {
            clock: registry.clock().clone(),
            wal_append_ns: registry.histogram(names::WAL_APPEND_NS),
            wal_fsync_ns: registry.histogram(names::WAL_FSYNC_NS),
            group_commit_ns: registry.histogram(names::WAL_GROUP_COMMIT_NS),
            wal_len: registry.gauge(names::WAL_LEN_BYTES),
            snapshot_write_ns: registry.histogram(names::SNAPSHOT_WRITE_NS),
            replay_ns: registry.histogram(names::REPLAY_NS),
            pool_hits: registry.gauge(names::POOL_HITS),
            pool_misses: registry.gauge(names::POOL_MISSES),
            pool_evictions: registry.gauge(names::POOL_EVICTIONS),
        }
    }

    /// Publishes a [`crate::buffer::BufferPool`]'s cumulative counters —
    /// pools are short-lived (one per scan/load), so the gauges hold the
    /// latest folded pool's totals.
    pub fn record_pool(&self, pool: &crate::buffer::BufferPool) {
        let (hits, misses) = pool.stats();
        self.record_pool_stats((hits, misses, pool.evictions()));
    }

    /// Publishes already-extracted `(hits, misses, evictions)` counters —
    /// the [`crate::wal::WalScan::pool_stats`] form.
    pub fn record_pool_stats(&self, (hits, misses, evictions): (u64, u64, u64)) {
        self.pool_hits.set(hits);
        self.pool_misses.set(misses);
        self.pool_evictions.set(evictions);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_catalogue_round_trips() {
        let registry = MetricsRegistry::new();
        let t = StoreTelemetry::register(&registry);
        t.wal_append_ns.record(1000);
        t.wal_len.set(4096);
        let rendered = registry.render();
        assert!(rendered.contains("histogram ns_wal_append_ns count=1"));
        assert!(rendered.contains("gauge ns_wal_len_bytes 4096"));
    }
}
