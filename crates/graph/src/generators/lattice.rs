//! Lattice topologies: the 2-D torus grid.
//!
//! Wireless-sensor and IoT deployments often communicate with geographic
//! neighbours only, which makes the communication network grid-like.  Grids
//! are 4-regular but mix far more slowly than random regular graphs
//! (`α = Θ(1/n)` instead of `Θ(1)`), so they are the stress case for the
//! "how many rounds do we need" question.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;

/// Generates the `rows × cols` torus grid: node `(r, c)` is connected to its
/// four neighbours with wrap-around.  The result is 4-regular (2-regular
/// along a dimension of size 2) and non-bipartite iff at least one dimension
/// is odd.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if either dimension is smaller than 3
/// (wrap-around would create duplicate edges or self-loops).
pub fn torus(rows: usize, cols: usize) -> Result<Graph> {
    if rows < 3 || cols < 3 {
        return Err(GraphError::InvalidParameters(format!(
            "torus requires both dimensions >= 3, got {rows} x {cols}"
        )));
    }
    let index = |r: usize, c: usize| r * cols + c;
    let mut builder = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            builder.add_edge(index(r, c), index((r + 1) % rows, c))?;
            builder.add_edge(index(r, c), index(r, (c + 1) % cols))?;
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_dimensions() {
        assert!(torus(2, 5).is_err());
        assert!(torus(5, 2).is_err());
        assert!(torus(3, 3).is_ok());
    }

    #[test]
    fn torus_is_4_regular_and_connected() {
        let g = torus(5, 7).unwrap();
        assert_eq!(g.node_count(), 35);
        assert!(g.is_regular());
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.edge_count(), 2 * 35);
        assert!(g.is_connected());
    }

    #[test]
    fn bipartiteness_depends_on_parity() {
        assert!(torus(4, 6).unwrap().is_bipartite());
        assert!(!torus(5, 6).unwrap().is_bipartite());
        assert!(!torus(5, 7).unwrap().is_bipartite());
    }

    #[test]
    fn torus_mixes_much_slower_than_a_random_regular_graph() {
        let grid = torus(15, 15).unwrap(); // 225 nodes, 4-regular, odd dims
        let random =
            crate::generators::random_regular(225, 4, &mut crate::rng::seeded_rng(1)).unwrap();
        let opts = crate::spectral::SpectralOptions::default();
        let gap_grid = crate::spectral::SpectralAnalysis::compute(&grid, opts).spectral_gap();
        let gap_random = crate::spectral::SpectralAnalysis::compute(&random, opts).spectral_gap();
        assert!(
            gap_grid < gap_random / 3.0,
            "grid gap {gap_grid}, random gap {gap_random}"
        );
    }
}
