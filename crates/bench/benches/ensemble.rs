//! Blocked distribution-ensemble kernel vs. the naive per-origin loop.
//!
//! On a 100k-node Chung–Lu graph, a batch of origins is evolved to the
//! accounting horizon either through the blocked interleaved kernel or
//! through the naive loop — one full `propagate_into` CSR sweep per origin
//! per round.  Besides the criterion-style per-path timings,
//! `bench_speedup_ratio` times both paths back to back on identical inputs
//! and prints the ratio directly.
//!
//! Interpreting the ratio: the blocked kernel streams the CSR arrays once
//! per 8 origins instead of once per origin and delivers 8 lanes per edge
//! through two AVX2 accumulator chains, so its advantage scales with how
//! much the naive loop pays for re-streaming the graph.  On hosts whose
//! last-level cache swallows the whole problem (CSR + both buffers), the
//! naive loop pays nothing and the measured gap narrows to the SIMD factor;
//! container-class vCPUs with 2 MB L2 and a large shared L3 are the worst
//! case, and the sparsity short-cut of `propagate_into` (zero-mass nodes
//! are skipped) further flatters the naive loop in the pre-mixing rounds.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ns_graph::connectivity::largest_connected_component;
use ns_graph::ensemble::DistributionEnsemble;
use ns_graph::rng::seeded_rng;
use ns_graph::transition::TransitionMatrix;
use ns_graph::Graph;
use std::time::Instant;

const NODES: usize = 100_000;
const SOURCES: usize = 64;
/// Rounds per origin: the accounting horizon (≈ the mixing time of the
/// benchmark graph), where exact `Σ P²` values are actually consumed.
const ROUNDS: usize = 20;

/// A 100k-node Chung–Lu graph with a mildly heavy-tailed expected-degree
/// sequence (mean ≈ 6) — the irregular-topology setting the exact
/// accounting route exists for.
fn graph() -> Graph {
    let weights: Vec<f64> = (0..NODES)
        .map(|i| 3.0 + 9.0 * ((i % 10) as f64) / 9.0)
        .collect();
    let raw = ns_graph::generators::chung_lu(&weights, &mut seeded_rng(1)).expect("graph");
    largest_connected_component(&raw).0
}

fn origins(n: usize) -> Vec<usize> {
    (0..SOURCES).map(|i| i * (n / SOURCES)).collect()
}

/// The naive route: each origin evolved independently, every round paying a
/// full sweep of the CSR offsets/neighbour arrays.
fn naive_per_origin(transition: &TransitionMatrix, origins: &[usize], rounds: usize) -> f64 {
    let n = transition.node_count();
    let mut current = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];
    let mut checksum = 0.0;
    for &origin in origins {
        current.fill(0.0);
        current[origin] = 1.0;
        for _ in 0..rounds {
            transition.propagate_into(&current, &mut next);
            std::mem::swap(&mut current, &mut next);
        }
        checksum += current.iter().map(|x| x * x).sum::<f64>();
    }
    checksum
}

/// The blocked route: all origins in one ensemble, lanes interleaved.
fn blocked_ensemble(transition: &TransitionMatrix, origins: &[usize], rounds: usize) -> f64 {
    let n = transition.node_count();
    let mut ensemble = DistributionEnsemble::point_masses(n, origins).expect("ensemble");
    ensemble.advance(transition, rounds);
    (0..ensemble.sources())
        .map(|row| ensemble.row_stats(row).sum_of_squares)
        .sum()
}

fn bench_kernels(c: &mut Criterion) {
    let graph = graph();
    let transition = TransitionMatrix::new(&graph).expect("transition");
    let origins = origins(graph.node_count());
    let mut group = c.benchmark_group("ensemble_100k");
    group.sample_size(10);
    group.bench_function("blocked_64x20", |b| {
        b.iter(|| black_box(blocked_ensemble(&transition, &origins, ROUNDS)));
    });
    group.bench_function("naive_64x20", |b| {
        b.iter(|| black_box(naive_per_origin(&transition, &origins, ROUNDS)));
    });
    group.finish();
}

/// Times both kernels back to back and prints the speedup ratio — the
/// number the acceptance criterion asks for.
fn bench_speedup_ratio(_c: &mut Criterion) {
    let graph = graph();
    let transition = TransitionMatrix::new(&graph).expect("transition");
    let origins = origins(graph.node_count());
    let time = |f: &dyn Fn() -> f64| {
        // One warm-up, then the best of three timed runs.
        f();
        (0..3)
            .map(|_| {
                let start = Instant::now();
                black_box(f());
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let blocked = time(&|| blocked_ensemble(&transition, &origins, ROUNDS));
    let naive = time(&|| naive_per_origin(&transition, &origins, ROUNDS));
    let parity = (blocked_ensemble(&transition, &origins, ROUNDS)
        - naive_per_origin(&transition, &origins, ROUNDS))
    .abs();
    println!(
        "speedup: blocked ensemble {blocked:.3} s vs naive per-origin {naive:.3} s \
         -> {:.2}x (n = {}, sources = {SOURCES}, rounds = {ROUNDS}, checksum delta = {parity:.1e})",
        naive / blocked,
        graph.node_count()
    );
}

criterion_group!(benches, bench_kernels, bench_speedup_ratio);
criterion_main!(benches);
