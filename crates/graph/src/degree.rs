//! Degree statistics and the graph irregularity measure `Γ_G`.
//!
//! The paper's privacy theorems depend on the graph only through
//! `Σ_i (P_i^G)²`.  At stationarity `P^G = π^G = k / 2m`, so
//!
//! ```text
//! Γ_G = n · Σ_i π_i²  =  n · Σ_i k_i² / (Σ_i k_i)²  =  ⟨k²⟩ / ⟨k⟩²
//! ```
//!
//! which is the normalized second moment of the degree distribution (Table 2
//! of the paper).  `Γ_G = 1` exactly for regular graphs and grows with degree
//! heterogeneity; Table 4 reports `Γ_G ≈ 5.0` for the Facebook page network
//! and `≈ 36.9` for the Enron e-mail graph.

use crate::graph::Graph;
use serde::{Deserialize, Serialize};

/// Summary statistics of a graph's degree sequence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DegreeStats {
    /// Number of nodes `n`.
    pub node_count: usize,
    /// Number of undirected edges `m`.
    pub edge_count: usize,
    /// Minimum degree.
    pub min_degree: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree `⟨k⟩ = 2m / n`.
    pub mean_degree: f64,
    /// Second moment of the degree distribution `⟨k²⟩`.
    pub second_moment: f64,
    /// Irregularity measure `Γ_G = ⟨k²⟩ / ⟨k⟩² = n Σ_i π_i²`.
    pub irregularity: f64,
}

impl DegreeStats {
    /// Computes degree statistics for `graph`.
    ///
    /// Returns `None` for the empty graph or a graph with no edges, for
    /// which `Γ_G` is undefined.
    pub fn compute(graph: &Graph) -> Option<Self> {
        let n = graph.node_count();
        if n == 0 || graph.edge_count() == 0 {
            return None;
        }
        let degrees = graph.degrees();
        let min_degree = *degrees.iter().min().expect("non-empty");
        let max_degree = *degrees.iter().max().expect("non-empty");
        let sum: f64 = degrees.iter().map(|&k| k as f64).sum();
        let sum_sq: f64 = degrees.iter().map(|&k| (k as f64) * (k as f64)).sum();
        let mean = sum / n as f64;
        let second_moment = sum_sq / n as f64;
        let irregularity = second_moment / (mean * mean);
        Some(DegreeStats {
            node_count: n,
            edge_count: graph.edge_count(),
            min_degree,
            max_degree,
            mean_degree: mean,
            second_moment,
            irregularity,
        })
    }
}

/// Computes `Γ_G = n Σ_i π_i²` directly from the stationary distribution.
///
/// Equivalent to [`DegreeStats::compute`]'s `irregularity` field but useful
/// when the stationary distribution is already at hand; also works for an
/// arbitrary position distribution `P` (giving the time-dependent
/// `Γ_G(t) = n Σ_i P_i(t)²` used in the finite-time analysis).
pub fn irregularity_from_distribution(p: &[f64]) -> f64 {
    let n = p.len() as f64;
    n * p.iter().map(|x| x * x).sum::<f64>()
}

/// `Σ_i P_i²` of a distribution — the quantity the privacy theorems consume.
pub fn sum_of_squares(p: &[f64]) -> f64 {
    p.iter().map(|x| x * x).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn regular_graph_has_unit_irregularity() {
        let g = generators::cycle(10).unwrap();
        let stats = DegreeStats::compute(&g).unwrap();
        assert!((stats.irregularity - 1.0).abs() < 1e-12);
        assert_eq!(stats.min_degree, 2);
        assert_eq!(stats.max_degree, 2);
        assert!((stats.mean_degree - 2.0).abs() < 1e-12);
    }

    #[test]
    fn star_graph_irregularity_matches_formula() {
        // Star on n nodes: one hub of degree n-1, n-1 leaves of degree 1.
        // <k> = 2(n-1)/n, <k^2> = ((n-1)^2 + (n-1))/n = (n-1)n/n = n-1.
        // Gamma = (n-1) / (2(n-1)/n)^2 = n^2 / (4(n-1)).
        let n = 11usize;
        let g = generators::star(n).unwrap();
        let stats = DegreeStats::compute(&g).unwrap();
        let expected = (n * n) as f64 / (4.0 * (n as f64 - 1.0));
        assert!((stats.irregularity - expected).abs() < 1e-9);
    }

    #[test]
    fn empty_and_edgeless_graphs_have_no_stats() {
        assert!(DegreeStats::compute(&Graph::from_edges(0, &[]).unwrap()).is_none());
        assert!(DegreeStats::compute(&Graph::from_edges(5, &[]).unwrap()).is_none());
    }

    #[test]
    fn irregularity_from_uniform_distribution_is_one() {
        let p = vec![0.25; 4];
        assert!((irregularity_from_distribution(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn irregularity_from_point_mass_is_n() {
        let mut p = vec![0.0; 8];
        p[3] = 1.0;
        assert!((irregularity_from_distribution(&p) - 8.0).abs() < 1e-12);
        assert!((sum_of_squares(&p) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_agree_with_stationary_distribution_route() {
        let g = generators::star(7).unwrap();
        let stats = DegreeStats::compute(&g).unwrap();
        let pi = crate::stationary::stationary_distribution(&g).unwrap();
        let gamma = irregularity_from_distribution(&pi);
        assert!((stats.irregularity - gamma).abs() < 1e-9);
    }
}
