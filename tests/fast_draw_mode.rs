//! Contracts of the `fast` draw mode and the pipelined sharded exchange.
//!
//! Fast mode replaces compat's rejection-sampled two-draw rule (one `f64`
//! laziness coin, one `gen_range` neighbour index) with exactly one `u64`
//! per walker, split into a 32-bit threshold coin and a 32-bit Lemire
//! neighbour draw.  The streams necessarily differ, so the contract is not
//! bitwise parity with compat but:
//!
//! * **same distribution** — Monte-Carlo return-rate and empty-fraction
//!   statistics on the shared graph zoo must agree between modes within
//!   sampling error;
//! * **same composition laws** — the 1-shard sharded engine is bitwise the
//!   monolithic holder path *in fast mode too*, threaded sampling is
//!   bitwise sequential sampling, and the pipelined round loop is bitwise
//!   the sequential `step` loop;
//! * **seed determinism** — same seed, same trajectories; different seed,
//!   different trajectories.
//!
//! Bitwise stream pinning for fast mode itself lives in
//! `tests/golden_round_traces.rs` (`round_traces_fast.txt`).

mod common;

use common::strategies;
use ns_graph::mixing_engine::MixingEngine;
use ns_graph::partition::Partition;
use ns_graph::rng::seeded_rng;
use ns_graph::round::DrawMode;
use ns_graph::sharded_engine::{shard_stream, ShardedMixingEngine};
use ns_graph::Graph;
use proptest::prelude::*;

/// Mean return-rate (walkers back at their origin) and empty-fraction
/// (nodes holding no walker) over `trials` independent runs of `rounds`
/// holder-order rounds in the given draw mode.
fn monte_carlo_stats(
    graph: &Graph,
    mode: DrawMode,
    laziness: f64,
    rounds: usize,
    trials: u64,
) -> (f64, f64) {
    let n = graph.node_count();
    let (mut returned, mut empty) = (0usize, 0usize);
    for trial in 0..trials {
        let mut engine = MixingEngine::one_walker_per_node(graph).unwrap();
        engine.set_draw_mode(mode);
        let mut rng = seeded_rng(0x5EED_0000 + trial);
        for _ in 0..rounds {
            engine.step_holder(laziness, &mut rng, &mut ());
        }
        returned += engine
            .positions()
            .iter()
            .enumerate()
            .filter(|&(w, &p)| w == p as usize)
            .count();
        empty += graph
            .nodes()
            .filter(|&u| engine.held_by(u).is_empty())
            .count();
    }
    let scale = (trials as f64) * n as f64;
    (returned as f64 / scale, empty as f64 / scale)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Fast and compat draws realize the same walk distribution: on any zoo
    /// graph, the Monte-Carlo return-rate and empty-fraction agree within
    /// sampling error (40 trials of 6 rounds; the tolerance is ~5 standard
    /// errors of the trial means at these sizes).
    #[test]
    fn fast_mode_matches_compat_statistics_on_the_zoo(
        graph in strategies::graph_zoo(60..140),
        laziness_pct in 0usize..50,
    ) {
        prop_assume!(graph.node_count() >= 40);
        let laziness = laziness_pct as f64 / 100.0;
        let (ret_compat, empty_compat) =
            monte_carlo_stats(&graph, DrawMode::Compat, laziness, 6, 40);
        let (ret_fast, empty_fast) =
            monte_carlo_stats(&graph, DrawMode::Fast, laziness, 6, 40);
        prop_assert!(
            (ret_compat - ret_fast).abs() < 0.05,
            "return-rate diverged: compat={ret_compat} fast={ret_fast}"
        );
        prop_assert!(
            (empty_compat - empty_fast).abs() < 0.05,
            "empty-fraction diverged: compat={empty_compat} fast={empty_fast}"
        );
    }

    /// The 1-shard degeneracy holds in fast mode: the sharded engine under
    /// a single-shard partition is bitwise the monolithic holder-order path
    /// drawing from `shard_stream(seed, 0)`.
    #[test]
    fn fast_one_shard_is_bitwise_the_monolithic_fast_engine(
        graph in strategies::graph_zoo(30..120),
        laziness_pct in 0usize..50,
        rounds in 1usize..8,
        seed in 0u64..1000,
    ) {
        prop_assume!(graph.node_count() >= 10);
        let laziness = laziness_pct as f64 / 100.0;
        let partition = Partition::single_shard(&graph).unwrap();
        let mut sharded =
            ShardedMixingEngine::one_walker_per_node(&graph, &partition, seed).unwrap();
        sharded.set_draw_mode(DrawMode::Fast);
        let mut single = MixingEngine::one_walker_per_node(&graph).unwrap();
        single.set_draw_mode(DrawMode::Fast);
        let mut rng = shard_stream(seed, 0);
        for _ in 0..rounds {
            sharded.step(laziness, &mut ());
            single.step_holder(laziness, &mut rng, &mut ());
        }
        prop_assert_eq!(sharded.positions(), single.positions());
        prop_assert_eq!(sharded.walkers_by_holder(), single.walkers_by_holder());
    }

    /// The pipelined round loop is a *schedule*, not a semantic: for any
    /// shard count, draw mode and mask, `run_pipelined` over `rounds`
    /// rounds lands bitwise where `rounds` sequential `step` calls land —
    /// positions, bucket orders and every shard's RNG stream position.
    #[test]
    fn pipelined_rounds_are_bitwise_the_sequential_schedule(
        graph in strategies::graph_zoo(40..160),
        shards in 1usize..5,
        laziness_pct in 0usize..50,
        rounds in 1usize..7,
        mode_sel in 0usize..2,
        masked_sel in 0usize..2,
    ) {
        let n = graph.node_count();
        prop_assume!(n >= 20);
        let laziness = laziness_pct as f64 / 100.0;
        let mode = if mode_sel == 0 { DrawMode::Compat } else { DrawMode::Fast };
        let partition = if shards == 1 {
            Partition::single_shard(&graph).unwrap()
        } else {
            Partition::new(&graph, shards).unwrap()
        };
        let mask: Vec<bool> = (0..n).map(|u| !(u * 3 + 1).is_multiple_of(5)).collect();
        let masked = masked_sel == 1;

        let mut sequential =
            ShardedMixingEngine::one_walker_per_node(&graph, &partition, 77).unwrap();
        sequential.set_draw_mode(mode);
        for _ in 0..rounds {
            if masked {
                sequential.step_masked(laziness, &mask, &mut ());
            } else {
                sequential.step(laziness, &mut ());
            }
        }

        let mut pipelined =
            ShardedMixingEngine::one_walker_per_node(&graph, &partition, 77).unwrap();
        pipelined.set_draw_mode(mode);
        if masked {
            pipelined.run_pipelined_masked(laziness, &mask, rounds);
        } else {
            pipelined.run_pipelined(laziness, rounds);
        }

        prop_assert_eq!(sequential.positions(), pipelined.positions());
        prop_assert_eq!(sequential.walkers_by_holder(), pipelined.walkers_by_holder());
        prop_assert_eq!(sequential.round(), pipelined.round());
        prop_assert_eq!(sequential.load_vector(), pipelined.load_vector());
        use rand::Rng;
        for s in 0..partition.shard_count() {
            let a: u64 = sequential.shard_rng_mut(s).gen();
            let b: u64 = pipelined.shard_rng_mut(s).gen();
            prop_assert_eq!(a, b, "shard {} stream position diverged", s);
        }
    }

    /// Threaded sampling in fast mode is bitwise the sequential fast round,
    /// for any shard count (thread-count invariance is inherited: workers
    /// only ever touch their own shard's stream and outbox row).
    #[test]
    fn fast_threaded_rounds_match_sequential(
        graph in strategies::graph_zoo(40..140),
        shards in 1usize..5,
        rounds in 1usize..6,
    ) {
        prop_assume!(graph.node_count() >= 20);
        let partition = if shards == 1 {
            Partition::single_shard(&graph).unwrap()
        } else {
            Partition::new(&graph, shards).unwrap()
        };
        let mut sequential =
            ShardedMixingEngine::one_walker_per_node(&graph, &partition, 9).unwrap();
        sequential.set_draw_mode(DrawMode::Fast);
        let mut threaded =
            ShardedMixingEngine::one_walker_per_node(&graph, &partition, 9).unwrap();
        threaded.set_draw_mode(DrawMode::Fast);
        for _ in 0..rounds {
            sequential.step(0.2, &mut ());
            threaded.step_threaded(0.2, &mut ());
        }
        prop_assert_eq!(sequential.positions(), threaded.positions());
        prop_assert_eq!(sequential.walkers_by_holder(), threaded.walkers_by_holder());
    }
}

/// Seed determinism of fast mode outside proptest (fixed sizes, cheap).
#[test]
fn fast_mode_is_deterministic_in_the_seed() {
    let graph = ns_graph::generators::random_regular(200, 6, &mut seeded_rng(5)).unwrap();
    let run = |seed: u64| {
        let mut engine = MixingEngine::one_walker_per_node(&graph).unwrap();
        engine.set_draw_mode(DrawMode::Fast);
        let mut rng = seeded_rng(seed);
        for _ in 0..12 {
            engine.step_holder(0.1, &mut rng, &mut ());
        }
        engine.positions().to_vec()
    };
    assert_eq!(run(7), run(7));
    assert_ne!(run(7), run(8));
}
