//! # network-shuffle
//!
//! A from-scratch Rust implementation of **network shuffling** — the
//! decentralized privacy-amplification mechanism of *"Network Shuffling:
//! Privacy Amplification via Random Walks"* (Liew, Takahashi, Takagi, Kato,
//! Cao, Yoshikawa; SIGMOD 2022).
//!
//! In the shuffle model of differential privacy, users locally randomize
//! their reports and a trusted shuffler breaks the link between a report and
//! its sender, amplifying the local ε₀ guarantee into a much stronger
//! central one.  Network shuffling removes the trusted shuffler: users
//! exchange their (encrypted) reports with random neighbours on a
//! communication graph for `t` rounds before uploading them, so that after
//! mixing every user is a plausible origin of every report.
//!
//! ## What the crate provides
//!
//! * [`protocol`] — the client-side protocols `A_all` and `A_single`
//!   (Algorithms 1 and 2) plus the analysis device `A_fix` (Algorithm 3);
//! * [`crypto`] — the simulated two-layer envelope encryption / PKI of the
//!   paper's communication protocol (Section 4.4);
//! * [`simulation`] — a deterministic round-based execution of the whole
//!   population on the batched mixing engine, with streamed traffic/memory
//!   metrics (Table 3) and the historical per-client loop preserved as
//!   [`simulation::reference`];
//! * [`server`] / [`adversary`] — the curator's view and empirical linkage
//!   measurements (Section 3.3);
//! * [`accountant`] — the central-DP guarantees of Theorems 5.3–5.6 and 6.1,
//!   both as raw closed forms and bound to a concrete graph;
//! * [`faults`] — fault tolerance under churn (Section 4.5): the lazy-walk
//!   dropout reduction plus realized outage schedules (i.i.d., bursty
//!   Markov on-off, adversarial region blackout) for the time-varying
//!   runtime;
//! * [`service`] — the sharded shuffle runtime: a coordinator that admits
//!   report batches, runs multi-shard exchange rounds and quotes live
//!   worst-user `(ε, δ)` mid-run through a streaming online accountant, so
//!   uploads can be gated on a privacy budget;
//! * [`estimation`] — the private mean-estimation utility study of
//!   Section 5.6 (Figure 9).
//!
//! Graph machinery (generators, spectral gaps, random walks) lives in the
//! `ns-graph` crate; local randomizers and DP primitives in `ns-dp`;
//! synthetic stand-ins for the paper's datasets in `ns-datasets`.
//!
//! ## Quickstart
//!
//! ```
//! use network_shuffle::prelude::*;
//! use ns_graph::generators::random_regular;
//!
//! // A 1000-user communication network where everyone has 8 contacts.
//! let mut rng = ns_graph::rng::seeded_rng(7);
//! let graph = random_regular(1_000, 8, &mut rng).unwrap();
//!
//! // Each user randomizes a categorical value with epsilon_0 = 1 LDP.
//! let randomizer = ns_dp::mechanisms::RandomizedResponse::new(4, 1.0).unwrap();
//! let values: Vec<usize> = (0..1_000).map(|i| i % 4).collect();
//!
//! // Run the A_all protocol for the graph's mixing time.
//! let accountant = NetworkShuffleAccountant::new(&graph).unwrap();
//! let rounds = accountant.mixing_time();
//! let outcome = run_protocol_with_randomizer(
//!     &graph,
//!     &values,
//!     &randomizer,
//!     SimulationConfig::all(rounds, 42),
//!     &0usize,
//! )
//! .unwrap();
//! assert_eq!(outcome.collected.report_count(), 1_000);
//!
//! // Account for the amplified central guarantee.
//! let params = AccountantParams::with_defaults(1_000, 1.0).unwrap();
//! let central = accountant
//!     .central_guarantee(ProtocolKind::All, Scenario::Stationary, &params, rounds)
//!     .unwrap();
//! assert!(central.epsilon > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accountant;
pub mod adversary;
pub mod crypto;
pub mod error;
pub mod estimation;
pub mod faults;
pub mod metrics;
pub mod protocol;
pub mod report;
pub mod server;
pub mod service;
pub mod simulation;
pub mod telemetry;

pub use error::{Error, Result};

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::accountant::{
        all_protocol_epsilon, epsilon_0_for_central_target, estimate_mixing,
        rounds_for_target_epsilon, single_protocol_epsilon, AccountantParams, EmpiricalMixing,
        NetworkShuffleAccountant, Scenario,
    };
    pub use crate::adversary::AdversaryView;
    pub use crate::error::{Error, Result};
    pub use crate::estimation::{run_mean_estimation, MeanEstimationConfig, MeanEstimationResult};
    pub use crate::faults::{DropoutModel, OutageModel, OutageSchedule};
    pub use crate::metrics::{TrafficMetrics, TrafficRecorder};
    pub use crate::protocol::ProtocolKind;
    pub use crate::report::{Report, Submission};
    pub use crate::server::{CollectedReports, Curator};
    pub use crate::service::{
        AccountantCheckpoint, AccountantShardCheckpoint, CoordinatorCheckpoint, CoordinatorConfig,
        ShuffleCoordinator, StreamingAccountant,
    };
    pub use crate::simulation::{
        expected_empty_holders, run_protocol, run_protocol_under_outages,
        run_protocol_with_randomizer, SimulationConfig, SimulationOutcome,
    };
    pub use crate::telemetry::{AuditSink, CoordinatorTelemetry};
}
