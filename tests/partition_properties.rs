//! Partition invariants over the shared proptest graph zoo.
//!
//! The partitioner's structural contract, checked on every graph family the
//! workspace generates (regular, G(n, p), SBM, Barabási–Albert, Chung–Lu):
//!
//! * every node lands in exactly one shard, and the local remappings are
//!   consistent in both directions;
//! * the frontier (cut-edge) tables are symmetric across shards;
//! * the shard-local CSRs plus the frontier tables reassemble the input
//!   graph **bit for bit**;
//! * the quality metrics are well-defined and the partition is
//!   deterministic.

mod common;

use common::strategies;
use ns_graph::partition::{FrontierEdge, IntraShardTransition, Partition};
use ns_graph::transition::TransitionModel;
use ns_graph::{Graph, NodeId};
use proptest::prelude::*;

/// Checks every structural invariant of one partition.
fn check_partition(graph: &Graph, partition: &Partition) {
    let n = graph.node_count();
    assert_eq!(partition.node_count(), n);

    // Every node in exactly one shard; remappings invert each other.
    let mut seen = vec![false; n];
    for (s, shard) in partition.shards().iter().enumerate() {
        assert!(!shard.is_empty(), "shard {s} is empty");
        for (local, &u) in shard.nodes().iter().enumerate() {
            assert!(!seen[u], "node {u} assigned twice");
            seen[u] = true;
            assert_eq!(partition.shard_of(u), s);
            assert_eq!(partition.local_of(u), local);
            assert_eq!(shard.global_of(local), u);
        }
        // Local ids preserve global order.
        assert!(shard.nodes().windows(2).all(|w| w[0] < w[1]));
    }
    assert!(seen.iter().all(|&b| b), "some node is unassigned");

    // Frontier tables are symmetric and count the cut twice (once per side).
    let mut incidences = 0usize;
    for (s, shard) in partition.shards().iter().enumerate() {
        for e in shard.frontier() {
            incidences += 1;
            assert_ne!(e.peer_shard, s, "frontier entry within shard {s}");
            let mirror = FrontierEdge {
                local_node: e.peer_local,
                peer_shard: s,
                peer_local: e.local_node,
            };
            assert!(
                partition.shard(e.peer_shard).frontier().contains(&mirror),
                "frontier entry {e:?} of shard {s} has no mirror"
            );
        }
    }
    assert_eq!(incidences, 2 * partition.cut_edge_count());

    // Shard CSRs plus frontier tables reassemble the graph bit for bit.
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    for shard in partition.shards() {
        for (lu, lv) in shard.local_graph().edges() {
            edges.push((shard.global_of(lu), shard.global_of(lv)));
        }
        for e in shard.frontier() {
            let u = shard.global_of(e.local_node);
            let v = partition.shard(e.peer_shard).global_of(e.peer_local);
            if u < v {
                edges.push((u, v));
            }
        }
    }
    let rebuilt = Graph::from_edges(n, &edges).expect("reassembled edge list is well-formed");
    assert_eq!(&rebuilt, graph, "shard union diverged from the input graph");

    // Metrics are well-defined.
    let cut = partition.edge_cut_fraction();
    assert!((0.0..=1.0).contains(&cut));
    assert!(partition.max_shard_imbalance() >= 1.0 - 1e-12);
    assert_eq!(partition.shard_sizes().iter().sum::<usize>(), n);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The full invariant battery across the mixed-family zoo and a spread
    /// of shard counts.
    #[test]
    fn partition_invariants_hold_on_the_graph_zoo(
        graph in strategies::graph_zoo(40..180),
        shards in 1usize..9,
    ) {
        let n = graph.node_count();
        prop_assume!(n >= 16);
        let k = shards.min(n);
        let partition = Partition::new(&graph, k).unwrap();
        prop_assert_eq!(partition.shard_count(), k);
        check_partition(&graph, &partition);

        // Determinism: the same inputs give the same assignment.
        let again = Partition::new(&graph, k).unwrap();
        for u in 0..n {
            prop_assert_eq!(partition.shard_of(u), again.shard_of(u));
        }
    }

    /// The cut-restricted operator conserves mass and confines it to the
    /// origin's shard on any zoo graph.
    #[test]
    fn intra_shard_operator_confines_mass(
        graph in strategies::graph_zoo(40..150),
        shards in 2usize..6,
    ) {
        let n = graph.node_count();
        prop_assume!(n >= 16);
        let k = shards.min(n);
        let partition = Partition::new(&graph, k).unwrap();
        let model = IntraShardTransition::new(&graph, &partition, 0.0).unwrap();
        let origin = n / 2;
        let mut dist = vec![0.0; n];
        dist[origin] = 1.0;
        let mut out = vec![0.0; n];
        for _ in 0..8 {
            model.propagate_into(&dist, &mut out);
            std::mem::swap(&mut dist, &mut out);
        }
        let total: f64 = dist.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let home = partition.shard_of(origin);
        for (u, &mass) in dist.iter().enumerate() {
            prop_assert!(
                partition.shard_of(u) == home || mass == 0.0,
                "mass {} leaked to node {} outside shard {}", mass, u, home
            );
        }
    }
}

/// The explicit-assignment constructor enforces the same invariants as the
/// built-in partitioner.
#[test]
fn external_assignments_carry_the_same_artifacts() {
    let graph = {
        let mut rng = ns_graph::rng::seeded_rng(20220408);
        ns_graph::generators::random_regular(90, 6, &mut rng).unwrap()
    };
    // Stripe nodes across three shards — a deliberately bad cut.
    let assignment: Vec<u32> = (0..90).map(|u| (u % 3) as u32).collect();
    let partition = Partition::from_assignment(&graph, 3, assignment).unwrap();
    check_partition(&graph, &partition);
    // A striped partition of a random regular graph cuts most edges.
    assert!(partition.edge_cut_fraction() > 0.5);
}
