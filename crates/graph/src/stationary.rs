//! Stationary distribution of the simple random walk.
//!
//! For an ergodic graph the walk converges to `π_i = k_i / 2m` (Section 4.1);
//! for a k-regular graph this is the uniform distribution `1/n`.

use crate::error::{GraphError, Result};
use crate::graph::Graph;

/// Returns the stationary distribution `π = k / 2m` of the simple random
/// walk on `graph`.
///
/// # Errors
///
/// * [`GraphError::EmptyGraph`] if the graph has no nodes.
/// * [`GraphError::IsolatedNode`] if some node has degree zero (its
///   stationary mass would be zero and the walk from it is undefined).
pub fn stationary_distribution(graph: &Graph) -> Result<Vec<f64>> {
    let n = graph.node_count();
    if n == 0 {
        return Err(GraphError::EmptyGraph);
    }
    if let Some(u) = graph.find_isolated_node() {
        return Err(GraphError::IsolatedNode(u));
    }
    let two_m = (2 * graph.edge_count()) as f64;
    Ok(graph
        .nodes()
        .map(|u| graph.degree(u) as f64 / two_m)
        .collect())
}

/// `Σ_i π_i²` for the stationary distribution — the asymptotic value of the
/// quantity bounded in Eq. 7 of the paper (equal to `Γ_G / n`).
pub fn stationary_sum_of_squares(graph: &Graph) -> Result<f64> {
    Ok(crate::degree::sum_of_squares(&stationary_distribution(
        graph,
    )?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn regular_graph_stationary_is_uniform() {
        let g = generators::complete(6).unwrap();
        let pi = stationary_distribution(&g).unwrap();
        for &p in &pi {
            assert!((p - 1.0 / 6.0).abs() < 1e-12);
        }
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn star_graph_hub_has_half_the_mass() {
        let g = generators::star(5).unwrap();
        let pi = stationary_distribution(&g).unwrap();
        // Hub is node 0 with degree 4 out of 2m = 8.
        assert!((pi[0] - 0.5).abs() < 1e-12);
        for &p in &pi[1..] {
            assert!((p - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn stationary_is_fixed_point_of_transition() {
        let g = generators::star(6).unwrap();
        let pi = stationary_distribution(&g).unwrap();
        let m = crate::transition::TransitionMatrix::new(&g).unwrap();
        let next = m.propagate(&pi);
        for (a, b) in pi.iter().zip(next.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn errors_on_degenerate_graphs() {
        assert_eq!(
            stationary_distribution(&Graph::from_edges(0, &[]).unwrap()),
            Err(GraphError::EmptyGraph)
        );
        assert_eq!(
            stationary_distribution(&Graph::from_edges(3, &[(0, 1)]).unwrap()),
            Err(GraphError::IsolatedNode(2))
        );
    }

    #[test]
    fn sum_of_squares_matches_gamma_over_n() {
        let g = generators::star(9).unwrap();
        let s = stationary_sum_of_squares(&g).unwrap();
        let stats = crate::degree::DegreeStats::compute(&g).unwrap();
        assert!((s - stats.irregularity / 9.0).abs() < 1e-12);
    }
}
