//! Fault tolerance via lazy random walks (Section 4.5).
//!
//! In practice some users are temporarily unavailable (battery, network
//! outage) and cannot receive a report in a given round.  The paper models
//! this as a *lazy* random walk: with some probability the report stays at
//! its current holder for the round.  This module packages that model:
//! a [`DropoutModel`] maps an availability assumption onto the walk's
//! laziness, and helpers produce both the degraded privacy accounting and a
//! faithful simulation under dropouts.

use crate::accountant::{AccountantParams, NetworkShuffleAccountant, Scenario};
use crate::error::{Error, Result};
use crate::protocol::ProtocolKind;
use crate::simulation::{run_protocol, SimulationConfig, SimulationOutcome};
use ns_dp::types::PrivacyGuarantee;
use ns_graph::Graph;
use serde::{Deserialize, Serialize};

/// A simple independent-dropout model: in every round, each user is
/// unavailable with probability `dropout_probability`, independently of
/// everything else.  A report whose chosen recipient is unavailable stays
/// put, which is exactly a lazy walk with laziness equal to the dropout
/// probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DropoutModel {
    /// Per-round, per-user unavailability probability.
    pub dropout_probability: f64,
}

impl DropoutModel {
    /// Creates a dropout model.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if the probability is outside `[0, 1)`.
    pub fn new(dropout_probability: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&dropout_probability) {
            return Err(Error::InvalidConfiguration(format!(
                "dropout probability must be in [0, 1), got {dropout_probability}"
            )));
        }
        Ok(DropoutModel {
            dropout_probability,
        })
    }

    /// The equivalent lazy-walk stay probability.
    pub fn as_laziness(&self) -> f64 {
        self.dropout_probability
    }

    /// Builds a privacy accountant for the lazy walk induced by this model.
    ///
    /// # Errors
    ///
    /// Graph validation errors.
    pub fn accountant(&self, graph: &Graph) -> Result<NetworkShuffleAccountant> {
        NetworkShuffleAccountant::with_laziness(graph, self.as_laziness())
    }

    /// Central guarantee under dropouts, at the (dropout-adjusted) mixing
    /// time.  Dropouts slow mixing, so for a fixed round budget the
    /// guarantee degrades; running to the adjusted mixing time recovers it.
    ///
    /// # Errors
    ///
    /// Accountant construction or parameter validation errors.
    pub fn central_guarantee_at_mixing_time(
        &self,
        graph: &Graph,
        protocol: ProtocolKind,
        params: &AccountantParams,
    ) -> Result<PrivacyGuarantee> {
        self.accountant(graph)?.central_guarantee_at_mixing_time(
            protocol,
            Scenario::Stationary,
            params,
        )
    }

    /// Runs the protocol simulation under this dropout model.
    ///
    /// # Errors
    ///
    /// Simulation errors.
    pub fn run_protocol<P: Clone>(
        &self,
        graph: &Graph,
        payloads: Vec<P>,
        rounds: usize,
        protocol: ProtocolKind,
        seed: u64,
        make_dummy: impl FnMut(&mut ns_graph::rng::SimRng) -> P,
    ) -> Result<SimulationOutcome<P>> {
        let config = SimulationConfig {
            rounds,
            laziness: self.as_laziness(),
            protocol,
            seed,
        };
        run_protocol(graph, payloads, config, make_dummy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_graph::generators;
    use ns_graph::rng::seeded_rng;

    #[test]
    fn validation() {
        assert!(DropoutModel::new(0.0).is_ok());
        assert!(DropoutModel::new(0.5).is_ok());
        assert!(DropoutModel::new(1.0).is_err());
        assert!(DropoutModel::new(-0.1).is_err());
        assert_eq!(DropoutModel::new(0.3).unwrap().as_laziness(), 0.3);
    }

    #[test]
    fn dropouts_slow_mixing_but_not_the_limit() {
        let g = generators::random_regular(400, 6, &mut seeded_rng(1)).unwrap();
        let reliable = DropoutModel::new(0.0).unwrap().accountant(&g).unwrap();
        let flaky = DropoutModel::new(0.4).unwrap().accountant(&g).unwrap();
        // The lazy walk has a smaller spectral gap, hence a longer mixing time.
        assert!(flaky.mixing_time() > reliable.mixing_time());
        // But the stationary distribution (and thus the asymptotic epsilon)
        // is unchanged.
        let params = AccountantParams::with_defaults(400, 1.0).unwrap();
        let e_reliable = reliable
            .central_guarantee_at_mixing_time(ProtocolKind::Single, Scenario::Stationary, &params)
            .unwrap();
        let e_flaky = flaky
            .central_guarantee_at_mixing_time(ProtocolKind::Single, Scenario::Stationary, &params)
            .unwrap();
        assert!((e_reliable.epsilon - e_flaky.epsilon).abs() / e_reliable.epsilon < 0.05);
    }

    #[test]
    fn fixed_round_budget_degrades_under_dropouts() {
        let g = generators::random_regular(400, 6, &mut seeded_rng(2)).unwrap();
        let params = AccountantParams::with_defaults(400, 1.0).unwrap();
        let rounds = 10;
        let reliable = DropoutModel::new(0.0)
            .unwrap()
            .accountant(&g)
            .unwrap()
            .central_guarantee(ProtocolKind::All, Scenario::Stationary, &params, rounds)
            .unwrap();
        let flaky = DropoutModel::new(0.5)
            .unwrap()
            .accountant(&g)
            .unwrap()
            .central_guarantee(ProtocolKind::All, Scenario::Stationary, &params, rounds)
            .unwrap();
        assert!(flaky.epsilon >= reliable.epsilon);
    }

    #[test]
    fn bipartite_graphs_work_with_dropouts() {
        // The even cycle is bipartite: the plain accountant rejects it, the
        // dropout (lazy) accountant accepts it.
        let g = generators::cycle(12).unwrap();
        assert!(NetworkShuffleAccountant::new(&g).is_err());
        assert!(DropoutModel::new(0.25).unwrap().accountant(&g).is_ok());
    }

    #[test]
    fn simulation_under_dropouts_conserves_reports() {
        let g = generators::random_regular(50, 4, &mut seeded_rng(3)).unwrap();
        let model = DropoutModel::new(0.3).unwrap();
        let outcome = model
            .run_protocol(&g, (0..50u32).collect(), 12, ProtocolKind::All, 99, |_| 0)
            .unwrap();
        assert_eq!(outcome.collected.report_count(), 50);
        // With laziness, fewer messages are sent than reports * rounds.
        assert!(outcome.metrics.total_messages() < 50 * 12);
    }
}
