//! Micro-benchmarks of the spectral-gap estimation used by the accountant.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use ns_graph::generators::{barabasi_albert, random_regular};
use ns_graph::rng::seeded_rng;
use ns_graph::spectral::{SpectralAnalysis, SpectralOptions};

fn bench_spectral_gap(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral_gap");
    group.sample_size(10);
    for &n in &[1_000usize, 5_000] {
        let regular = random_regular(n, 8, &mut seeded_rng(1)).expect("graph");
        group.bench_with_input(BenchmarkId::new("regular_k8", n), &n, |b, _| {
            b.iter(|| {
                let s = SpectralAnalysis::compute(&regular, SpectralOptions::default());
                black_box(s.spectral_gap())
            });
        });
        let scale_free = barabasi_albert(n, 5, &mut seeded_rng(2)).expect("graph");
        group.bench_with_input(BenchmarkId::new("barabasi_albert_m5", n), &n, |b, _| {
            b.iter(|| {
                let s = SpectralAnalysis::compute(&scale_free, SpectralOptions::default());
                black_box(s.spectral_gap())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spectral_gap);
criterion_main!(benches);
