//! Error type for the network-shuffle crate.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced while configuring or running network shuffling.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// An error bubbled up from the graph substrate.
    Graph(ns_graph::GraphError),
    /// An error bubbled up from the DP substrate.
    Dp(ns_dp::DpError),
    /// The protocol or accountant was configured inconsistently.
    InvalidConfiguration(String),
    /// A cryptographic envelope was opened with the wrong key — in the
    /// simulated PKI this indicates a protocol bug, not an attack.
    WrongKey {
        /// Key the envelope was sealed for.
        expected: u64,
        /// Key that attempted to open it.
        got: u64,
    },
    /// A report or submission referenced an unknown user.
    UnknownUser(usize),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Graph(e) => write!(f, "graph error: {e}"),
            Error::Dp(e) => write!(f, "differential-privacy error: {e}"),
            Error::InvalidConfiguration(msg) => write!(f, "invalid configuration: {msg}"),
            Error::WrongKey { expected, got } => {
                write!(
                    f,
                    "envelope sealed for key {expected} opened with key {got}"
                )
            }
            Error::UnknownUser(u) => write!(f, "unknown user id {u}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Graph(e) => Some(e),
            Error::Dp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ns_graph::GraphError> for Error {
    fn from(e: ns_graph::GraphError) -> Self {
        Error::Graph(e)
    }
}

impl From<ns_dp::DpError> for Error {
    fn from(e: ns_dp::DpError) -> Self {
        Error::Dp(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let graph_err: Error = ns_graph::GraphError::EmptyGraph.into();
        assert!(matches!(graph_err, Error::Graph(_)));
        assert!(graph_err.to_string().contains("graph error"));

        let dp_err: Error = ns_dp::DpError::InvalidEpsilon(-1.0).into();
        assert!(matches!(dp_err, Error::Dp(_)));
        assert!(dp_err.to_string().contains("privacy"));

        let cfg = Error::InvalidConfiguration("rounds must be positive".into());
        assert!(cfg.to_string().contains("rounds"));

        let key = Error::WrongKey {
            expected: 1,
            got: 2,
        };
        assert!(key.to_string().contains('1'));
        assert!(key.to_string().contains('2'));

        assert!(Error::UnknownUser(7).to_string().contains('7'));
    }

    #[test]
    fn source_is_preserved_for_wrapped_errors() {
        use std::error::Error as _;
        let err: Error = ns_graph::GraphError::Disconnected.into();
        assert!(err.source().is_some());
        assert!(Error::UnknownUser(1).source().is_none());
    }
}
