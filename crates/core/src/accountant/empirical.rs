//! Empirical (Monte-Carlo) estimation of the accountant's graph inputs.
//!
//! The closed-form theorems consume `Σ_i P_i^G(t)²`.  The
//! [`crate::accountant::graph_accountant`] obtains it from the spectral
//! bound (worst case) or by exact distribution evolution (single origin, or
//! all origins through the batched ensemble kernel).  This module provides
//! the remaining route: estimate the position distribution of reports by
//! running the actual walk many times and counting where reports end up.
//! This is useful
//!
//! * as an independent cross-check of the analytical machinery (the test
//!   suite compares all the routes), and
//! * for settings where the transition structure is only available as a
//!   black-box simulator (e.g. dynamic graphs, availability-dependent
//!   routing), which the paper lists as future work.
//!
//! Trials run on the same batched, struct-of-arrays
//! [`ns_graph::mixing_engine::MixingEngine`] as the protocol simulation —
//! one walker per origin, all origins per run — so a single run already
//! provides `n` samples, and the `parallel` feature's deterministic chunked
//! execution applies to Monte-Carlo estimation too.

use crate::error::{Error, Result};
use ns_graph::mixing_engine::MixingEngine;
use ns_graph::walk::WalkConfig;
use ns_graph::Graph;
use serde::{Deserialize, Serialize};

#[cfg(not(feature = "parallel"))]
use ns_graph::rng::SimRng;
#[cfg(not(feature = "parallel"))]
use rand_chacha::rand_core::SeedableRng;

/// Result of a Monte-Carlo estimation of the position-distribution moments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalMixing {
    /// Estimated `Σ_i P_i(t)²`, averaged over all report origins.
    pub sum_p_squared: f64,
    /// Estimated support ratio `ρ*` (max over min positive empirical
    /// probability), averaged over origins.  Biased low when the number of
    /// trials is small relative to `n`.
    pub support_ratio: f64,
    /// Number of walk trials used.
    pub trials: usize,
    /// Number of rounds simulated.
    pub rounds: usize,
}

/// Estimates `Σ_i P_i(t)²` by simulating `trials` independent executions of
/// the exchange phase (every user's report walks for `rounds` rounds) and
/// counting, per origin, where the report ended up.
///
/// The estimator of `Σ_i P_i²` from `T` samples per origin is the unbiased
/// collision estimator `(Σ_i c_i(c_i−1)) / (T(T−1))` where `c_i` counts how
/// often the report landed on user `i`; it is averaged over all origins.
///
/// Determinism caveat: results depend only on `seed`, but the `parallel`
/// cargo feature switches the trials onto the engine's chunked per-seed RNG
/// streams, so the sampled trajectories — and hence the exact estimate —
/// differ between the two feature configurations (equally distributed
/// either way; the sequential build reproduces the historical draws
/// draw for draw).
///
/// # Errors
///
/// * [`Error::InvalidConfiguration`] if `trials < 2`;
/// * graph validation errors from the walk engine.
pub fn estimate_mixing(
    graph: &Graph,
    rounds: usize,
    laziness: f64,
    trials: usize,
    seed: u64,
) -> Result<EmpiricalMixing> {
    if trials < 2 {
        return Err(Error::InvalidConfiguration(format!(
            "the collision estimator needs at least 2 trials, got {trials}"
        )));
    }
    let n = graph.node_count();
    if n == 0 {
        return Err(ns_graph::GraphError::EmptyGraph.into());
    }

    // counts[origin][holder] would be n*n; store per-origin sparse counts via
    // a flat Vec<u32> only when n is small, otherwise accumulate collision
    // statistics streamingly per origin using a HashMap.
    let mut counts: Vec<std::collections::HashMap<usize, u32>> =
        vec![std::collections::HashMap::new(); n];

    // Each trial is one batched engine run over all n walkers at once.  The
    // sequential path consumes the RNG draw-for-draw like it always has;
    // with the `parallel` feature the engine's chunked deterministic streams
    // take over, so estimates depend only on `seed` and never on the thread
    // count (the sampled trajectories differ from the sequential ones but
    // are equally distributed).
    for trial in 0..trials {
        let trial_seed = seed.wrapping_add(trial as u64).wrapping_mul(0x9e37_79b9);
        let mut engine = MixingEngine::one_walker_per_node(graph)?;
        #[cfg(feature = "parallel")]
        engine.run_parallel(WalkConfig::lazy(rounds, laziness), trial_seed)?;
        #[cfg(not(feature = "parallel"))]
        {
            let mut rng = SimRng::seed_from_u64(trial_seed);
            engine.run(WalkConfig::lazy(rounds, laziness), &mut rng)?;
        }
        for (origin, &holder) in engine.positions().iter().enumerate() {
            *counts[origin].entry(holder as usize).or_insert(0) += 1;
        }
    }

    let t = trials as f64;
    let mut sum_p_sq_total = 0.0;
    let mut ratio_total = 0.0;
    for per_origin in &counts {
        let collisions: f64 = per_origin
            .values()
            .map(|&c| f64::from(c) * (f64::from(c) - 1.0))
            .sum();
        sum_p_sq_total += collisions / (t * (t - 1.0));
        let max = per_origin.values().copied().max().unwrap_or(0) as f64;
        let min = per_origin
            .values()
            .copied()
            .filter(|&c| c > 0)
            .min()
            .unwrap_or(1) as f64;
        ratio_total += max / min;
    }

    Ok(EmpiricalMixing {
        sum_p_squared: sum_p_sq_total / n as f64,
        support_ratio: ratio_total / n as f64,
        trials,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accountant::{NetworkShuffleAccountant, Scenario};
    use ns_graph::generators::{complete, random_regular};
    use ns_graph::rng::seeded_rng;

    #[test]
    fn validates_inputs() {
        let g = complete(5).unwrap();
        assert!(estimate_mixing(&g, 3, 0.0, 1, 1).is_err());
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(estimate_mixing(&empty, 3, 0.0, 10, 1).is_err());
    }

    #[test]
    fn complete_graph_estimate_matches_uniform_limit() {
        let n = 20usize;
        let g = complete(n).unwrap();
        let est = estimate_mixing(&g, 8, 0.0, 400, 7).unwrap();
        // Limit is 1/n = 0.05; the collision estimator is unbiased, allow
        // Monte-Carlo slack.
        assert!(
            (est.sum_p_squared - 1.0 / n as f64).abs() < 0.01,
            "{}",
            est.sum_p_squared
        );
        assert_eq!(est.trials, 400);
        assert_eq!(est.rounds, 8);
    }

    #[test]
    fn estimate_agrees_with_exact_symmetric_computation() {
        let g = random_regular(60, 6, &mut seeded_rng(3)).unwrap();
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        let rounds = 12;
        let (exact, _) = accountant
            .sum_p_squared(Scenario::Symmetric { origin: 0 }, rounds)
            .unwrap();
        // The empirical estimate averages over all origins; on a random
        // regular graph per-origin values are close to each other, so the
        // average should be close to the single-origin exact value.
        let est = estimate_mixing(&g, rounds, 0.0, 600, 9).unwrap();
        let relative = (est.sum_p_squared - exact).abs() / exact;
        assert!(
            relative < 0.25,
            "empirical {} vs exact {exact}",
            est.sum_p_squared
        );
    }

    #[test]
    fn estimate_stays_below_the_spectral_bound() {
        let g = random_regular(80, 8, &mut seeded_rng(4)).unwrap();
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        for &rounds in &[2usize, 5, 15] {
            let (bound, _) = accountant
                .sum_p_squared(Scenario::Stationary, rounds)
                .unwrap();
            let est = estimate_mixing(&g, rounds, 0.0, 300, 11).unwrap();
            assert!(
                est.sum_p_squared <= bound * 1.1 + 0.01,
                "rounds {rounds}: empirical {} above bound {bound}",
                est.sum_p_squared
            );
        }
    }

    #[test]
    fn estimate_agrees_with_exact_ensemble_average_on_irregular_graph() {
        // On an irregular graph the empirical estimator averages over all
        // origins, so its target is the mean of the exact per-origin
        // ensemble moments — not any single origin.
        let g = ns_graph::generators::barabasi_albert(70, 3, &mut seeded_rng(8)).unwrap();
        let accountant = NetworkShuffleAccountant::new(&g).unwrap();
        let rounds = 10;
        let moments = accountant.exact_moments(rounds).unwrap();
        let exact_mean: f64 = moments
            .iter()
            .map(|stats| stats.sum_of_squares)
            .sum::<f64>()
            / moments.len() as f64;
        let est = estimate_mixing(&g, rounds, 0.0, 800, 17).unwrap();
        let relative = (est.sum_p_squared - exact_mean).abs() / exact_mean;
        assert!(
            relative < 0.2,
            "empirical {} vs exact ensemble mean {exact_mean}",
            est.sum_p_squared
        );
    }

    #[test]
    fn lazy_estimate_mixes_slower() {
        let g = random_regular(80, 6, &mut seeded_rng(5)).unwrap();
        let rounds = 4;
        let crisp = estimate_mixing(&g, rounds, 0.0, 300, 13).unwrap();
        let lazy = estimate_mixing(&g, rounds, 0.6, 300, 13).unwrap();
        assert!(
            lazy.sum_p_squared > crisp.sum_p_squared,
            "lazy walk should be less mixed after the same number of rounds"
        );
    }
}
