//! Figure 9 — privacy–utility trade-off of private mean estimation on the
//! Twitch stand-in.
//!
//! Users hold unit vectors from the paper's Gaussian-mixture workload
//! (`d = 200`), perturb them with PrivUnit at several ε₀, and exchange them
//! by network shuffling.  For each ε₀ and protocol the binary reports the
//! central ε (stationary bound at the mixing time) and the measured squared
//! error of the curator's mean estimate, averaged over a few trials.
//!
//! ```text
//! cargo run --release -p ns-bench --bin fig9
//! ```
//!
//! Set `NS_BENCH_FAST=1` to use a reduced dimension / fewer trials for smoke
//! tests.

use network_shuffle::prelude::*;
use ns_bench::{dataset_graph, epsilon_at_mixing_time, fmt, print_table, write_csv, SEED};
use ns_datasets::{Dataset, MeanEstimationWorkload, WorkloadConfig};

fn main() {
    let fast = std::env::var("NS_BENCH_FAST").is_ok();
    let dimension = if fast { 32 } else { 200 };
    let trials = if fast { 1 } else { 3 };
    let epsilon_grid: Vec<f64> = if fast {
        vec![1.0, 4.0]
    } else {
        vec![0.5, 1.0, 2.0, 3.0, 4.0, 6.0]
    };

    let generated = dataset_graph(Dataset::Twitch);
    let graph = &generated.graph;
    let n = graph.node_count();
    let accountant = NetworkShuffleAccountant::new(graph).expect("ergodic graph");
    let rounds = accountant.mixing_time();
    println!("Twitch stand-in: n = {n}, d = {dimension}, rounds = {rounds}, trials = {trials}");

    // The paper reports the number of dummies A_single is expected to need
    // (7,080 for the real Twitch graph); print our measured analogue.
    let expected_empty = expected_empty_holders(graph, rounds, 0.0, 2, SEED).expect("simulation");
    println!("expected users holding no report after mixing: {expected_empty:.0}");

    let workload = MeanEstimationWorkload::generate(&WorkloadConfig {
        dimension,
        ..WorkloadConfig::paper_defaults(n, SEED)
    });

    let headers = vec![
        "eps0",
        "protocol",
        "central eps",
        "squared error",
        "dummies",
    ];
    let mut rows = Vec::new();
    for &eps0 in &epsilon_grid {
        for protocol in [ProtocolKind::All, ProtocolKind::Single] {
            let central = epsilon_at_mixing_time(&accountant, protocol, eps0);
            let mut total_error = 0.0;
            let mut total_dummies = 0usize;
            for trial in 0..trials {
                let config = MeanEstimationConfig {
                    epsilon_0: eps0,
                    rounds,
                    protocol,
                    seed: SEED.wrapping_add(trial as u64),
                };
                let result =
                    run_mean_estimation(graph, &workload.data, &workload.dummy_pool, config)
                        .expect("mean estimation");
                total_error += result.squared_error;
                total_dummies += result.dummy_reports;
            }
            rows.push(vec![
                fmt(eps0),
                protocol.name().to_string(),
                fmt(central),
                fmt(total_error / trials as f64),
                (total_dummies / trials).to_string(),
            ]);
        }
    }

    print_table(
        "Figure 9: privacy-utility trade-off of private mean estimation (Twitch stand-in, PrivUnit)",
        &headers,
        &rows,
    );
    write_csv("fig9", &headers, &rows);
    println!(
        "\nshape check: at equal eps0 the A_all squared error is consistently below the A_single\n\
         error (dummy reports and dropped duplicates cost utility), the direction of Figure 9.\n\
         Note: in the (central eps, error) plane our A_all curve sits to the right of the paper's\n\
         because the Theorem 5.3 bound as stated is looser than Theorem 5.5; see EXPERIMENTS.md."
    );
}
