//! Figure 7 — `A_all` vs. `A_single` on Twitch and Google.
//!
//! Compares the central ε of the two reporting protocols on the smallest and
//! largest datasets over a wide ε₀ range; at large ε₀ the `A_single` bound
//! becomes the tighter one.
//!
//! ```text
//! cargo run --release -p ns-bench --bin fig7
//! ```

use network_shuffle::prelude::*;
use ns_bench::{dataset_graph, fmt, linspace, print_table, write_csv, DELTA};
use ns_datasets::Dataset;

fn main() {
    let epsilon_grid = linspace(0.25, 5.0, 20);
    let datasets = [Dataset::Twitch, Dataset::Google];

    let mut accountants = Vec::new();
    for dataset in datasets {
        let generated = dataset_graph(dataset);
        let accountant = NetworkShuffleAccountant::new(&generated.graph).expect("ergodic graph");
        println!(
            "{}: n = {}, mixing time = {}",
            generated.spec.name,
            accountant.node_count(),
            accountant.mixing_time()
        );
        accountants.push((generated.spec.name, accountant));
    }

    let headers: Vec<String> = std::iter::once("eps0".to_string())
        .chain(
            accountants
                .iter()
                .flat_map(|(name, _)| [format!("{name} A_all"), format!("{name} A_single")]),
        )
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    let mut crossover_seen = false;
    for &eps0 in &epsilon_grid {
        let mut row = vec![fmt(eps0)];
        for (_, accountant) in &accountants {
            let params = AccountantParams::new(accountant.node_count(), eps0, DELTA, DELTA)
                .expect("valid params");
            let all = accountant
                .central_guarantee_at_mixing_time(ProtocolKind::All, Scenario::Stationary, &params)
                .expect("guarantee");
            let single = accountant
                .central_guarantee_at_mixing_time(
                    ProtocolKind::Single,
                    Scenario::Stationary,
                    &params,
                )
                .expect("guarantee");
            if single.epsilon < all.epsilon {
                crossover_seen = true;
            }
            row.push(fmt(all.epsilon));
            row.push(fmt(single.epsilon));
        }
        rows.push(row);
    }

    print_table(
        "Figure 7: central epsilon of A_all vs. A_single (stationary bound, t = mixing time)",
        &header_refs,
        &rows,
    );
    write_csv("fig7", &header_refs, &rows);
    println!(
        "\nshape check: A_single yields the smaller epsilon at large eps0 (crossover observed: {crossover_seen}),\n\
         and the Google stand-in dominates Twitch at every eps0, matching Figure 7."
    );
}
