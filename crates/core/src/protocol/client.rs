//! The per-user client state machine (Algorithms 1 and 2).
//!
//! Since the batched-engine refactor, report *movement* is executed by
//! [`ns_graph::mixing_engine::MixingEngine`] over flat arrays — the fast
//! path in [`crate::simulation::run_protocol`] never constructs a `Client`.
//! What remains here is the cryptographic per-user state machine: sealing
//! the own report for the curator, the two-layer envelope exchange of the
//! wire protocol ([`Client::relay_round`] / [`Client::receive`], used by the
//! reference simulation in [`crate::simulation::reference`]), and the
//! final-round submission logic ([`Client::finalize`]).

use crate::crypto::{Envelope, KeyPair, PublicKey, SecretKey};
use crate::error::{Error, Result};
use crate::protocol::ProtocolKind;
use crate::report::{Report, Submission};
use ns_graph::NodeId;
use rand::Rng;

/// A message in flight between two users: the curator-sealed report wrapped
/// in an end-to-end envelope for the next hop.
pub type RelayMessage<P> = Envelope<Envelope<Report<P>>>;

/// How a client finalizes its submission at the last round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalizePolicy {
    /// Submit all held reports (`A_all`); empty submission if none.
    All,
    /// Submit one uniformly chosen report, or a dummy when none is held
    /// (`A_single`).
    Single,
}

impl From<ProtocolKind> for FinalizePolicy {
    fn from(kind: ProtocolKind) -> Self {
        match kind {
            ProtocolKind::All => FinalizePolicy::All,
            ProtocolKind::Single => FinalizePolicy::Single,
        }
    }
}

/// What a finalizing user does with her held reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalizeChoice {
    /// Upload every held report (empty submission if none).
    All,
    /// Upload the held report at this index, discarding the rest.
    Pick(usize),
    /// Hold nothing: upload a freshly randomized dummy.
    Dummy,
}

impl FinalizePolicy {
    /// Decides the final-round action for a user holding `held_count`
    /// reports.
    ///
    /// This is the single definition of the submission rule (Algorithms 1
    /// and 2, final round) — the per-client state machine and the batched
    /// simulation both resolve their choice (and draw their selection
    /// randomness) here, so the two paths cannot drift apart.
    pub fn choose<R: Rng + ?Sized>(self, held_count: usize, rng: &mut R) -> FinalizeChoice {
        match self {
            FinalizePolicy::All => FinalizeChoice::All,
            FinalizePolicy::Single => {
                if held_count == 0 {
                    FinalizeChoice::Dummy
                } else {
                    FinalizeChoice::Pick(rng.gen_range(0..held_count))
                }
            }
        }
    }
}

/// A user participating in network shuffling.
///
/// The client holds curator-sealed reports; it never sees the payload of a
/// report produced by another user (Section 4.4's honest-but-curious
/// guarantee), which the type system enforces because the inner envelope can
/// only be opened with the curator's secret key.
#[derive(Debug, Clone)]
pub struct Client<P> {
    id: NodeId,
    keys: KeyPair,
    curator_key: PublicKey,
    neighbors: Vec<NodeId>,
    held: Vec<Envelope<Report<P>>>,
    /// Diagnostic counters for the Table 3 complexity experiment.
    messages_sent: usize,
    peak_held: usize,
}

impl<P: Clone> Client<P> {
    /// Creates a client for user `id` with the given neighbour list.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if the neighbour list is empty — such
    /// a user cannot participate in the exchange (Section 4.2 assumes every
    /// user has at least one communication partner).
    pub fn new(
        id: NodeId,
        keys: KeyPair,
        curator_key: PublicKey,
        neighbors: Vec<NodeId>,
    ) -> Result<Self> {
        if neighbors.is_empty() {
            return Err(Error::InvalidConfiguration(format!(
                "user {id} has no neighbours and cannot participate in network shuffling"
            )));
        }
        Ok(Client {
            id,
            keys,
            curator_key,
            neighbors,
            held: Vec::new(),
            messages_sent: 0,
            peak_held: 0,
        })
    }

    /// The user's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The user's end-to-end public key, to be published via the PKI.
    pub fn public_key(&self) -> PublicKey {
        self.keys.public
    }

    /// Number of reports currently held.
    pub fn held_count(&self) -> usize {
        self.held.len()
    }

    /// Largest number of reports held at any point (memory proxy, Table 3).
    pub fn peak_held(&self) -> usize {
        self.peak_held
    }

    /// Total relay messages sent so far (traffic proxy, Table 3).
    pub fn messages_sent(&self) -> usize {
        self.messages_sent
    }

    /// Step 2 of Algorithms 1 and 2: the user randomizes her value and seals
    /// it for the curator, becoming the initial holder of her own report.
    pub fn submit_own_report(&mut self, payload: P) {
        let report = Report::genuine(self.id, payload);
        self.held.push(Envelope::seal(self.curator_key, report));
        self.peak_held = self.peak_held.max(self.held.len());
    }

    /// One relay round: every held report is sent to a uniformly random
    /// neighbour (wrapped in an end-to-end envelope for that neighbour).
    ///
    /// With probability `laziness` a report stays put for this round, which
    /// models a temporarily unavailable recipient (Section 4.5).
    ///
    /// The caller must route the returned messages and deliver them with
    /// [`Client::receive`].
    pub fn relay_round<R: Rng + ?Sized>(
        &mut self,
        peer_key: impl Fn(NodeId) -> PublicKey,
        laziness: f64,
        rng: &mut R,
    ) -> Vec<(NodeId, RelayMessage<P>)> {
        let mut outgoing = Vec::with_capacity(self.held.len());
        let mut kept = Vec::new();
        for envelope in self.held.drain(..) {
            if laziness > 0.0 && rng.gen::<f64>() < laziness {
                kept.push(envelope);
                continue;
            }
            let destination = self.neighbors[rng.gen_range(0..self.neighbors.len())];
            let message = Envelope::seal(peer_key(destination), envelope);
            outgoing.push((destination, message));
        }
        self.messages_sent += outgoing.len();
        self.held = kept;
        outgoing
    }

    /// Delivers an incoming relay message: the client strips the end-to-end
    /// layer and stores the still-curator-sealed report.
    ///
    /// # Errors
    ///
    /// [`Error::WrongKey`] if the message was not addressed to this client —
    /// a routing bug in the simulation, surfaced rather than ignored.
    pub fn receive(&mut self, message: RelayMessage<P>) -> Result<()> {
        let inner = message.open(&self.keys.secret)?;
        self.held.push(inner);
        self.peak_held = self.peak_held.max(self.held.len());
        Ok(())
    }

    /// Final round: produce the submission for the curator.
    ///
    /// * [`FinalizePolicy::All`] — every held (still sealed) report is
    ///   uploaded; a null submission when none is held.
    /// * [`FinalizePolicy::Single`] — one held report chosen uniformly at
    ///   random is uploaded; if none is held, `make_dummy` is invoked to
    ///   produce a dummy payload which is sealed and flagged as a dummy.
    ///
    /// Returns the submission still sealed for the curator; the curator's
    /// secret key is required to read the payloads.
    pub fn finalize<R: Rng + ?Sized>(
        &mut self,
        policy: FinalizePolicy,
        make_dummy: impl FnOnce(&mut R) -> P,
        rng: &mut R,
    ) -> SealedSubmission<P> {
        let reports = match policy.choose(self.held.len(), rng) {
            FinalizeChoice::All => std::mem::take(&mut self.held),
            FinalizeChoice::Dummy => {
                let dummy = Report::dummy(self.id, make_dummy(rng));
                vec![Envelope::seal(self.curator_key, dummy)]
            }
            FinalizeChoice::Pick(idx) => {
                let chosen = self.held.swap_remove(idx);
                self.held.clear();
                vec![chosen]
            }
        };
        SealedSubmission {
            submitter: self.id,
            reports,
        }
    }
}

/// A submission as transmitted on the wire: reports still sealed for the
/// curator.
#[derive(Debug, Clone)]
pub struct SealedSubmission<P> {
    /// The uploading user (observable by the curator; Section 3.3).
    pub submitter: NodeId,
    /// Curator-sealed reports.
    pub reports: Vec<Envelope<Report<P>>>,
}

impl<P> SealedSubmission<P> {
    /// Opens every report with the curator's secret key.
    ///
    /// # Errors
    ///
    /// [`Error::WrongKey`] if a report was sealed for a different key.
    pub fn open(self, curator_secret: &SecretKey) -> Result<Submission<P>> {
        let mut reports = Vec::with_capacity(self.reports.len());
        for sealed in self.reports {
            reports.push(sealed.open(curator_secret)?);
        }
        Ok(Submission {
            submitter: self.submitter,
            reports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::KeyPair;
    use ns_graph::rng::seeded_rng;

    fn setup() -> (KeyPair, Vec<KeyPair>) {
        let curator = KeyPair::generate();
        let users: Vec<KeyPair> = (0..4).map(|_| KeyPair::generate()).collect();
        (curator, users)
    }

    #[test]
    fn client_requires_neighbors() {
        let (curator, users) = setup();
        assert!(Client::<u32>::new(0, users[0], curator.public, vec![]).is_err());
        assert!(Client::<u32>::new(0, users[0], curator.public, vec![1]).is_ok());
    }

    #[test]
    fn own_report_is_sealed_for_curator_not_for_self() {
        let (curator, users) = setup();
        let mut client = Client::new(0, users[0], curator.public, vec![1, 2]).unwrap();
        client.submit_own_report(99u32);
        assert_eq!(client.held_count(), 1);
        let mut rng = seeded_rng(1);
        let submission = client.finalize(FinalizePolicy::All, |_| 0, &mut rng);
        // The submitter cannot open her own sealed report with her key...
        let sealed = submission.reports[0].clone();
        assert!(sealed.clone().open(&users[0].secret).is_err());
        // ...but the curator can.
        let report = sealed.open(&curator.secret).unwrap();
        assert_eq!(report.payload, 99);
        assert_eq!(report.origin, 0);
    }

    #[test]
    fn relay_round_moves_reports_to_neighbors() {
        let (curator, users) = setup();
        let mut sender = Client::new(0, users[0], curator.public, vec![1, 2]).unwrap();
        let mut receiver1 = Client::new(1, users[1], curator.public, vec![0]).unwrap();
        let mut receiver2 = Client::new(2, users[2], curator.public, vec![0]).unwrap();
        sender.submit_own_report(5u32);

        let mut rng = seeded_rng(2);
        let outgoing = sender.relay_round(|id| users[id].public, 0.0, &mut rng);
        assert_eq!(outgoing.len(), 1);
        assert_eq!(sender.held_count(), 0);
        assert_eq!(sender.messages_sent(), 1);

        let (dest, message) = outgoing.into_iter().next().unwrap();
        assert!(dest == 1 || dest == 2);
        if dest == 1 {
            receiver1.receive(message).unwrap();
            assert_eq!(receiver1.held_count(), 1);
        } else {
            receiver2.receive(message).unwrap();
            assert_eq!(receiver2.held_count(), 1);
        }
    }

    #[test]
    fn receive_rejects_misrouted_messages() {
        let (curator, users) = setup();
        let mut sender = Client::new(0, users[0], curator.public, vec![1]).unwrap();
        let mut wrong_receiver = Client::new(2, users[2], curator.public, vec![0]).unwrap();
        sender.submit_own_report(1u32);
        let mut rng = seeded_rng(3);
        let outgoing = sender.relay_round(|id| users[id].public, 0.0, &mut rng);
        let (_, message) = outgoing.into_iter().next().unwrap();
        assert!(matches!(
            wrong_receiver.receive(message),
            Err(Error::WrongKey { .. })
        ));
    }

    #[test]
    fn laziness_keeps_reports_in_place() {
        let (curator, users) = setup();
        let mut client = Client::new(0, users[0], curator.public, vec![1]).unwrap();
        client.submit_own_report(1u32);
        let mut rng = seeded_rng(4);
        // laziness = 1 is rejected by the simulation config; here we use a
        // value close to 1 so the report almost surely stays.
        let outgoing = client.relay_round(|id| users[id].public, 0.999_999, &mut rng);
        assert!(outgoing.is_empty());
        assert_eq!(client.held_count(), 1);
    }

    #[test]
    fn finalize_all_returns_everything_and_null_when_empty() {
        let (curator, users) = setup();
        let mut client = Client::new(0, users[0], curator.public, vec![1]).unwrap();
        let mut rng = seeded_rng(5);
        let empty = client.finalize(FinalizePolicy::All, |_| 0u32, &mut rng);
        assert!(empty.reports.is_empty());

        client.submit_own_report(1);
        client.submit_own_report(2);
        let full = client.finalize(FinalizePolicy::All, |_| 0u32, &mut rng);
        assert_eq!(full.reports.len(), 2);
        assert_eq!(client.held_count(), 0);
    }

    #[test]
    fn finalize_single_picks_one_or_a_dummy() {
        let (curator, users) = setup();
        let mut rng = seeded_rng(6);

        // Empty: dummy flagged as such.
        let mut empty_client = Client::new(0, users[0], curator.public, vec![1]).unwrap();
        let sub = empty_client.finalize(FinalizePolicy::Single, |_| 77u32, &mut rng);
        assert_eq!(sub.reports.len(), 1);
        let opened = sub.open(&curator.secret).unwrap();
        assert!(opened.reports[0].is_dummy);
        assert_eq!(opened.reports[0].payload, 77);

        // Holding several: exactly one genuine report is submitted and the
        // rest are discarded.
        let mut full_client = Client::new(1, users[1], curator.public, vec![0]).unwrap();
        full_client.submit_own_report(10);
        full_client.submit_own_report(20);
        full_client.submit_own_report(30);
        let sub = full_client.finalize(FinalizePolicy::Single, |_| 0u32, &mut rng);
        assert_eq!(sub.reports.len(), 1);
        assert_eq!(full_client.held_count(), 0);
        let opened = sub.open(&curator.secret).unwrap();
        assert!(!opened.reports[0].is_dummy);
        assert!([10, 20, 30].contains(&opened.reports[0].payload));
    }

    #[test]
    fn peak_held_tracks_maximum() {
        let (curator, users) = setup();
        let mut client = Client::new(0, users[0], curator.public, vec![1]).unwrap();
        client.submit_own_report(1u32);
        client.submit_own_report(2u32);
        assert_eq!(client.peak_held(), 2);
        let mut rng = seeded_rng(7);
        let _ = client.finalize(FinalizePolicy::All, |_| 0, &mut rng);
        assert_eq!(client.peak_held(), 2);
    }

    #[test]
    fn policy_from_protocol_kind() {
        assert_eq!(FinalizePolicy::from(ProtocolKind::All), FinalizePolicy::All);
        assert_eq!(
            FinalizePolicy::from(ProtocolKind::Single),
            FinalizePolicy::Single
        );
    }
}
