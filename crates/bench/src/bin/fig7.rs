//! Figure 7 — `A_all` vs. `A_single` on Twitch and Google.
//!
//! Compares the central ε of the two reporting protocols on the smallest and
//! largest datasets over a wide ε₀ range; at large ε₀ the `A_single` bound
//! becomes the tighter one.
//!
//! ```text
//! cargo run --release -p ns-bench --bin fig7
//! ```

use network_shuffle::prelude::*;
use ns_bench::{dataset_accountant, epsilon_at_mixing_time, fmt, linspace, print_table, write_csv};
use ns_datasets::Dataset;

fn main() {
    let epsilon_grid = linspace(0.25, 5.0, 20);
    let datasets = [Dataset::Twitch, Dataset::Google];

    let accountants: Vec<_> = datasets
        .into_iter()
        .map(|dataset| {
            let da = dataset_accountant(dataset);
            println!(
                "{}: n = {}, mixing time = {}",
                da.name(),
                da.accountant.node_count(),
                da.accountant.mixing_time()
            );
            da
        })
        .collect();

    let headers: Vec<String> = std::iter::once("eps0".to_string())
        .chain(accountants.iter().flat_map(|da| {
            [
                format!("{} A_all", da.name()),
                format!("{} A_single", da.name()),
            ]
        }))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    let mut crossover_seen = false;
    for &eps0 in &epsilon_grid {
        let mut row = vec![fmt(eps0)];
        for da in &accountants {
            let all = epsilon_at_mixing_time(&da.accountant, ProtocolKind::All, eps0);
            let single = epsilon_at_mixing_time(&da.accountant, ProtocolKind::Single, eps0);
            if single < all {
                crossover_seen = true;
            }
            row.push(fmt(all));
            row.push(fmt(single));
        }
        rows.push(row);
    }

    print_table(
        "Figure 7: central epsilon of A_all vs. A_single (stationary bound, t = mixing time)",
        &header_refs,
        &rows,
    );
    write_csv("fig7", &header_refs, &rows);
    println!(
        "\nshape check: A_single yields the smaller epsilon at large eps0 (crossover observed: {crossover_seen}),\n\
         and the Google stand-in dominates Twitch at every eps0, matching Figure 7."
    );
}
