//! Table 4 — dataset statistics (`n`, `Γ_G`) of the stand-in graphs.
//!
//! Generates every dataset stand-in (largest connected component) and prints
//! the achieved node count and irregularity next to the paper's targets,
//! plus the spectral gap and mixing time the later figures rely on.
//!
//! ```text
//! cargo run --release -p ns-bench --bin table4
//! ```

use ns_bench::{dataset_graph, fmt, print_table, scale_divisor, write_csv};
use ns_datasets::Dataset;
use ns_graph::mixing::MixingProfile;
use ns_graph::spectral::SpectralOptions;

fn main() {
    let headers = vec![
        "dataset",
        "category",
        "scale",
        "n (paper)",
        "n (ours)",
        "Gamma (paper)",
        "Gamma (ours)",
        "spectral gap",
        "mixing time",
    ];
    let mut rows = Vec::new();

    for dataset in Dataset::ALL {
        let divisor = scale_divisor(dataset);
        let generated = dataset_graph(dataset);
        let profile = MixingProfile::compute(&generated.graph, SpectralOptions::default())
            .expect("ergodic stand-in");
        rows.push(vec![
            generated.spec.name.to_string(),
            generated.spec.category.to_string(),
            format!("1/{divisor}"),
            generated.spec.node_count.to_string(),
            generated.achieved.node_count.to_string(),
            fmt(generated.spec.irregularity),
            fmt(generated.achieved.irregularity),
            fmt(profile.spectral_gap),
            profile.mixing_time.to_string(),
        ]);
    }

    print_table(
        "Table 4: dataset stand-ins (largest connected component)",
        &headers,
        &rows,
    );
    write_csv("table4", &headers, &rows);
    println!(
        "\nnote: stand-ins are Chung-Lu graphs calibrated to the paper's (n, Gamma_G); the Google\n\
         graph is scaled 1/10 by default (set NS_BENCH_SCALE=full for the full 855,802 nodes)."
    );
}
