//! Offline shim for the subset of `rand_chacha` 0.3 used by this workspace.
//!
//! Implements the real ChaCha stream cipher (Bernstein's quarter-round on a
//! 4×4 word state) with 8 double-rounds as a deterministic random-number
//! generator.  The key stream is not bit-compatible with the crates.io
//! `rand_chacha` (which seeds through `rand_core`'s seed expansion), but the
//! workspace only relies on determinism and statistical quality, both of
//! which genuine ChaCha8 provides.

#![forbid(unsafe_code)]

pub use rand as rand_crate;

/// Re-export module mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double-rounds, exposed as an RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 128-bit block counter (words 12..16 of the state).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Creates a generator from a full 256-bit key.
    pub fn from_key(key: [u32; 8]) -> Self {
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        // "expand 32-byte k" constants.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }
}

/// SplitMix64 step, used to expand a 64-bit seed into a 256-bit key.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut s);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        ChaCha8Rng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let mut all_equal = true;
        for _ in 0..64 {
            let (x, y) = (a.next_u64(), b.next_u64());
            assert_eq!(x, y);
            all_equal &= x == c.next_u64();
        }
        assert!(!all_equal);
    }

    #[test]
    fn zero_key_first_block_matches_chacha8_test_vector() {
        // ChaCha8, 256-bit zero key, zero counter and nonce.  First output
        // words of the keystream (RFC-style column ordering), from the
        // published ChaCha8 test vectors.
        let mut rng = ChaCha8Rng::from_key([0; 8]);
        let first = rng.next_u32();
        let expected = u32::from_le_bytes([0x3e, 0x00, 0xef, 0x2f]);
        assert_eq!(first, expected);
    }

    #[test]
    fn mean_of_unit_floats_is_near_half() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
