//! Micro-benchmarks of the privacy accountant (closed forms and sweeps).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use network_shuffle::prelude::*;
use ns_graph::generators::random_regular;
use ns_graph::rng::seeded_rng;

fn bench_closed_forms(c: &mut Criterion) {
    let params = AccountantParams::with_defaults(100_000, 1.0).expect("params");
    let sum_p_sq = 5.0 / 100_000.0;
    c.bench_function("closed_form_all", |b| {
        b.iter(|| black_box(all_protocol_epsilon(&params, sum_p_sq, 1.0).expect("eps")))
    });
    c.bench_function("closed_form_single", |b| {
        b.iter(|| black_box(single_protocol_epsilon(&params, sum_p_sq).expect("eps")))
    });
}

fn bench_graph_accountant(c: &mut Criterion) {
    let graph = random_regular(5_000, 8, &mut seeded_rng(1)).expect("graph");
    let mut group = c.benchmark_group("graph_accountant");
    group.sample_size(10);
    group.bench_function("construct_n5000", |b| {
        b.iter(|| black_box(NetworkShuffleAccountant::new(&graph).expect("accountant")))
    });
    let accountant = NetworkShuffleAccountant::new(&graph).expect("accountant");
    let params = AccountantParams::with_defaults(5_000, 1.0).expect("params");
    group.bench_function("epsilon_vs_rounds_symmetric_50", |b| {
        b.iter(|| {
            black_box(
                accountant
                    .epsilon_vs_rounds(
                        ProtocolKind::All,
                        Scenario::Symmetric { origin: 0 },
                        &params,
                        50,
                    )
                    .expect("sweep"),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_closed_forms, bench_graph_accountant);
criterion_main!(benches);
