//! The sharded shuffle service: a coordinator with a streaming online
//! accountant.
//!
//! Everything below the service layer answers *offline* questions — run a
//! whole protocol, then account for it.  A deployment asks the *online*
//! form: reports arrive in batches, rounds execute shard by shard, and an
//! operator wants to know, **mid-run**, "what is the current worst user's
//! `(ε, δ)` if uploads happened right now?" so uploads can be gated on a
//! target budget instead of a precomputed round count.
//!
//! [`ShuffleCoordinator`] owns that loop:
//!
//! 1. **Admission** — reports are admitted in batches
//!    ([`ShuffleCoordinator::admit`] /
//!    [`ShuffleCoordinator::admit_population`]), sealed once for the curator
//!    in a flat arena, and released into the exchange phase together
//!    ([`ShuffleCoordinator::begin_exchange`]).
//! 2. **Rounds** — each round is executed by the multi-shard engine
//!    ([`ns_graph::sharded_engine::ShardedMixingEngine`]) with per-shard
//!    deterministic streams, traffic metrics streaming into a
//!    [`TrafficRecorder`], and — in lockstep — the streaming accountant
//!    advancing its tracked distributions by one round.
//! 3. **Quotes & gating** — [`ShuffleCoordinator::live_quote`] returns the
//!    worst tracked user's current guarantee without stopping the run;
//!    [`ShuffleCoordinator::run_until_epsilon`] keeps exchanging until a
//!    target ε is met (or a round budget runs out).
//! 4. **Finalization** — [`ShuffleCoordinator::finalize`] applies the
//!    protocol's submission rule per user, drawing each user's choice from
//!    her *shard's* stream, and hands the curator's collection plus metrics
//!    back.
//!
//! The streaming accountant ([`StreamingAccountant`]) keeps, per shard, a
//! [`DistributionEnsemble`] over that shard's tracked origins (all of them,
//! or the lowest-degree ones — the slowest mixers and therefore the worst-ε
//! candidates) and advances it one round per protocol round through the
//! exact batched kernel.  With every origin tracked, the live quote equals
//! [`crate::accountant::NetworkShuffleAccountant::worst_user_guarantee`] at
//! the same round — the offline and online accountants cannot drift
//! (`tests/sharded_engine.rs`).
//!
//! **Churn composes.**  Attaching a realized [`OutageSchedule`]
//! ([`ShuffleCoordinator::with_outages`] /
//! [`ShuffleCoordinator::sample_outages`]) switches every exchange round to
//! the engine's masked form (an unavailable recipient bounces the delivery
//! back through the return exchange; the walker stays, uncounted) *and*
//! rebuilds the streaming accountant around the same per-round masked
//! operators — so batch admission, live quotes and
//! [`ShuffleCoordinator::run_until_epsilon`] upload gating all run against
//! the schedule the deployment actually realized.  Both runtimes execute
//! the one round kernel of [`ns_graph::round`], which is what makes the
//! composition exact rather than approximate.
//!
//! **Degeneracy contract.**  Under the canonical 1-shard partition with a
//! full population, the coordinator reproduces
//! [`crate::simulation::run_protocol`] bit for bit — same walk, same
//! submissions, same [`TrafficMetrics`] — because shard 0's stream *is* the
//! protocol RNG and finalization draws continue it in submitter order.
//! With an outage schedule attached, the same 1-shard path is bit for bit
//! [`crate::simulation::run_protocol_under_outages`] on that schedule, and
//! a fully-available schedule degenerates to the static path.

use crate::accountant::closed_form::{
    all_protocol_epsilon, single_protocol_epsilon, AccountantParams,
};
use crate::crypto::Envelope;
use crate::error::{Error, Result};
use crate::faults::{OutageModel, OutageSchedule};
use crate::metrics::{TrafficMetrics, TrafficRecorder};
use crate::protocol::client::{FinalizeChoice, FinalizePolicy, SealedSubmission};
use crate::protocol::ProtocolKind;
use crate::report::Report;
use crate::server::Curator;
use crate::simulation::SimulationOutcome;
use crate::telemetry::{AccountantTelemetry, CoordinatorTelemetry, ObservedRounds};
use ns_dp::types::PrivacyGuarantee;
use ns_graph::dynamic::{DynTransition, TimeVaryingModel};
use ns_graph::ensemble::{DistributionEnsemble, RowStats};
use ns_graph::partition::Partition;
use ns_graph::rng::SimRng;
use ns_graph::round::DrawMode;
use ns_graph::sharded_engine::{EngineCheckpoint, ShardedMixingEngine};
use ns_graph::transition::{TransitionMatrix, TransitionModel};
use ns_graph::walk::validate_laziness;
use ns_graph::{Graph, NodeId};

/// Configuration of a sharded shuffle deployment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoordinatorConfig {
    /// Base seed; shard `s` draws from
    /// [`ns_graph::sharded_engine::shard_stream`]`(seed, s)`.
    pub seed: u64,
    /// Per-round stay probability of the exchange walk (0 for the plain
    /// protocol).
    pub laziness: f64,
    /// The reporting protocol users run at finalization.
    pub protocol: ProtocolKind,
    /// How many origins per shard the streaming accountant tracks exactly
    /// (`usize::MAX` tracks every origin).  Tracked origins are each shard's
    /// lowest-degree users — the slowest mixers.
    pub tracked_per_shard: usize,
    /// How the exchange engine draws randomness
    /// ([`ns_graph::round::DrawMode`]); applied when the exchange phase
    /// starts.  `Compat` is bitwise the classic single-engine realization;
    /// `Fast` is a different, equally distributed realization.
    pub draw_mode: DrawMode,
}

impl CoordinatorConfig {
    /// A plain `A_all` deployment tracking `tracked_per_shard` origins.
    pub fn all(seed: u64, tracked_per_shard: usize) -> Self {
        CoordinatorConfig {
            seed,
            laziness: 0.0,
            protocol: ProtocolKind::All,
            tracked_per_shard,
            draw_mode: DrawMode::Compat,
        }
    }

    /// A plain `A_single` deployment tracking `tracked_per_shard` origins.
    pub fn single(seed: u64, tracked_per_shard: usize) -> Self {
        CoordinatorConfig {
            seed,
            laziness: 0.0,
            protocol: ProtocolKind::Single,
            tracked_per_shard,
            draw_mode: DrawMode::Compat,
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if `laziness ∉ [0, 1)`.
    pub fn validate(&self) -> Result<()> {
        validate_laziness(self.laziness).map_err(Error::InvalidConfiguration)
    }
}

/// One shard's tracked origins and their evolving distributions.
#[derive(Debug, Clone)]
struct TrackedShard {
    /// Global ids of the tracked origins, in tracking order (degree
    /// ascending, ties by id).
    origins: Vec<NodeId>,
    /// Row `r` is the exact position distribution of `origins[r]`'s report.
    ensemble: DistributionEnsemble,
    /// Pre-speculation state of the ensemble, captured by
    /// [`StreamingAccountant::speculate_round`] so the commit can correct
    /// (or, past the dense threshold, recompute) against it.  Empty until
    /// the delta path is first used.
    prev: Vec<f64>,
    /// The same pre-speculation state in interleaved layout
    /// ([`ns_graph::ensemble::interleave_rows`]), produced during
    /// speculation so the critical-path correction gathers each source's
    /// tracked-row masses from contiguous cache lines.
    prev_il: Vec<f64>,
}

/// The per-round operator the streaming accountant evolves through: the
/// static lazy walk, the realized per-round schedule of a churning
/// deployment, or the live operator the delta path committed last round.
#[derive(Clone)]
enum StreamingOperator {
    /// The static lazy-walk matrix — every round applies the same operator.
    Static(TransitionMatrix),
    /// A realized per-round operator schedule (availability-masked rounds);
    /// round `t` of the walk applies `schedule.operator(t)`, exactly like
    /// the offline [`crate::accountant::NetworkShuffleAccountant::with_schedule`]
    /// route.
    Scheduled(TimeVaryingModel),
    /// The operator realized by the last committed delta round
    /// ([`StreamingAccountant::commit_round`]); until the next commit it is
    /// the best forecast of the coming round, so speculation advances under
    /// it.
    Live(DynTransition),
}

impl std::fmt::Debug for StreamingOperator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamingOperator::Static(m) => f.debug_tuple("Static").field(m).finish(),
            StreamingOperator::Scheduled(s) => f.debug_tuple("Scheduled").field(s).finish(),
            StreamingOperator::Live(d) => f
                .debug_struct("Live")
                .field("node_count", &d.node_count())
                .finish(),
        }
    }
}

/// Streaming exact accounting over per-shard tracked origins.
///
/// The accountant evolves the tracked origins' position distributions under
/// the deployment's *realized* per-round operator — the static (lazy) walk,
/// or, under churn, the round's actual masked operator — one round per call
/// to [`StreamingAccountant::advance_round`], through the batched ensemble
/// kernel.  A quote is always available at the engine's current round for
/// the cost of a [`RowStats`] fold, and the evolution is bitwise the
/// offline ensemble route (static or
/// [`crate::accountant::NetworkShuffleAccountant::with_schedule`])
/// restricted to the tracked rows — so with every origin tracked the live
/// quote is **exact under churn**, not a static approximation.
#[derive(Debug, Clone)]
pub struct StreamingAccountant {
    operator: StreamingOperator,
    shards: Vec<TrackedShard>,
    round: usize,
    /// Whether the tracked ensembles currently hold a *speculated* round
    /// ([`StreamingAccountant::speculate_round`]) awaiting its commit.
    speculated: bool,
    /// Affected-column fraction beyond which
    /// [`StreamingAccountant::commit_round`] falls back to a dense
    /// recompute instead of the sparse column correction.
    delta_dense_fraction: f64,
    /// Phase timers and delta counters; `None` (the default) is the
    /// inert no-op path.
    telemetry: Option<AccountantTelemetry>,
}

/// Default affected-column fraction beyond which the delta commit recomputes
/// densely ([`StreamingAccountant::set_delta_dense_fraction`]).  Past about
/// a quarter of the columns the per-column pull pass stops beating the
/// contiguous dense kernel, mirroring
/// [`ns_graph::dynamic::REBUILD_DIRTY_FRACTION`] on the snapshot side.
pub const DELTA_DENSE_FRACTION: f64 = 0.25;

impl StreamingAccountant {
    /// Builds the accountant for `graph` under `partition`, tracking up to
    /// `tracked_per_shard` of each shard's lowest-degree origins (ties by
    /// id; `usize::MAX` tracks everyone).
    ///
    /// # Errors
    ///
    /// Graph/laziness validation errors from the transition matrix.
    pub fn new(
        graph: &Graph,
        partition: &Partition,
        laziness: f64,
        tracked_per_shard: usize,
    ) -> Result<Self> {
        let transition = TransitionMatrix::with_laziness(graph, laziness)?;
        Self::with_operator(
            graph,
            partition,
            StreamingOperator::Static(transition),
            tracked_per_shard,
        )
    }

    /// Builds the accountant for a deployment under a realized per-round
    /// operator schedule: the tracked distributions evolve through
    /// `schedule.operator(t)` at round `t` — the online mirror of the
    /// offline `with_schedule` route.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] on graph/partition/schedule
    /// node-count mismatches or `tracked_per_shard == 0`.
    pub fn with_schedule(
        graph: &Graph,
        partition: &Partition,
        schedule: TimeVaryingModel,
        tracked_per_shard: usize,
    ) -> Result<Self> {
        if schedule.node_count() != graph.node_count() {
            return Err(Error::InvalidConfiguration(format!(
                "operator schedule covers {} users but the graph has {}",
                schedule.node_count(),
                graph.node_count()
            )));
        }
        Self::with_operator(
            graph,
            partition,
            StreamingOperator::Scheduled(schedule),
            tracked_per_shard,
        )
    }

    fn with_operator(
        graph: &Graph,
        partition: &Partition,
        operator: StreamingOperator,
        tracked_per_shard: usize,
    ) -> Result<Self> {
        if partition.node_count() != graph.node_count() {
            return Err(Error::InvalidConfiguration(format!(
                "partition covers {} users but the graph has {}",
                partition.node_count(),
                graph.node_count()
            )));
        }
        if tracked_per_shard == 0 {
            return Err(Error::InvalidConfiguration(
                "the streaming accountant needs at least one tracked origin per shard".into(),
            ));
        }
        let n = graph.node_count();
        let mut shards = Vec::with_capacity(partition.shard_count());
        for shard in partition.shards() {
            let mut origins: Vec<NodeId> = shard.nodes().to_vec();
            origins.sort_by_key(|&u| (graph.degree(u), u));
            origins.truncate(tracked_per_shard.min(origins.len()));
            let ensemble = DistributionEnsemble::point_masses(n, &origins)?;
            shards.push(TrackedShard {
                origins,
                ensemble,
                prev: Vec::new(),
                prev_il: Vec::new(),
            });
        }
        Ok(StreamingAccountant {
            operator,
            shards,
            round: 0,
            speculated: false,
            delta_dense_fraction: DELTA_DENSE_FRACTION,
            telemetry: None,
        })
    }

    /// Attaches (or detaches, with `None`) the accountant's phase timers
    /// and delta counters.  Recording never touches the tracked
    /// distributions, so quotes are unchanged bit for bit.
    pub fn set_telemetry(&mut self, telemetry: Option<AccountantTelemetry>) {
        self.telemetry = telemetry;
    }

    /// Swaps the accountant onto a realized operator schedule **without
    /// rebuilding the tracked ensembles** — at round 0 they are the same
    /// point masses regardless of operator, so only the operator needs to
    /// change (this is what lets the coordinator attach an outage schedule
    /// after construction without paying the ensemble build twice).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if any round has already been
    /// advanced or the schedule's node count differs from the ensembles'.
    fn reschedule(&mut self, schedule: TimeVaryingModel) -> Result<()> {
        if self.round != 0 {
            return Err(Error::InvalidConfiguration(
                "cannot attach an operator schedule after rounds have advanced".into(),
            ));
        }
        if let Some(shard) = self.shards.first() {
            if schedule.node_count() != shard.ensemble.node_count() {
                return Err(Error::InvalidConfiguration(format!(
                    "operator schedule covers {} users but the accountant tracks {}",
                    schedule.node_count(),
                    shard.ensemble.node_count()
                )));
            }
        }
        self.operator = StreamingOperator::Scheduled(schedule);
        Ok(())
    }

    /// Rounds the tracked distributions have been advanced by.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Whether the accountant evolves through a realized operator schedule
    /// (vs. the static lazy walk).
    pub fn is_scheduled(&self) -> bool {
        matches!(self.operator, StreamingOperator::Scheduled(_))
    }

    /// Total tracked origins across all shards.
    pub fn tracked_count(&self) -> usize {
        self.shards.iter().map(|s| s.origins.len()).sum()
    }

    /// The operator the accountant currently holds — what the next round is
    /// expected to apply (and what speculation advances under).
    fn held(operator: &StreamingOperator) -> &(dyn TransitionModel + Sync) {
        match operator {
            StreamingOperator::Static(matrix) => matrix,
            StreamingOperator::Scheduled(schedule) => schedule,
            StreamingOperator::Live(operator) => operator.as_ref(),
        }
    }

    /// Advances every tracked distribution by one round through the
    /// deployment's realized operator (the ensembles carry the absolute
    /// round clock, so a scheduled accountant applies `operator(t)` at
    /// round `t`).
    ///
    /// # Panics
    ///
    /// Panics if a speculated round is pending
    /// ([`StreamingAccountant::speculate_round`]) — commit or discard it
    /// first.
    pub fn advance_round(&mut self) {
        assert!(
            !self.speculated,
            "cannot advance past a pending speculated round; commit it first"
        );
        let _span = self.telemetry.as_ref().map(|t| t.advance_ns.span(&t.clock));
        let operator = Self::held(&self.operator);
        for shard in self.shards.iter_mut() {
            shard.ensemble.advance_auto(operator, 1);
        }
        self.round += 1;
    }

    /// Sets the affected-column fraction beyond which
    /// [`StreamingAccountant::commit_round`] abandons the sparse correction
    /// and recomputes the round densely.  `0.0` forces every commit dense
    /// (the non-incremental baseline), `1.0` always corrects sparsely.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if `fraction` is not a finite value
    /// in `[0, 1]`.
    pub fn set_delta_dense_fraction(&mut self, fraction: f64) -> Result<()> {
        if !fraction.is_finite() || !(0.0..=1.0).contains(&fraction) {
            return Err(Error::InvalidConfiguration(format!(
                "delta dense fraction must be in [0, 1], got {fraction}"
            )));
        }
        self.delta_dense_fraction = fraction;
        Ok(())
    }

    /// The current dense-fallback threshold of the delta commit.
    pub fn delta_dense_fraction(&self) -> f64 {
        self.delta_dense_fraction
    }

    /// Whether a speculated round is pending its commit.
    pub fn is_speculated(&self) -> bool {
        self.speculated
    }

    /// Speculatively advances every tracked distribution one round under
    /// the operator the accountant already **holds** — off the critical
    /// path, before the round's churn delta is known.  The pre-round state
    /// is retained, so [`StreamingAccountant::commit_round`] can later
    /// repair exactly the columns the realized operator changed (or, above
    /// the dense threshold, recompute from it).  The round counter does not
    /// move until the commit.
    ///
    /// # Panics
    ///
    /// Panics if a speculated round is already pending.
    pub fn speculate_round(&mut self) {
        assert!(
            !self.speculated,
            "round already speculated; commit it first"
        );
        let _span = self
            .telemetry
            .as_ref()
            .map(|t| t.speculate_ns.span(&t.clock));
        let operator = Self::held(&self.operator);
        for shard in self.shards.iter_mut() {
            shard
                .ensemble
                .speculate_interleaved(operator, &mut shard.prev, &mut shard.prev_il);
        }
        self.speculated = true;
        if let Some(t) = &self.telemetry {
            t.speculated.inc();
        }
    }

    /// Commits one round under the **realized** operator, given the sorted
    /// `affected` column set of the round's churn delta
    /// ([`ns_graph::delta::affected_columns`] over the nodes the delta
    /// touched).  The critical-path cost depends on what is pending:
    ///
    /// * a speculated round with `|affected|` at or below the dense
    ///   threshold — the sparse per-column correction, `O(Σ_{j ∈ affected}
    ///   deg(j))` per tracked row and **bitwise equal** to the dense
    ///   advance (the per-column contract of
    ///   [`ns_graph::transition::TransitionModel::propagate_round_columns`]);
    /// * a speculated round above the threshold — a dense recompute from
    ///   the retained pre-round state;
    /// * no speculation — the ordinary dense advance (the non-incremental
    ///   baseline; this is [`StreamingAccountant::advance_round`] under the
    ///   realized operator).
    ///
    /// Afterwards the accountant holds `realized` as its live operator —
    /// the forecast the next speculation advances under.
    ///
    /// # Panics
    ///
    /// Panics if `realized`'s node count differs from the tracked
    /// ensembles'.
    pub fn commit_round(&mut self, realized: DynTransition, affected: &[NodeId]) {
        let model = realized.as_ref();
        if let Some(shard) = self.shards.first() {
            assert_eq!(
                model.node_count(),
                shard.ensemble.node_count(),
                "realized operator covers the wrong number of users"
            );
        }
        let n = model.node_count().max(1);
        let dense = affected.len() as f64 > self.delta_dense_fraction * n as f64;
        let _span = self.telemetry.as_ref().map(|t| t.commit_ns.span(&t.clock));
        if let Some(t) = &self.telemetry {
            t.affected_permille
                .record((affected.len() as u64).saturating_mul(1000) / n as u64);
            if self.speculated {
                if dense {
                    t.commits_dense.inc();
                } else {
                    t.commits_sparse.inc();
                }
            }
        }
        for shard in self.shards.iter_mut() {
            match (self.speculated, dense) {
                (true, false) => {
                    shard
                        .ensemble
                        .correct_columns_interleaved(model, affected, &shard.prev_il)
                }
                (true, true) => shard.ensemble.recompute_from(model, &shard.prev),
                (false, _) => shard.ensemble.advance_auto(model, 1),
            }
        }
        self.operator = StreamingOperator::Live(realized);
        self.round += 1;
        self.speculated = false;
    }

    /// [`StreamingAccountant::speculate_round`] +
    /// [`StreamingAccountant::commit_round`] in one call — the delta
    /// pipeline without the off-critical-path overlap (speculation under
    /// the held operator, then the sparse repair).  If a speculation is
    /// already pending, only the commit runs.
    ///
    /// # Panics
    ///
    /// Same as [`StreamingAccountant::commit_round`].
    pub fn advance_round_delta(&mut self, realized: DynTransition, affected: &[NodeId]) {
        if !self.speculated {
            self.speculate_round();
        }
        self.commit_round(realized, affected);
    }

    /// The component-wise worst accounting moments over all tracked
    /// origins.  With telemetry attached, the result is also published to
    /// the `ns_acct_worst_*` gauges.
    pub fn worst_stats(&self) -> RowStats {
        let mut worst = RowStats::default();
        for shard in &self.shards {
            for row in 0..shard.ensemble.sources() {
                let stats = shard.ensemble.row_stats(row);
                worst.sum_of_squares = worst.sum_of_squares.max(stats.sum_of_squares);
                worst.support_ratio = worst.support_ratio.max(stats.support_ratio);
            }
        }
        if let Some(t) = &self.telemetry {
            t.record_worst_stats(&worst);
        }
        worst
    }

    /// The worst tracked user's current guarantee: each tracked origin's ε
    /// is evaluated from its own exact moments and the maximum is returned
    /// with its origin.
    ///
    /// # Errors
    ///
    /// Parameter validation errors from the closed forms.
    pub fn worst_quote(
        &self,
        protocol: ProtocolKind,
        params: &AccountantParams,
    ) -> Result<(NodeId, PrivacyGuarantee)> {
        let mut worst: Option<(NodeId, PrivacyGuarantee)> = None;
        for shard in &self.shards {
            let candidate = Self::shard_worst(shard, protocol, params)?;
            let beats = worst
                .as_ref()
                .is_none_or(|(_, current)| candidate.1.epsilon > current.epsilon);
            if beats {
                worst = Some(candidate);
            }
        }
        worst.ok_or_else(|| {
            Error::InvalidConfiguration("the streaming accountant tracks no origins".into())
        })
    }

    /// Per-shard worst quotes, in shard-id order — the operator's view of
    /// which shard is currently limiting the deployment.
    ///
    /// # Errors
    ///
    /// Parameter validation errors from the closed forms.
    pub fn shard_quotes(
        &self,
        protocol: ProtocolKind,
        params: &AccountantParams,
    ) -> Result<Vec<(NodeId, PrivacyGuarantee)>> {
        self.shards
            .iter()
            .map(|shard| Self::shard_worst(shard, protocol, params))
            .collect()
    }

    /// Captures the accountant's round-boundary state for the durable
    /// runtime: per shard, the tracked origin ids and the exact ensemble
    /// rows.  The absolute round clock rides along so a scheduled
    /// accountant restores against the right per-round operators.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if a speculated round is pending or
    /// the accountant holds a live delta operator — both belong to the
    /// delta-incremental pipeline, whose mid-flight state is not a round
    /// boundary (commit first).
    pub fn checkpoint(&self) -> Result<AccountantCheckpoint> {
        if self.speculated {
            return Err(Error::InvalidConfiguration(
                "cannot checkpoint a speculated round; commit it first".into(),
            ));
        }
        if matches!(self.operator, StreamingOperator::Live(_)) {
            return Err(Error::InvalidConfiguration(
                "cannot checkpoint an accountant holding a live delta operator".into(),
            ));
        }
        Ok(AccountantCheckpoint {
            round: self.round,
            shards: self
                .shards
                .iter()
                .map(|shard| AccountantShardCheckpoint {
                    origins: shard.origins.clone(),
                    rows: shard.ensemble.clone().into_flat(),
                })
                .collect(),
        })
    }

    /// Reconstructs an accountant from an [`AccountantCheckpoint`] against
    /// the same deployment: `schedule` must be the realized operator
    /// schedule when one was attached (`None` restores the static lazy
    /// walk).  Every ensemble row is re-validated as a probability
    /// distribution and restored at the checkpoint's absolute round clock,
    /// so subsequent [`StreamingAccountant::advance_round`] calls continue
    /// **bit for bit**.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] on shard-count or row-shape
    /// mismatches; row validation errors from the ensemble constructors;
    /// operator construction errors.
    pub fn restore(
        graph: &Graph,
        partition: &Partition,
        laziness: f64,
        schedule: Option<TimeVaryingModel>,
        checkpoint: &AccountantCheckpoint,
    ) -> Result<Self> {
        if checkpoint.shards.len() != partition.shard_count() {
            return Err(Error::InvalidConfiguration(format!(
                "checkpoint tracks {} shards but the partition has {}",
                checkpoint.shards.len(),
                partition.shard_count()
            )));
        }
        let n = graph.node_count();
        let operator = match schedule {
            Some(model) => {
                if model.node_count() != n {
                    return Err(Error::InvalidConfiguration(format!(
                        "operator schedule covers {} users but the graph has {n}",
                        model.node_count()
                    )));
                }
                StreamingOperator::Scheduled(model)
            }
            None => StreamingOperator::Static(TransitionMatrix::with_laziness(graph, laziness)?),
        };
        let mut shards = Vec::with_capacity(checkpoint.shards.len());
        for (s, shard_cp) in checkpoint.shards.iter().enumerate() {
            if shard_cp.origins.is_empty() || shard_cp.rows.len() != shard_cp.origins.len() * n {
                return Err(Error::InvalidConfiguration(format!(
                    "shard {s} checkpoint has {} rows entries for {} origins over {n} users",
                    shard_cp.rows.len(),
                    shard_cp.origins.len()
                )));
            }
            if let Some(&bad) = shard_cp.origins.iter().find(|&&o| o >= n) {
                return Err(ns_graph::GraphError::NodeOutOfRange {
                    node: bad,
                    node_count: n,
                }
                .into());
            }
            let ensemble = DistributionEnsemble::from_rows_at(
                shard_cp.origins.len(),
                shard_cp.rows.clone(),
                checkpoint.round,
            )?;
            shards.push(TrackedShard {
                origins: shard_cp.origins.clone(),
                ensemble,
                prev: Vec::new(),
                prev_il: Vec::new(),
            });
        }
        Ok(StreamingAccountant {
            operator,
            shards,
            round: checkpoint.round,
            speculated: false,
            delta_dense_fraction: DELTA_DENSE_FRACTION,
            telemetry: None,
        })
    }

    /// The single per-origin fold both quote forms share: evaluate every
    /// tracked origin of one shard and keep the strictly-largest ε (ties
    /// keep the earliest tracked origin).
    fn shard_worst(
        shard: &TrackedShard,
        protocol: ProtocolKind,
        params: &AccountantParams,
    ) -> Result<(NodeId, PrivacyGuarantee)> {
        let mut worst: Option<(NodeId, PrivacyGuarantee)> = None;
        for (row, &origin) in shard.origins.iter().enumerate() {
            let stats = shard.ensemble.row_stats(row);
            let guarantee = guarantee_from_stats(protocol, params, &stats)?;
            let beats = worst
                .as_ref()
                .is_none_or(|(_, current)| guarantee.epsilon > current.epsilon);
            if beats {
                worst = Some((origin, guarantee));
            }
        }
        worst.ok_or_else(|| Error::InvalidConfiguration("a shard tracks no origins".into()))
    }
}

/// One shard's captured accountant state inside an
/// [`AccountantCheckpoint`]: tracked origin ids plus the flat row-major
/// ensemble rows (`origins.len() × n`).
#[derive(Debug, Clone, PartialEq)]
pub struct AccountantShardCheckpoint {
    /// Global ids of the tracked origins, in tracking order.
    pub origins: Vec<NodeId>,
    /// Row-major exact position distributions, one row per origin.
    pub rows: Vec<f64>,
}

/// A round-boundary capture of a [`StreamingAccountant`]
/// ([`StreamingAccountant::checkpoint`] /
/// [`StreamingAccountant::restore`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AccountantCheckpoint {
    /// Rounds the tracked distributions have been advanced by — the
    /// absolute clock scheduled operators index by.
    pub round: usize,
    /// Per-shard tracked state, in shard-id order.
    pub shards: Vec<AccountantShardCheckpoint>,
}

/// A round-boundary capture of a full [`ShuffleCoordinator`] exchange
/// phase: engine, accountant and traffic recorder
/// ([`ShuffleCoordinator::checkpoint`] /
/// [`ShuffleCoordinator::install_checkpoint`]).
///
/// Deliberately *not* captured: the admitted arena and origins (the durable
/// runtime reconstructs them by replaying logged admission batches, which
/// also re-seals envelopes under the recovering process's curator key — the
/// simulated PKI is process-local) and the attached outage schedule (logged
/// once at attach time).
#[derive(Debug, Clone, PartialEq)]
pub struct CoordinatorCheckpoint {
    /// The exchange engine's complete round-boundary state.
    pub engine: EngineCheckpoint,
    /// The streaming accountant's tracked rows and clock.
    pub accountant: AccountantCheckpoint,
    /// Rounds the traffic recorder has observed.
    pub recorder_rounds: usize,
    /// Per-user relay-message totals so far.
    pub recorder_messages: Vec<usize>,
    /// Per-user peak held-report counts so far.
    pub recorder_peaks: Vec<usize>,
}

/// Evaluates the closed form for one origin's moments (the same rule the
/// offline accountant applies).
fn guarantee_from_stats(
    protocol: ProtocolKind,
    params: &AccountantParams,
    stats: &RowStats,
) -> Result<PrivacyGuarantee> {
    match protocol {
        ProtocolKind::All => {
            all_protocol_epsilon(params, stats.sum_of_squares, stats.support_ratio)
        }
        ProtocolKind::Single => single_protocol_epsilon(params, stats.sum_of_squares),
    }
}

/// The sharded shuffle coordinator: admission, rounds, live quotes,
/// finalization.  See the [module docs](self).
#[derive(Debug)]
pub struct ShuffleCoordinator<'g, P> {
    graph: &'g Graph,
    partition: &'g Partition,
    config: CoordinatorConfig,
    curator: Curator,
    /// Sealed report of walker `w` (taken on submission).
    arena: Vec<Option<Envelope<Report<P>>>>,
    /// Origin of walker `w` (where its report starts, and who produced it).
    origins: Vec<NodeId>,
    /// The exchange engine; `None` until [`ShuffleCoordinator::begin_exchange`].
    engine: Option<ShardedMixingEngine<'g>>,
    recorder: TrafficRecorder,
    accountant: StreamingAccountant,
    /// Realized availability schedule; round `t` of the exchange runs with
    /// `outages.mask(t)` when present.
    outages: Option<OutageSchedule>,
    /// Service-layer telemetry bundle; `None` (the default) is the inert
    /// no-op path.  The engine and accountant shares are re-attached
    /// whenever those components are (re)built.
    telemetry: Option<CoordinatorTelemetry>,
}

impl<'g, P: Clone> ShuffleCoordinator<'g, P> {
    /// Creates an idle coordinator: reports can be admitted, no rounds have
    /// run.
    ///
    /// # Errors
    ///
    /// Configuration validation errors; graph/partition mismatch errors from
    /// the streaming accountant.
    pub fn new(
        graph: &'g Graph,
        partition: &'g Partition,
        config: CoordinatorConfig,
    ) -> Result<Self> {
        config.validate()?;
        if let Some(u) = graph.find_isolated_node() {
            return Err(ns_graph::GraphError::IsolatedNode(u).into());
        }
        let accountant =
            StreamingAccountant::new(graph, partition, config.laziness, config.tracked_per_shard)?;
        Ok(ShuffleCoordinator {
            graph,
            partition,
            config,
            curator: Curator::new(),
            arena: Vec::new(),
            origins: Vec::new(),
            engine: None,
            recorder: TrafficRecorder::new(0),
            accountant,
            outages: None,
            telemetry: None,
        })
    }

    /// Attaches (or detaches, with `None`) the service-layer telemetry
    /// bundle, wiring the engine and accountant shares into whatever is
    /// already built.  Observability is inert by construction: an
    /// instrumented run is bitwise identical to a bare one.
    pub fn set_telemetry(&mut self, telemetry: Option<CoordinatorTelemetry>) {
        self.accountant
            .set_telemetry(telemetry.as_ref().map(|t| t.accountant.clone()));
        if let Some(engine) = &mut self.engine {
            engine.set_telemetry(telemetry.as_ref().map(|t| t.engine.clone()));
        }
        self.telemetry = telemetry;
    }

    /// The attached telemetry bundle, if any.
    pub fn telemetry(&self) -> Option<&CoordinatorTelemetry> {
        self.telemetry.as_ref()
    }

    /// Records one admission decision: counters always, plus an `admit`
    /// audit event (quoting the live worst-user `(ε, δ)` when quote
    /// parameters were attached) when the bundle carries an audit sink.
    fn audit_admission(&self, reports: usize, accepted: bool, reason: &'static str) {
        let Some(t) = &self.telemetry else { return };
        t.admit_batches.inc();
        if accepted {
            t.admit_reports.add(reports as u64);
        } else {
            t.admit_refusals.inc();
        }
        if let Some(audit) = &t.audit {
            let (epsilon, delta) = t
                .quote_params
                .as_ref()
                .and_then(|params| {
                    self.accountant
                        .worst_quote(self.config.protocol, params)
                        .ok()
                })
                .map_or((f64::NAN, f64::NAN), |(_, quote)| {
                    (quote.epsilon, quote.delta)
                });
            audit.record(ns_obs::TraceEvent::Admit {
                batch: t.admit_batches.get(),
                reports: reports as u64,
                accepted,
                reason,
                epsilon,
                delta,
            });
        }
    }

    /// Attaches a realized outage schedule: every subsequent exchange round
    /// `t` runs the **masked** sharded round with `schedule.mask(t)` (held
    /// past the schedule's end, matching the schedule's own semantics), and
    /// the streaming accountant is rebuilt to evolve its tracked
    /// distributions through the round's actual masked operator — so
    /// [`ShuffleCoordinator::live_quote`] and
    /// [`ShuffleCoordinator::run_until_epsilon`] gate uploads against the
    /// schedule you *realized*, not the network you planned.  With every
    /// origin tracked the live quote equals the offline
    /// [`crate::accountant::NetworkShuffleAccountant::with_schedule`] route
    /// exactly; with a fully-available schedule everything stays bitwise
    /// the static path.  The accountant keeps its round-0 point-mass
    /// ensembles — only the per-round operator is swapped.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if the exchange phase already
    /// started (the accountant's clock must start at round 0) or the
    /// schedule's node count differs from the graph's; operator
    /// construction errors otherwise.
    pub fn with_outages(&mut self, schedule: OutageSchedule) -> Result<()> {
        if self.engine.is_some() {
            return Err(Error::InvalidConfiguration(
                "attach the outage schedule before the exchange phase starts".into(),
            ));
        }
        let model = schedule.time_varying_model(self.graph, self.config.laziness)?;
        self.accountant.reschedule(model)?;
        self.outages = Some(schedule);
        Ok(())
    }

    /// Samples a realized schedule from an [`OutageModel`] over `rounds`
    /// rounds (deterministic in `seed`) and attaches it via
    /// [`ShuffleCoordinator::with_outages`].  Returns a reference to the
    /// attached schedule so callers can hand the *same* realization to the
    /// offline accountant for cross-checks.
    ///
    /// # Errors
    ///
    /// Model validation/sampling errors, plus the
    /// [`ShuffleCoordinator::with_outages`] errors.
    pub fn sample_outages(
        &mut self,
        model: &OutageModel,
        rounds: usize,
        seed: u64,
    ) -> Result<&OutageSchedule> {
        let schedule = model.sample_schedule(self.graph.node_count(), rounds, seed)?;
        self.with_outages(schedule)?;
        Ok(self.outages.as_ref().expect("schedule was just attached"))
    }

    /// The attached outage schedule, if any.
    pub fn outages(&self) -> Option<&OutageSchedule> {
        self.outages.as_ref()
    }

    /// The coordinator's configuration.
    pub fn config(&self) -> &CoordinatorConfig {
        &self.config
    }

    /// The streaming accountant (for direct inspection of tracked moments).
    pub fn accountant(&self) -> &StreamingAccountant {
        &self.accountant
    }

    /// Number of reports admitted so far.
    pub fn report_count(&self) -> usize {
        self.origins.len()
    }

    /// Rounds executed so far.
    pub fn round(&self) -> usize {
        self.engine.as_ref().map_or(0, ShardedMixingEngine::round)
    }

    /// Admits one batch of reports: `batch[i] = (origin, payload)` seals
    /// `payload` for the curator and stages it at `origin`.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if the exchange phase has already
    /// started or an origin is out of range.
    pub fn admit(&mut self, batch: Vec<(NodeId, P)>) -> Result<()> {
        if self.engine.is_some() {
            self.audit_admission(batch.len(), false, "exchange-started");
            return Err(Error::InvalidConfiguration(
                "cannot admit reports after the exchange phase started".into(),
            ));
        }
        let n = self.graph.node_count();
        // Validate the whole batch before staging anything: admission is
        // all-or-nothing, so a failed batch can be fixed and re-admitted
        // without duplicating its valid prefix.
        if let Some(entry) = batch.iter().find(|entry| entry.0 >= n) {
            let node = entry.0;
            self.audit_admission(batch.len(), false, "origin-out-of-range");
            return Err(ns_graph::GraphError::NodeOutOfRange {
                node,
                node_count: n,
            }
            .into());
        }
        let reports = batch.len();
        for (origin, payload) in batch {
            self.arena.push(Some(Envelope::seal(
                self.curator.public_key(),
                Report::genuine(origin, payload),
            )));
            self.origins.push(origin);
        }
        self.audit_admission(reports, true, "ok");
        Ok(())
    }

    /// Admits the canonical full population: `payloads[i]` is user `i`'s
    /// locally randomized report.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if the payload count differs from the
    /// user count or admission is closed.
    pub fn admit_population(&mut self, payloads: Vec<P>) -> Result<()> {
        let n = self.graph.node_count();
        if payloads.len() != n {
            return Err(Error::InvalidConfiguration(format!(
                "expected {n} payloads (one per user), got {}",
                payloads.len()
            )));
        }
        self.admit(payloads.into_iter().enumerate().collect())
    }

    /// Closes admission and builds the sharded engine over the admitted
    /// reports.  Idempotent once started is *not* supported: admission is a
    /// phase, not a stream (run a new coordinator per collection epoch).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if no reports were admitted or the
    /// exchange already started; engine construction errors otherwise.
    pub fn begin_exchange(&mut self) -> Result<()> {
        if self.engine.is_some() {
            return Err(Error::InvalidConfiguration(
                "the exchange phase already started".into(),
            ));
        }
        if self.origins.is_empty() {
            return Err(Error::InvalidConfiguration(
                "no reports admitted; nothing to exchange".into(),
            ));
        }
        let mut initial_load = vec![0usize; self.graph.node_count()];
        for &origin in &self.origins {
            initial_load[origin] += 1;
        }
        self.recorder = TrafficRecorder::with_initial_load(&initial_load);
        let mut engine = ShardedMixingEngine::with_starts(
            self.graph,
            self.partition,
            self.origins.clone(),
            self.config.seed,
        )?;
        engine.set_draw_mode(self.config.draw_mode);
        engine.set_telemetry(self.telemetry.as_ref().map(|t| t.engine.clone()));
        self.engine = Some(engine);
        Ok(())
    }

    /// The exchange engine, once [`ShuffleCoordinator::begin_exchange`] has
    /// run — the durable runtime's read-only window onto positions, bucket
    /// orders and per-shard RNG clocks.
    pub fn engine(&self) -> Option<&ShardedMixingEngine<'g>> {
        self.engine.as_ref()
    }

    /// Captures the coordinator's complete round-boundary state: engine
    /// (positions, bucket orders, RNG streams, draw mode), streaming
    /// accountant (tracked rows + clock) and traffic recorder.  Restoring
    /// it via [`ShuffleCoordinator::install_checkpoint`] continues the run
    /// **bit for bit**.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if the exchange phase has not
    /// started; accountant checkpoint errors (pending speculation).
    pub fn checkpoint(&self) -> Result<CoordinatorCheckpoint> {
        let engine = self.engine.as_ref().ok_or_else(|| {
            Error::InvalidConfiguration("call begin_exchange() before checkpointing".into())
        })?;
        Ok(CoordinatorCheckpoint {
            engine: engine.checkpoint(),
            accountant: self.accountant.checkpoint()?,
            recorder_rounds: self.recorder.rounds(),
            recorder_messages: self.recorder.messages_per_user().to_vec(),
            recorder_peaks: self.recorder.peak_reports_per_user().to_vec(),
        })
    }

    /// Replaces the coordinator's exchange-phase state with a captured
    /// [`CoordinatorCheckpoint`] — the recovery hook.  The coordinator must
    /// have been brought through the normal lifecycle first (admit the same
    /// batches, attach the same outage schedule, `begin_exchange`), so the
    /// arena, origins and schedule are live; this call then fast-forwards
    /// engine, accountant and recorder to the checkpointed round.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if the exchange phase has not
    /// started, or the checkpoint's walker/user counts do not match the
    /// admitted population; engine/accountant restore validation errors.
    pub fn install_checkpoint(&mut self, checkpoint: &CoordinatorCheckpoint) -> Result<()> {
        if self.engine.is_none() {
            return Err(Error::InvalidConfiguration(
                "call begin_exchange() before installing a checkpoint".into(),
            ));
        }
        if checkpoint.engine.positions.len() != self.origins.len() {
            return Err(Error::InvalidConfiguration(format!(
                "checkpoint tracks {} walkers but {} reports were admitted",
                checkpoint.engine.positions.len(),
                self.origins.len()
            )));
        }
        let n = self.graph.node_count();
        if checkpoint.recorder_messages.len() != n || checkpoint.recorder_peaks.len() != n {
            return Err(Error::InvalidConfiguration(format!(
                "checkpoint records {} users but the graph has {n}",
                checkpoint.recorder_messages.len()
            )));
        }
        let mut engine = ShardedMixingEngine::restore_checkpoint(
            self.graph,
            self.partition,
            &checkpoint.engine,
        )?;
        engine.set_telemetry(self.telemetry.as_ref().map(|t| t.engine.clone()));
        let schedule = self
            .outages
            .as_ref()
            .map(|s| s.time_varying_model(self.graph, self.config.laziness))
            .transpose()?;
        let mut accountant = StreamingAccountant::restore(
            self.graph,
            self.partition,
            self.config.laziness,
            schedule,
            &checkpoint.accountant,
        )?;
        accountant.set_telemetry(self.telemetry.as_ref().map(|t| t.accountant.clone()));
        self.recorder = TrafficRecorder::from_parts(
            checkpoint.recorder_rounds,
            checkpoint.recorder_messages.clone(),
            checkpoint.recorder_peaks.clone(),
        );
        self.engine = Some(engine);
        self.accountant = accountant;
        Ok(())
    }

    /// Executes `rounds` exchange rounds (threaded under the `parallel`
    /// feature), advancing the streaming accountant in lockstep.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if [`ShuffleCoordinator::begin_exchange`]
    /// has not been called.
    pub fn run_rounds(&mut self, rounds: usize) -> Result<()> {
        let engine = self.engine.as_mut().ok_or_else(|| {
            Error::InvalidConfiguration("call begin_exchange() before running rounds".into())
        })?;
        let traffic = self.telemetry.as_ref().map(|t| &t.traffic);
        let mut observer = ObservedRounds::new(&mut self.recorder, traffic);
        for _ in 0..rounds {
            match &self.outages {
                None => engine.step_auto(self.config.laziness, &mut observer),
                Some(schedule) => {
                    // Round t (0-based) runs under mask(t); the accountant's
                    // scheduled operator applies the same mask at the same
                    // clock, so quotes track the realized walk exactly.
                    let mask = schedule.mask(engine.round());
                    engine.step_masked_auto(self.config.laziness, mask, &mut observer);
                }
            }
            self.accountant.advance_round();
        }
        Ok(())
    }

    /// The worst tracked user's guarantee **at the current round** — the
    /// mid-run operator quote.  Valid before, during and after the exchange
    /// phase.
    ///
    /// # Errors
    ///
    /// Parameter validation errors from the closed forms.
    pub fn live_quote(&self, params: &AccountantParams) -> Result<(NodeId, PrivacyGuarantee)> {
        self.accountant.worst_quote(self.config.protocol, params)
    }

    /// Runs rounds until the live worst-user ε drops to `target_epsilon` or
    /// `max_rounds` total rounds have executed, whichever comes first;
    /// returns the total rounds executed and the final quote.  This is the
    /// upload gate: callers release uploads iff the returned quote meets the
    /// budget.
    ///
    /// # Errors
    ///
    /// Same as [`ShuffleCoordinator::run_rounds`] and
    /// [`ShuffleCoordinator::live_quote`].
    pub fn run_until_epsilon(
        &mut self,
        params: &AccountantParams,
        target_epsilon: f64,
        max_rounds: usize,
    ) -> Result<(usize, PrivacyGuarantee)> {
        loop {
            let (_, quote) = self.live_quote(params)?;
            let round = self.round();
            if quote.epsilon <= target_epsilon || round >= max_rounds {
                return Ok((round, quote));
            }
            self.run_rounds(1)?;
        }
    }

    /// Applies the protocol's submission rule for every user and returns the
    /// curator's collection plus the run's traffic metrics.  Each user's
    /// final-round randomness is drawn from her **shard's** stream, in
    /// submitter order — under the 1-shard partition this continues the
    /// walk stream exactly like [`crate::simulation::run_protocol`].
    ///
    /// `make_dummy` produces payloads for `A_single` users who hold nothing
    /// (ignored under `A_all`).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if the exchange phase never started;
    /// curator decryption errors (a protocol bug) otherwise.
    pub fn finalize(
        mut self,
        mut make_dummy: impl FnMut(&mut SimRng) -> P,
    ) -> Result<SimulationOutcome<P>> {
        let engine = self.engine.as_mut().ok_or_else(|| {
            Error::InvalidConfiguration("call begin_exchange() before finalizing".into())
        })?;
        let n = self.graph.node_count();
        let policy: FinalizePolicy = self.config.protocol.into();
        let mut submissions = Vec::with_capacity(n);
        for submitter in 0..n {
            let held: Vec<u32> = engine.held_by(submitter).to_vec();
            let shard = self.partition.shard_of(submitter);
            let rng = engine.shard_rng_mut(shard);
            let reports = match policy.choose(held.len(), rng) {
                FinalizeChoice::All => held
                    .iter()
                    .map(|&report| {
                        self.arena[report as usize]
                            .take()
                            .expect("a report is submitted once")
                    })
                    .collect(),
                FinalizeChoice::Dummy => {
                    let dummy = Report::dummy(submitter, make_dummy(rng));
                    vec![Envelope::seal(self.curator.public_key(), dummy)]
                }
                FinalizeChoice::Pick(index) => {
                    vec![self.arena[held[index] as usize]
                        .take()
                        .expect("a report is submitted once")]
                }
            };
            submissions.push(SealedSubmission { submitter, reports });
        }
        let collected = self.curator.collect(submissions)?;
        let metrics: TrafficMetrics = self.recorder.into_metrics(collected.report_count());
        Ok(SimulationOutcome { collected, metrics })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accountant::{NetworkShuffleAccountant, Scenario};
    use ns_graph::generators;
    use ns_graph::rng::seeded_rng;

    fn graph(n: usize, k: usize, seed: u64) -> Graph {
        generators::random_regular(n, k, &mut seeded_rng(seed)).unwrap()
    }

    #[test]
    fn lifecycle_is_enforced() {
        let g = graph(40, 4, 1);
        let p = Partition::new(&g, 2).unwrap();
        let config = CoordinatorConfig::all(7, 4);
        let mut coordinator: ShuffleCoordinator<'_, u32> =
            ShuffleCoordinator::new(&g, &p, config).unwrap();
        // No rounds before begin_exchange.
        assert!(coordinator.run_rounds(1).is_err());
        assert!(coordinator.begin_exchange().is_err()); // nothing admitted
        assert!(coordinator.admit(vec![(41, 5u32)]).is_err()); // out of range
                                                               // Admission is all-or-nothing: a failed batch stages nothing, even
                                                               // when its prefix was valid.
        assert!(coordinator.admit(vec![(0, 1u32), (41, 5u32)]).is_err());
        assert_eq!(coordinator.report_count(), 0);
        coordinator.admit_population((0..40).collect()).unwrap();
        coordinator.begin_exchange().unwrap();
        assert!(coordinator.begin_exchange().is_err());
        assert!(coordinator.admit(vec![(0, 1u32)]).is_err()); // admission closed
        coordinator.run_rounds(3).unwrap();
        assert_eq!(coordinator.round(), 3);
        assert_eq!(coordinator.accountant().round(), 3);
        let outcome = coordinator.finalize(|_| 0).unwrap();
        assert_eq!(outcome.collected.report_count(), 40);
    }

    #[test]
    fn bad_configs_are_rejected() {
        let g = graph(30, 4, 2);
        let p = Partition::new(&g, 2).unwrap();
        let mut config = CoordinatorConfig::all(1, 1);
        config.laziness = 1.0;
        assert!(ShuffleCoordinator::<u32>::new(&g, &p, config).is_err());
        let mut config = CoordinatorConfig::all(1, 1);
        config.tracked_per_shard = 0;
        assert!(ShuffleCoordinator::<u32>::new(&g, &p, config).is_err());
        let other = graph(20, 4, 3);
        let p_other = Partition::new(&other, 2).unwrap();
        assert!(
            ShuffleCoordinator::<u32>::new(&g, &p_other, CoordinatorConfig::all(1, 1)).is_err()
        );
    }

    #[test]
    fn streaming_accountant_with_all_origins_matches_the_offline_route() {
        let g = ns_graph::generators::two_degree_class(30, 4, 5).unwrap();
        let p = Partition::new(&g, 3).unwrap();
        let mut streaming = StreamingAccountant::new(&g, &p, 0.0, usize::MAX).unwrap();
        assert_eq!(streaming.tracked_count(), g.node_count());
        let offline = NetworkShuffleAccountant::new(&g).unwrap();
        let params = AccountantParams::with_defaults(g.node_count(), 1.0).unwrap();
        for t in 1..=8 {
            streaming.advance_round();
            assert_eq!(streaming.round(), t);
            for protocol in [ProtocolKind::All, ProtocolKind::Single] {
                let (_, live) = streaming.worst_quote(protocol, &params).unwrap();
                let (_, exact) = offline.worst_user_guarantee(protocol, &params, t).unwrap();
                assert_eq!(live.epsilon, exact.epsilon, "t = {t}, {protocol:?}");
            }
            let worst = streaming.worst_stats();
            let (sum_sq, rho) = offline.sum_p_squared(Scenario::Exact, t).unwrap();
            assert_eq!(worst.sum_of_squares, sum_sq);
            assert_eq!(worst.support_ratio, rho);
        }
    }

    #[test]
    fn shard_quotes_cover_every_shard_and_bound_the_global_quote() {
        let g = graph(60, 4, 6);
        let p = Partition::new(&g, 3).unwrap();
        let mut accountant = StreamingAccountant::new(&g, &p, 0.0, 5).unwrap();
        for _ in 0..6 {
            accountant.advance_round();
        }
        let params = AccountantParams::with_defaults(60, 1.0).unwrap();
        let per_shard = accountant
            .shard_quotes(ProtocolKind::Single, &params)
            .unwrap();
        assert_eq!(per_shard.len(), 3);
        let (worst_origin, worst) = accountant
            .worst_quote(ProtocolKind::Single, &params)
            .unwrap();
        let max_shard = per_shard
            .iter()
            .map(|(_, g)| g.epsilon)
            .fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(worst.epsilon, max_shard);
        assert_eq!(p.shard_of(worst_origin), {
            per_shard
                .iter()
                .position(|(_, g)| g.epsilon == worst.epsilon)
                .unwrap()
        });
    }

    #[test]
    fn quotes_improve_as_rounds_accumulate() {
        let g = graph(100, 6, 7);
        let p = Partition::new(&g, 4).unwrap();
        let config = CoordinatorConfig::single(11, 8);
        let mut coordinator: ShuffleCoordinator<'_, u32> =
            ShuffleCoordinator::new(&g, &p, config).unwrap();
        coordinator.admit_population((0..100).collect()).unwrap();
        coordinator.begin_exchange().unwrap();
        let params = AccountantParams::with_defaults(100, 1.0).unwrap();
        let (_, at_zero) = coordinator.live_quote(&params).unwrap();
        coordinator.run_rounds(12).unwrap();
        let (_, later) = coordinator.live_quote(&params).unwrap();
        assert!(
            later.epsilon < at_zero.epsilon,
            "mixing must improve the quote: {} -> {}",
            at_zero.epsilon,
            later.epsilon
        );
    }

    #[test]
    fn run_until_epsilon_gates_on_the_target() {
        let g = graph(200, 8, 8);
        let p = Partition::new(&g, 2).unwrap();
        let config = CoordinatorConfig::single(13, 6);
        let mut coordinator: ShuffleCoordinator<'_, u32> =
            ShuffleCoordinator::new(&g, &p, config).unwrap();
        coordinator.admit_population(vec![0; 200]).unwrap();
        coordinator.begin_exchange().unwrap();
        let params = AccountantParams::with_defaults(200, 1.0).unwrap();
        // A generous target (the A_single quote converges to ~1.79 at this
        // n and delta) is reached before the budget.
        let (rounds, quote) = coordinator.run_until_epsilon(&params, 2.5, 200).unwrap();
        assert!(quote.epsilon <= 2.5);
        assert!(rounds < 200);
        assert_eq!(coordinator.round(), rounds);
        // An unreachable target exhausts the budget instead of looping.
        let (rounds, quote) = coordinator.run_until_epsilon(&params, 0.5, 30).unwrap();
        assert_eq!(rounds, 30);
        assert!(quote.epsilon > 0.5);
    }

    #[test]
    fn scheduled_accountant_with_all_origins_matches_the_offline_schedule_route() {
        let g = ns_graph::generators::two_degree_class(30, 4, 5).unwrap();
        let n = g.node_count();
        let p = Partition::new(&g, 3).unwrap();
        let rounds = 8;
        let model = OutageModel::MarkovOnOff {
            fail: 0.1,
            recover: 0.3,
        };
        let schedule = model.sample_schedule(n, rounds, 17).unwrap();
        let time_varying = schedule.time_varying_model(&g, 0.0).unwrap();
        let mut streaming =
            StreamingAccountant::with_schedule(&g, &p, time_varying.clone(), usize::MAX).unwrap();
        assert!(streaming.is_scheduled());
        assert_eq!(streaming.tracked_count(), n);
        let offline = NetworkShuffleAccountant::new(&g)
            .unwrap()
            .with_schedule(time_varying)
            .unwrap();
        let params = AccountantParams::with_defaults(n, 1.0).unwrap();
        for t in 1..=rounds {
            streaming.advance_round();
            for protocol in [ProtocolKind::All, ProtocolKind::Single] {
                let (_, live) = streaming.worst_quote(protocol, &params).unwrap();
                let (_, exact) = offline.worst_user_guarantee(protocol, &params, t).unwrap();
                assert_eq!(live.epsilon, exact.epsilon, "t = {t}, {protocol:?}");
            }
        }
    }

    #[test]
    fn outage_lifecycle_is_enforced() {
        let g = graph(40, 4, 21);
        let p = Partition::new(&g, 2).unwrap();
        let config = CoordinatorConfig::all(7, 4);
        let mut coordinator: ShuffleCoordinator<'_, u32> =
            ShuffleCoordinator::new(&g, &p, config).unwrap();
        // A schedule with the wrong node count is rejected.
        let bad = OutageSchedule::fully_available(10, 3).unwrap();
        assert!(coordinator.with_outages(bad).is_err());
        // Attaching after the exchange started is rejected.
        let ok = OutageSchedule::fully_available(40, 3).unwrap();
        coordinator.admit_population((0..40).collect()).unwrap();
        coordinator.begin_exchange().unwrap();
        assert!(coordinator.with_outages(ok).is_err());
    }

    #[test]
    fn fully_available_schedule_is_bitwise_the_static_coordinator() {
        let g = graph(60, 4, 22);
        let p = Partition::new(&g, 3).unwrap();
        let rounds = 10;
        let run = |outages: bool| {
            let config = CoordinatorConfig::single(23, 4);
            let mut coordinator: ShuffleCoordinator<'_, u32> =
                ShuffleCoordinator::new(&g, &p, config).unwrap();
            if outages {
                coordinator
                    .with_outages(OutageSchedule::fully_available(60, rounds).unwrap())
                    .unwrap();
            }
            coordinator.admit_population((0..60).collect()).unwrap();
            coordinator.begin_exchange().unwrap();
            coordinator.run_rounds(rounds).unwrap();
            let params = AccountantParams::with_defaults(60, 1.0).unwrap();
            let (origin, quote) = coordinator.live_quote(&params).unwrap();
            let outcome = coordinator.finalize(|_| 9).unwrap();
            let view: Vec<_> = outcome
                .collected
                .reports_with_submitter()
                .map(|(s, r)| (s, r.origin, r.is_dummy, r.payload))
                .collect();
            (origin, quote.epsilon, view, outcome.metrics)
        };
        let static_run = run(false);
        let scheduled_run = run(true);
        assert_eq!(static_run.0, scheduled_run.0);
        assert_eq!(static_run.1, scheduled_run.1);
        assert_eq!(static_run.2, scheduled_run.2);
        assert_eq!(static_run.3, scheduled_run.3);
    }

    #[test]
    fn blackout_rounds_suppress_traffic_and_degrade_the_quote() {
        let g = graph(80, 4, 24);
        let p = Partition::new(&g, 2).unwrap();
        let rounds = 12;
        let run = |blackout: bool| {
            let config = CoordinatorConfig::single(29, usize::MAX);
            let mut coordinator: ShuffleCoordinator<'_, u32> =
                ShuffleCoordinator::new(&g, &p, config).unwrap();
            if blackout {
                coordinator
                    .sample_outages(
                        &OutageModel::RegionBlackout {
                            region: (0..40).collect(),
                            from_round: 0,
                            until_round: rounds,
                        },
                        rounds,
                        5,
                    )
                    .unwrap();
            }
            coordinator.admit_population(vec![0u32; 80]).unwrap();
            coordinator.begin_exchange().unwrap();
            coordinator.run_rounds(rounds).unwrap();
            let params = AccountantParams::with_defaults(80, 1.0).unwrap();
            let quote = coordinator.live_quote(&params).unwrap().1.epsilon;
            let outcome = coordinator.finalize(|_| 0).unwrap();
            (quote, outcome.metrics.total_messages())
        };
        let (clear_eps, clear_messages) = run(false);
        let (dark_eps, dark_messages) = run(true);
        // Failed deliveries are never counted as traffic, and half the
        // network being dark slows mixing, so the live quote is worse.
        assert!(dark_messages < clear_messages);
        assert!(
            dark_eps > clear_eps,
            "blackout must degrade the live quote: {clear_eps} -> {dark_eps}"
        );
    }

    #[test]
    fn checkpoint_install_continues_bitwise_with_and_without_outages() {
        let g = graph(70, 4, 31);
        let p = Partition::new(&g, 3).unwrap();
        let params = AccountantParams::with_defaults(70, 1.0).unwrap();
        for (outages, mode) in [
            (false, DrawMode::Compat),
            (true, DrawMode::Compat),
            (false, DrawMode::Fast),
        ] {
            let mut config = CoordinatorConfig::single(37, 5);
            config.draw_mode = mode;
            let build = || {
                let mut c: ShuffleCoordinator<'_, u32> =
                    ShuffleCoordinator::new(&g, &p, config).unwrap();
                if outages {
                    c.sample_outages(
                        &OutageModel::MarkovOnOff {
                            fail: 0.1,
                            recover: 0.4,
                        },
                        16,
                        3,
                    )
                    .unwrap();
                }
                c.admit_population((0..70).collect()).unwrap();
                c.begin_exchange().unwrap();
                c
            };
            let mut reference = build();
            reference.run_rounds(6).unwrap();
            let cp = reference.checkpoint().unwrap();
            assert_eq!(cp.engine.round, 6);
            assert_eq!(cp.accountant.round, 6);
            // A freshly begun twin fast-forwards to the checkpoint, then
            // both continue in lockstep.
            let mut recovered = build();
            recovered.install_checkpoint(&cp).unwrap();
            assert_eq!(recovered.round(), 6);
            reference.run_rounds(7).unwrap();
            recovered.run_rounds(7).unwrap();
            let (ro, rq) = reference.live_quote(&params).unwrap();
            let (co, cq) = recovered.live_quote(&params).unwrap();
            assert_eq!(ro, co);
            assert_eq!(rq.epsilon.to_bits(), cq.epsilon.to_bits());
            assert_eq!(
                reference.engine().unwrap().positions(),
                recovered.engine().unwrap().positions()
            );
            let a = reference.finalize(|_| 7).unwrap();
            let b = recovered.finalize(|_| 7).unwrap();
            let view = |o: &SimulationOutcome<u32>| -> Vec<_> {
                o.collected
                    .reports_with_submitter()
                    .map(|(s, r)| (s, r.origin, r.is_dummy, r.payload))
                    .collect()
            };
            assert_eq!(view(&a), view(&b));
            assert_eq!(a.metrics, b.metrics);
        }
    }

    #[test]
    fn checkpoint_requires_exchange_and_validates_shapes() {
        let g = graph(40, 4, 32);
        let p = Partition::new(&g, 2).unwrap();
        let config = CoordinatorConfig::all(5, 4);
        let mut c: ShuffleCoordinator<'_, u32> = ShuffleCoordinator::new(&g, &p, config).unwrap();
        assert!(c.checkpoint().is_err());
        c.admit_population((0..40).collect()).unwrap();
        assert!(c.checkpoint().is_err());
        c.begin_exchange().unwrap();
        c.run_rounds(2).unwrap();
        let cp = c.checkpoint().unwrap();
        // A coordinator with a different admitted population rejects it.
        let mut other: ShuffleCoordinator<'_, u32> =
            ShuffleCoordinator::new(&g, &p, config).unwrap();
        other
            .admit((0..20).map(|u| (u, u as u32)).collect())
            .unwrap();
        other.begin_exchange().unwrap();
        assert!(other.install_checkpoint(&cp).is_err());
        // Corrupted accountant rows (not a distribution) are rejected.
        let mut bad = cp.clone();
        bad.accountant.shards[0].rows[0] += 0.5;
        assert!(c.install_checkpoint(&bad).is_err());
        assert!(c.install_checkpoint(&cp).is_ok());
    }

    #[test]
    fn partial_batches_mix_and_finalize() {
        let g = graph(50, 4, 9);
        let p = Partition::new(&g, 2).unwrap();
        let config = CoordinatorConfig::single(17, 4);
        let mut coordinator: ShuffleCoordinator<'_, u32> =
            ShuffleCoordinator::new(&g, &p, config).unwrap();
        // Two batches covering 30 of 50 users, one user contributing twice.
        coordinator
            .admit((0..20).map(|u| (u, u as u32)).collect())
            .unwrap();
        coordinator
            .admit((19..30).map(|u| (u, 100 + u as u32)).collect())
            .unwrap();
        assert_eq!(coordinator.report_count(), 31);
        coordinator.begin_exchange().unwrap();
        coordinator.run_rounds(10).unwrap();
        let outcome = coordinator.finalize(|_| 999).unwrap();
        // Every submitter uploads exactly one report under A_single.
        assert_eq!(outcome.collected.submissions().len(), 50);
        assert_eq!(outcome.collected.report_count(), 50);
        assert!(outcome.collected.dummy_count() >= 19);
        assert_eq!(outcome.metrics.user_count, 50);
        assert_eq!(outcome.metrics.rounds, 10);
        // 31 walkers x 10 rounds is the traffic ceiling (lazy stays excluded).
        assert!(outcome.metrics.total_messages() <= 310);
    }
}
