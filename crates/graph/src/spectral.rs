//! Spectral analysis of the normalized adjacency matrix.
//!
//! Section 4.1 of the paper characterizes the mixing behaviour of the random
//! walk through the eigenvalues `1 = α₁ ≥ α₂ ≥ … ≥ αₙ > −1` of the
//! normalized adjacency matrix `N = B^{-1/2} A B^{-1/2}` (which is similar to
//! the transition matrix `A B⁻¹`, so they share eigenvalues).  The quantity
//! that enters the privacy bounds is the *spectral gap*
//!
//! ```text
//! α = min(1 − α₂, 1 − |αₙ|)
//! ```
//!
//! together with the convergence estimate `TV_G(P(t), π) ≤ √n (1 − α)^t`
//! and the finite-time bound `Σ_i P_i(t)² ≤ Σ_i π_i² + (1 − α)^{2t}` (Eq. 7).
//!
//! Eigenvalues are estimated by shifted power iteration with deflation of the
//! known top eigenvector `e₁ ∝ √deg`, which costs `O(m)` per iteration and
//! handles the graph sizes of Table 4 (up to ~10⁶ nodes) comfortably.

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Options controlling the power-iteration eigensolver.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectralOptions {
    /// Maximum number of power iterations per eigenvalue.
    pub max_iterations: usize,
    /// Convergence tolerance on the Rayleigh quotient between iterations.
    pub tolerance: f64,
    /// Seed for the random starting vector.
    pub seed: u64,
}

impl Default for SpectralOptions {
    fn default() -> Self {
        SpectralOptions {
            max_iterations: 5_000,
            tolerance: 1e-10,
            seed: 0x5EED_57EC,
        }
    }
}

/// Result of a spectral analysis of a graph's random walk.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectralAnalysis {
    /// Second-largest eigenvalue `α₂` of the normalized adjacency matrix.
    pub alpha_2: f64,
    /// Smallest eigenvalue `αₙ`.
    pub alpha_n: f64,
    /// Laziness applied to the walk (0 for the simple walk).  Lazy
    /// eigenvalues are `laziness + (1 − laziness)·α`.
    pub laziness: f64,
    /// Number of power iterations actually used (max over the two solves).
    pub iterations: usize,
}

impl SpectralAnalysis {
    /// Computes the spectral analysis of the simple random walk on `graph`.
    ///
    /// # Panics
    ///
    /// Panics if the graph is degenerate; use [`SpectralAnalysis::try_compute`]
    /// for a fallible version.
    pub fn compute(graph: &Graph, options: SpectralOptions) -> Self {
        Self::try_compute(graph, 0.0, options)
            .expect("graph must be non-empty with no isolated node")
    }

    /// Computes the spectral analysis of a (possibly lazy) random walk.
    ///
    /// # Errors
    ///
    /// * [`GraphError::EmptyGraph`] / [`GraphError::IsolatedNode`] for
    ///   degenerate graphs.
    /// * [`GraphError::InvalidParameters`] if `laziness ∉ [0, 1)`.
    pub fn try_compute(graph: &Graph, laziness: f64, options: SpectralOptions) -> Result<Self> {
        if !(0.0..1.0).contains(&laziness) {
            return Err(GraphError::InvalidParameters(format!(
                "laziness must be in [0, 1), got {laziness}"
            )));
        }
        let n = graph.node_count();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if let Some(u) = graph.find_isolated_node() {
            return Err(GraphError::IsolatedNode(u));
        }
        if n == 1 {
            // A single node with no self-loop: the walk is trivially already
            // stationary; define the gap as 1.
            return Ok(SpectralAnalysis {
                alpha_2: 0.0,
                alpha_n: 0.0,
                laziness,
                iterations: 0,
            });
        }

        let operator = NormalizedAdjacency::new(graph);
        let mut rng = crate::rng::seeded_rng(options.seed);

        // alpha_2 via power iteration on (I + N) / 2 with e1 deflated.
        let (mu_plus, it1) = operator.dominant_deflated(
            |op, x, y| {
                op.apply(x, y);
                for (yi, xi) in y.iter_mut().zip(x.iter()) {
                    *yi = 0.5 * (*yi + *xi);
                }
            },
            true,
            &mut rng,
            options,
        );
        let alpha_2_simple = (2.0 * mu_plus - 1.0).clamp(-1.0, 1.0);

        // alpha_n via power iteration on (I - N) / 2 (no deflation needed:
        // its top eigenvalue (1 - alpha_n)/2 is attained away from e1 unless
        // the graph is a single edge, which the deflation also handles).
        let (mu_minus, it2) = operator.dominant_deflated(
            |op, x, y| {
                op.apply(x, y);
                for (yi, xi) in y.iter_mut().zip(x.iter()) {
                    *yi = 0.5 * (*xi - *yi);
                }
            },
            false,
            &mut rng,
            options,
        );
        let alpha_n_simple = (1.0 - 2.0 * mu_minus).clamp(-1.0, 1.0);

        // Laziness shifts every eigenvalue towards +1.
        let alpha_2 = laziness + (1.0 - laziness) * alpha_2_simple;
        let alpha_n = laziness + (1.0 - laziness) * alpha_n_simple;

        Ok(SpectralAnalysis {
            alpha_2,
            alpha_n,
            laziness,
            iterations: it1.max(it2),
        })
    }

    /// The spectral gap `α = min(1 − α₂, 1 − |αₙ|)`.
    ///
    /// Returns a value clamped to `[0, 1]`; a gap of (numerically) zero
    /// indicates a non-ergodic walk (disconnected or bipartite graph).
    pub fn spectral_gap(&self) -> f64 {
        let gap = (1.0 - self.alpha_2).min(1.0 - self.alpha_n.abs());
        gap.clamp(0.0, 1.0)
    }
}

/// Implicit normalized adjacency operator `N = B^{-1/2} A B^{-1/2}`.
struct NormalizedAdjacency {
    offsets: Vec<usize>,
    neighbors: Vec<usize>,
    inv_sqrt_degree: Vec<f64>,
    /// `√deg / ‖√deg‖` — the top eigenvector `e₁`.
    top_eigenvector: Vec<f64>,
}

impl NormalizedAdjacency {
    fn new(graph: &Graph) -> Self {
        let n = graph.node_count();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0);
        for u in graph.nodes() {
            neighbors.extend(graph.neighbors(u).iter().map(|&v| v as usize));
            offsets.push(neighbors.len());
        }
        let inv_sqrt_degree: Vec<f64> = graph
            .nodes()
            .map(|u| 1.0 / (graph.degree(u) as f64).sqrt())
            .collect();
        let mut top: Vec<f64> = graph
            .nodes()
            .map(|u| (graph.degree(u) as f64).sqrt())
            .collect();
        let norm = top.iter().map(|x| x * x).sum::<f64>().sqrt();
        for x in &mut top {
            *x /= norm;
        }
        NormalizedAdjacency {
            offsets,
            neighbors,
            inv_sqrt_degree,
            top_eigenvector: top,
        }
    }

    fn node_count(&self) -> usize {
        self.inv_sqrt_degree.len()
    }

    /// `y = N x`.
    fn apply(&self, x: &[f64], y: &mut [f64]) {
        for yi in y.iter_mut() {
            *yi = 0.0;
        }
        for (i, (&x_i, &inv_sqrt)) in x.iter().zip(self.inv_sqrt_degree.iter()).enumerate() {
            let xi = x_i * inv_sqrt;
            if xi == 0.0 {
                continue;
            }
            for &j in &self.neighbors[self.offsets[i]..self.offsets[i + 1]] {
                y[j] += xi * self.inv_sqrt_degree[j];
            }
        }
    }

    /// Power iteration for the dominant eigenvalue of the operator defined by
    /// `step` (a non-negative shift of ±N), optionally deflating `e₁`.
    /// Returns `(eigenvalue_of_shifted_operator, iterations)`.
    fn dominant_deflated<F>(
        &self,
        step: F,
        deflate: bool,
        rng: &mut impl Rng,
        options: SpectralOptions,
    ) -> (f64, usize)
    where
        F: Fn(&Self, &[f64], &mut [f64]),
    {
        let n = self.node_count();
        let mut x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() - 0.5).collect();
        let mut y = vec![0.0; n];
        let mut previous = f64::NAN;
        let mut iterations = 0;

        for it in 1..=options.max_iterations {
            iterations = it;
            if deflate {
                project_out(&mut x, &self.top_eigenvector);
            }
            normalize(&mut x);
            step(self, &x, &mut y);
            if deflate {
                project_out(&mut y, &self.top_eigenvector);
            }
            // Rayleigh quotient of the shifted operator.
            let value: f64 = x.iter().zip(y.iter()).map(|(a, b)| a * b).sum();
            std::mem::swap(&mut x, &mut y);
            if (value - previous).abs() <= options.tolerance * value.abs().max(1.0) && it > 8 {
                return (value, it);
            }
            previous = value;
        }
        (previous, iterations)
    }
}

fn normalize(x: &mut [f64]) {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    } else {
        // Degenerate: restart from a deterministic vector.
        for (i, v) in x.iter_mut().enumerate() {
            *v = if i % 2 == 0 { 1.0 } else { -1.0 };
        }
        normalize(x);
    }
}

fn project_out(x: &mut [f64], direction: &[f64]) {
    let dot: f64 = x.iter().zip(direction.iter()).map(|(a, b)| a * b).sum();
    for (xi, di) in x.iter_mut().zip(direction.iter()) {
        *xi -= dot * di;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    fn analyse(g: &Graph) -> SpectralAnalysis {
        SpectralAnalysis::compute(g, SpectralOptions::default())
    }

    #[test]
    fn complete_graph_spectrum() {
        // K_n: eigenvalues 1 and -1/(n-1) with multiplicity n-1.
        let n = 10usize;
        let g = generators::complete(n).unwrap();
        let s = analyse(&g);
        let expected = -1.0 / (n as f64 - 1.0);
        assert!(
            (s.alpha_2 - expected).abs() < 1e-6,
            "alpha_2 = {}",
            s.alpha_2
        );
        assert!(
            (s.alpha_n - expected).abs() < 1e-6,
            "alpha_n = {}",
            s.alpha_n
        );
        let expected_gap = 1.0 - 1.0 / (n as f64 - 1.0);
        assert!((s.spectral_gap() - expected_gap).abs() < 1e-6);
    }

    #[test]
    fn odd_cycle_spectrum() {
        // C_n: eigenvalues cos(2 pi k / n).
        let n = 9usize;
        let g = generators::cycle(n).unwrap();
        let s = analyse(&g);
        let alpha_2 = (2.0 * std::f64::consts::PI / n as f64).cos();
        let alpha_n = (2.0 * std::f64::consts::PI * 4.0 / n as f64).cos();
        assert!(
            (s.alpha_2 - alpha_2).abs() < 1e-5,
            "alpha_2 = {}",
            s.alpha_2
        );
        assert!(
            (s.alpha_n - alpha_n).abs() < 1e-5,
            "alpha_n = {}",
            s.alpha_n
        );
    }

    #[test]
    fn even_cycle_is_bipartite_with_zero_gap() {
        let g = generators::cycle(8).unwrap();
        let s = analyse(&g);
        assert!((s.alpha_n + 1.0).abs() < 1e-5);
        assert!(s.spectral_gap() < 1e-4);
    }

    #[test]
    fn star_spectrum() {
        // Star: eigenvalues 1, 0 (multiplicity n-2), -1.
        let g = generators::star(12).unwrap();
        let s = analyse(&g);
        assert!(s.alpha_2.abs() < 1e-5, "alpha_2 = {}", s.alpha_2);
        assert!((s.alpha_n + 1.0).abs() < 1e-5, "alpha_n = {}", s.alpha_n);
        assert!(s.spectral_gap() < 1e-4);
    }

    #[test]
    fn laziness_shifts_eigenvalues_and_restores_ergodicity() {
        let g = generators::cycle(8).unwrap();
        let simple = analyse(&g);
        let lazy = SpectralAnalysis::try_compute(&g, 0.5, SpectralOptions::default()).unwrap();
        assert!(lazy.spectral_gap() > 0.05);
        assert!(lazy.alpha_n > simple.alpha_n);
        // Eigenvalue transform check: lazy alpha_2 = 0.5 + 0.5 * simple alpha_2.
        assert!((lazy.alpha_2 - (0.5 + 0.5 * simple.alpha_2)).abs() < 1e-6);
    }

    #[test]
    fn random_regular_graph_has_healthy_gap() {
        let mut rng = crate::rng::seeded_rng(3);
        let g = generators::random_regular(400, 8, &mut rng).unwrap();
        let s = analyse(&g);
        // Friedman: alpha_2 ~ 2 sqrt(k-1)/k ≈ 0.66 for k = 8; allow slack.
        assert!(s.alpha_2 < 0.85, "alpha_2 = {}", s.alpha_2);
        assert!(s.spectral_gap() > 0.1);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(SpectralAnalysis::try_compute(&empty, 0.0, SpectralOptions::default()).is_err());
        let isolated = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert!(SpectralAnalysis::try_compute(&isolated, 0.0, SpectralOptions::default()).is_err());
        let path = generators::path(4).unwrap();
        assert!(SpectralAnalysis::try_compute(&path, 1.5, SpectralOptions::default()).is_err());
    }

    #[test]
    fn single_node_graph_is_trivially_mixed() {
        let g = Graph::from_edges(1, &[]).unwrap();
        // A single node has degree zero, so it is rejected as isolated;
        // document that behaviour here.
        assert!(SpectralAnalysis::try_compute(&g, 0.0, SpectralOptions::default()).is_err());
    }
}
