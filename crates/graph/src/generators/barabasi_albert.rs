//! Barabási–Albert preferential-attachment graphs.
//!
//! Grown networks with heavy-tailed degree distributions, i.e. large
//! irregularity `Γ_G` — the regime of the Enron and Google graphs in Table 4.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;
use rand::Rng;

/// Generates a Barabási–Albert graph on `n` nodes where each newly arriving
/// node attaches to `m` existing nodes with probability proportional to
/// their current degree.
///
/// The process is seeded with a star on `m + 1` nodes so that every node has
/// degree at least `m` and the graph is connected by construction.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if `m == 0` or `n <= m`.
pub fn barabasi_albert<R: Rng + ?Sized>(n: usize, m: usize, rng: &mut R) -> Result<Graph> {
    if m == 0 {
        return Err(GraphError::InvalidParameters(
            "attachment count m must be positive".into(),
        ));
    }
    if n <= m {
        return Err(GraphError::InvalidParameters(format!(
            "barabasi_albert requires n > m, got n = {n}, m = {m}"
        )));
    }
    let mut builder = GraphBuilder::new(n);
    // `targets` holds one entry per half-edge endpoint, so sampling an
    // element uniformly is sampling a node proportionally to its degree.
    let mut degree_urn: Vec<usize> = Vec::with_capacity(2 * n * m);

    // Seed star on nodes 0..=m.
    for leaf in 1..=m {
        builder.add_edge(0, leaf)?;
        degree_urn.push(0);
        degree_urn.push(leaf);
    }

    for new_node in (m + 1)..n {
        let mut chosen = Vec::with_capacity(m);
        while chosen.len() < m {
            let target = degree_urn[rng.gen_range(0..degree_urn.len())];
            if target != new_node && !chosen.contains(&target) {
                chosen.push(target);
            }
        }
        for &target in &chosen {
            builder.add_edge(new_node, target)?;
            degree_urn.push(new_node);
            degree_urn.push(target);
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn produces_connected_graph_with_expected_edge_count() {
        let mut rng = seeded_rng(21);
        let n = 500;
        let m = 3;
        let g = barabasi_albert(n, m, &mut rng).unwrap();
        assert_eq!(g.node_count(), n);
        assert_eq!(g.edge_count(), m + (n - m - 1) * m);
        assert!(g.is_connected());
        assert!(g.min_degree().unwrap() >= 1);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let mut rng = seeded_rng(22);
        let g = barabasi_albert(2_000, 4, &mut rng).unwrap();
        let stats = crate::degree::DegreeStats::compute(&g).unwrap();
        // A BA graph has Gamma_G well above 1 (power-law-ish tail).
        assert!(stats.irregularity > 1.5, "Gamma = {}", stats.irregularity);
        assert!(stats.max_degree > 10 * stats.min_degree);
    }

    #[test]
    fn rejects_invalid_parameters() {
        let mut rng = seeded_rng(23);
        assert!(barabasi_albert(10, 0, &mut rng).is_err());
        assert!(barabasi_albert(3, 3, &mut rng).is_err());
    }

    #[test]
    fn deterministic_under_seed() {
        let a = barabasi_albert(200, 2, &mut seeded_rng(5)).unwrap();
        let b = barabasi_albert(200, 2, &mut seeded_rng(5)).unwrap();
        assert_eq!(a, b);
    }
}
