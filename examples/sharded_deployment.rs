//! The sharded shuffle runtime at scale: shard-count scaling plus a live
//! mid-run privacy quote.
//!
//! ```text
//! cargo run --release --example sharded_deployment
//! # with threaded shard rounds:
//! cargo run --release --features parallel --example sharded_deployment
//! # CI smoke run at a small population:
//! NS_SHARD_N=5000 cargo run --release --example sharded_deployment
//! ```
//!
//! Builds a million-user Twitch-calibrated stand-in (same irregularity
//! target `Γ_G = 7.584` as the paper's Twitch graph, scaled up so the
//! largest connected component holds over a million users; `NS_SHARD_N`
//! overrides the requested size), then:
//!
//! 1. sweeps the shard count: partition quality (edge-cut fraction, shard
//!    imbalance), estimated per-shard working set, and measured exchange
//!    throughput (rounds/s) of the multi-shard engine;
//! 2. runs the full [`ShuffleCoordinator`] loop on the partitioned
//!    deployment — batch admission, exchange rounds with **live worst-user
//!    ε quotes from the streaming accountant mid-run**, upload gating on a
//!    target budget, and finalization to the curator;
//! 3. replays a **regional blackout through the sharded runtime** (the
//!    unified round kernel composes sharding × masking): masked sharded
//!    rounds bounce deliveries to dark recipients back through the return
//!    exchange, the streaming accountant evolves through the round's actual
//!    masked operator, and — with every origin tracked — the live mid-run
//!    quote is checked **exactly equal** to the offline
//!    `NetworkShuffleAccountant::with_schedule` route on the same realized
//!    schedule, round after round.

use network_shuffle::prelude::*;
use ns_graph::partition::Partition;
use ns_graph::round::DrawMode;
use ns_graph::sharded_engine::ShardedMixingEngine;
use ns_obs::say;
use std::time::Instant;

const TOPIC: &str = "sharded_deployment";

/// Estimated bytes a shard would have to hold in a distributed deployment:
/// its local CSR, its frontier table and its slice of the walker state.
fn shard_working_set(partition: &Partition, shard: usize) -> usize {
    let shard = partition.shard(shard);
    shard.local_graph().memory_bytes()
        + std::mem::size_of_val(shard.frontier())
        + shard.len() * std::mem::size_of::<usize>()
}

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    // The generator keeps the largest connected component, which sheds
    // ~13% of the requested Chung–Lu population at this degree profile —
    // the default request is padded so the surviving graph stays >= 1M.
    let n: usize = std::env::var("NS_SHARD_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_160_000);
    let rounds_per_config = 20;
    let seed = 20220408;

    say!(
        TOPIC,
        "generating a Twitch-calibrated stand-in at n = {n} (Gamma target 7.584) ..."
    );
    let start = Instant::now();
    let graph = ns_datasets::catalog::generate_with_targets(n, 7.584, 10.0, seed)?;
    let n = graph.node_count();
    say!(
        TOPIC,
        "  n = {n}, m = {} edges, degrees {}..{} ({:.1?})",
        graph.edge_count(),
        graph.min_degree().unwrap_or(0),
        graph.max_degree().unwrap_or(0),
        start.elapsed()
    );

    // 1. Shard-count scaling sweep.
    println!();
    say!(
        TOPIC,
        "shard-count scaling ({rounds_per_config} exchange rounds per configuration):"
    );
    say!(
        TOPIC,
        "{:>7}  {:>9}  {:>10}  {:>14}  {:>12}  {:>13}",
        "shards",
        "edge cut",
        "imbalance",
        "partition time",
        "rounds/s",
        "max shard MB"
    );
    for k in [1usize, 2, 4, 8] {
        if k > n {
            continue;
        }
        let t0 = Instant::now();
        let partition = Partition::new(&graph, k)?;
        let partition_time = t0.elapsed();
        let max_shard_bytes = (0..k)
            .map(|s| shard_working_set(&partition, s))
            .max()
            .unwrap_or(0);
        let mut engine = ShardedMixingEngine::one_walker_per_node(&graph, &partition, seed)?;
        let t1 = Instant::now();
        for _ in 0..rounds_per_config {
            engine.step_auto(0.0, &mut ());
        }
        let elapsed = t1.elapsed().as_secs_f64();
        say!(
            TOPIC,
            "{k:>7}  {:>8.2}%  {:>10.3}  {:>13.0?}  {:>12.2}  {:>13.1}",
            100.0 * partition.edge_cut_fraction(),
            partition.max_shard_imbalance(),
            partition_time,
            rounds_per_config as f64 / elapsed,
            max_shard_bytes as f64 / (1024.0 * 1024.0),
        );
    }

    // 2. The coordinator loop with live mid-run quotes and upload gating.
    let shard_count = 4.min(n);
    let epsilon_0 = 2.0;
    let partition = Partition::new(&graph, shard_count)?;
    let config = CoordinatorConfig {
        seed,
        laziness: 0.0,
        protocol: ProtocolKind::Single,
        tracked_per_shard: 2,
        draw_mode: DrawMode::Compat,
    };
    let params = AccountantParams::with_defaults(n, epsilon_0)?;
    // The asymptotic quote: at stationarity every report's Σ P² is the
    // collision probability Σ π² = Σ d²/(2m)² of the stationary walk, so
    // the upload gate can be set a hair above that floor without any
    // spectral analysis.
    let two_m = (2 * graph.edge_count()) as f64;
    let stationary_sum_sq: f64 = graph
        .nodes()
        .map(|u| (graph.degree(u) as f64 / two_m).powi(2))
        .sum();
    let floor_epsilon =
        network_shuffle::accountant::single_protocol_epsilon(&params, stationary_sum_sq)?.epsilon;
    let target_epsilon = 1.05 * floor_epsilon;
    println!();
    say!(
        TOPIC,
        "coordinator on {shard_count} shards (A_single, eps0 = {epsilon_0}, \
         {} tracked origins): stationary floor eps = {floor_epsilon:.4}, \
         gate uploads at eps <= {target_epsilon:.4}",
        config.tracked_per_shard * shard_count
    );

    let mut coordinator: ShuffleCoordinator<'_, u32> =
        ShuffleCoordinator::new(&graph, &partition, config)?;
    // Reports arrive in batches (here: four quarters of the population).
    let batch_size = n.div_ceil(4);
    for batch_start in (0..n).step_by(batch_size) {
        let batch: Vec<(usize, u32)> = (batch_start..(batch_start + batch_size).min(n))
            .map(|u| (u, (u % 16) as u32))
            .collect();
        coordinator.admit(batch)?;
    }
    say!(
        TOPIC,
        "  admitted {} reports in 4 batches",
        coordinator.report_count()
    );
    coordinator.begin_exchange()?;

    // Live quotes mid-run: the operator polls the streaming accountant
    // without stopping the exchange.
    let run_start = Instant::now();
    for checkpoint in [2usize, 4, 8] {
        coordinator.run_rounds(checkpoint - coordinator.round())?;
        let (origin, quote) = coordinator.live_quote(&params)?;
        say!(
            TOPIC,
            "  round {:>3}: live worst-user quote eps = {:.4} (user {origin}, degree {})",
            coordinator.round(),
            quote.epsilon,
            graph.degree(origin)
        );
    }
    // Gate the uploads on the target budget.
    let (rounds, quote) = coordinator.run_until_epsilon(&params, target_epsilon, 120)?;
    if quote.epsilon <= target_epsilon {
        say!(
            TOPIC,
            "  round {rounds:>3}: target met (eps = {:.4} <= {target_epsilon:.4}) — releasing \
             uploads [{:.1?} of exchange]",
            quote.epsilon,
            run_start.elapsed()
        );
    } else {
        say!(
            TOPIC,
            "  round {rounds:>3}: budget exhausted at eps = {:.4} — holding uploads",
            quote.epsilon
        );
    }
    let per_shard = coordinator
        .accountant()
        .shard_quotes(ProtocolKind::Single, &params)?;
    for (s, (origin, guarantee)) in per_shard.iter().enumerate() {
        say!(
            TOPIC,
            "    shard {s}: worst tracked user {origin} at eps = {:.4}",
            guarantee.epsilon
        );
    }

    let outcome = coordinator.finalize(|_| 0)?;
    say!(
        TOPIC,
        "  finalized: {} reports at the curator ({} dummies), {:.1} mean messages/user",
        outcome.collected.report_count(),
        outcome.collected.dummy_count(),
        outcome.metrics.mean_messages_per_user()
    );

    // 3. Sharded under a blackout: the composed masked x sharded path, with
    // the live quote cross-checked against the offline schedule accountant.
    // All-origin tracking costs O(n^2) memory, so this segment runs on a
    // smaller stand-in of the same degree profile.
    let blackout_n = n.min(1_800);
    let small = ns_datasets::catalog::generate_with_targets(blackout_n, 7.584, 10.0, seed + 1)?;
    let bn = small.node_count();
    let blackout_shards = 4.min(bn);
    let small_partition = Partition::new(&small, blackout_shards)?;
    let blackout_rounds = 16usize;
    let model = OutageModel::RegionBlackout {
        region: (0..bn / 4).collect(),
        from_round: 0,
        until_round: blackout_rounds / 2,
    };
    println!();
    say!(
        TOPIC,
        "sharded under a blackout (n = {bn}, {blackout_shards} shards, all {bn} origins \
         tracked): a quarter of the network dark for rounds 0..{}",
        blackout_rounds / 2
    );
    let mut dark: ShuffleCoordinator<'_, u32> = ShuffleCoordinator::new(
        &small,
        &small_partition,
        CoordinatorConfig {
            seed,
            laziness: 0.0,
            protocol: ProtocolKind::Single,
            tracked_per_shard: usize::MAX,
            draw_mode: DrawMode::Compat,
        },
    )?;
    let schedule = dark.sample_outages(&model, blackout_rounds, seed)?.clone();
    // The offline reference: the exact accountant on the same realized
    // schedule — the gold standard the live quote must reproduce.
    let offline = NetworkShuffleAccountant::new(&small)?
        .with_schedule(schedule.time_varying_model(&small, 0.0)?)?;
    let small_params = AccountantParams::with_defaults(bn, epsilon_0)?;
    dark.admit_population((0..bn as u32).collect())?;
    dark.begin_exchange()?;
    for checkpoint in [2usize, blackout_rounds / 2, blackout_rounds] {
        dark.run_rounds(checkpoint - dark.round())?;
        let (origin, live) = dark.live_quote(&small_params)?;
        let (_, exact) =
            offline.worst_user_guarantee(ProtocolKind::Single, &small_params, dark.round())?;
        assert_eq!(
            live.epsilon, exact.epsilon,
            "live quote must equal the offline schedule accountant exactly"
        );
        say!(TOPIC,
            "  round {:>3}: live eps = {:.4} (user {origin}) == offline with_schedule eps = {:.4}  [{}]",
            dark.round(),
            live.epsilon,
            exact.epsilon,
            if dark.round() <= blackout_rounds / 2 {
                "blackout"
            } else {
                "recovered"
            }
        );
    }
    let dark_outcome = dark.finalize(|_| 0)?;
    say!(
        TOPIC,
        "  finalized under churn: {} reports ({} dummies), {} relay messages \
         (failed deliveries bounce and are never counted)",
        dark_outcome.collected.report_count(),
        dark_outcome.collected.dummy_count(),
        dark_outcome.metrics.total_messages()
    );

    println!();
    say!(
        TOPIC,
        "the partition quality table prices shard-local deployments (edge cut = cross-shard\n\
         traffic) while the streaming accountant turns rounds into live per-user guarantees —\n\
         uploads release the moment the worst tracked user clears the budget, not at a\n\
         precomputed round count. And because every runtime executes the one round kernel,\n\
         the same machinery keeps quoting exactly when shards run under a blackout."
    );
    Ok(())
}
