//! The random-walk transition matrix `M = A B⁻¹` and distribution updates.
//!
//! `M_{ij} = A_{ij} / deg(i)` is the probability that a report held by user
//! `i` is relayed to user `j` in one round.  The position probability
//! distribution evolves as `P(t+1) = Mᵀ P(t)` (Section 4.1).  The matrix is
//! never materialized densely; updates stream over the CSR adjacency so a
//! single round costs `O(n + m)`.

use crate::error::{GraphError, Result};
use crate::graph::Graph;

/// A sparse, implicit representation of the transition matrix of the simple
/// (optionally lazy) random walk on a graph.
#[derive(Debug, Clone)]
pub struct TransitionMatrix {
    /// Reciprocal degrees `1 / deg(i)`.
    inv_degree: Vec<f64>,
    /// Offsets/neighbors copied from the graph (borrowing would tie the
    /// matrix's lifetime to the graph; the copy is 2m + n words and keeps the
    /// API simple).
    offsets: Vec<usize>,
    neighbors: Vec<usize>,
    /// Probability of staying put in one round (0 for the simple walk).
    laziness: f64,
}

impl TransitionMatrix {
    /// Builds the transition matrix of the simple random walk on `graph`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::EmptyGraph`] if the graph has no nodes.
    /// * [`GraphError::IsolatedNode`] if some node has degree zero.
    pub fn new(graph: &Graph) -> Result<Self> {
        Self::with_laziness(graph, 0.0)
    }

    /// Builds the transition matrix of a lazy random walk that stays at the
    /// current node with probability `laziness` and otherwise moves to a
    /// uniformly random neighbour.
    ///
    /// Laziness models temporarily unavailable users (Section 4.5) and also
    /// restores ergodicity on bipartite graphs.
    ///
    /// # Errors
    ///
    /// Same as [`TransitionMatrix::new`], plus
    /// [`GraphError::InvalidParameters`] if `laziness` is outside `[0, 1)`.
    pub fn with_laziness(graph: &Graph, laziness: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&laziness) {
            return Err(GraphError::InvalidParameters(format!(
                "laziness must be in [0, 1), got {laziness}"
            )));
        }
        let n = graph.node_count();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if let Some(u) = graph.find_isolated_node() {
            return Err(GraphError::IsolatedNode(u));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0usize);
        for u in graph.nodes() {
            neighbors.extend_from_slice(graph.neighbors(u));
            offsets.push(neighbors.len());
        }
        let inv_degree = graph
            .nodes()
            .map(|u| 1.0 / graph.degree(u) as f64)
            .collect();
        Ok(TransitionMatrix {
            inv_degree,
            offsets,
            neighbors,
            laziness,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.inv_degree.len()
    }

    /// The laziness (self-loop probability) of the walk.
    pub fn laziness(&self) -> f64 {
        self.laziness
    }

    /// Transition probability `Pr[next = j | current = i]`.
    pub fn probability(&self, i: usize, j: usize) -> f64 {
        let stay = if i == j { self.laziness } else { 0.0 };
        let nbrs = &self.neighbors[self.offsets[i]..self.offsets[i + 1]];
        let move_mass = if nbrs.binary_search(&j).is_ok() {
            (1.0 - self.laziness) * self.inv_degree[i]
        } else {
            0.0
        };
        stay + move_mass
    }

    /// One step of the distribution update: returns `P(t+1) = Mᵀ P(t)`.
    ///
    /// The output is allocated; use [`TransitionMatrix::propagate_into`] to
    /// reuse buffers in hot loops.
    pub fn propagate(&self, p: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; p.len()];
        self.propagate_into(p, &mut out);
        out
    }

    /// One step of the distribution update writing into `out`.
    ///
    /// # Panics
    ///
    /// Panics if `p` or `out` do not have length `n`.
    pub fn propagate_into(&self, p: &[f64], out: &mut [f64]) {
        let n = self.node_count();
        assert_eq!(p.len(), n, "input distribution has wrong length");
        assert_eq!(out.len(), n, "output buffer has wrong length");
        let move_factor = 1.0 - self.laziness;
        for x in out.iter_mut() {
            *x = 0.0;
        }
        // Scatter: node i sends (1-laziness) * P_i / deg(i) to each neighbour
        // and keeps laziness * P_i.
        for i in 0..n {
            let mass = p[i];
            if mass == 0.0 {
                continue;
            }
            out[i] += self.laziness * mass;
            let share = move_factor * mass * self.inv_degree[i];
            for &j in &self.neighbors[self.offsets[i]..self.offsets[i + 1]] {
                out[j] += share;
            }
        }
    }

    /// Evolves a distribution for `steps` rounds, returning `P(t)`.
    pub fn evolve(&self, p0: &[f64], steps: usize) -> Vec<f64> {
        let mut current = p0.to_vec();
        let mut scratch = vec![0.0; p0.len()];
        for _ in 0..steps {
            self.propagate_into(&current, &mut scratch);
            std::mem::swap(&mut current, &mut scratch);
        }
        current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn probabilities_of_simple_walk_on_path() {
        let g = generators::path(3).unwrap(); // 0-1-2
        let m = TransitionMatrix::new(&g).unwrap();
        assert!((m.probability(0, 1) - 1.0).abs() < 1e-12);
        assert!((m.probability(1, 0) - 0.5).abs() < 1e-12);
        assert!((m.probability(1, 2) - 0.5).abs() < 1e-12);
        assert!((m.probability(0, 2) - 0.0).abs() < 1e-12);
        assert!((m.probability(0, 0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn lazy_walk_probabilities() {
        let g = generators::path(3).unwrap();
        let m = TransitionMatrix::with_laziness(&g, 0.5).unwrap();
        assert!((m.probability(1, 1) - 0.5).abs() < 1e-12);
        assert!((m.probability(1, 0) - 0.25).abs() < 1e-12);
        assert!((m.probability(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn propagate_preserves_probability_mass() {
        let g = generators::star(6).unwrap();
        let m = TransitionMatrix::new(&g).unwrap();
        let mut p = vec![0.0; 6];
        p[2] = 0.7;
        p[5] = 0.3;
        let q = m.propagate(&p);
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(q.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn point_mass_on_star_leaf_moves_to_hub() {
        let g = generators::star(4).unwrap();
        let m = TransitionMatrix::new(&g).unwrap();
        let mut p = vec![0.0; 4];
        p[1] = 1.0; // a leaf
        let q = m.propagate(&p);
        assert!((q[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evolve_converges_towards_stationary_on_odd_cycle() {
        let g = generators::cycle(5).unwrap();
        let m = TransitionMatrix::new(&g).unwrap();
        let mut p0 = vec![0.0; 5];
        p0[0] = 1.0;
        let p = m.evolve(&p0, 500);
        for &x in &p {
            assert!((x - 0.2).abs() < 1e-6);
        }
    }

    #[test]
    fn lazy_walk_mixes_on_bipartite_graph() {
        let g = generators::cycle(4).unwrap();
        let lazy = TransitionMatrix::with_laziness(&g, 0.5).unwrap();
        let mut p0 = vec![0.0; 4];
        p0[0] = 1.0;
        let p = lazy.evolve(&p0, 300);
        for &x in &p {
            assert!((x - 0.25).abs() < 1e-6);
        }
        // The non-lazy walk oscillates and never mixes.
        let simple = TransitionMatrix::new(&g).unwrap();
        let q = simple.evolve(&p0, 300);
        assert!((q[0] - 0.5).abs() < 1e-9);
        assert!((q[1] - 0.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_invalid_laziness_and_degenerate_graphs() {
        let g = generators::path(3).unwrap();
        assert!(TransitionMatrix::with_laziness(&g, 1.0).is_err());
        assert!(TransitionMatrix::with_laziness(&g, -0.1).is_err());
        assert!(TransitionMatrix::new(&Graph::from_edges(0, &[]).unwrap()).is_err());
        assert!(TransitionMatrix::new(&Graph::from_edges(2, &[]).unwrap()).is_err());
    }
}
