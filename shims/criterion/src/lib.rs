//! Offline shim for the subset of the `criterion` 0.5 API this workspace
//! uses: `criterion_group!`/`criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`/`bench_with_input`, `BenchmarkId`, `black_box` and
//! `Bencher::iter`.
//!
//! Measurement is deliberately simple: each benchmark is warmed up once,
//! the per-iteration cost is estimated, and then `sample_size` samples are
//! timed (each sample batching enough iterations to be measurable).  The
//! mean, minimum and maximum per-iteration times are printed.  There is no
//! statistical analysis or HTML report — the shim exists so `cargo bench`
//! runs offline and produces honest wall-clock numbers.

#![forbid(unsafe_code)]

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measured sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(60);
/// Soft cap on the total measurement time of one benchmark.
const TOTAL_BUDGET: Duration = Duration::from_secs(5);

/// Identifier of one benchmark within a group, e.g. `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Things usable as a benchmark id: strings and [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher {
    sample_size: usize,
    /// Mean/min/max per-iteration nanoseconds of the last `iter` call.
    result: Option<(f64, f64, f64)>,
}

impl Bencher {
    /// Measures `routine`, batching iterations into timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + per-iteration estimate.
        let start = Instant::now();
        black_box(routine());
        let estimate = start.elapsed().max(Duration::from_nanos(1));

        let iters_per_sample =
            (TARGET_SAMPLE_TIME.as_nanos() / estimate.as_nanos()).clamp(1, 1_000_000) as usize;
        let per_sample = estimate * iters_per_sample as u32;
        let affordable = (TOTAL_BUDGET.as_nanos() / per_sample.as_nanos().max(1)) as usize;
        let samples = self.sample_size.min(affordable).max(3);

        let mut times = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            times.push(elapsed.as_secs_f64() * 1e9 / iters_per_sample as f64);
        }
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0, f64::max);
        self.result = Some((mean, min, max));
    }
}

fn human(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn run_one(group: Option<&str>, id: String, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
    let full_id = match group {
        Some(g) => format!("{g}/{id}"),
        None => id,
    };
    let mut bencher = Bencher {
        sample_size,
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean, min, max)) => println!(
            "bench: {full_id:<50} mean {:>12}  [min {:>12}, max {:>12}]",
            human(mean),
            human(min),
            human(max)
        ),
        None => println!("bench: {full_id:<50} (no measurement)"),
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    fn effective_sample_size(&self) -> usize {
        self.sample_size.unwrap_or(self.criterion.sample_size)
    }

    /// Benchmarks `f` under the given id.
    pub fn bench_function<I: IntoBenchmarkId>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut f = f;
        run_one(
            Some(&self.name),
            id.into_id(),
            self.effective_sample_size(),
            |b| f(b),
        );
        self
    }

    /// Benchmarks `f`, passing `input` through.
    pub fn bench_with_input<I: IntoBenchmarkId, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        f: impl FnMut(&mut Bencher, &T),
    ) -> &mut Self {
        let mut f = f;
        run_one(
            Some(&self.name),
            id.into_id(),
            self.effective_sample_size(),
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
            sample_size: None,
        }
    }

    /// Benchmarks `f` under the given id, outside any group.
    pub fn bench_function<I: IntoBenchmarkId>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut f = f;
        run_one(None, id.into_id(), self.sample_size, |b| f(b));
        self
    }
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
