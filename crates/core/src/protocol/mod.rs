//! Client-side protocols of network shuffling.
//!
//! * [`client::Client`] — the per-user state machine shared by the `A_all`
//!   and `A_single` reporting protocols (Algorithms 1 and 2 of the paper):
//!   randomize the local value, relay held reports to random neighbours for
//!   `t` rounds, then submit either everything (`A_all`) or a single
//!   uniformly chosen report / dummy (`A_single`).
//! * [`fix`] — the fixed-report-size local-response algorithm `A_fix`
//!   (Algorithm 3) and the swap reduction used by the privacy proof
//!   (Theorem 6.1); exposed so the proof's reduction can be exercised and
//!   tested numerically.

pub mod client;
pub mod fix;

pub use client::{Client, FinalizeChoice, FinalizePolicy};

use serde::{Deserialize, Serialize};

/// Which reporting protocol the clients run at the final round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// `A_all` (Algorithm 1): submit every held report; a null response when
    /// no report is held.
    All,
    /// `A_single` (Algorithm 2): submit exactly one report — uniformly chosen
    /// among the held ones, or a dummy if none is held.
    Single,
}

impl ProtocolKind {
    /// Human-readable protocol name as used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::All => "A_all",
            ProtocolKind::Single => "A_single",
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper_notation() {
        assert_eq!(ProtocolKind::All.name(), "A_all");
        assert_eq!(ProtocolKind::Single.name(), "A_single");
        assert_eq!(ProtocolKind::Single.to_string(), "A_single");
    }
}
