//! The logical WAL records of a durable shuffle epoch.
//!
//! Every [`crate::wal`] frame carries exactly one record, tagged by its
//! first byte.  The record set mirrors the coordinator's lifecycle:
//! admission batches and the realized outage schedule are logged verbatim
//! (they are *inputs*, not derivable), `BeginExchange` pins the phase
//! change, one [`WalRecord::Round`] precedes every executed round, and
//! snapshot/finalize markers delimit recovery.
//!
//! Round records do double duty: they drive replay **and** carry the
//! pre-round per-shard RNG clocks, the draw mode and the realized outage
//! mask as consistency checks — during recovery the replayed engine must
//! reproduce each logged clock exactly or recovery fails closed with
//! [`crate::error::StoreError::ReplayDiverged`].

use crate::codec::{put_bytes, put_len, put_mask, put_u32, put_u64, Decoder};
use crate::error::{Result, StoreError};
use ns_graph::round::DrawMode;

/// Record tags (the payload's first byte).
pub mod tag {
    /// An admitted batch of `(origin, payload)` reports.
    pub const ADMITTED_BATCH: u8 = 1;
    /// The realized outage schedule was attached.
    pub const SCHEDULE_ATTACHED: u8 = 2;
    /// Admission closed; the exchange engine was built.
    pub const BEGIN_EXCHANGE: u8 = 3;
    /// One exchange round is about to execute.
    pub const ROUND: u8 = 4;
    /// A snapshot of the full coordinator state was persisted.
    pub const SNAPSHOT_MARKER: u8 = 5;
    /// The epoch finalized; the store is closed.
    pub const FINALIZED: u8 = 6;
}

/// A decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// One admitted batch: `(origin, opaque payload bytes)` per report, in
    /// admission order.  Replay re-admits (and re-seals — the simulated PKI
    /// is process-local) the identical batch.
    AdmittedBatch {
        /// The batch entries.
        entries: Vec<(u64, Vec<u8>)>,
    },
    /// The realized outage schedule, mask per round (bit-packed on disk).
    ScheduleAttached {
        /// `masks[t][u]` — user `u` up in round `t`.
        masks: Vec<Vec<bool>>,
    },
    /// Admission closed.
    BeginExchange,
    /// One exchange round, logged *before* execution (WAL-before-state).
    Round {
        /// The engine round this record precedes (0-based).
        round: u64,
        /// Draw mode in force.
        draw_mode: DrawMode,
        /// Pre-round `(counter, cursor)` of every shard's RNG stream.
        clocks: Vec<(u64, u32)>,
        /// The realized availability mask for this round, when a schedule is
        /// attached.
        mask: Option<Vec<bool>>,
    },
    /// Snapshot `snap-<round>.bin` was durably written.
    SnapshotMarker {
        /// The round the snapshot captures.
        round: u64,
    },
    /// The epoch finalized at `round`; no further records are valid.
    Finalized {
        /// The final round.
        round: u64,
    },
}

/// Stable one-byte encoding of [`DrawMode`].
pub fn draw_mode_code(mode: DrawMode) -> u8 {
    match mode {
        DrawMode::Compat => 0,
        DrawMode::Fast => 1,
    }
}

/// Inverse of [`draw_mode_code`].
///
/// # Errors
///
/// [`StoreError::Corrupt`] for unknown codes.
pub fn draw_mode_from_code(code: u8) -> Result<DrawMode> {
    match code {
        0 => Ok(DrawMode::Compat),
        1 => Ok(DrawMode::Fast),
        other => Err(StoreError::Corrupt(format!("unknown draw mode {other}"))),
    }
}

/// Encodes a round record straight into `out` from borrowed state — the
/// steady-state append path, which must not allocate (beyond `out`'s
/// retained capacity).
pub fn encode_round(
    out: &mut Vec<u8>,
    round: u64,
    draw_mode: DrawMode,
    clocks: &[(u64, u32)],
    mask: Option<&[bool]>,
) {
    out.clear();
    out.push(tag::ROUND);
    put_u64(out, round);
    out.push(draw_mode_code(draw_mode));
    put_len(out, clocks.len());
    for &(counter, cursor) in clocks {
        put_u64(out, counter);
        put_u32(out, cursor);
    }
    match mask {
        None => out.push(0),
        Some(mask) => {
            out.push(1);
            put_mask(out, mask);
        }
    }
}

impl WalRecord {
    /// Encodes the record into `out` (cleared first).
    pub fn encode(&self, out: &mut Vec<u8>) {
        out.clear();
        match self {
            WalRecord::AdmittedBatch { entries } => {
                out.push(tag::ADMITTED_BATCH);
                put_len(out, entries.len());
                for (origin, payload) in entries {
                    put_u64(out, *origin);
                    put_bytes(out, payload);
                }
            }
            WalRecord::ScheduleAttached { masks } => {
                out.push(tag::SCHEDULE_ATTACHED);
                put_len(out, masks.len());
                for mask in masks {
                    put_mask(out, mask);
                }
            }
            WalRecord::BeginExchange => out.push(tag::BEGIN_EXCHANGE),
            WalRecord::Round {
                round,
                draw_mode,
                clocks,
                mask,
            } => encode_round(out, *round, *draw_mode, clocks, mask.as_deref()),
            WalRecord::SnapshotMarker { round } => {
                out.push(tag::SNAPSHOT_MARKER);
                put_u64(out, *round);
            }
            WalRecord::Finalized { round } => {
                out.push(tag::FINALIZED);
                put_u64(out, *round);
            }
        }
    }

    /// Decodes one record payload, rejecting trailing bytes.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for unknown tags, overruns or trailing bytes.
    pub fn decode(payload: &[u8]) -> Result<WalRecord> {
        let mut d = Decoder::new(payload);
        let tag = d.take(1)?[0];
        let record = match tag {
            tag::ADMITTED_BATCH => {
                let count = d.len()?;
                let mut entries = Vec::with_capacity(count.min(1 << 20));
                for _ in 0..count {
                    let origin = d.u64()?;
                    let payload = d.bytes()?.to_vec();
                    entries.push((origin, payload));
                }
                WalRecord::AdmittedBatch { entries }
            }
            tag::SCHEDULE_ATTACHED => {
                let rounds = d.len()?;
                let mut masks = Vec::with_capacity(rounds.min(1 << 20));
                for _ in 0..rounds {
                    masks.push(d.mask()?);
                }
                WalRecord::ScheduleAttached { masks }
            }
            tag::BEGIN_EXCHANGE => WalRecord::BeginExchange,
            tag::ROUND => {
                let round = d.u64()?;
                let draw_mode = draw_mode_from_code(d.take(1)?[0])?;
                let shard_count = d.len()?;
                let mut clocks = Vec::with_capacity(shard_count.min(1 << 20));
                for _ in 0..shard_count {
                    let counter = d.u64()?;
                    let cursor = d.u32()?;
                    clocks.push((counter, cursor));
                }
                let mask = match d.take(1)?[0] {
                    0 => None,
                    1 => Some(d.mask()?),
                    other => {
                        return Err(StoreError::Corrupt(format!(
                            "round record has invalid mask flag {other}"
                        )))
                    }
                };
                WalRecord::Round {
                    round,
                    draw_mode,
                    clocks,
                    mask,
                }
            }
            tag::SNAPSHOT_MARKER => WalRecord::SnapshotMarker { round: d.u64()? },
            tag::FINALIZED => WalRecord::Finalized { round: d.u64()? },
            other => {
                return Err(StoreError::Corrupt(format!("unknown record tag {other}")));
            }
        };
        d.finish()?;
        Ok(record)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_record_kind_roundtrips() {
        let records = vec![
            WalRecord::AdmittedBatch {
                entries: vec![(0, vec![1, 2, 3]), (7, vec![]), (41, vec![0xFF; 100])],
            },
            WalRecord::ScheduleAttached {
                masks: vec![
                    vec![true; 9],
                    vec![false, true, false, true, true, false, true, true, true],
                ],
            },
            WalRecord::BeginExchange,
            WalRecord::Round {
                round: 12,
                draw_mode: DrawMode::Fast,
                clocks: vec![(100, 3), (7, 16)],
                mask: Some(vec![true, false, true]),
            },
            WalRecord::Round {
                round: 0,
                draw_mode: DrawMode::Compat,
                clocks: vec![(0, 16)],
                mask: None,
            },
            WalRecord::SnapshotMarker { round: 8 },
            WalRecord::Finalized { round: 20 },
        ];
        let mut buf = Vec::new();
        for record in &records {
            record.encode(&mut buf);
            assert_eq!(&WalRecord::decode(&buf).unwrap(), record);
        }
    }

    #[test]
    fn encode_round_matches_the_enum_encoding() {
        let clocks = vec![(5u64, 2u32), (9, 16)];
        let mask = vec![true, true, false, true];
        let mut direct = Vec::new();
        encode_round(&mut direct, 3, DrawMode::Compat, &clocks, Some(&mask));
        let mut via_enum = Vec::new();
        WalRecord::Round {
            round: 3,
            draw_mode: DrawMode::Compat,
            clocks,
            mask: Some(mask),
        }
        .encode(&mut via_enum);
        assert_eq!(direct, via_enum);
    }

    #[test]
    fn bad_tags_flags_and_trailers_are_corrupt() {
        assert!(WalRecord::decode(&[99]).is_err());
        assert!(WalRecord::decode(&[]).is_err());
        assert!(draw_mode_from_code(2).is_err());
        // Trailing garbage after a valid record.
        let mut buf = Vec::new();
        WalRecord::BeginExchange.encode(&mut buf);
        buf.push(0);
        assert!(WalRecord::decode(&buf).is_err());
        // Invalid mask flag in a round record.
        let mut buf = Vec::new();
        encode_round(&mut buf, 1, DrawMode::Compat, &[], None);
        *buf.last_mut().unwrap() = 9;
        assert!(WalRecord::decode(&buf).is_err());
    }
}
