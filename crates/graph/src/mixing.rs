//! Mixing-time estimates and the finite-time bound on `Σ_i P_i(t)²`.
//!
//! From Section 4.1 / Eq. 5 of the paper: with spectral gap `α`, the graph
//! total-variation distance after `t` rounds satisfies
//! `TV_G(P(t), π) ≤ √n (1 − α)^t`, so `t ≈ α⁻¹ log n` rounds suffice for the
//! walk to be within `≈ 1/√n` of stationarity.  Eq. 7 gives the matching
//! bound on the accountant's input: `Σ_i P_i(t)² ≤ Σ_i π_i² + (1 − α)^{2t}`.

use crate::error::{GraphError, Result};
use crate::graph::Graph;
use crate::spectral::{SpectralAnalysis, SpectralOptions};

/// The paper's stopping rule `t = ⌊α⁻¹ log n⌉` (natural logarithm), as the
/// number of communication rounds to run before reporting to the curator.
///
/// Returns at least 1 round.  A non-positive spectral gap (non-ergodic walk)
/// yields `usize::MAX` to signal that the walk never mixes.
pub fn mixing_time(spectral_gap: f64, n: usize) -> usize {
    if n <= 1 {
        return 1;
    }
    if spectral_gap <= 0.0 {
        return usize::MAX;
    }
    let t = (n as f64).ln() / spectral_gap;
    (t.round() as usize).max(1)
}

/// Upper bound `√n (1 − α)^t` on the graph total-variation distance between
/// `P(t)` and the stationary distribution (Eq. 5).
pub fn tv_bound(spectral_gap: f64, n: usize, t: usize) -> f64 {
    let base = (1.0 - spectral_gap).clamp(0.0, 1.0);
    (n as f64).sqrt() * base.powi(t as i32)
}

/// Upper bound on `Σ_i P_i(t)²` from Eq. 7:
/// `Σ_i π_i² + (1 − α)^{2t}`.
///
/// `stationary_sum_of_squares` is `Σ_i π_i² = Γ_G / n`.
pub fn sum_p_squared_bound(stationary_sum_of_squares: f64, spectral_gap: f64, t: usize) -> f64 {
    let base = (1.0 - spectral_gap).clamp(0.0, 1.0);
    stationary_sum_of_squares + base.powi(2 * t as i32)
}

/// Everything the privacy accountant needs to know about a graph's mixing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixingProfile {
    /// Number of nodes `n`.
    pub node_count: usize,
    /// The spectral gap `α`.
    pub spectral_gap: f64,
    /// `Σ_i π_i²` at stationarity (`Γ_G / n`).
    pub stationary_sum_of_squares: f64,
    /// The mixing-time stopping rule `⌊α⁻¹ log n⌉`.
    pub mixing_time: usize,
}

impl MixingProfile {
    /// Computes the mixing profile of the simple random walk on `graph`.
    ///
    /// # Errors
    ///
    /// Degenerate graphs (empty, isolated nodes) are rejected; a connected
    /// bipartite graph is *not* rejected but will report a (numerically)
    /// zero spectral gap and an unbounded mixing time.
    pub fn compute(graph: &Graph, options: SpectralOptions) -> Result<Self> {
        Self::compute_lazy(graph, 0.0, options)
    }

    /// Computes the mixing profile of a lazy random walk.
    ///
    /// # Errors
    ///
    /// Same as [`MixingProfile::compute`]; also rejects `laziness ∉ [0, 1)`.
    pub fn compute_lazy(graph: &Graph, laziness: f64, options: SpectralOptions) -> Result<Self> {
        let n = graph.node_count();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        let spectral = SpectralAnalysis::try_compute(graph, laziness, options)?;
        let gap = spectral.spectral_gap();
        let pi_sq = crate::stationary::stationary_sum_of_squares(graph)?;
        Ok(MixingProfile {
            node_count: n,
            spectral_gap: gap,
            stationary_sum_of_squares: pi_sq,
            mixing_time: mixing_time(gap, n),
        })
    }

    /// The Eq. 7 bound on `Σ_i P_i(t)²` after `t` rounds.
    pub fn sum_p_squared_bound(&self, t: usize) -> f64 {
        sum_p_squared_bound(self.stationary_sum_of_squares, self.spectral_gap, t)
    }

    /// The Eq. 7 bound clamped to its trivial ceiling of 1 (a sum of squared
    /// probabilities never exceeds 1) — the form the accountant consumes, and
    /// the bound the exact ensemble route is measured against.
    pub fn sum_p_squared_bound_clamped(&self, t: usize) -> f64 {
        self.sum_p_squared_bound(t).min(1.0)
    }

    /// The Eq. 5 bound on `TV_G(P(t), π)` after `t` rounds.
    pub fn tv_bound(&self, t: usize) -> f64 {
        tv_bound(self.spectral_gap, self.node_count, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn mixing_time_scales_with_log_n_over_gap() {
        assert_eq!(mixing_time(0.5, 1), 1);
        let t = mixing_time(0.01, 20_000);
        let expected = (20_000f64).ln() / 0.01;
        assert!((t as f64 - expected).abs() <= 1.0);
        assert_eq!(mixing_time(0.0, 100), usize::MAX);
        assert_eq!(mixing_time(-0.3, 100), usize::MAX);
    }

    #[test]
    fn tv_bound_decays_geometrically() {
        let b0 = tv_bound(0.1, 100, 0);
        let b1 = tv_bound(0.1, 100, 1);
        let b10 = tv_bound(0.1, 100, 10);
        assert!((b0 - 10.0).abs() < 1e-12);
        assert!((b1 - 9.0).abs() < 1e-12);
        assert!(b10 < b1);
    }

    #[test]
    fn sum_p_squared_bound_approaches_stationary_value() {
        let pi_sq = 0.001;
        let early = sum_p_squared_bound(pi_sq, 0.05, 1);
        let late = sum_p_squared_bound(pi_sq, 0.05, 500);
        assert!(early > pi_sq);
        assert!((late - pi_sq).abs() < 1e-9);
        assert!(late >= pi_sq);
    }

    #[test]
    fn profile_of_complete_graph() {
        let g = generators::complete(50).unwrap();
        let profile = MixingProfile::compute(&g, SpectralOptions::default()).unwrap();
        assert_eq!(profile.node_count, 50);
        assert!((profile.stationary_sum_of_squares - 1.0 / 50.0).abs() < 1e-12);
        assert!(profile.spectral_gap > 0.9);
        assert!(profile.mixing_time <= 5);
        assert!(profile.sum_p_squared_bound(10) >= profile.stationary_sum_of_squares);
    }

    #[test]
    fn bound_is_actually_an_upper_bound_on_exact_trajectory() {
        let mut rng = crate::rng::seeded_rng(11);
        let g = generators::random_regular(200, 6, &mut rng).unwrap();
        let profile = MixingProfile::compute(&g, SpectralOptions::default()).unwrap();
        let exact = crate::distribution::sum_of_squares_trajectory(&g, 0, 60, 0.0).unwrap();
        for (t, &value) in exact.iter().enumerate() {
            let bound = profile.sum_p_squared_bound(t);
            assert!(
                value <= bound + 1e-9,
                "t = {t}: exact {value} exceeds bound {bound}"
            );
        }
    }

    #[test]
    fn bipartite_graph_reports_unbounded_mixing_time() {
        let g = generators::cycle(6).unwrap();
        let profile = MixingProfile::compute(&g, SpectralOptions::default()).unwrap();
        // The gap is zero up to numerical error, so the estimated mixing time
        // is either usize::MAX (exact zero) or astronomically large.
        assert!(
            profile.mixing_time > 1_000_000,
            "mixing_time = {}",
            profile.mixing_time
        );
        let lazy = MixingProfile::compute_lazy(&g, 0.5, SpectralOptions::default()).unwrap();
        assert!(lazy.mixing_time < 1_000);
    }

    #[test]
    fn rejects_empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert!(MixingProfile::compute(&g, SpectralOptions::default()).is_err());
    }
}
