//! Ablation — fault tolerance via lazy random walks (Section 4.5).
//!
//! Quantifies how per-round user dropouts affect the privacy accounting:
//! the spectral gap shrinks (mixing slows down), so a fixed round budget
//! yields a worse ε, while running to the dropout-adjusted mixing time
//! recovers the asymptotic guarantee.
//!
//! ```text
//! cargo run --release -p ns-bench --bin ablation_lazy
//! ```

use network_shuffle::prelude::*;
use ns_bench::{epsilon_at_mixing_time, fmt, print_table, write_csv, DELTA, SEED};
use ns_graph::generators::random_regular;

fn main() {
    let n = 10_000usize;
    let epsilon_0 = 1.0;
    let fixed_budget = 30usize;
    let dropouts = [0.0f64, 0.1, 0.3, 0.5];

    let mut rng = ns_graph::rng::seeded_rng(SEED);
    let graph = random_regular(n, 8, &mut rng).expect("regular graph");
    let params = AccountantParams::new(n, epsilon_0, DELTA, DELTA).expect("valid params");

    let headers = vec![
        "dropout p",
        "spectral gap",
        "mixing time",
        "eps @ 30 rounds",
        "eps @ mixing time",
    ];
    let mut rows = Vec::new();
    for &p in &dropouts {
        let model = DropoutModel::new(p).expect("valid dropout");
        let accountant = model.accountant(&graph).expect("ergodic graph");
        let at_budget = accountant
            .central_guarantee(
                ProtocolKind::All,
                Scenario::Stationary,
                &params,
                fixed_budget,
            )
            .expect("guarantee");
        let at_mixing = epsilon_at_mixing_time(&accountant, ProtocolKind::All, epsilon_0);
        rows.push(vec![
            fmt(p),
            fmt(accountant.mixing_profile().spectral_gap),
            accountant.mixing_time().to_string(),
            fmt(at_budget.epsilon),
            fmt(at_mixing),
        ]);
    }

    print_table(
        "Ablation: effect of per-round dropouts (lazy walk) on privacy accounting (A_all, n = 10,000, eps0 = 1)",
        &headers,
        &rows,
    );
    write_csv("ablation_lazy", &headers, &rows);
    println!(
        "\nshape check: dropouts shrink the spectral gap roughly by (1 - p) and lengthen the mixing\n\
         time accordingly; the epsilon at a fixed 30-round budget degrades while the epsilon at the\n\
         adjusted mixing time is essentially unchanged."
    );
}
