//! Error types for graph construction and analysis.

use std::fmt;

/// Convenience alias for results returned by this crate.
pub type Result<T> = std::result::Result<T, GraphError>;

/// Errors produced while building or analysing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge referenced a node id outside `0..n`.
    NodeOutOfRange {
        /// The offending node id.
        node: usize,
        /// Number of nodes in the graph being built.
        node_count: usize,
    },
    /// A self-loop `(u, u)` was supplied where the construction forbids it.
    SelfLoop(usize),
    /// The requested generator parameters are infeasible
    /// (e.g. `n * k` odd for a k-regular graph, or `k >= n`).
    InvalidParameters(String),
    /// An operation that requires a connected graph was called on a
    /// disconnected one.  The paper analyses connected graphs only; the
    /// privacy of a disconnected graph is the parallel composition of its
    /// components (Section 4.2).
    Disconnected,
    /// An operation that requires an ergodic (non-bipartite) walk was called
    /// on a bipartite graph without enabling laziness (Theorem 4.3).
    Bipartite,
    /// The graph has an isolated node (degree zero), so the transition matrix
    /// is undefined for that node.
    IsolatedNode(usize),
    /// An empty graph (zero nodes) was supplied where at least one node is
    /// required.
    EmptyGraph,
    /// An I/O error occurred while reading or writing an edge list.
    Io(String),
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// Description of the problem.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node id {node} out of range for graph with {node_count} nodes"
                )
            }
            GraphError::SelfLoop(u) => write!(f, "self-loop at node {u} is not allowed"),
            GraphError::InvalidParameters(msg) => write!(f, "invalid generator parameters: {msg}"),
            GraphError::Disconnected => write!(f, "operation requires a connected graph"),
            GraphError::Bipartite => {
                write!(
                    f,
                    "operation requires a non-bipartite graph (use a lazy walk instead)"
                )
            }
            GraphError::IsolatedNode(u) => write!(f, "node {u} has degree zero"),
            GraphError::EmptyGraph => write!(f, "graph must contain at least one node"),
            GraphError::Io(msg) => write!(f, "i/o error: {msg}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

impl From<std::io::Error> for GraphError {
    fn from(err: std::io::Error) -> Self {
        GraphError::Io(err.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 10,
            node_count: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('5'));

        let e = GraphError::Parse {
            line: 3,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 3"));

        let e = GraphError::InvalidParameters("k must be < n".into());
        assert!(e.to_string().contains("k must be < n"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "missing");
        let e: GraphError = io.into();
        assert!(matches!(e, GraphError::Io(_)));
    }
}
