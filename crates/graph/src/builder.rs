//! Incremental construction of [`Graph`]s with deduplication.

use crate::error::{GraphError, Result};
use crate::graph::{Graph, NodeId};

/// Builds an undirected [`Graph`] edge by edge.
///
/// The builder tolerates duplicate edge insertions (they are collapsed into a
/// single undirected edge) but rejects self-loops and out-of-range endpoints,
/// because neither has a meaning in the communication-network model of the
/// paper: a user does not relay a report to herself in one hop (laziness is
/// modelled explicitly by [`crate::walk::LazyWalk`] instead).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_count: usize,
    /// Directed half-edges; mirrored on build.
    adjacency: Vec<Vec<NodeId>>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `n` nodes and no edges.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            node_count: n,
            adjacency: vec![Vec::new(); n],
        }
    }

    /// Number of nodes the final graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Adds the undirected edge `(u, v)`.
    ///
    /// Duplicate insertions are ignored.
    ///
    /// # Errors
    ///
    /// * [`GraphError::NodeOutOfRange`] if either endpoint is `>= n`.
    /// * [`GraphError::SelfLoop`] if `u == v`.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<()> {
        if u >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                node_count: self.node_count,
            });
        }
        if v >= self.node_count {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                node_count: self.node_count,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.adjacency[u].push(v);
        self.adjacency[v].push(u);
        Ok(())
    }

    /// Returns `true` if the edge `(u, v)` has already been added.
    ///
    /// Linear in `deg(u)`; intended for generators that must avoid duplicate
    /// edges while building sparse graphs.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        u < self.node_count && self.adjacency[u].contains(&v)
    }

    /// Current degree of node `u` counting edges added so far.
    pub fn degree(&self, u: NodeId) -> usize {
        self.adjacency[u].len()
    }

    /// Number of distinct undirected edges added so far.
    ///
    /// Duplicates inserted via [`GraphBuilder::add_edge`] are only collapsed
    /// at [`GraphBuilder::build`] time, so this count deduplicates on the fly
    /// and is `O(m log m)`.
    pub fn edge_count(&self) -> usize {
        let mut count = 0;
        for (u, nbrs) in self.adjacency.iter().enumerate() {
            let mut higher: Vec<_> = nbrs.iter().copied().filter(|&v| v > u).collect();
            higher.sort_unstable();
            higher.dedup();
            count += higher.len();
        }
        count
    }

    /// Finalizes the builder into an immutable CSR [`Graph`].
    ///
    /// Adjacency lists are sorted and deduplicated, so the resulting graph is
    /// simple regardless of how many times each edge was inserted.
    pub fn build(self) -> Graph {
        let n = self.node_count;
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut neighbors = Vec::new();
        for mut nbrs in self.adjacency {
            nbrs.sort_unstable();
            nbrs.dedup();
            neighbors.extend(nbrs.iter().map(|&v| v as u32));
            offsets.push(neighbors.len());
        }
        Graph::from_csr(offsets, neighbors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_simple_graph() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 2).unwrap();
        let g = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn duplicate_edges_are_collapsed() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1).unwrap();
        b.add_edge(1, 0).unwrap();
        b.add_edge(0, 1).unwrap();
        assert_eq!(b.edge_count(), 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn rejects_self_loops_and_out_of_range() {
        let mut b = GraphBuilder::new(2);
        assert_eq!(b.add_edge(0, 0), Err(GraphError::SelfLoop(0)));
        assert_eq!(
            b.add_edge(0, 5),
            Err(GraphError::NodeOutOfRange {
                node: 5,
                node_count: 2
            })
        );
        assert_eq!(
            b.add_edge(7, 1),
            Err(GraphError::NodeOutOfRange {
                node: 7,
                node_count: 2
            })
        );
    }

    #[test]
    fn has_edge_and_degree_track_insertions() {
        let mut b = GraphBuilder::new(4);
        assert!(!b.has_edge(0, 1));
        b.add_edge(0, 1).unwrap();
        assert!(b.has_edge(0, 1));
        assert!(b.has_edge(1, 0));
        assert_eq!(b.degree(0), 1);
        assert_eq!(b.degree(2), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
