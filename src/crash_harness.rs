//! Shared plumbing of the crash-injection recovery tests.
//!
//! The recovery property needs a process that *actually dies* — mid-round,
//! or mid-append with a torn WAL frame — and a second process that recovers
//! the store and keeps going.  `src/bin/crash_child.rs` is that process;
//! this module is the code it shares with `tests/crash_recovery.rs`: the
//! environment-variable scenario contract, the deterministic inputs
//! (payloads, outage masks, accountant parameters) and the canonical state
//! summary both sides compare byte for byte.

use network_shuffle::prelude::{
    AccountantParams, CoordinatorConfig, OutageSchedule, ProtocolKind, ShuffleCoordinator,
    SimulationOutcome,
};
use ns_graph::prelude::{Graph, Partition};
use ns_graph::round::DrawMode;
use ns_store::prelude::{DurableConfig, DurableCoordinator};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Everything a crash-child run needs, passed through the environment.
#[derive(Debug, Clone)]
pub struct CrashScenario {
    /// Store directory (`NS_CRASH_DIR`).
    pub store_dir: PathBuf,
    /// Edge-list file of the graph (`NS_CRASH_GRAPH`).
    pub graph_path: PathBuf,
    /// Shard count (`NS_CRASH_SHARDS`).
    pub shards: usize,
    /// Coordinator seed (`NS_CRASH_SEED`).
    pub seed: u64,
    /// Walk laziness (`NS_CRASH_LAZINESS`).
    pub laziness: f64,
    /// `A_single` instead of `A_all` (`NS_CRASH_SINGLE=1`).
    pub single: bool,
    /// Fast draw mode instead of compat (`NS_CRASH_FAST=1`).
    pub fast: bool,
    /// Rounds of deterministic outage schedule, 0 for none
    /// (`NS_CRASH_OUTAGE_ROUNDS`).
    pub outage_rounds: usize,
    /// Total rounds the run should reach (`NS_CRASH_TOTAL_ROUNDS`).
    pub total_rounds: usize,
    /// Abort when the engine reaches this round (`NS_CRASH_AT_ROUND`).
    pub crash_at_round: Option<usize>,
    /// Before aborting, append this many bytes of a torn round frame
    /// (`NS_CRASH_MIDWRITE_KEEP`).
    pub midwrite_keep: Option<usize>,
    /// Sleep this long per round, for the wall-clock SIGKILL smoke
    /// (`NS_CRASH_SLEEP_MS`).
    pub sleep_ms: u64,
    /// Where the child writes its final state summary (`NS_CRASH_OUT`).
    pub out_path: Option<PathBuf>,
}

impl CrashScenario {
    /// Reads the scenario from the environment (the child side).
    ///
    /// # Panics
    ///
    /// On missing or malformed required variables — a harness bug, not a
    /// runtime condition.
    pub fn from_env() -> Self {
        let var = |key: &str| std::env::var(key).ok();
        let req = |key: &str| {
            std::env::var(key).unwrap_or_else(|_| panic!("crash_child: {key} must be set"))
        };
        CrashScenario {
            store_dir: PathBuf::from(req("NS_CRASH_DIR")),
            graph_path: PathBuf::from(req("NS_CRASH_GRAPH")),
            shards: req("NS_CRASH_SHARDS").parse().expect("NS_CRASH_SHARDS"),
            seed: req("NS_CRASH_SEED").parse().expect("NS_CRASH_SEED"),
            laziness: var("NS_CRASH_LAZINESS")
                .map_or(0.0, |v| v.parse().expect("NS_CRASH_LAZINESS")),
            single: var("NS_CRASH_SINGLE").as_deref() == Some("1"),
            fast: var("NS_CRASH_FAST").as_deref() == Some("1"),
            outage_rounds: var("NS_CRASH_OUTAGE_ROUNDS")
                .map_or(0, |v| v.parse().expect("NS_CRASH_OUTAGE_ROUNDS")),
            total_rounds: req("NS_CRASH_TOTAL_ROUNDS")
                .parse()
                .expect("NS_CRASH_TOTAL_ROUNDS"),
            crash_at_round: var("NS_CRASH_AT_ROUND").map(|v| v.parse().expect("NS_CRASH_AT_ROUND")),
            midwrite_keep: var("NS_CRASH_MIDWRITE_KEEP")
                .map(|v| v.parse().expect("NS_CRASH_MIDWRITE_KEEP")),
            sleep_ms: var("NS_CRASH_SLEEP_MS").map_or(0, |v| v.parse().expect("NS_CRASH_SLEEP_MS")),
            out_path: var("NS_CRASH_OUT").map(PathBuf::from),
        }
    }

    /// The scenario as `(key, value)` environment pairs (the parent side).
    pub fn to_env(&self) -> Vec<(String, String)> {
        let mut env = vec![
            ("NS_CRASH_DIR".into(), self.store_dir.display().to_string()),
            (
                "NS_CRASH_GRAPH".into(),
                self.graph_path.display().to_string(),
            ),
            ("NS_CRASH_SHARDS".into(), self.shards.to_string()),
            ("NS_CRASH_SEED".into(), self.seed.to_string()),
            ("NS_CRASH_LAZINESS".into(), self.laziness.to_string()),
            (
                "NS_CRASH_OUTAGE_ROUNDS".into(),
                self.outage_rounds.to_string(),
            ),
            (
                "NS_CRASH_TOTAL_ROUNDS".into(),
                self.total_rounds.to_string(),
            ),
            ("NS_CRASH_SLEEP_MS".into(), self.sleep_ms.to_string()),
        ];
        if self.single {
            env.push(("NS_CRASH_SINGLE".into(), "1".into()));
        }
        if self.fast {
            env.push(("NS_CRASH_FAST".into(), "1".into()));
        }
        if let Some(round) = self.crash_at_round {
            env.push(("NS_CRASH_AT_ROUND".into(), round.to_string()));
        }
        if let Some(keep) = self.midwrite_keep {
            env.push(("NS_CRASH_MIDWRITE_KEEP".into(), keep.to_string()));
        }
        if let Some(out) = &self.out_path {
            env.push(("NS_CRASH_OUT".into(), out.display().to_string()));
        }
        env
    }

    /// The coordinator configuration this scenario runs.
    pub fn coordinator_config(&self) -> CoordinatorConfig {
        CoordinatorConfig {
            seed: self.seed,
            laziness: self.laziness,
            protocol: if self.single {
                ProtocolKind::Single
            } else {
                ProtocolKind::All
            },
            tracked_per_shard: usize::MAX,
            draw_mode: if self.fast {
                DrawMode::Fast
            } else {
                DrawMode::Compat
            },
        }
    }
}

/// The canonical full-population payloads: user `i` reports two derived
/// bytes, so payload identity survives shuffling and re-sealing.
pub fn payloads(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| vec![i as u8, (i >> 8) as u8, (i.wrapping_mul(31)) as u8])
        .collect()
}

/// Deterministic outage schedule: roughly one user in five is dark each
/// round, the dark set rotating with the round index.
pub fn outage_masks(n: usize, rounds: usize) -> Vec<Vec<bool>> {
    (0..rounds)
        .map(|t| (0..n).map(|u| !(u * 7 + t * 3).is_multiple_of(5)).collect())
        .collect()
}

/// The accountant parameters every crash scenario quotes under.
///
/// # Panics
///
/// Never for `n >= 2` (validated construction with fixed legal constants).
pub fn accountant_params(n: usize) -> AccountantParams {
    AccountantParams::new(n, 1.0, 1e-6, 1e-6).expect("fixed parameters are valid")
}

/// Builds the scenario's partition over `graph`.
///
/// # Errors
///
/// Partition construction errors (propagated as strings for the child).
pub fn build_partition(graph: &Graph, shards: usize) -> Result<Partition, String> {
    let partition = if shards <= 1 {
        Partition::single_shard(graph)
    } else {
        Partition::new(graph, shards)
    };
    partition.map_err(|e| format!("partition: {e}"))
}

/// Renders the mid-run observable state of `coordinator` — round, walker
/// positions, per-shard RNG clocks, live quote bits — as the canonical
/// comparison text.
///
/// # Panics
///
/// If the exchange phase has not started (harness bug).
pub fn summarize_live(coordinator: &ShuffleCoordinator<'_, Vec<u8>>, n: usize) -> String {
    let engine = coordinator.engine().expect("exchange started");
    let mut out = String::new();
    writeln!(out, "round {}", engine.round()).unwrap();
    let checkpoint = engine.checkpoint();
    write!(out, "positions").unwrap();
    for &p in &checkpoint.positions {
        write!(out, " {p}").unwrap();
    }
    out.push('\n');
    for (shard, _) in checkpoint.shards.iter().enumerate() {
        let (counter, cursor) = engine.rng_clock(shard);
        writeln!(out, "clock {shard} {counter} {cursor}").unwrap();
    }
    let (worst, quote) = coordinator
        .live_quote(&accountant_params(n))
        .expect("live quote");
    writeln!(
        out,
        "quote {worst} {:016x} {:016x}",
        quote.epsilon.to_bits(),
        quote.delta.to_bits()
    )
    .unwrap();
    out
}

/// Appends the finalized outcome — metrics vectors and a CRC-32 digest of
/// the canonical collected-report serialization — to a summary produced by
/// [`summarize_live`].
pub fn summarize_outcome(out: &mut String, outcome: &SimulationOutcome<Vec<u8>>) {
    let m = &outcome.metrics;
    writeln!(
        out,
        "metrics users {} rounds {} server_reports {}",
        m.user_count, m.rounds, m.server_reports
    )
    .unwrap();
    write!(out, "messages").unwrap();
    for &v in &m.messages_per_user {
        write!(out, " {v}").unwrap();
    }
    out.push('\n');
    write!(out, "peaks").unwrap();
    for &v in &m.peak_reports_per_user {
        write!(out, " {v}").unwrap();
    }
    out.push('\n');
    let mut canon: Vec<u8> = Vec::new();
    for submission in outcome.collected.submissions() {
        canon.extend_from_slice(&(submission.submitter as u64).to_le_bytes());
        canon.extend_from_slice(&(submission.reports.len() as u64).to_le_bytes());
        for report in &submission.reports {
            canon.extend_from_slice(&(report.origin as u64).to_le_bytes());
            canon.push(report.is_dummy as u8);
            canon.extend_from_slice(&(report.payload.len() as u64).to_le_bytes());
            canon.extend_from_slice(&report.payload);
        }
    }
    writeln!(
        out,
        "collected crc32 {:08x} reports {} dummies {} nulls {}",
        ns_store::checksum::crc32(&canon),
        outcome.collected.report_count(),
        outcome.collected.dummy_count(),
        outcome.collected.null_response_count()
    )
    .unwrap();
}

/// The uninterrupted in-process reference: runs the plain (non-durable)
/// coordinator through the scenario and returns the canonical summary.
///
/// # Panics
///
/// On any protocol error — the scenario inputs are valid by construction.
pub fn reference_summary(graph: &Graph, partition: &Partition, scenario: &CrashScenario) -> String {
    let n = graph.node_count();
    let mut coordinator: ShuffleCoordinator<'_, Vec<u8>> =
        ShuffleCoordinator::new(graph, partition, scenario.coordinator_config())
            .expect("reference coordinator");
    coordinator
        .admit_population(payloads(n))
        .expect("reference admission");
    if scenario.outage_rounds > 0 {
        let schedule = OutageSchedule::from_masks(outage_masks(n, scenario.outage_rounds))
            .expect("reference schedule");
        coordinator
            .with_outages(schedule)
            .expect("reference outages");
    }
    coordinator.begin_exchange().expect("reference exchange");
    coordinator
        .run_rounds(scenario.total_rounds)
        .expect("reference rounds");
    let mut summary = summarize_live(&coordinator, n);
    let outcome = coordinator
        .finalize(|_| vec![0xD0])
        .expect("reference finalize");
    summarize_outcome(&mut summary, &outcome);
    summary
}

/// The child process body: create or recover the durable store, drive it to
/// `total_rounds` (crashing on the way if told to), then finalize and write
/// the canonical summary.  Returns an error string for `main` to print.
///
/// # Errors
///
/// Any store/protocol error, stringified.
pub fn run_child(scenario: &CrashScenario) -> Result<(), String> {
    let (graph, _) = ns_graph::io::read_edge_list_file(&scenario.graph_path)
        .map_err(|e| format!("graph: {e}"))?;
    let n = graph.node_count();
    let partition = build_partition(&graph, scenario.shards)?;
    let durable_config = DurableConfig::from_env();
    let mut store = if scenario.store_dir.join("meta.bin").exists() {
        DurableCoordinator::recover(&graph, &partition, durable_config, &scenario.store_dir)
            .map_err(|e| format!("recover: {e}"))?
    } else {
        let mut store = DurableCoordinator::create(
            &graph,
            &partition,
            scenario.coordinator_config(),
            durable_config,
            &scenario.store_dir,
        )
        .map_err(|e| format!("create: {e}"))?;
        store
            .admit_population(payloads(n))
            .map_err(|e| format!("admit: {e}"))?;
        if scenario.outage_rounds > 0 {
            let schedule = OutageSchedule::from_masks(outage_masks(n, scenario.outage_rounds))
                .map_err(|e| format!("schedule: {e}"))?;
            store
                .with_outages(schedule)
                .map_err(|e| format!("outages: {e}"))?;
        }
        store.begin_exchange().map_err(|e| format!("begin: {e}"))?;
        store
    };
    while store.round() < scenario.total_rounds {
        if scenario.crash_at_round == Some(store.round()) {
            if let Some(keep) = scenario.midwrite_keep {
                store
                    .simulate_torn_round_append(keep)
                    .map_err(|e| format!("torn append: {e}"))?;
            }
            // The crash: no unwinding, no Drop glue, no flushes.
            std::process::abort();
        }
        store.run_rounds(1).map_err(|e| format!("round: {e}"))?;
        if scenario.sleep_ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(scenario.sleep_ms));
        }
    }
    let mut summary = summarize_live(store.coordinator(), n);
    let (outcome, _) = store
        .finalize(&accountant_params(n), |_| vec![0xD0])
        .map_err(|e| format!("finalize: {e}"))?;
    summarize_outcome(&mut summary, &outcome);
    if let Some(out_path) = &scenario.out_path {
        std::fs::write(out_path, &summary).map_err(|e| format!("summary write: {e}"))?;
    }
    Ok(())
}
