//! The grep-stable human log renderer.
//!
//! Examples (and any other human-facing progress output) print through
//! [`say!`](crate::say) instead of bare `println!`, so every line has
//! the fixed `[ns:<topic>]` prefix CI assertions can grep for:
//!
//! ```text
//! [ns:quickstart] mixing 400 reports for 26 rounds
//! ```

use std::fmt;

/// Emits one `[ns:<topic>]` line to stdout.  Prefer the [`say!`]
/// macro, which formats arguments in place.
///
/// [`say!`]: crate::say
pub fn emit(topic: &str, args: fmt::Arguments<'_>) {
    println!("[ns:{topic}] {args}");
}

/// Formats one `[ns:<topic>]` line as a `String` (the testable core of
/// [`emit`]).
pub fn render(topic: &str, args: fmt::Arguments<'_>) -> String {
    format!("[ns:{topic}] {args}")
}

/// Prints one grep-stable progress line: `say!("topic", "fmt", args...)`
/// renders as `[ns:topic] ...` on stdout.
#[macro_export]
macro_rules! say {
    ($topic:expr, $($arg:tt)*) => {
        $crate::human::emit($topic, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn lines_carry_the_stable_prefix() {
        let line = super::render("quickstart", format_args!("n={} rounds={}", 400, 26));
        assert_eq!(line, "[ns:quickstart] n=400 rounds=26");
    }
}
