//! Offline shim for the subset of `rand_chacha` 0.3 used by this workspace.
//!
//! Implements the real ChaCha stream cipher (Bernstein's quarter-round on a
//! 4×4 word state) with 8 double-rounds as a deterministic random-number
//! generator.  The key stream is not bit-compatible with the crates.io
//! `rand_chacha` (which seeds through `rand_core`'s seed expansion), but the
//! workspace only relies on determinism and statistical quality, both of
//! which genuine ChaCha8 provides.

#![forbid(unsafe_code)]

pub use rand as rand_crate;

/// Re-export module mirroring `rand_chacha::rand_core`.
pub mod rand_core {
    pub use rand::{RngCore, SeedableRng};
}

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double-rounds, exposed as an RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 128-bit block counter (words 12..16 of the state).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block`; 16 means "exhausted".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Creates a generator from a full 256-bit key.
    pub fn from_key(key: [u32; 8]) -> Self {
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16,
        }
    }

    /// Runs the ChaCha8 permutation for the block at `counter`, advancing
    /// the counter.  This is the whole-block primitive shared by the
    /// word-at-a-time [`RngCore`] path and the bulk
    /// [`ChaCha8Rng::fill_u64`] path, so both consume the identical
    /// keystream.
    #[inline]
    fn generate_block(&mut self) -> [u32; 16] {
        // "expand 32-byte k" constants.
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds of column + diagonal quarter-rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.counter = self.counter.wrapping_add(1);
        state
    }

    fn refill(&mut self) {
        self.block = self.generate_block();
        self.cursor = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    /// The generator's full stream position as `(key, counter, cursor)`.
    ///
    /// `counter` is the index of the **next** block the permutation would
    /// produce and `cursor` the next unread word of the current block
    /// (`16` = exhausted).  Together with the key this pins the keystream
    /// position exactly, so [`ChaCha8Rng::from_state`] resumes the stream
    /// bit for bit — the primitive the durable runtime's round records and
    /// snapshots are built on.
    pub fn state(&self) -> ([u32; 8], u64, u32) {
        (self.key, self.counter, self.cursor as u32)
    }

    /// Reconstructs a generator at an exact stream position captured by
    /// [`ChaCha8Rng::state`].  Mid-block positions (`cursor < 16`) rewind
    /// the counter one block and regenerate it, so the first draw after
    /// restore is the draw the captured generator would have produced.
    ///
    /// `cursor` values above 16 are clamped to 16 (block exhausted).
    pub fn from_state(key: [u32; 8], counter: u64, cursor: u32) -> Self {
        let cursor = (cursor as usize).min(16);
        let mut rng = ChaCha8Rng {
            key,
            counter,
            block: [0; 16],
            cursor: 16,
        };
        if cursor < 16 {
            // The captured generator had already produced block
            // `counter - 1` and was partway through reading it.
            rng.counter = counter.wrapping_sub(1);
            rng.refill();
            rng.cursor = cursor;
        }
        rng
    }

    /// Fills `out` with the next `out.len()` u64 draws of the stream,
    /// generating whole ChaCha8 blocks (8 u64s) straight into the caller's
    /// buffer instead of a word at a time through the cursor.
    ///
    /// The stream position afterwards is **exactly** as if
    /// [`RngCore::next_u64`] had been called `out.len()` times: the buffered
    /// block is drained first, whole blocks are emitted in the middle, and
    /// the tail goes back through the word path.  This is the lane-buffer
    /// primitive of the round kernel's `fast` draw mode — the amortized
    /// whole-block path skips the per-word cursor bookkeeping and lets the
    /// compiler keep the quarter-round permutation and the output stores in
    /// one scheduled loop.
    pub fn fill_u64(&mut self, out: &mut [u64]) {
        let n = out.len();
        let mut i = 0;
        // Drain the partially consumed block (may straddle one refill when
        // the cursor is odd — a caller previously drew a lone u32).
        while i < n && self.cursor < 16 {
            out[i] = self.next_u64();
            i += 1;
        }
        // Whole blocks straight into the output: 16 words = 8 u64s each.
        while n - i >= 8 && self.cursor >= 16 {
            let block = self.generate_block();
            for (slot, pair) in out[i..i + 8].iter_mut().zip(block.chunks_exact(2)) {
                *slot = pair[0] as u64 | (pair[1] as u64) << 32;
            }
            i += 8;
        }
        // Tail: back through the word-at-a-time path.
        while i < n {
            out[i] = self.next_u64();
            i += 1;
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        lo | (hi << 32)
    }

    fn fill_u64(&mut self, out: &mut [u64]) {
        ChaCha8Rng::fill_u64(self, out)
    }
}

/// SplitMix64 step, used to expand a 64-bit seed into a 256-bit key.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let w = splitmix64(&mut s);
            pair[0] = w as u32;
            pair[1] = (w >> 32) as u32;
        }
        ChaCha8Rng::from_key(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let mut all_equal = true;
        for _ in 0..64 {
            let (x, y) = (a.next_u64(), b.next_u64());
            assert_eq!(x, y);
            all_equal &= x == c.next_u64();
        }
        assert!(!all_equal);
    }

    #[test]
    fn zero_key_first_block_matches_chacha8_test_vector() {
        // ChaCha8, 256-bit zero key, zero counter and nonce.  First output
        // words of the keystream (RFC-style column ordering), from the
        // published ChaCha8 test vectors.
        let mut rng = ChaCha8Rng::from_key([0; 8]);
        let first = rng.next_u32();
        let expected = u32::from_le_bytes([0x3e, 0x00, 0xef, 0x2f]);
        assert_eq!(first, expected);
    }

    #[test]
    fn fill_u64_is_stream_position_identical_to_next_u64() {
        // Every split point, including mid-block and odd-cursor starts.
        for lead_u32 in [0usize, 1, 3] {
            for lead_u64 in [0usize, 1, 5, 7, 8, 11] {
                for len in [0usize, 1, 7, 8, 9, 16, 37] {
                    let mut bulk = ChaCha8Rng::seed_from_u64(9);
                    let mut word = ChaCha8Rng::seed_from_u64(9);
                    for _ in 0..lead_u32 {
                        assert_eq!(bulk.next_u32(), word.next_u32());
                    }
                    for _ in 0..lead_u64 {
                        assert_eq!(bulk.next_u64(), word.next_u64());
                    }
                    let mut out = vec![0u64; len];
                    bulk.fill_u64(&mut out);
                    for (i, &v) in out.iter().enumerate() {
                        assert_eq!(
                            v,
                            word.next_u64(),
                            "diverged at draw {i} (lead_u32={lead_u32} lead_u64={lead_u64} len={len})"
                        );
                    }
                    // And the streams stay aligned afterwards.
                    assert_eq!(bulk.next_u64(), word.next_u64());
                }
            }
        }
    }

    #[test]
    fn state_roundtrip_resumes_bitwise_at_every_cursor_position() {
        // Lead draws land the cursor at every block offset, including odd
        // (lone u32) positions, exhausted blocks and the fresh generator.
        for lead in 0..40usize {
            let mut original = ChaCha8Rng::seed_from_u64(1234);
            for _ in 0..lead {
                original.next_u32();
            }
            let (key, counter, cursor) = original.state();
            let mut restored = ChaCha8Rng::from_state(key, counter, cursor);
            for draw in 0..64 {
                assert_eq!(
                    original.next_u64(),
                    restored.next_u64(),
                    "diverged at draw {draw} after {lead} lead u32s"
                );
            }
        }
    }

    #[test]
    fn state_roundtrip_preserves_bulk_fill_path() {
        let mut original = ChaCha8Rng::seed_from_u64(77);
        let mut lead = [0u64; 13];
        original.fill_u64(&mut lead);
        let (key, counter, cursor) = original.state();
        let mut restored = ChaCha8Rng::from_state(key, counter, cursor);
        let mut a = [0u64; 29];
        let mut b = [0u64; 29];
        original.fill_u64(&mut a);
        restored.fill_u64(&mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn mean_of_unit_floats_is_near_half() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }
}
