//! Figure 6 — amplified ε vs. ε₀ for the five datasets (`A_all`).
//!
//! Each dataset stand-in is run through the stationary-bound accountant at
//! its own mixing time; the amplified ε is reported for ε₀ from 0.1 to 1.2.
//! The Google graph (largest `n`) shows the strongest amplification.
//!
//! ```text
//! cargo run --release -p ns-bench --bin fig6
//! ```

use network_shuffle::prelude::*;
use ns_bench::{dataset_accountant, epsilon_at_mixing_time, fmt, linspace, print_table, write_csv};
use ns_datasets::Dataset;

fn main() {
    let epsilon_grid = linspace(0.1, 1.2, 12);

    let accountants: Vec<_> = Dataset::ALL
        .into_iter()
        .map(|dataset| {
            let da = dataset_accountant(dataset);
            println!(
                "{}: n = {}, Gamma = {:.3}, mixing time = {}",
                da.name(),
                da.accountant.node_count(),
                da.generated.achieved.irregularity,
                da.accountant.mixing_time()
            );
            da
        })
        .collect();

    let headers: Vec<String> = std::iter::once("eps0".to_string())
        .chain(accountants.iter().map(|da| format!("{} eps", da.name())))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut rows = Vec::new();
    for &eps0 in &epsilon_grid {
        let mut row = vec![fmt(eps0)];
        for da in &accountants {
            row.push(fmt(epsilon_at_mixing_time(
                &da.accountant,
                ProtocolKind::All,
                eps0,
            )));
        }
        rows.push(row);
    }

    print_table(
        "Figure 6: amplified central epsilon vs. eps0 per dataset (A_all, stationary bound, t = mixing time)",
        &header_refs,
        &rows,
    );
    write_csv("fig6", &header_refs, &rows);
    println!(
        "\nshape check: at every eps0 the Google stand-in (largest n) achieves the smallest central\n\
         epsilon, and smaller graphs amplify less, matching Figure 6."
    );
}
