//! Graph generators for the families studied in the paper.
//!
//! * [`classic`] — deterministic topologies with known spectra (cycle, path,
//!   complete, star, circulant, two-degree-class), used as analytic test
//!   fixtures and as extreme cases of the irregularity measure `Γ_G`.
//! * [`regular`] — random k-regular graphs (the "symmetric distribution"
//!   scenario of Section 4.2 / Figure 5).
//! * [`erdos_renyi`] — `G(n, p)` and `G(n, m)` random graphs.
//! * [`barabasi_albert`](mod@barabasi_albert) — preferential-attachment graphs with heavy-tailed
//!   degrees (high `Γ_G`, like the paper's web graphs).
//! * [`watts_strogatz`](mod@watts_strogatz) — small-world graphs interpolating between a ring
//!   lattice and a random graph.
//! * [`chung_lu`](mod@chung_lu) — configuration-model style graphs with a prescribed
//!   expected-degree sequence; the dataset stand-ins in `ns-datasets` are
//!   built on this generator.
//! * [`sbm`] — stochastic block models (planted communities), the stress
//!   case for mixing on social networks.
//! * [`lattice`] — torus grids, the stress case for geographically
//!   constrained sensor/IoT meshes.

pub mod barabasi_albert;
pub mod chung_lu;
pub mod classic;
pub mod erdos_renyi;
pub mod lattice;
pub mod regular;
pub mod sbm;
pub mod watts_strogatz;

pub use barabasi_albert::barabasi_albert;
pub use chung_lu::chung_lu;
pub use classic::{circulant, complete, cycle, path, star, strided_circulant, two_degree_class};
pub use erdos_renyi::{gnm, gnp};
pub use lattice::torus;
pub use regular::random_regular;
pub use sbm::stochastic_block_model;
pub use watts_strogatz::watts_strogatz;
