//! Position probability distributions `P^G(t)` and distances between them.
//!
//! `P^G(t)` is the probability distribution over which user holds a given
//! report after `t` rounds of exchange (Table 2).  The privacy accountant in
//! the core crate consumes `Σ_i P_i(t)²` (directly for the symmetric /
//! k-regular analysis, and through the spectral bound of Eq. 7 for general
//! ergodic graphs) and the graph total-variation distance of Definition 4.4.

use crate::ensemble::DistributionEnsemble;
use crate::error::{GraphError, Result};
use crate::graph::{Graph, NodeId};
use crate::transition::TransitionMatrix;
use serde::{Deserialize, Serialize};

/// A probability distribution over the nodes of a graph, tracked as it
/// evolves under the random walk.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PositionDistribution {
    probabilities: Vec<f64>,
    /// Number of rounds applied so far.
    time: usize,
}

impl PositionDistribution {
    /// A point mass on `origin`: the report is held by its producer at `t=0`.
    ///
    /// # Errors
    ///
    /// [`GraphError::NodeOutOfRange`] if `origin >= n`.
    pub fn point_mass(n: usize, origin: NodeId) -> Result<Self> {
        if origin >= n {
            return Err(GraphError::NodeOutOfRange {
                node: origin,
                node_count: n,
            });
        }
        let mut probabilities = vec![0.0; n];
        probabilities[origin] = 1.0;
        Ok(PositionDistribution {
            probabilities,
            time: 0,
        })
    }

    /// The uniform distribution `1/n`.
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] if `n == 0`.
    pub fn uniform(n: usize) -> Result<Self> {
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        Ok(PositionDistribution {
            probabilities: vec![1.0 / n as f64; n],
            time: 0,
        })
    }

    /// Wraps an explicit probability vector.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if the vector is empty, contains a
    /// negative entry, or does not sum to 1 within `1e-9`.
    pub fn from_probabilities(p: Vec<f64>) -> Result<Self> {
        if p.is_empty() {
            return Err(GraphError::EmptyGraph);
        }
        if p.iter().any(|&x| x < 0.0 || !x.is_finite()) {
            return Err(GraphError::InvalidParameters(
                "probabilities must be finite and non-negative".into(),
            ));
        }
        let total: f64 = p.iter().sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(GraphError::InvalidParameters(format!(
                "probabilities must sum to 1, got {total}"
            )));
        }
        Ok(PositionDistribution {
            probabilities: p,
            time: 0,
        })
    }

    /// The underlying probability vector.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.probabilities.len()
    }

    /// Always `false`: constructors reject empty distributions.
    pub fn is_empty(&self) -> bool {
        self.probabilities.is_empty()
    }

    /// Number of walk rounds applied so far.
    pub fn time(&self) -> usize {
        self.time
    }

    /// Advances the distribution by one round under `transition`.
    pub fn step(&mut self, transition: &TransitionMatrix) {
        self.advance(transition, 1);
    }

    /// Advances the distribution by `rounds` rounds.
    ///
    /// A `PositionDistribution` is a 1-row view over the batched
    /// [`DistributionEnsemble`]: the update delegates to the shared kernel,
    /// whose single-lane path reproduces the historical
    /// `TransitionMatrix::evolve` route bit for bit.
    pub fn advance(&mut self, transition: &TransitionMatrix, rounds: usize) {
        let flat = std::mem::take(&mut self.probabilities);
        let mut ensemble = DistributionEnsemble::from_rows_unchecked(1, flat);
        ensemble.advance(transition, rounds);
        self.probabilities = ensemble.into_flat();
        self.time += rounds;
    }

    /// `Σ_i P_i²` — the quantity consumed by Theorems 5.3–5.6.
    pub fn sum_of_squares(&self) -> f64 {
        crate::degree::sum_of_squares(&self.probabilities)
    }

    /// `Γ_G(t) = n Σ_i P_i(t)²`, the time-dependent irregularity.
    pub fn irregularity(&self) -> f64 {
        crate::degree::irregularity_from_distribution(&self.probabilities)
    }

    /// Ratio `ρ* = max_i P_i / min_{i: P_i > 0} P_i` used by Theorem 5.4.
    ///
    /// Returns `None` if every entry is zero (cannot happen for a valid
    /// distribution) or non-finite.
    pub fn support_ratio(&self) -> Option<f64> {
        let max = self.probabilities.iter().cloned().fold(f64::NAN, f64::max);
        let min_nonzero = self
            .probabilities
            .iter()
            .cloned()
            .filter(|&x| x > 0.0)
            .fold(f64::INFINITY, f64::min);
        if !max.is_finite() || !min_nonzero.is_finite() || min_nonzero == 0.0 {
            None
        } else {
            Some(max / min_nonzero)
        }
    }

    /// Graph total-variation distance of Definition 4.4:
    /// `TV_G(P, Q) = Σ_i |P_i − Q_i| = ‖P − Q‖₁`.
    ///
    /// Note this is the un-halved L1 distance, matching the paper's
    /// definition (twice the usual statistical total variation).
    pub fn tv_distance(&self, other: &[f64]) -> f64 {
        assert_eq!(
            self.probabilities.len(),
            other.len(),
            "distributions must share the node set"
        );
        self.probabilities
            .iter()
            .zip(other.iter())
            .map(|(a, b)| (a - b).abs())
            .sum()
    }

    /// Euclidean (L2) distance to another distribution.
    pub fn l2_distance(&self, other: &[f64]) -> f64 {
        assert_eq!(
            self.probabilities.len(),
            other.len(),
            "distributions must share the node set"
        );
        self.probabilities
            .iter()
            .zip(other.iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt()
    }
}

/// Tracks the sequence `Σ_i P_i(t)²` for `t = 0..=rounds` starting from a
/// point mass at `origin`.
///
/// This is the exact, per-round quantity used by the symmetric-distribution
/// theorems (5.4 and 5.6) and plotted in Figure 5.  For a vertex-transitive
/// graph (e.g. a circulant k-regular graph) the choice of origin is
/// irrelevant; for other graphs the caller decides which user to analyse.
///
/// # Errors
///
/// Propagates transition-matrix construction errors.
pub fn sum_of_squares_trajectory(
    graph: &Graph,
    origin: NodeId,
    rounds: usize,
    laziness: f64,
) -> Result<Vec<f64>> {
    let transition = TransitionMatrix::with_laziness(graph, laziness)?;
    let mut ensemble = DistributionEnsemble::point_masses(graph.node_count(), &[origin])?;
    let mut out = Vec::with_capacity(rounds + 1);
    out.push(ensemble.row_stats(0).sum_of_squares);
    let trajectory = ensemble.advance_tracked(&transition, rounds);
    out.extend(trajectory.row(0).iter().map(|stats| stats.sum_of_squares));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn point_mass_and_uniform_constructors() {
        let p = PositionDistribution::point_mass(4, 2).unwrap();
        assert_eq!(p.probabilities(), &[0.0, 0.0, 1.0, 0.0]);
        assert_eq!(p.sum_of_squares(), 1.0);
        assert!(PositionDistribution::point_mass(4, 4).is_err());

        let u = PositionDistribution::uniform(4).unwrap();
        assert!((u.sum_of_squares() - 0.25).abs() < 1e-12);
        assert!(PositionDistribution::uniform(0).is_err());
    }

    #[test]
    fn from_probabilities_validates() {
        assert!(PositionDistribution::from_probabilities(vec![0.5, 0.5]).is_ok());
        assert!(PositionDistribution::from_probabilities(vec![0.5, 0.6]).is_err());
        assert!(PositionDistribution::from_probabilities(vec![-0.1, 1.1]).is_err());
        assert!(PositionDistribution::from_probabilities(vec![]).is_err());
    }

    #[test]
    fn stepping_tracks_time_and_mass() {
        let g = generators::complete(5).unwrap();
        let t = TransitionMatrix::new(&g).unwrap();
        let mut p = PositionDistribution::point_mass(5, 0).unwrap();
        p.step(&t);
        assert_eq!(p.time(), 1);
        assert!((p.probabilities().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        p.advance(&t, 10);
        assert_eq!(p.time(), 11);
    }

    #[test]
    fn sum_of_squares_decreases_towards_uniform_on_complete_graph() {
        let g = generators::complete(8).unwrap();
        let traj = sum_of_squares_trajectory(&g, 0, 20, 0.0).unwrap();
        assert!((traj[0] - 1.0).abs() < 1e-12);
        // Limit is 1/n = 0.125 for the complete graph (regular).
        assert!((traj[20] - 0.125).abs() < 1e-6);
        // Trajectory approaches the limit from above.
        assert!(traj[20] <= traj[1]);
    }

    #[test]
    fn support_ratio_of_uniform_is_one() {
        let p = PositionDistribution::uniform(10).unwrap();
        assert!((p.support_ratio().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn support_ratio_ignores_zero_entries() {
        let p = PositionDistribution::from_probabilities(vec![0.0, 0.2, 0.8, 0.0]).unwrap();
        assert!((p.support_ratio().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn tv_and_l2_distances() {
        let p = PositionDistribution::from_probabilities(vec![1.0, 0.0]).unwrap();
        let q = [0.0, 1.0];
        assert!((p.tv_distance(&q) - 2.0).abs() < 1e-12);
        assert!((p.l2_distance(&q) - std::f64::consts::SQRT_2).abs() < 1e-12);
        assert_eq!(p.tv_distance(p.probabilities()), 0.0);
    }

    #[test]
    fn oscillation_on_bipartite_graph_without_laziness() {
        // On an even cycle the point mass alternates between the two sides,
        // so Sum P^2 never converges to 1/n; with laziness it does.
        let g = generators::cycle(4).unwrap();
        let simple = sum_of_squares_trajectory(&g, 0, 101, 0.0).unwrap();
        let lazy = sum_of_squares_trajectory(&g, 0, 300, 0.3).unwrap();
        assert!(simple[101] > 0.4);
        assert!((lazy[300] - 0.25).abs() < 1e-4);
    }
}
