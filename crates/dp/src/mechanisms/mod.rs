//! Concrete local randomizers.
//!
//! * [`RandomizedResponse`] — k-ary randomized response over a categorical
//!   domain; the workhorse for frequency-estimation workloads.
//! * [`Laplace`] — the Laplace mechanism for bounded scalar values.
//! * [`Gaussian`] — the Gaussian mechanism (approximate DP), used to exercise
//!   the `(ε₀, δ₀)` branches of the amplification theorems.
//! * [`PrivUnit`] — the PrivUnit mechanism of Bhowmick et al. for unit
//!   vectors in `R^d`, used by the paper's private mean-estimation study
//!   (Section 5.6 / Figure 9).
//! * [`UnaryEncoding`] — Optimized Unary Encoding (OUE) for histogram
//!   workloads over large categorical domains.

pub mod gaussian;
pub mod laplace;
pub mod priv_unit;
pub mod randomized_response;
pub mod unary_encoding;

pub use gaussian::Gaussian;
pub use laplace::Laplace;
pub use priv_unit::PrivUnit;
pub use randomized_response::RandomizedResponse;
pub use unary_encoding::UnaryEncoding;
