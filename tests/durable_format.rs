//! Golden on-disk format tests of the durable store, plus recovery-level
//! corruption behavior.
//!
//! The golden test runs one fixed durable epoch and hex-dumps every file the
//! store wrote — `meta.bin`, `wal.bin`, the periodic snapshot and the budget
//! ledger — against `tests/golden/store_format.txt`.  Any byte-level format
//! change (codec, record layout, checksums, file headers) shows up as a
//! golden diff; regenerate deliberately with `NS_BLESS=1`.
//!
//! The corruption tests exercise the documented failure modes end to end:
//! a truncated WAL tail is silently dropped, a flipped bit stops recovery at
//! the last valid record, and a damaged snapshot falls back to an older one
//! without giving up bitwise equality.

use network_shuffle::prelude::{CoordinatorConfig, OutageSchedule, ShuffleCoordinator};
use ns_dp::prelude::PrivacyGuarantee;
use ns_graph::generators::random_regular;
use ns_graph::prelude::{Graph, Partition};
use ns_graph::rng::seeded_rng;
use ns_store::prelude::{
    scan_wal, DurableConfig, DurableCoordinator, StoreError, TailStatus, WAL_FILE,
};
use ns_suite::crash_harness::{accountant_params, outage_masks, payloads};
use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/store_format.txt");

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ns_durable_format").join(name);
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn fixture_graph() -> Graph {
    random_regular(12, 4, &mut seeded_rng(5)).unwrap()
}

fn hex_dump(out: &mut String, label: &str, bytes: &[u8]) {
    writeln!(out, "== {label} ({} bytes) ==", bytes.len()).unwrap();
    for (row, chunk) in bytes.chunks(16).enumerate() {
        write!(out, "{:06x} ", row * 16).unwrap();
        for byte in chunk {
            write!(out, " {byte:02x}").unwrap();
        }
        out.push('\n');
    }
}

/// Runs the fixed golden epoch: 12 users, 2 shards, a 3-round outage
/// schedule, group commit 2, snapshots every 4 rounds, 6 rounds, a budget
/// ledger, finalize.  Returns the store directory.
fn run_golden_epoch(dir: &Path) {
    let graph = fixture_graph();
    let partition = Partition::new(&graph, 2).unwrap();
    let config = CoordinatorConfig {
        laziness: 0.25,
        ..CoordinatorConfig::all(9, usize::MAX)
    };
    let durable = DurableConfig {
        group_commit: 2,
        snapshot_every: 4,
    };
    let mut store = DurableCoordinator::create(&graph, &partition, config, durable, dir).unwrap();
    store
        .attach_ledger(
            &dir.join("ledger.bin"),
            PrivacyGuarantee::new(64.0, 1e-3).unwrap(),
        )
        .unwrap();
    store.admit_population(payloads(12)).unwrap();
    store
        .with_outages(OutageSchedule::from_masks(outage_masks(12, 3)).unwrap())
        .unwrap();
    store.begin_exchange().unwrap();
    store.run_rounds(6).unwrap();
    store
        .finalize(&accountant_params(12), |_| vec![0xD0])
        .unwrap();
}

#[test]
fn on_disk_format_matches_the_golden_dump() {
    let dir = temp_dir("golden");
    run_golden_epoch(&dir);
    let mut dump = String::new();
    for file in ["meta.bin", WAL_FILE, "snap-4.bin", "ledger.bin"] {
        let bytes = fs::read(dir.join(file)).unwrap_or_else(|e| panic!("read {file}: {e}"));
        hex_dump(&mut dump, file, &bytes);
    }
    if std::env::var("NS_BLESS").is_ok() {
        fs::write(GOLDEN, &dump).unwrap();
        return;
    }
    let golden = fs::read_to_string(GOLDEN)
        .expect("golden store-format dump missing; regenerate with NS_BLESS=1");
    assert_eq!(
        dump, golden,
        "on-disk store format changed; if intentional, regenerate with NS_BLESS=1"
    );
    let _ = fs::remove_dir_all(&dir);
}

/// Reference engine state after `rounds` uninterrupted (non-durable)
/// rounds: `(positions, per-shard clocks)`.
fn reference_state(
    graph: &Graph,
    partition: &Partition,
    rounds: usize,
) -> (Vec<u32>, Vec<(u64, u32)>) {
    let config = CoordinatorConfig::all(31, usize::MAX);
    let mut reference: ShuffleCoordinator<'_, Vec<u8>> =
        ShuffleCoordinator::new(graph, partition, config).unwrap();
    reference
        .admit_population(payloads(graph.node_count()))
        .unwrap();
    reference.begin_exchange().unwrap();
    reference.run_rounds(rounds).unwrap();
    let engine = reference.engine().unwrap();
    let clocks = (0..engine.shard_count())
        .map(|s| engine.rng_clock(s))
        .collect();
    (engine.checkpoint().positions, clocks)
}

fn store_state(store: &DurableCoordinator<'_>) -> (Vec<u32>, Vec<(u64, u32)>) {
    let engine = store.coordinator().engine().unwrap();
    let clocks = (0..engine.shard_count())
        .map(|s| engine.rng_clock(s))
        .collect();
    (engine.checkpoint().positions, clocks)
}

/// Builds a 7-round durable run (no ledger, no outages) and returns its dir.
fn run_plain_epoch(dir: &Path, snapshot_every: usize) -> (Graph, Partition) {
    let graph = fixture_graph();
    let partition = Partition::new(&graph, 2).unwrap();
    {
        let config = CoordinatorConfig::all(31, usize::MAX);
        let durable = DurableConfig {
            group_commit: 1,
            snapshot_every,
        };
        let mut store =
            DurableCoordinator::create(&graph, &partition, config, durable, dir).unwrap();
        store.admit_population(payloads(12)).unwrap();
        store.begin_exchange().unwrap();
        store.run_rounds(7).unwrap();
        // Dropped without finalize.
    }
    (graph, partition)
}

#[test]
fn truncated_wal_tail_is_dropped_and_replay_continues_bitwise() {
    let dir = temp_dir("truncate");
    let (graph, partition) = run_plain_epoch(&dir, 0);
    let wal_path = dir.join(WAL_FILE);
    let full = scan_wal(&wal_path).unwrap();
    assert_eq!(full.tail, TailStatus::Clean);
    // Cut into the middle of the last frame: a torn group-commit tail.
    let bytes = fs::read(&wal_path).unwrap();
    fs::write(&wal_path, &bytes[..bytes.len() - 3]).unwrap();
    let durable = DurableConfig {
        group_commit: 1,
        snapshot_every: 0,
    };
    let mut store = DurableCoordinator::recover(&graph, &partition, durable, &dir).unwrap();
    assert_eq!(store.recovered_tail(), Some(TailStatus::Truncated));
    assert_eq!(store.round(), 6, "exactly the torn last round is dropped");
    // Re-running the dropped round lands on the uninterrupted trajectory.
    store.run_rounds(1).unwrap();
    assert_eq!(store_state(&store), reference_state(&graph, &partition, 7));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn flipped_bit_stops_recovery_at_the_last_valid_record() {
    let dir = temp_dir("bitflip");
    let (graph, partition) = run_plain_epoch(&dir, 0);
    let wal_path = dir.join(WAL_FILE);
    // Flip one bit inside the last record's payload.
    let mut bytes = fs::read(&wal_path).unwrap();
    let victim = bytes.len() - 5;
    bytes[victim] ^= 0x10;
    fs::write(&wal_path, &bytes).unwrap();
    let scan = scan_wal(&wal_path).unwrap();
    assert_eq!(scan.tail, TailStatus::Corrupt);
    let durable = DurableConfig {
        group_commit: 1,
        snapshot_every: 0,
    };
    let mut store = DurableCoordinator::recover(&graph, &partition, durable, &dir).unwrap();
    assert_eq!(store.recovered_tail(), Some(TailStatus::Corrupt));
    assert_eq!(store.round(), 6, "recovery stops at the last valid record");
    store.run_rounds(1).unwrap();
    assert_eq!(store_state(&store), reference_state(&graph, &partition, 7));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_snapshot_falls_back_to_an_older_one_bitwise() {
    let dir = temp_dir("snapfall");
    // Snapshots at rounds 3 and 6.
    let (graph, partition) = run_plain_epoch(&dir, 3);
    let snap = dir.join("snap-6.bin");
    let mut bytes = fs::read(&snap).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    fs::write(&snap, &bytes).unwrap();
    let durable = DurableConfig {
        group_commit: 1,
        snapshot_every: 3,
    };
    let store = DurableCoordinator::recover(&graph, &partition, durable, &dir).unwrap();
    assert_eq!(store.round(), 7);
    assert_eq!(store_state(&store), reference_state(&graph, &partition, 7));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn tampered_snapshot_contents_fail_replay_closed() {
    let dir = temp_dir("tamper");
    let (graph, partition) = run_plain_epoch(&dir, 3);
    // Remove the newer snapshot and substitute the older one's *file* under
    // the newer name: the checksum is valid but the captured round is wrong,
    // so recovery must skip it rather than resume a different trajectory.
    fs::copy(dir.join("snap-3.bin"), dir.join("snap-6.bin")).unwrap();
    let durable = DurableConfig {
        group_commit: 1,
        snapshot_every: 3,
    };
    let store = DurableCoordinator::recover(&graph, &partition, durable, &dir).unwrap();
    assert_eq!(store.round(), 7);
    assert_eq!(store_state(&store), reference_state(&graph, &partition, 7));
    // And a meta file from a different topology is refused outright.
    let other = random_regular(14, 4, &mut seeded_rng(6)).unwrap();
    let other_partition = Partition::new(&other, 2).unwrap();
    let err = match DurableCoordinator::recover(&other, &other_partition, durable, &dir) {
        Ok(_) => panic!("recovery accepted a mismatched topology"),
        Err(err) => err,
    };
    assert!(matches!(err, StoreError::InvalidState(_)), "got {err:?}");
    let _ = fs::remove_dir_all(&dir);
}
