//! Deterministic RNG helpers (mirrors `ns_graph::rng` so that this crate has
//! no dependency on the graph substrate).

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG type used throughout the workspace.
pub type SimRng = ChaCha8Rng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> SimRng {
    ChaCha8Rng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn reproducible_streams() {
        let mut a = seeded_rng(99);
        let mut b = seeded_rng(99);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
