//! Edge-list I/O in the whitespace-separated format used by SNAP datasets.
//!
//! The format is one edge per line (`u v`), `#`-prefixed comment lines, and
//! arbitrary (not necessarily dense) node labels; labels are remapped to the
//! dense range `0..n` on load.  Saving always writes the dense ids.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Parses an edge list from a reader.
///
/// Self-loops are silently dropped (SNAP datasets occasionally contain them
/// but they have no meaning for the communication network); duplicate edges
/// are collapsed.
///
/// Returns the graph and the mapping `dense_id -> original_label`.
///
/// # Errors
///
/// [`GraphError::Parse`] for malformed lines, [`GraphError::Io`] for reader
/// failures.
pub fn read_edge_list<R: std::io::Read>(reader: R) -> Result<(Graph, Vec<u64>)> {
    let reader = BufReader::new(reader);
    let mut labels: HashMap<u64, usize> = HashMap::new();
    let mut label_order: Vec<u64> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();

    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line.map_err(|e| GraphError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let u = parse_label(parts.next(), line_no)?;
        let v = parse_label(parts.next(), line_no)?;
        if parts.next().is_some() {
            // Extra columns (e.g. weights/timestamps) are tolerated and ignored.
        }
        if u == v {
            continue;
        }
        let ui = *labels.entry(u).or_insert_with(|| {
            label_order.push(u);
            label_order.len() - 1
        });
        let vi = *labels.entry(v).or_insert_with(|| {
            label_order.push(v);
            label_order.len() - 1
        });
        edges.push((ui, vi));
    }

    let mut builder = GraphBuilder::new(label_order.len());
    for (u, v) in edges {
        builder.add_edge(u, v)?;
    }
    Ok((builder.build(), label_order))
}

fn parse_label(token: Option<&str>, line: usize) -> Result<u64> {
    let token = token.ok_or(GraphError::Parse {
        line,
        message: "expected two node ids".into(),
    })?;
    token.parse::<u64>().map_err(|_| GraphError::Parse {
        line,
        message: format!("invalid node id '{token}'"),
    })
}

/// Reads an edge list from a file path.
///
/// # Errors
///
/// See [`read_edge_list`].
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<(Graph, Vec<u64>)> {
    let file = std::fs::File::open(path)?;
    read_edge_list(file)
}

/// Writes a graph as an edge list (`u v` per line, dense node ids).
///
/// # Errors
///
/// [`GraphError::Io`] on write failures.
pub fn write_edge_list<W: Write>(graph: &Graph, writer: W) -> Result<()> {
    let mut writer = BufWriter::new(writer);
    writeln!(
        writer,
        "# nodes: {} edges: {}",
        graph.node_count(),
        graph.edge_count()
    )?;
    for (u, v) in graph.edges() {
        writeln!(writer, "{u} {v}")?;
    }
    writer.flush()?;
    Ok(())
}

/// Writes a graph as an edge list to a file path.
///
/// # Errors
///
/// See [`write_edge_list`].
pub fn write_edge_list_file<P: AsRef<Path>>(graph: &Graph, path: P) -> Result<()> {
    let file = std::fs::File::create(path)?;
    write_edge_list(graph, file)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn parses_snap_style_input() {
        let input = "# comment line\n% another comment\n10 20\n20 30\n10 30\n\n30 30\n10 20\n";
        let (graph, labels) = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(graph.node_count(), 3);
        assert_eq!(graph.edge_count(), 3); // self-loop dropped, duplicate collapsed
        assert_eq!(labels, vec![10, 20, 30]);
    }

    #[test]
    fn tolerates_extra_columns() {
        let input = "1 2 0.5\n2 3 0.7 extra\n";
        let (graph, _) = read_edge_list(input.as_bytes()).unwrap();
        assert_eq!(graph.edge_count(), 2);
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = read_edge_list("1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
        let err = read_edge_list("a b\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn roundtrip_through_edge_list() {
        let g = generators::star(6).unwrap();
        let mut buffer = Vec::new();
        write_edge_list(&g, &mut buffer).unwrap();
        let (parsed, labels) = read_edge_list(buffer.as_slice()).unwrap();
        assert_eq!(parsed.node_count(), 6);
        assert_eq!(parsed.edge_count(), 5);
        assert_eq!(labels.len(), 6);
        // The star structure survives: one node of degree 5.
        assert_eq!(parsed.max_degree(), Some(5));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join("ns_graph_io_test_edges.txt");
        let g = generators::cycle(7).unwrap();
        write_edge_list_file(&g, &path).unwrap();
        let (parsed, _) = read_edge_list_file(&path).unwrap();
        assert_eq!(parsed.node_count(), 7);
        assert_eq!(parsed.edge_count(), 7);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = read_edge_list_file("/nonexistent/definitely/missing.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
