//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal, self-contained implementation of the traits it relies on:
//! [`RngCore`], [`SeedableRng`], the extension trait [`Rng`]
//! (`gen`, `gen_range`, `gen_bool`) and [`seq::SliceRandom`] (`shuffle`,
//! `choose`).  Integer ranges are sampled bias-free by rejection; floats use
//! the standard 53-bit mantissa construction.  The statistical quality is
//! whatever the backing [`RngCore`] provides (the workspace uses the ChaCha8
//! generator from the sibling `rand_chacha` shim).

#![forbid(unsafe_code)]

use std::ops::Range;

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `out` with the next `out.len()` draws of the stream, exactly as
    /// if [`RngCore::next_u64`] had been called once per slot.
    ///
    /// Generators with a cheaper bulk path (the ChaCha8 shim emits whole
    /// 16-word blocks) override this; the default is the word-at-a-time
    /// loop, so overriding is purely a performance choice — the emitted
    /// stream must be identical.
    fn fill_u64(&mut self, out: &mut [u64]) {
        for slot in out.iter_mut() {
            *slot = self.next_u64();
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_u64(&mut self, out: &mut [u64]) {
        (**self).fill_u64(out)
    }
}

/// A generator that can be deterministically constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled from the "standard" distribution of
/// `rng.gen::<T>()`: uniform over the full domain for integers, uniform in
/// `[0, 1)` for floats, fair coin for `bool`.
pub trait StandardSample: Sized {
    /// Draws one value from the standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for usize {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Draws a uniform value in `[0, n)` without modulo bias (rejection
/// sampling over the largest multiple of `n` below `2^64`).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - (u64::MAX - n + 1) % n;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % n;
        }
    }
}

/// Half-open ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + uniform_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_signed_range!(i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`.
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws a value uniformly from a half-open range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random operations on slices (`rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if the slice is empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // A weak LCG is enough to exercise the API surface.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn standard_floats_are_unit_interval() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [usize; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn dyn_compatible_through_references() {
        fn takes_generic<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.gen()
        }
        let mut rng = Counter(9);
        takes_generic(&mut rng);
    }
}
