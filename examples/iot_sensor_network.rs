//! Network shuffling on an IoT / wireless-sensor topology with unreliable
//! devices (Sections 3.1 and 4.5 of the paper).
//!
//! ```text
//! cargo run --release --example iot_sensor_network
//! ```
//!
//! Sensors form a small-world mesh (Watts–Strogatz) rather than a social
//! graph, report a bounded scalar (e.g. a temperature reading) through the
//! Laplace mechanism, and are flaky: in every round each device is offline
//! with some probability.  The example shows how the lazy-walk fault model
//! degrades the mixing time but not the asymptotic privacy guarantee, and
//! how the curator's mean estimate holds up.

use network_shuffle::prelude::*;
use ns_dp::mechanisms::Laplace;
use ns_dp::LocalRandomizer;
use ns_graph::generators::watts_strogatz;
use ns_obs::say;
use rand::Rng;

const TOPIC: &str = "iot_sensor_network";

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let n = 1_500;
    let epsilon_0 = 1.5;
    let seed = 23;

    // A sensor mesh: each device pairs with 8 nearby devices, 20% of links
    // rewired to long-range shortcuts.
    let mut rng = ns_graph::rng::seeded_rng(seed);
    let graph = watts_strogatz(n, 8, 0.2, &mut rng)?;
    say!(
        TOPIC,
        "sensor mesh: n = {n}, m = {} links",
        graph.edge_count()
    );

    // Ground truth: temperatures around 21 degrees with spatial drift.
    let truth: Vec<f64> = (0..n)
        .map(|i| 18.0 + 6.0 * (i as f64 / n as f64) + rng.gen::<f64>())
        .collect();
    let true_mean = truth.iter().sum::<f64>() / n as f64;
    let mechanism = Laplace::new(15.0, 28.0, epsilon_0)?;

    let params = AccountantParams::with_defaults(n, epsilon_0)?;

    for &dropout in &[0.0, 0.3] {
        let model = DropoutModel::new(dropout)?;
        let accountant = model.accountant(&graph)?;
        let rounds = accountant.mixing_time();
        let central = model.central_guarantee_at_mixing_time(&graph, ProtocolKind::All, &params)?;

        // Randomize readings and run the protocol under the dropout model.
        let mut ldp_rng = ns_graph::rng::derived_rng(seed, "laplace");
        let payloads: Vec<f64> = truth
            .iter()
            .map(|x| {
                mechanism
                    .randomize(x, &mut ldp_rng)
                    .expect("finite reading")
            })
            .collect();
        let outcome =
            model.run_protocol(&graph, payloads, rounds, ProtocolKind::All, seed, |_| 21.5)?;

        let received: Vec<f64> = outcome
            .collected
            .all_payloads()
            .into_iter()
            .copied()
            .collect();
        let estimate = received.iter().sum::<f64>() / received.len() as f64;

        println!();
        say!(TOPIC, "dropout probability {dropout}:");
        say!(
            TOPIC,
            "  spectral gap {:.4}, mixing time {rounds} rounds",
            accountant.mixing_profile().spectral_gap
        );
        say!(TOPIC, "  central guarantee {central}");
        say!(
            TOPIC,
            "  mean temperature: true {true_mean:.3}, estimated {estimate:.3}"
        );
        say!(
            TOPIC,
            "  traffic: {:.1} relay messages per device on average",
            outcome.metrics.mean_messages_per_user()
        );
    }

    println!();
    say!(
        TOPIC,
        "note: dropouts lengthen the mixing time (more rounds needed) but the"
    );
    say!(
        TOPIC,
        "asymptotic central epsilon is unchanged, as predicted by the lazy-walk analysis."
    );
    Ok(())
}
