//! Churn-tolerant deployment: exact accounting on the network you actually
//! had, not the one you planned.
//!
//! ```text
//! cargo run --release --example churn_deployment
//! # CI smoke run / scaling probe at a custom population:
//! NS_CHURN_N=300 cargo run --release --example churn_deployment
//! ```
//!
//! A 800-user deployment (`NS_CHURN_N` overrides the population, mirroring
//! `NS_SHARD_N`/`NS_SCALE_N`) plans for 25% average unavailability with the
//! paper's lazy-walk reduction, then experiences three different outage
//! processes with that *same* average:
//!
//! * i.i.d. dropout — the reduction's home turf (exact),
//! * bursty Markov on-off churn — outages persist for ~6 rounds,
//! * a regional blackout — a quarter of the network dark for the whole budget.
//!
//! For each realized schedule the exact accountant evolves **every**
//! origin's position distribution through the actual product of per-round
//! masked operators and quotes the worst user's ε, exposing how far the
//! static quote drifts.  The example then replays the blackout through the
//! protocol engine (failed deliveries stay put, are never counted as
//! traffic) and finishes with live topology churn: edges rewiring under a
//! `DynamicGraph` whose incrementally-patched CSR snapshots feed one
//! persistent engine through `MixingEngine::retarget`.

use network_shuffle::prelude::*;
use ns_graph::dynamic::DynamicGraph;
use ns_graph::generators::barabasi_albert;
use ns_graph::mixing_engine::MixingEngine;
use ns_obs::say;
use rand::Rng;

const TOPIC: &str = "churn_deployment";

fn main() -> std::result::Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::var("NS_CHURN_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(800);
    let epsilon_0 = 1.0;
    let seed = 20220408;
    let mean_down = 0.25;

    // 1. The planned deployment: static graph, lazy-walk churn model.
    let mut rng = ns_graph::rng::seeded_rng(seed);
    let graph = barabasi_albert(n, 4, &mut rng)?;
    let accountant = NetworkShuffleAccountant::new(&graph)?;
    let rounds = accountant.mixing_time();
    let params = AccountantParams::with_defaults(n, epsilon_0)?;
    let planned = DropoutModel::new(mean_down)?
        .accountant(&graph)?
        .central_guarantee(ProtocolKind::Single, Scenario::Stationary, &params, rounds)?;
    let exact_static = accountant
        .central_guarantee(ProtocolKind::Single, Scenario::Exact, &params, rounds)?
        .epsilon;
    say!(
        TOPIC,
        "deployment: n = {n}, m = {} edges, t = {rounds} rounds (static mixing time)",
        graph.edge_count()
    );
    say!(
        TOPIC,
        "planned quote (lazy bound, q = {mean_down}):   eps = {:.3}",
        planned.epsilon
    );
    say!(
        TOPIC,
        "exact static worst user (no churn):    eps = {exact_static:.3}"
    );

    // 2. Three realized outage processes with the same 25% average.
    let scenarios = [
        (
            "iid dropout",
            OutageModel::Iid {
                dropout_probability: mean_down,
            },
        ),
        (
            "bursty markov",
            // fail/(fail+recover) = 0.25, mean outage length ~6 rounds.
            OutageModel::MarkovOnOff {
                fail: 1.0 / 18.0,
                recover: 1.0 / 6.0,
            },
        ),
        (
            "region blackout",
            // A quarter of the network dark for the whole budget — the same
            // 25% mean unavailability as the other two scenarios, but
            // concentrated: reports can never settle there, so the position
            // distributions pile up on the surviving three quarters.
            OutageModel::RegionBlackout {
                region: (0..n / 4).collect(),
                from_round: 0,
                until_round: rounds,
            },
        ),
    ];
    println!();
    say!(
        TOPIC,
        "realized churn, same {mean_down} average unavailability, worst user after t = {rounds}:"
    );
    for (name, model) in &scenarios {
        let schedule = model.sample_schedule(n, rounds, seed)?;
        let churned = accountant
            .clone()
            .with_schedule(schedule.time_varying_model(&graph, 0.0)?)?;
        let (worst_user, guarantee) =
            churned.worst_user_guarantee(ProtocolKind::Single, &params, rounds)?;
        let vs_plan = guarantee.epsilon / planned.epsilon;
        say!(TOPIC,
            "  {name:<16} exact worst user {worst_user:>3}: eps = {:>8.3}  ({}{:.2}x the planned quote)",
            guarantee.epsilon,
            if vs_plan >= 1.0 { "" } else { "1/" },
            if vs_plan >= 1.0 { vs_plan } else { 1.0 / vs_plan },
        );
    }

    // 3. Replay the blackout through the protocol engine: reports whose
    // recipient is dark stay put and no message is counted.
    let blackout = scenarios[2].1.sample_schedule(n, rounds, seed)?;
    let config = SimulationConfig::single(rounds, seed);
    let clear = run_protocol(&graph, vec![0u8; n], config, |_| 0)?;
    let dark = run_protocol_under_outages(&graph, vec![0u8; n], config, &blackout, |_| 0)?;
    println!();
    say!(TOPIC,
        "protocol replay (A_single, {rounds} rounds): {} relay messages clear-sky, {} under the blackout",
        clear.metrics.total_messages(),
        dark.metrics.total_messages()
    );
    assert!(dark.metrics.total_messages() < clear.metrics.total_messages());

    // 4. Live topology churn: 1% of edges rewire every round.  The dynamic
    // graph patches its CSR snapshot incrementally (clean row spans are
    // bulk-copied, only touched rows are re-read) and each round's snapshot
    // is materialized up front, so ONE engine walks the whole history,
    // retargeting between rounds — positions and the round counter carry
    // over.
    let mut dynamic = DynamicGraph::from_graph(&graph)?;
    let mut walk_rng = ns_graph::rng::seeded_rng(seed ^ 0xd15c0);
    let mut rewired = 0usize;
    let mut snapshots = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        // Rewire: drop a random existing edge, add a random absent one.
        for _ in 0..graph.edge_count() / 100 {
            let (u, v) = loop {
                let u = walk_rng.gen_range(0..n);
                let v = walk_rng.gen_range(0..n);
                if u != v
                    && dynamic.has_edge(u, v)
                    && dynamic.degree(u) > 1
                    && dynamic.degree(v) > 1
                {
                    break (u, v);
                }
            };
            let (a, b) = loop {
                let a = walk_rng.gen_range(0..n);
                let b = walk_rng.gen_range(0..n);
                if a != b && !dynamic.has_edge(a, b) {
                    break (a, b);
                }
            };
            dynamic.remove_edge(u, v)?;
            dynamic.add_edge(a, b)?;
            rewired += 1;
        }
        assert!(dynamic.dirty_nodes() > 0);
        snapshots.push(dynamic.snapshot().clone());
    }
    let mut engine = MixingEngine::one_walker_per_node(&snapshots[0])?;
    for snapshot in &snapshots {
        engine.retarget(snapshot)?;
        engine.step(0.0, &mut walk_rng);
    }
    assert_eq!(engine.round(), rounds);
    let empty = engine.load_vector().iter().filter(|&&x| x == 0).count();
    say!(
        TOPIC,
        "live rewiring: {rewired} edges swapped across {rounds} rounds ({} edges now), \
         {empty} of {n} users hold no report after the walk",
        dynamic.edge_count()
    );
    println!();
    say!(
        TOPIC,
        "takeaway: the i.i.d. quote transfers, correlated/scheduled churn does not — account on\n\
         the realized schedule (NetworkShuffleAccountant::with_schedule) before quoting eps."
    );
    Ok(())
}
