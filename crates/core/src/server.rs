//! The curator (analysis server).
//!
//! The curator is *untrusted* for privacy: the guarantees of the paper hold
//! against it.  It owns the envelope key pair `<c₂^pk, c₂^sk>` (Section 4.4),
//! collects the users' final-round submissions, decrypts the reports and
//! performs the analysis.  What it observes — and all an adversary sitting at
//! the curator observes — is captured by [`CollectedReports`]: the multiset
//! of reports together with the identity of the *last holder* who uploaded
//! each one (but not the origin, which only the measurement harness sees).

use crate::crypto::{KeyPair, PublicKey, SecretKey};
use crate::error::Result;
use crate::protocol::client::SealedSubmission;
use crate::report::Submission;
use ns_graph::NodeId;

/// The curator: holds the envelope secret key and aggregates submissions.
#[derive(Debug, Clone)]
pub struct Curator {
    keys: KeyPair,
}

impl Curator {
    /// Creates a curator with a fresh envelope key pair.
    pub fn new() -> Self {
        Curator {
            keys: KeyPair::generate(),
        }
    }

    /// The public envelope key users seal their reports with.
    pub fn public_key(&self) -> PublicKey {
        self.keys.public
    }

    /// The secret envelope key (used internally and by tests that model a
    /// compromised curator).
    pub fn secret_key(&self) -> &SecretKey {
        &self.keys.secret
    }

    /// Decrypts and aggregates the users' submissions.
    ///
    /// # Errors
    ///
    /// [`crate::error::Error::WrongKey`] if any report was sealed for a
    /// different key (a protocol bug).
    pub fn collect<P>(&self, submissions: Vec<SealedSubmission<P>>) -> Result<CollectedReports<P>> {
        self.collect_from(submissions)
    }

    /// Streaming variant of [`Curator::collect`]: decrypts submissions as
    /// they arrive from any iterator, so callers that produce submissions
    /// on the fly (the batched simulation, a future network frontend) need
    /// not buffer them twice.
    ///
    /// # Errors
    ///
    /// Same as [`Curator::collect`].
    pub fn collect_from<P>(
        &self,
        submissions: impl IntoIterator<Item = SealedSubmission<P>>,
    ) -> Result<CollectedReports<P>> {
        let iter = submissions.into_iter();
        let mut opened = Vec::with_capacity(iter.size_hint().0);
        for sealed in iter {
            opened.push(sealed.open(&self.keys.secret)?);
        }
        Ok(CollectedReports {
            submissions: opened,
        })
    }
}

impl Default for Curator {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything the curator ends up holding after the final round.
#[derive(Debug, Clone)]
pub struct CollectedReports<P> {
    submissions: Vec<Submission<P>>,
}

impl<P> CollectedReports<P> {
    /// Builds a collection directly from decrypted submissions (useful in
    /// tests and in analyses that bypass the crypto layer).
    pub fn from_submissions(submissions: Vec<Submission<P>>) -> Self {
        CollectedReports { submissions }
    }

    /// The per-user submissions, in submitter order of upload.
    pub fn submissions(&self) -> &[Submission<P>] {
        &self.submissions
    }

    /// Total number of reports received (including dummies).
    pub fn report_count(&self) -> usize {
        self.submissions.iter().map(|s| s.len()).sum()
    }

    /// Number of dummy reports received (only `A_single` produces them).
    pub fn dummy_count(&self) -> usize {
        self.submissions
            .iter()
            .flat_map(|s| &s.reports)
            .filter(|r| r.is_dummy)
            .count()
    }

    /// Number of null responses (empty submissions under `A_all`).
    pub fn null_response_count(&self) -> usize {
        self.submissions.iter().filter(|s| s.is_empty()).count()
    }

    /// Iterates over `(submitter, report)` pairs — the curator's view.
    pub fn reports_with_submitter(
        &self,
    ) -> impl Iterator<Item = (NodeId, &crate::report::Report<P>)> {
        self.submissions
            .iter()
            .flat_map(|s| s.reports.iter().map(move |r| (s.submitter, r)))
    }

    /// Payloads of all genuine (non-dummy) reports.
    pub fn genuine_payloads(&self) -> Vec<&P> {
        self.submissions
            .iter()
            .flat_map(|s| &s.reports)
            .filter(|r| !r.is_dummy)
            .map(|r| &r.payload)
            .collect()
    }

    /// Payloads of all reports, dummies included (what the curator actually
    /// averages over under `A_single`, since it cannot tell dummies apart).
    pub fn all_payloads(&self) -> Vec<&P> {
        self.submissions
            .iter()
            .flat_map(|s| &s.reports)
            .map(|r| &r.payload)
            .collect()
    }

    /// The load vector `L = (L_1, …, L_n)` of Lemma 5.1: number of reports
    /// uploaded by each of the `n` users (indexed by submitter id, which
    /// requires the caller to pass `n`).
    pub fn load_vector(&self, n: usize) -> Vec<usize> {
        let mut load = vec![0usize; n];
        for s in &self.submissions {
            if s.submitter < n {
                load[s.submitter] += s.len();
            }
        }
        load
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::Envelope;
    use crate::report::Report;

    fn sealed(
        curator: &Curator,
        submitter: NodeId,
        reports: Vec<Report<u32>>,
    ) -> SealedSubmission<u32> {
        SealedSubmission {
            submitter,
            reports: reports
                .into_iter()
                .map(|r| Envelope::seal(curator.public_key(), r))
                .collect(),
        }
    }

    #[test]
    fn collect_decrypts_submissions() {
        let curator = Curator::new();
        let submissions = vec![
            sealed(
                &curator,
                0,
                vec![Report::genuine(0, 1), Report::genuine(2, 3)],
            ),
            sealed(&curator, 1, vec![]),
            sealed(&curator, 2, vec![Report::dummy(2, 0)]),
        ];
        let collected = curator.collect(submissions).unwrap();
        assert_eq!(collected.report_count(), 3);
        assert_eq!(collected.dummy_count(), 1);
        assert_eq!(collected.null_response_count(), 1);
        assert_eq!(collected.genuine_payloads(), vec![&1, &3]);
        assert_eq!(collected.all_payloads().len(), 3);
    }

    #[test]
    fn collect_rejects_reports_sealed_for_someone_else() {
        let curator = Curator::new();
        let other = Curator::new();
        let bad = SealedSubmission {
            submitter: 0,
            reports: vec![Envelope::seal(other.public_key(), Report::genuine(0, 9u32))],
        };
        assert!(curator.collect(vec![bad]).is_err());
    }

    #[test]
    fn load_vector_counts_reports_per_submitter() {
        let collected = CollectedReports::from_submissions(vec![
            Submission {
                submitter: 0,
                reports: vec![Report::genuine(1, 1u32), Report::genuine(2, 2)],
            },
            Submission {
                submitter: 2,
                reports: vec![Report::genuine(0, 3)],
            },
            Submission::null(1),
        ]);
        assert_eq!(collected.load_vector(3), vec![2, 0, 1]);
        assert_eq!(collected.load_vector(4), vec![2, 0, 1, 0]);
    }

    #[test]
    fn reports_with_submitter_exposes_the_curator_view() {
        let collected = CollectedReports::from_submissions(vec![Submission {
            submitter: 5,
            reports: vec![Report::genuine(3, 7u32)],
        }]);
        let view: Vec<_> = collected.reports_with_submitter().collect();
        assert_eq!(view.len(), 1);
        assert_eq!(view[0].0, 5);
        assert_eq!(view[0].1.origin, 3);
    }

    #[test]
    fn default_constructs() {
        let c = Curator::default();
        assert!(c.public_key().id() > 0);
    }
}
