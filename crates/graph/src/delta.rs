//! Affected-column derivation for the delta-incremental ensemble advance.
//!
//! The incremental runtime advances tracked distributions **speculatively**
//! under the operator it already holds, then repairs the columns the realized
//! operator could have changed (see
//! [`crate::ensemble::DistributionEnsemble::correct_columns`]).  The repair
//! set comes from here: given the nodes *touched* by a churn delta — every
//! endpoint of an inserted/removed edge (both are recorded by
//! [`crate::dynamic::DynamicGraph::dirty_list`]) plus every node whose
//! availability flag flipped — the columns whose incoming mass can differ
//! between the two operators are exactly the touched nodes and their
//! neighbours **in the realized topology**:
//!
//! * a touched node `u` changed its degree (so `1/deg(u)` rescales every
//!   share it sends and its own bounce-back stay term) or its availability
//!   (so shares aimed at it reroute) — its own column and each realized
//!   neighbour's column can change;
//! * an edge removed at `u` stops `u`'s shares reaching the old neighbour —
//!   but both endpoints of a removed edge are touched, so the old
//!   neighbour's column is already in the set;
//! * every untouched column `j` with untouched neighbours receives exactly
//!   the same shares, in the same order, under both operators — the
//!   speculative value is already bitwise correct.
//!
//! Capture [`crate::dynamic::DynamicGraph::dirty_list`] *before* calling
//! [`crate::dynamic::DynamicGraph::snapshot`] (which clears it), and derive
//! the columns against the **new** snapshot.

use crate::graph::{Graph, NodeId};

/// The sorted, deduplicated set of columns a delta can affect: `touched`
/// plus every neighbour of a touched node in `snapshot` (the realized,
/// post-delta topology).
///
/// Allocates its result; use [`affected_columns_into`] to reuse buffers in
/// steady-state loops.
///
/// # Panics
///
/// Panics if a touched node is out of range for `snapshot`.
pub fn affected_columns(snapshot: &Graph, touched: &[NodeId]) -> Vec<NodeId> {
    let mut stamp = vec![false; snapshot.node_count()];
    let mut out = Vec::new();
    affected_columns_into(snapshot, touched, &mut stamp, &mut out);
    out
}

/// Buffer-reusing form of [`affected_columns`].
///
/// `stamp` must be an all-`false` slice of length `snapshot.node_count()`;
/// it is restored to all-`false` before returning (by iterating the result,
/// not the whole slice, so steady-state cost is `O(|touched| + Σ deg)`).
/// `out` is cleared and then filled with the sorted affected set.
///
/// # Panics
///
/// Panics if `stamp` is shorter than the node count or a touched node is out
/// of range.
pub fn affected_columns_into(
    snapshot: &Graph,
    touched: &[NodeId],
    stamp: &mut [bool],
    out: &mut Vec<NodeId>,
) {
    let n = snapshot.node_count();
    assert!(stamp.len() >= n, "stamp buffer shorter than the node count");
    out.clear();
    for &u in touched {
        assert!(u < n, "touched node {u} out of range for {n} nodes");
        if !stamp[u] {
            stamp[u] = true;
            out.push(u);
        }
        for &v in snapshot.neighbors(u) {
            let v = v as NodeId;
            if !stamp[v] {
                stamp[v] = true;
                out.push(v);
            }
        }
    }
    out.sort_unstable();
    // Restore the all-false invariant by visiting only what was set.
    for &u in out.iter() {
        stamp[u] = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::seeded_rng;

    #[test]
    fn affected_set_is_sorted_closed_neighbourhood() {
        let g = generators::random_regular(50, 4, &mut seeded_rng(3)).unwrap();
        let touched = [7usize, 31, 7];
        let cols = affected_columns(&g, &touched);
        let mut expected: Vec<usize> = vec![7, 31];
        expected.extend(g.neighbors(7).iter().map(|&v| v as usize));
        expected.extend(g.neighbors(31).iter().map(|&v| v as usize));
        expected.sort_unstable();
        expected.dedup();
        assert_eq!(cols, expected);
    }

    #[test]
    fn buffer_form_restores_the_stamp_and_matches() {
        let g = generators::barabasi_albert(80, 3, &mut seeded_rng(4)).unwrap();
        let mut stamp = vec![false; 80];
        let mut out = Vec::new();
        for touched in [&[0usize, 1, 2][..], &[79][..], &[][..]] {
            affected_columns_into(&g, touched, &mut stamp, &mut out);
            assert_eq!(out, affected_columns(&g, touched));
            assert!(stamp.iter().all(|&s| !s), "stamp not restored");
        }
    }
}
