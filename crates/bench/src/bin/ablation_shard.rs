//! Sharding ablation — what the edge cut costs, in throughput and in ε.
//!
//! On the Twitch stand-in, the shard count is swept and three things are
//! measured per `k`:
//!
//! * **partition quality** — edge-cut fraction and shard imbalance of the
//!   deterministic degree-balanced partitioner;
//! * **engine throughput** — rounds/s of the multi-shard engine (the full
//!   walk: cross-shard deliveries are routed through the exchange phase);
//! * **privacy of the cut-restricted deployment** — the worst user's
//!   **exact** central ε (`A_single`) when cross-shard exchange is
//!   *disabled* (a cut-crossing delivery bounces back), computed by
//!   evolving **all** origins through the batched ensemble kernel under
//!   [`IntraShardTransition`].  The `k = 1` row is the ordinary full-graph
//!   walk, so the column directly prices the edge cut in ε: mass confined
//!   to a shard floors at the shard-local collision probability and the
//!   mixing-time budget buys correspondingly less;
//! * **the cut under churn** — the same exact accounting with the
//!   cut-restricted operator additionally masked by a realized **20%
//!   Markov on-off schedule** (the `ablation_churn` scenario), so the two
//!   prior ablations meet in one table: the `*_churn` columns price edge
//!   cut × bursty churn jointly, and the gap to the static intra-shard
//!   columns is what churn costs a deployment that also refuses to cross
//!   the cut.
//!
//! ```text
//! cargo run --release -p ns-bench --bin ablation_shard
//! ```

use network_shuffle::prelude::*;
use ns_bench::{fmt, print_table, scale_divisor, write_csv, DELTA, SEED};
use ns_datasets::Dataset;
use ns_graph::ensemble::DistributionEnsemble;
use ns_graph::partition::{IntraShardTransition, Partition};
use ns_graph::sharded_engine::ShardedMixingEngine;
use std::time::Instant;

fn main() {
    let epsilon_0 = 2.0;
    // Exact all-origin accounting is O(n · t · (n + m)) here (the
    // cut-restricted operator uses the generic lane path): run on a
    // quarter-scale Twitch stand-in like the churn ablation.
    let divisor = scale_divisor(Dataset::Twitch).max(4);
    let generated = Dataset::Twitch
        .generate_scaled(divisor, SEED)
        .expect("twitch stand-in");
    let graph = &generated.graph;
    let n = graph.node_count();

    let accountant = NetworkShuffleAccountant::new(graph).expect("ergodic graph");
    let t_mix = accountant.mixing_time();
    let params =
        AccountantParams::new(n, epsilon_0, DELTA, DELTA).expect("valid accountant params");
    let throughput_rounds = 100usize;
    println!(
        "Twitch stand-in: n = {n}, m = {} edges, mixing time = {t_mix}; \
         worst-user exact eps (A_single, eps0 = {epsilon_0}) at t_mix and 2 t_mix",
        graph.edge_count()
    );

    // Exact (worst, mean) epsilon of the cut-restricted walk at a horizon:
    // evolve every origin under the intra-shard operator and fold.
    let epsilon_profile = |ensemble: &DistributionEnsemble| -> (f64, f64) {
        let mut worst = f64::NEG_INFINITY;
        let mut total = 0.0;
        for row in 0..ensemble.sources() {
            let eps = single_protocol_epsilon(&params, ensemble.row_stats(row).sum_of_squares)
                .expect("moments in domain")
                .epsilon;
            worst = worst.max(eps);
            total += eps;
        }
        (worst, total / ensemble.sources() as f64)
    };

    // The churn cell: one realized 20% Markov on-off schedule (the
    // `ablation_churn` parameters — mean outage length 8 rounds), shared by
    // every k so the column differences are purely the cut.
    let churn = OutageModel::MarkovOnOff {
        fail: 0.03125,
        recover: 0.125,
    };
    let churn_schedule = churn
        .sample_schedule(n, t_mix, SEED)
        .expect("churn schedule");

    let headers = [
        "shards",
        "edge_cut_fraction",
        "max_shard_imbalance",
        "cut_isolated_users",
        "rounds_per_s",
        "worst_eps_intra_tmix",
        "mean_eps_intra_tmix",
        "mean_eps_intra_2tmix",
        "worst_eps_intra_churn_tmix",
        "mean_eps_intra_churn_tmix",
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut baseline_tmix = f64::NAN;
    for k in [1usize, 2, 4, 8, 16] {
        if k > n {
            continue;
        }
        let partition = Partition::new(graph, k).expect("partition");

        // Throughput of the full sharded walk (cross-shard routing on).
        let mut engine =
            ShardedMixingEngine::one_walker_per_node(graph, &partition, SEED).expect("engine");
        let start = Instant::now();
        for _ in 0..throughput_rounds {
            engine.step(0.0, &mut ());
        }
        let rounds_per_s = throughput_rounds as f64 / start.elapsed().as_secs_f64();

        // Exact accounting of the cut-restricted walk, one pass per horizon.
        let model = IntraShardTransition::new(graph, &partition, 0.0).expect("operator");
        let mut ensemble = DistributionEnsemble::all_origins(n).expect("ensemble");
        ensemble.advance(&model, t_mix);
        let (worst_tmix, mean_tmix) = epsilon_profile(&ensemble);
        ensemble.advance(&model, t_mix);
        let (_, mean_2tmix) = epsilon_profile(&ensemble);
        if k == 1 {
            baseline_tmix = mean_tmix;
        }

        // The same cut-restricted walk under the realized Markov churn:
        // every origin evolves through the per-round masked operator.
        let churned_model = IntraShardTransition::new(graph, &partition, 0.0)
            .expect("operator")
            .availability_schedule(churn_schedule.masks())
            .expect("churned operator schedule");
        let mut churned = DistributionEnsemble::all_origins(n).expect("ensemble");
        churned.advance(&churned_model, t_mix);
        let (worst_churn_tmix, mean_churn_tmix) = epsilon_profile(&churned);

        println!(
            "k = {k:>2}: cut {:>5.1}%, imbalance {:.3}, {:>3} cut-isolated, {rounds_per_s:.0} \
             rounds/s, mean eps(t_mix) = {} ({:.2}x the full-graph walk), worst = {}; \
             under 20% markov churn mean = {}, worst = {}",
            100.0 * partition.edge_cut_fraction(),
            partition.max_shard_imbalance(),
            partition.cut_isolated_count(),
            fmt(mean_tmix),
            mean_tmix / baseline_tmix,
            fmt(worst_tmix),
            fmt(mean_churn_tmix),
            fmt(worst_churn_tmix)
        );
        rows.push(vec![
            k.to_string(),
            fmt(partition.edge_cut_fraction()),
            fmt(partition.max_shard_imbalance()),
            partition.cut_isolated_count().to_string(),
            fmt(rounds_per_s),
            fmt(worst_tmix),
            fmt(mean_tmix),
            fmt(mean_2tmix),
            fmt(worst_churn_tmix),
            fmt(mean_churn_tmix),
        ]);
    }

    print_table(
        "Sharding ablation: partition quality, throughput, and the exact price of never crossing the cut — clear-sky and under 20% Markov churn",
        &headers,
        &rows,
    );
    write_csv("ablation_shard", &headers, &rows);
    println!(
        "\nreading the table: the engine pays nothing for sharding (the walk is identical, only\n\
         execution is split), but a deployment that *refuses* to cross the cut pays in epsilon —\n\
         confined reports floor at their shard's collision probability, and the floor rises\n\
         with the cut fraction. The exact accountant prices that trade directly. The *_churn\n\
         columns rerun the same accounting under a realized 20% Markov on-off schedule (the\n\
         ablation_churn scenario): bursty churn and the cut compound, because a report parked\n\
         next to dark or out-of-shard neighbours bounces either way."
    );
}
