//! The Laplace mechanism for bounded scalar values.
//!
//! Values are clamped to a declared interval `[lo, hi]` (so the sensitivity
//! of a single report is `hi − lo`) and perturbed with Laplace noise of scale
//! `(hi − lo) / ε`, yielding a pure ε-LDP local randomizer.

use crate::randomizer::LocalRandomizer;
use crate::types::{validate_positive_epsilon, DpError, PrivacyGuarantee, Result};
use rand::Rng;

/// Laplace local randomizer over the interval `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Laplace {
    lo: f64,
    hi: f64,
    epsilon: f64,
    scale: f64,
}

impl Laplace {
    /// Creates a Laplace mechanism clamping inputs to `[lo, hi]` with pure
    /// LDP parameter `epsilon`.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidParameters`] if the interval is empty or unbounded;
    /// [`DpError::InvalidEpsilon`] if ε ≤ 0.
    pub fn new(lo: f64, hi: f64, epsilon: f64) -> Result<Self> {
        if !lo.is_finite() || !hi.is_finite() || hi <= lo {
            return Err(DpError::InvalidParameters(format!(
                "invalid interval [{lo}, {hi}]: must be finite with hi > lo"
            )));
        }
        let epsilon = validate_positive_epsilon(epsilon)?;
        let scale = (hi - lo) / epsilon;
        Ok(Laplace {
            lo,
            hi,
            epsilon,
            scale,
        })
    }

    /// Noise scale `b = (hi − lo) / ε`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The declared input interval.
    pub fn bounds(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Variance of the added noise (`2b²`).
    pub fn noise_variance(&self) -> f64 {
        2.0 * self.scale * self.scale
    }

    /// Draws one Laplace(0, b) sample via inverse-CDF sampling.
    fn sample_noise<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // u uniform in (-1/2, 1/2]; x = -b * sign(u) * ln(1 - 2|u|).
        let u: f64 = rng.gen::<f64>() - 0.5;
        let magnitude = -(1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln();
        self.scale * magnitude * if u >= 0.0 { 1.0 } else { -1.0 }
    }
}

impl LocalRandomizer for Laplace {
    type Input = f64;
    type Output = f64;

    fn randomize<R: Rng + ?Sized>(&self, input: &f64, rng: &mut R) -> Result<f64> {
        if !input.is_finite() {
            return Err(DpError::DomainViolation(format!(
                "input {input} is not finite"
            )));
        }
        let clamped = input.clamp(self.lo, self.hi);
        Ok(clamped + self.sample_noise(rng))
    }

    fn guarantee(&self) -> PrivacyGuarantee {
        PrivacyGuarantee::pure(self.epsilon).expect("validated at construction")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn construction_validates_parameters() {
        assert!(Laplace::new(0.0, 1.0, 1.0).is_ok());
        assert!(Laplace::new(1.0, 1.0, 1.0).is_err());
        assert!(Laplace::new(2.0, 1.0, 1.0).is_err());
        assert!(Laplace::new(f64::NEG_INFINITY, 1.0, 1.0).is_err());
        assert!(Laplace::new(0.0, 1.0, 0.0).is_err());
    }

    #[test]
    fn scale_and_variance() {
        let lap = Laplace::new(-1.0, 1.0, 0.5).unwrap();
        assert!((lap.scale() - 4.0).abs() < 1e-12);
        assert!((lap.noise_variance() - 32.0).abs() < 1e-12);
        assert_eq!(lap.bounds(), (-1.0, 1.0));
    }

    #[test]
    fn noise_is_unbiased_and_has_expected_spread() {
        let lap = Laplace::new(0.0, 1.0, 1.0).unwrap();
        let mut rng = seeded_rng(3);
        let trials = 60_000;
        let samples: Vec<f64> = (0..trials)
            .map(|_| lap.randomize(&0.5, &mut rng).unwrap())
            .collect();
        let mean = samples.iter().sum::<f64>() / trials as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / trials as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
        assert!((var - lap.noise_variance()).abs() < 0.2, "var = {var}");
    }

    #[test]
    fn inputs_are_clamped_and_nan_rejected() {
        let lap = Laplace::new(0.0, 1.0, 2.0).unwrap();
        let mut rng = seeded_rng(4);
        // A wildly out-of-range input is clamped to the boundary, so its
        // expected output is ~1.0 rather than ~100.
        let trials = 20_000;
        let mean: f64 = (0..trials)
            .map(|_| lap.randomize(&100.0, &mut rng).unwrap())
            .sum::<f64>()
            / trials as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean = {mean}");
        assert!(lap.randomize(&f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn guarantee_is_pure() {
        let lap = Laplace::new(0.0, 10.0, 0.7).unwrap();
        assert!(lap.guarantee().is_pure());
        assert!((lap.epsilon() - 0.7).abs() < 1e-12);
    }
}
