//! Deterministic graph partitioning for the sharded shuffle runtime.
//!
//! A single monolithic CSR bounds the whole deployment by one shard's memory
//! and one thread pool's reach.  This module splits the communication graph
//! into `k` shards so that the round loop can run one engine per shard (see
//! [`crate::sharded_engine`]) and a coordinator can account per shard:
//!
//! * every node is assigned to exactly one shard by a **degree-balanced
//!   BFS growth** pass (shards grow from high-degree seeds until they reach
//!   their share of the total degree mass) followed by a few deterministic
//!   **label-propagation refinement** sweeps that pull nodes toward the
//!   shard holding most of their neighbours without violating the balance
//!   tolerance;
//! * each shard gets a **local node remapping** (global ids ↔ dense local
//!   ids), a **shard-local CSR** over its intra-shard edges, and a
//!   **frontier table** of its cut edges — one entry per (local node,
//!   peer shard, peer local node) incidence, mirrored exactly on the peer
//!   shard.  The shard CSRs plus the frontier tables reconstruct the input
//!   graph bit for bit (`tests/partition_properties.rs` proves this on the
//!   proptest graph zoo);
//! * quality is quantified by [`Partition::edge_cut_fraction`] (fraction of
//!   edges whose endpoints land in different shards — every such edge costs
//!   a cross-shard delivery per traversal) and
//!   [`Partition::max_shard_imbalance`] (largest shard node count relative
//!   to the perfectly balanced `n / k`).
//!
//! Everything is deterministic in `(graph, shard_count)`: no RNG is drawn,
//! ties break toward smaller ids, and refinement sweeps nodes in id order —
//! so a partition can be recomputed anywhere and the sharded engine's
//! seed-only determinism contract extends through it.
//!
//! [`IntraShardTransition`] models the privacy cost of *not* crossing the
//! cut: the walk operator of a deployment whose cross-shard exchange is
//! disabled (a chosen cut-crossing delivery bounces back to the holder).
//! Evolving it through the ensemble kernel prices the edge-cut fraction in
//! ε directly — the `ablation_shard` experiment.

use crate::builder::GraphBuilder;
use crate::dynamic::{DynTransition, DynamicGraph, TimeVaryingModel};
use crate::error::{GraphError, Result};
use crate::graph::{Graph, NodeId};
use crate::transition::TransitionModel;

/// How many label-propagation refinement sweeps [`Partition::new`] runs.
const REFINEMENT_SWEEPS: usize = 12;

/// Balance tolerance of refinement: a move is rejected if it would push the
/// receiving shard's degree load above `(1 + tolerance) ×` the ideal share.
const BALANCE_TOLERANCE: f64 = 0.15;

/// One cut-edge incidence in a shard's frontier table.
///
/// The tables are symmetric: if shard `s` records `(u_local, t, v_local)`
/// then shard `t` records `(v_local, s, u_local)` for the same underlying
/// edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierEdge {
    /// Local id (within the owning shard) of the endpoint on this side.
    pub local_node: usize,
    /// Shard holding the other endpoint.
    pub peer_shard: usize,
    /// Local id of the other endpoint within `peer_shard`.
    pub peer_local: usize,
}

/// One shard of a [`Partition`]: remapping, local CSR and frontier table.
#[derive(Debug, Clone)]
pub struct Shard {
    /// Global ids of this shard's nodes, ascending; local id = index.
    nodes: Vec<NodeId>,
    /// CSR over the shard's intra-shard edges, in local ids.  Nodes whose
    /// neighbours all live elsewhere are isolated here — the frontier table
    /// carries their incident edges.
    local_graph: Graph,
    /// Cut-edge incidences, sorted by `(local_node, peer_shard, peer_local)`.
    frontier: Vec<FrontierEdge>,
}

impl Shard {
    /// Global ids of the shard's nodes, ascending (local id = index).
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Number of nodes in the shard.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the shard is empty (never true for a built [`Partition`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The shard-local CSR over intra-shard edges (local ids).
    pub fn local_graph(&self) -> &Graph {
        &self.local_graph
    }

    /// The shard's frontier table, sorted by
    /// `(local_node, peer_shard, peer_local)`.
    pub fn frontier(&self) -> &[FrontierEdge] {
        &self.frontier
    }

    /// Maps a local id back to its global node id.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    pub fn global_of(&self, local: usize) -> NodeId {
        self.nodes[local]
    }
}

/// A deterministic `k`-way partition of a communication graph.
///
/// Built by [`Partition::new`]; consumed by
/// [`crate::sharded_engine::ShardedMixingEngine`] (which routes walkers by
/// [`Partition::shard_of`]) and by the service-layer coordinator (which
/// accounts per shard).
#[derive(Debug, Clone)]
pub struct Partition {
    node_count: usize,
    edge_count: usize,
    cut_edge_count: usize,
    /// `shard_of[u]` is the shard holding global node `u`.
    shard_of: Vec<u32>,
    /// `local_of[u]` is `u`'s dense local id within its shard.
    local_of: Vec<u32>,
    shards: Vec<Shard>,
}

impl Partition {
    /// Partitions `graph` into `shard_count` shards: degree-balanced greedy
    /// growth from high-degree seeds, then a bounded number of deterministic
    /// label-propagation refinement sweeps.
    ///
    /// Deterministic in `(graph, shard_count)`; no randomness is used.
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] for the empty graph,
    /// [`GraphError::InvalidParameters`] if `shard_count` is zero or exceeds
    /// the node count.
    pub fn new(graph: &Graph, shard_count: usize) -> Result<Self> {
        let n = graph.node_count();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if shard_count == 0 || shard_count > n {
            return Err(GraphError::InvalidParameters(format!(
                "shard count must be in 1..={n}, got {shard_count}"
            )));
        }
        let mut shard_of = grow_shards(graph, shard_count);
        refine(graph, shard_count, &mut shard_of);
        Ok(Self::from_assignment_internal(graph, shard_count, shard_of))
    }

    /// The canonical 1-shard partition: identity remapping, the whole graph
    /// as the single shard CSR, an empty frontier.  Under this partition the
    /// sharded engine degenerates bit for bit to the single
    /// [`crate::mixing_engine::MixingEngine`] path.
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] for the empty graph.
    pub fn single_shard(graph: &Graph) -> Result<Self> {
        let n = graph.node_count();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        Ok(Self::from_assignment_internal(graph, 1, vec![0; n]))
    }

    /// Builds a partition from an explicit node → shard assignment — the
    /// escape hatch for externally computed partitions (METIS files, tests).
    ///
    /// # Errors
    ///
    /// [`GraphError::EmptyGraph`] for the empty graph;
    /// [`GraphError::InvalidParameters`] if the assignment length differs
    /// from the node count, a label is `>= shard_count`, or some shard ends
    /// up empty.
    pub fn from_assignment(graph: &Graph, shard_count: usize, shard_of: Vec<u32>) -> Result<Self> {
        let n = graph.node_count();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if shard_of.len() != n {
            return Err(GraphError::InvalidParameters(format!(
                "assignment covers {} nodes but the graph has {n}",
                shard_of.len()
            )));
        }
        if let Some(&bad) = shard_of.iter().find(|&&s| s as usize >= shard_count) {
            return Err(GraphError::InvalidParameters(format!(
                "assignment label {bad} out of range for {shard_count} shards"
            )));
        }
        let mut seen = vec![false; shard_count];
        for &s in &shard_of {
            seen[s as usize] = true;
        }
        if let Some(empty) = seen.iter().position(|&s| !s) {
            return Err(GraphError::InvalidParameters(format!(
                "shard {empty} would be empty"
            )));
        }
        Ok(Self::from_assignment_internal(graph, shard_count, shard_of))
    }

    /// Materializes remappings, shard CSRs and frontier tables from a
    /// validated assignment.
    fn from_assignment_internal(graph: &Graph, shard_count: usize, shard_of: Vec<u32>) -> Self {
        let n = graph.node_count();
        let mut nodes_per_shard: Vec<Vec<NodeId>> = vec![Vec::new(); shard_count];
        let mut local_of = vec![0u32; n];
        for u in 0..n {
            let s = shard_of[u] as usize;
            local_of[u] = nodes_per_shard[s].len() as u32;
            nodes_per_shard[s].push(u);
        }
        let mut cut_edge_count = 0usize;
        let mut shards = Vec::with_capacity(shard_count);
        for (s, nodes) in nodes_per_shard.into_iter().enumerate() {
            let mut builder = GraphBuilder::new(nodes.len());
            let mut frontier = Vec::new();
            for (lu, &u) in nodes.iter().enumerate() {
                for &v in graph.neighbors(u) {
                    let v = v as usize;
                    let t = shard_of[v] as usize;
                    if t == s {
                        // Add each intra-shard edge once (from its lower
                        // endpoint; local order follows global order).
                        if u < v {
                            builder
                                .add_edge(lu, local_of[v] as usize)
                                .expect("intra-shard edge indices are in range");
                        }
                    } else {
                        frontier.push(FrontierEdge {
                            local_node: lu,
                            peer_shard: t,
                            peer_local: local_of[v] as usize,
                        });
                        if u < v {
                            cut_edge_count += 1;
                        }
                    }
                }
            }
            frontier.sort_unstable_by_key(|e| (e.local_node, e.peer_shard, e.peer_local));
            shards.push(Shard {
                nodes,
                local_graph: builder.build(),
                frontier,
            });
        }
        Partition {
            node_count: n,
            edge_count: graph.edge_count(),
            cut_edge_count,
            shard_of,
            local_of,
            shards,
        }
    }

    /// Number of nodes in the partitioned graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of shards `k`.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard holding global node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn shard_of(&self, u: NodeId) -> usize {
        self.shard_of[u] as usize
    }

    /// `u`'s dense local id within [`Partition::shard_of`]`(u)`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn local_of(&self, u: NodeId) -> usize {
        self.local_of[u] as usize
    }

    /// The shards, in shard-id order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// One shard by id.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn shard(&self, shard: usize) -> &Shard {
        &self.shards[shard]
    }

    /// Number of undirected edges crossing the cut.
    pub fn cut_edge_count(&self) -> usize {
        self.cut_edge_count
    }

    /// Fraction of the graph's edges that cross the cut — each one costs a
    /// cross-shard delivery whenever a walker traverses it.  `0.0` for a
    /// single shard (or an edgeless graph).
    pub fn edge_cut_fraction(&self) -> f64 {
        if self.edge_count == 0 {
            0.0
        } else {
            self.cut_edge_count as f64 / self.edge_count as f64
        }
    }

    /// Largest shard size relative to the balanced ideal `n / k`; `1.0` is
    /// perfect balance, `2.0` means some shard holds twice its share.
    pub fn max_shard_imbalance(&self) -> f64 {
        let ideal = self.node_count as f64 / self.shards.len() as f64;
        self.shards
            .iter()
            .map(|s| s.len() as f64 / ideal)
            .fold(0.0, f64::max)
    }

    /// Per-shard node counts, in shard-id order.
    pub fn shard_sizes(&self) -> Vec<usize> {
        self.shards.iter().map(Shard::len).collect()
    }

    /// Number of undirected edges of the **live** topology crossing the cut
    /// — the build-time [`Partition::cut_edge_count`] recomputed against a
    /// churned [`DynamicGraph`], so a long-running deployment can chart cut
    /// decay without re-materializing a snapshot.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if the dynamic graph's node count
    /// differs from the partition's.
    pub fn live_cut_edge_count(&self, graph: &DynamicGraph) -> Result<usize> {
        if graph.node_count() != self.node_count {
            return Err(GraphError::InvalidParameters(format!(
                "dynamic graph has {} nodes but the partition covers {}",
                graph.node_count(),
                self.node_count
            )));
        }
        let mut cut = 0usize;
        for u in 0..self.node_count {
            let s = self.shard_of[u];
            for &v in graph.neighbors(u) {
                if u < v && self.shard_of[v] != s {
                    cut += 1;
                }
            }
        }
        Ok(cut)
    }

    /// [`Partition::edge_cut_fraction`] of the **live** topology: the
    /// fraction of the dynamic graph's current edges crossing this
    /// partition's cut (`0.0` for an edgeless graph).
    ///
    /// # Errors
    ///
    /// As [`Partition::live_cut_edge_count`].
    pub fn live_edge_cut_fraction(&self, graph: &DynamicGraph) -> Result<f64> {
        let cut = self.live_cut_edge_count(graph)?;
        Ok(if graph.edge_count() == 0 {
            0.0
        } else {
            cut as f64 / graph.edge_count() as f64
        })
    }

    /// One bounded pass of online label-propagation refinement against the
    /// **live** topology: candidates — `seeds` plus their live neighbours,
    /// swept once in ascending id order — are pulled toward the shard
    /// holding most of their live neighbours under the same
    /// strictly-improving / balance-tolerance / never-empty-a-shard rules as
    /// the build-time refinement (ties toward the smaller shard id, moves
    /// applied immediately), stopping after `max_moves` moves.
    ///
    /// Returns the refined node → shard assignment plus the moved nodes in
    /// ascending id order.  The caller materializes the result with
    /// [`Partition::from_assignment`] on a snapshot and hands the movers to
    /// [`crate::sharded_engine::ShardedMixingEngine::migrate`]; masking the
    /// movers for one round prices the migration through the accountant's
    /// existing masked-operator path.  Deterministic in
    /// `(partition, graph, seeds, max_moves)`.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if the dynamic graph's node count
    /// differs from the partition's or a seed is out of range.
    pub fn refined_assignment(
        &self,
        graph: &DynamicGraph,
        seeds: &[NodeId],
        max_moves: usize,
    ) -> Result<(Vec<u32>, Vec<NodeId>)> {
        let n = self.node_count;
        if graph.node_count() != n {
            return Err(GraphError::InvalidParameters(format!(
                "dynamic graph has {} nodes but the partition covers {}",
                graph.node_count(),
                n
            )));
        }
        if let Some(&bad) = seeds.iter().find(|&&u| u >= n) {
            return Err(GraphError::InvalidParameters(format!(
                "seed node {bad} out of range for {n} nodes"
            )));
        }
        let shard_count = self.shards.len();
        let mut shard_of = self.shard_of.clone();
        // Candidate set: seeds plus their live neighbourhoods, ascending.
        let mut candidates: Vec<NodeId> = Vec::with_capacity(seeds.len());
        for &u in seeds {
            candidates.push(u);
            candidates.extend(graph.neighbors(u).iter().copied());
        }
        candidates.sort_unstable();
        candidates.dedup();
        let mut movers = Vec::new();
        if shard_count == 1 || max_moves == 0 {
            return Ok((shard_of, movers));
        }
        // Loads/limits against the live degrees, as the build-time pass does
        // against the build-time graph.
        let total_weight: usize = (0..n).map(|u| graph.degree(u) + 1).sum();
        let load_limit = (total_weight as f64 / shard_count as f64) * (1.0 + BALANCE_TOLERANCE);
        let mut loads = vec![0.0f64; shard_count];
        let mut members = vec![0usize; shard_count];
        for (u, &s) in shard_of.iter().enumerate() {
            loads[s as usize] += (graph.degree(u) + 1) as f64;
            members[s as usize] += 1;
        }
        let mut adjacency = vec![0usize; shard_count];
        let mut touched: Vec<usize> = Vec::with_capacity(shard_count);
        for &u in &candidates {
            let cur = shard_of[u] as usize;
            if members[cur] == 1 {
                continue;
            }
            touched.clear();
            for &v in graph.neighbors(u) {
                let t = shard_of[v] as usize;
                if adjacency[t] == 0 {
                    touched.push(t);
                }
                adjacency[t] += 1;
            }
            let mut best = cur;
            let mut best_count = adjacency[cur];
            for &t in &touched {
                if adjacency[t] > best_count || (adjacency[t] == best_count && t < best) {
                    best = t;
                    best_count = adjacency[t];
                }
            }
            let weight = (graph.degree(u) + 1) as f64;
            let improves = adjacency[best] > adjacency[cur];
            let fits = loads[best] + weight <= load_limit || adjacency[cur] == 0;
            if best != cur && improves && fits {
                shard_of[u] = best as u32;
                loads[cur] -= weight;
                loads[best] += weight;
                members[cur] -= 1;
                members[best] += 1;
                movers.push(u);
                if movers.len() >= max_moves {
                    for &t in &touched {
                        adjacency[t] = 0;
                    }
                    break;
                }
            }
            for &t in &touched {
                adjacency[t] = 0;
            }
        }
        Ok((shard_of, movers))
    }

    /// Number of nodes whose **entire** neighbourhood lies across the cut
    /// (shard-local degree zero).  Under a cut-restricted deployment such
    /// users can never relay, so their reports stay put forever; the
    /// refinement pass rescues them whenever a neighbouring shard exists,
    /// and `ablation_shard` reports the residue.
    pub fn cut_isolated_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                (0..s.len())
                    .filter(|&lu| s.local_graph.degree(lu) == 0)
                    .count()
            })
            .sum()
    }
}

/// Degree-balanced greedy graph growing: shard `s` grows from the
/// highest-degree unassigned node until it holds its share of the total
/// degree mass (`(2m + n) / k`), always absorbing the frontier node with
/// the most edges already inside the shard (ties: smallest id) — the
/// BFS-with-gain-priority variant that follows community structure instead
/// of hop distance.  Growth re-seeds when its frontier empties and stops
/// early when exactly enough nodes remain to seed the shards still to come,
/// so no shard ends up empty.
fn grow_shards(graph: &Graph, shard_count: usize) -> Vec<u32> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = graph.node_count();
    const UNASSIGNED: u32 = u32::MAX;
    let mut shard_of = vec![UNASSIGNED; n];
    let total_weight: usize = (0..n).map(|u| graph.degree(u) + 1).sum();
    let target = total_weight as f64 / shard_count as f64;
    // Seeds are tried in descending degree (ties: ascending id); a cursor
    // walks this order so each re-seed scan is amortized O(n) overall.
    let mut by_degree: Vec<NodeId> = (0..n).collect();
    by_degree.sort_by_key(|&u| (Reverse(graph.degree(u)), u));
    let mut seed_cursor = 0usize;
    let mut unassigned = n;
    // Gain of an unassigned frontier node = edges into the growing shard;
    // the heap carries lazy (gain, node) entries, stale ones are skipped.
    let mut gain = vec![0u32; n];
    let mut frontier: BinaryHeap<(u32, Reverse<u32>)> = BinaryHeap::new();
    for s in 0..shard_count as u32 {
        let shards_after = shard_count as u32 - s - 1;
        let mut load = 0.0;
        frontier.clear();
        // The last shard absorbs everything left.
        while unassigned > shards_after as usize && (load < target || shards_after == 0) {
            let u = match frontier.pop() {
                Some((g, Reverse(u)))
                    if shard_of[u as usize] == UNASSIGNED && gain[u as usize] == g =>
                {
                    u
                }
                Some(_) => continue, // stale entry
                None => {
                    while seed_cursor < n && shard_of[by_degree[seed_cursor]] != UNASSIGNED {
                        seed_cursor += 1;
                    }
                    if seed_cursor == n {
                        break;
                    }
                    by_degree[seed_cursor] as u32
                }
            };
            shard_of[u as usize] = s;
            gain[u as usize] = 0;
            unassigned -= 1;
            load += (graph.degree(u as usize) + 1) as f64;
            for &v in graph.neighbors(u as usize) {
                let v = v as usize;
                if shard_of[v] == UNASSIGNED {
                    gain[v] += 1;
                    frontier.push((gain[v], Reverse(v as u32)));
                }
            }
        }
        // Reset the gains touched by this shard's (now abandoned) frontier.
        for (_, Reverse(v)) in frontier.drain() {
            gain[v as usize] = 0;
        }
    }
    debug_assert!(shard_of.iter().all(|&s| s != UNASSIGNED));
    shard_of
}

/// Deterministic label-propagation refinement: sweep nodes in id order and
/// move each to the neighbouring shard with the strongest adjacency if that
/// strictly reduces the local cut, respects the balance tolerance and does
/// not empty the source shard.  Moves apply immediately within a sweep.
///
/// One exemption: a node with **zero** intra-shard neighbours (its whole
/// neighbourhood is across the cut — under a cut-restricted deployment such
/// a user would be frozen forever) is rescued into its strongest
/// neighbouring shard even when that shard is at its balance limit.
fn refine(graph: &Graph, shard_count: usize, shard_of: &mut [u32]) {
    if shard_count == 1 {
        return;
    }
    let n = graph.node_count();
    let total_weight: usize = (0..n).map(|u| graph.degree(u) + 1).sum();
    let load_limit = (total_weight as f64 / shard_count as f64) * (1.0 + BALANCE_TOLERANCE);
    let mut loads = vec![0.0f64; shard_count];
    let mut members = vec![0usize; shard_count];
    for (u, &s) in shard_of.iter().enumerate() {
        loads[s as usize] += (graph.degree(u) + 1) as f64;
        members[s as usize] += 1;
    }
    // Sparse per-node adjacency histogram, reset per node via a touched list.
    let mut adjacency = vec![0usize; shard_count];
    let mut touched: Vec<usize> = Vec::with_capacity(shard_count);
    for _ in 0..REFINEMENT_SWEEPS {
        let mut moved = false;
        for u in 0..n {
            let cur = shard_of[u] as usize;
            if members[cur] == 1 {
                continue;
            }
            touched.clear();
            for &v in graph.neighbors(u) {
                let t = shard_of[v as usize] as usize;
                if adjacency[t] == 0 {
                    touched.push(t);
                }
                adjacency[t] += 1;
            }
            let mut best = cur;
            let mut best_count = adjacency[cur];
            for &t in &touched {
                if adjacency[t] > best_count || (adjacency[t] == best_count && t < best) {
                    best = t;
                    best_count = adjacency[t];
                }
            }
            let weight = (graph.degree(u) + 1) as f64;
            let improves = adjacency[best] > adjacency[cur];
            let fits = loads[best] + weight <= load_limit || adjacency[cur] == 0;
            if best != cur && improves && fits {
                shard_of[u] = best as u32;
                loads[cur] -= weight;
                loads[best] += weight;
                members[cur] -= 1;
                members[best] += 1;
                moved = true;
            }
            for &t in &touched {
                adjacency[t] = 0;
            }
        }
        if !moved {
            break;
        }
    }
}

/// The random-walk operator of a deployment whose cross-shard exchange is
/// disabled: a report at `u` draws a uniform neighbour as usual, but a draw
/// that crosses the cut bounces back to the holder (the delivery is never
/// attempted).  Entry-wise: `stay(u) = laziness + (1 − laziness) ·
/// cut_deg(u)/deg(u)`, and each intra-shard neighbour receives
/// `(1 − laziness)/deg(u)`.
///
/// This operator is generally **not** ergodic across shards — mass started
/// in a shard never leaves it, so `Σ_i P_i(t)²` floors at the shard-local
/// stationary collision probability instead of the global one.  Evolving it
/// with [`crate::ensemble`] therefore prices the partition's edge cut in ε:
/// the gap to the full-graph walk at the same `t` is exactly what
/// cross-shard traffic buys (`ablation_shard`).
#[derive(Debug, Clone)]
pub struct IntraShardTransition {
    /// CSR copied from the graph (same rationale as
    /// [`crate::transition::TransitionMatrix`]).
    offsets: Vec<usize>,
    neighbors: Vec<NodeId>,
    inv_degree: Vec<f64>,
    shard_of: Vec<u32>,
    laziness: f64,
}

impl IntraShardTransition {
    /// Builds the cut-restricted operator for `graph` under `partition`.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] if the partition does not cover the
    /// graph or `laziness ∉ [0, 1)`; [`GraphError::IsolatedNode`] /
    /// [`GraphError::EmptyGraph`] for degenerate graphs.
    pub fn new(graph: &Graph, partition: &Partition, laziness: f64) -> Result<Self> {
        if partition.node_count() != graph.node_count() {
            return Err(GraphError::InvalidParameters(format!(
                "partition covers {} nodes but the graph has {}",
                partition.node_count(),
                graph.node_count()
            )));
        }
        crate::walk::validate_laziness(laziness).map_err(GraphError::InvalidParameters)?;
        let n = graph.node_count();
        if n == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if let Some(u) = graph.find_isolated_node() {
            return Err(GraphError::IsolatedNode(u));
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut neighbors = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0usize);
        for u in graph.nodes() {
            neighbors.extend(graph.neighbors(u).iter().map(|&v| v as NodeId));
            offsets.push(neighbors.len());
        }
        let inv_degree = graph
            .nodes()
            .map(|u| 1.0 / graph.degree(u) as f64)
            .collect();
        Ok(IntraShardTransition {
            offsets,
            neighbors,
            inv_degree,
            shard_of: partition.shard_of.clone(),
            laziness,
        })
    }
}

impl IntraShardTransition {
    /// Lifts the cut-restricted operator onto a realized availability
    /// history: one [`MaskedIntraShard`] per round, all sharing this one
    /// CSR copy behind an [`std::sync::Arc`].  Round `t` of the resulting
    /// [`TimeVaryingModel`] bounces a draw back to its holder when it
    /// crosses the cut **or** its recipient is dark in `masks[t]` — the
    /// exact operator of a sharded deployment that refuses to cross the
    /// cut *and* suffers churn, which is how `ablation_shard` prices the
    /// edge cut under 20% Markov churn.
    ///
    /// # Errors
    ///
    /// [`GraphError::InvalidParameters`] on an empty mask sequence or a
    /// mask whose length differs from the node count.
    pub fn availability_schedule(self, masks: &[Vec<bool>]) -> Result<TimeVaryingModel> {
        let n = self.node_count();
        let shared = std::sync::Arc::new(self);
        let schedule: Vec<DynTransition> = masks
            .iter()
            .map(|mask| {
                if mask.len() != n {
                    return Err(GraphError::InvalidParameters(format!(
                        "availability mask has {} entries for {n} nodes",
                        mask.len()
                    )));
                }
                Ok(std::sync::Arc::new(MaskedIntraShard {
                    shared: std::sync::Arc::clone(&shared),
                    available: mask.clone(),
                }) as DynTransition)
            })
            .collect::<Result<_>>()?;
        TimeVaryingModel::new(schedule)
    }
}

impl TransitionModel for IntraShardTransition {
    fn node_count(&self) -> usize {
        self.inv_degree.len()
    }

    fn propagate_into(&self, p: &[f64], out: &mut [f64]) {
        self.propagate_masked_into(None, p, out);
    }
}

impl IntraShardTransition {
    /// The shared sweep of the cut-restricted operator, with an optional
    /// availability mask: the accumulation order is identical with and
    /// without a mask (an all-available mask is bitwise the unmasked
    /// operator); a draw bounces back to the holder when it crosses the
    /// cut or its recipient is dark.
    fn propagate_masked_into(&self, available: Option<&[bool]>, p: &[f64], out: &mut [f64]) {
        let n = self.node_count();
        assert_eq!(p.len(), n, "input distribution has wrong length");
        assert_eq!(out.len(), n, "output buffer has wrong length");
        let move_factor = 1.0 - self.laziness;
        out.fill(0.0);
        for i in 0..n {
            let mass = p[i];
            if mass == 0.0 {
                continue;
            }
            out[i] += self.laziness * mass;
            let share = move_factor * mass * self.inv_degree[i];
            let home = self.shard_of[i];
            for &j in &self.neighbors[self.offsets[i]..self.offsets[i + 1]] {
                // A cut-crossing draw — or one aimed at a dark recipient —
                // bounces back to the holder.
                let deliverable = self.shard_of[j] == home && available.is_none_or(|mask| mask[j]);
                if deliverable {
                    out[j] += share;
                } else {
                    out[i] += share;
                }
            }
        }
    }
}

/// One round of the cut-restricted walk under an availability mask: built
/// by [`IntraShardTransition::availability_schedule`], sharing the base
/// operator's CSR across the whole schedule.
#[derive(Debug, Clone)]
pub struct MaskedIntraShard {
    shared: std::sync::Arc<IntraShardTransition>,
    available: Vec<bool>,
}

impl TransitionModel for MaskedIntraShard {
    fn node_count(&self) -> usize {
        self.shared.node_count()
    }

    fn propagate_into(&self, p: &[f64], out: &mut [f64]) {
        self.shared
            .propagate_masked_into(Some(&self.available), p, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::rng::seeded_rng;

    fn test_graph(n: usize, k: usize, seed: u64) -> Graph {
        generators::random_regular(n, k, &mut seeded_rng(seed)).unwrap()
    }

    #[test]
    fn masked_intra_shard_schedule_degenerates_and_conserves() {
        let g = test_graph(60, 4, 30);
        let p = Partition::new(&g, 3).unwrap();
        let base = IntraShardTransition::new(&g, &p, 0.1).unwrap();
        // All-available schedule: bitwise the unmasked operator per round.
        let all_up = vec![vec![true; 60]; 4];
        let schedule = base.clone().availability_schedule(&all_up).unwrap();
        let mut plain = crate::ensemble::DistributionEnsemble::point_masses(60, &[0, 7]).unwrap();
        let mut masked = crate::ensemble::DistributionEnsemble::point_masses(60, &[0, 7]).unwrap();
        plain.advance(&base, 4);
        masked.advance(&schedule, 4);
        assert_eq!(plain, masked);
        // A real mask conserves mass, never delivers to dark nodes and
        // never crosses the cut.
        let mask: Vec<bool> = (0..60).map(|u| u % 3 != 1).collect();
        let schedule = base
            .clone()
            .availability_schedule(std::slice::from_ref(&mask))
            .unwrap();
        let origin = 5;
        let mut p0 = vec![0.0; 60];
        p0[origin] = 1.0;
        let mut out = vec![0.0; 60];
        TransitionModel::propagate_into(schedule.operator(0), &p0, &mut out);
        assert!((out.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        let home = p.shard_of(origin);
        for (j, &mass) in out.iter().enumerate() {
            if j != origin && mass > 0.0 {
                assert!(mask[j], "delivered to dark node {j}");
                assert_eq!(p.shard_of(j), home, "crossed the cut to {j}");
            }
        }
        // Ragged masks are rejected.
        assert!(base
            .clone()
            .availability_schedule(&[vec![true; 59]])
            .is_err());
        assert!(base.availability_schedule(&[]).is_err());
    }

    #[test]
    fn construction_validates_inputs() {
        let empty = Graph::from_edges(0, &[]).unwrap();
        assert!(Partition::new(&empty, 1).is_err());
        assert!(Partition::single_shard(&empty).is_err());
        let g = test_graph(40, 4, 1);
        assert!(Partition::new(&g, 0).is_err());
        assert!(Partition::new(&g, 41).is_err());
        assert!(Partition::from_assignment(&g, 2, vec![0; 39]).is_err());
        assert!(Partition::from_assignment(&g, 2, vec![2; 40]).is_err());
        // A shard may not be empty.
        assert!(Partition::from_assignment(&g, 2, vec![0; 40]).is_err());
    }

    #[test]
    fn every_node_lands_in_exactly_one_shard() {
        let g = test_graph(200, 6, 2);
        for k in [1, 2, 3, 7] {
            let p = Partition::new(&g, k).unwrap();
            assert_eq!(p.shard_count(), k);
            let mut seen = [false; 200];
            for (s, shard) in p.shards().iter().enumerate() {
                for (local, &u) in shard.nodes().iter().enumerate() {
                    assert!(!seen[u], "node {u} appears twice");
                    seen[u] = true;
                    assert_eq!(p.shard_of(u), s);
                    assert_eq!(p.local_of(u), local);
                    assert_eq!(shard.global_of(local), u);
                }
            }
            assert!(seen.iter().all(|&b| b));
            assert_eq!(p.shard_sizes().iter().sum::<usize>(), 200);
        }
    }

    #[test]
    fn single_shard_is_the_identity_partition() {
        let g = test_graph(60, 4, 3);
        let p = Partition::single_shard(&g).unwrap();
        assert_eq!(p.shard_count(), 1);
        assert_eq!(p.cut_edge_count(), 0);
        assert_eq!(p.edge_cut_fraction(), 0.0);
        assert_eq!(p.max_shard_imbalance(), 1.0);
        let shard = p.shard(0);
        assert_eq!(shard.nodes(), (0..60).collect::<Vec<_>>().as_slice());
        assert!(shard.frontier().is_empty());
        assert_eq!(shard.local_graph(), &g);
    }

    #[test]
    fn frontier_tables_are_symmetric_and_count_the_cut() {
        let g = test_graph(150, 6, 4);
        let p = Partition::new(&g, 4).unwrap();
        let mut incidences = 0usize;
        for (s, shard) in p.shards().iter().enumerate() {
            for e in shard.frontier() {
                incidences += 1;
                assert_ne!(e.peer_shard, s);
                let mirror = FrontierEdge {
                    local_node: e.peer_local,
                    peer_shard: s,
                    peer_local: e.local_node,
                };
                assert!(
                    p.shard(e.peer_shard).frontier().contains(&mirror),
                    "missing mirror of {e:?} in shard {}",
                    e.peer_shard
                );
                // The underlying global edge exists.
                let u = shard.global_of(e.local_node);
                let v = p.shard(e.peer_shard).global_of(e.peer_local);
                assert!(g.has_edge(u, v));
            }
        }
        // Each cut edge contributes one incidence per side.
        assert_eq!(incidences, 2 * p.cut_edge_count());
        assert!(p.edge_cut_fraction() > 0.0 && p.edge_cut_fraction() < 1.0);
    }

    #[test]
    fn shard_csrs_and_frontiers_reassemble_the_graph() {
        let g = generators::barabasi_albert(120, 3, &mut seeded_rng(5)).unwrap();
        let p = Partition::new(&g, 3).unwrap();
        let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
        for shard in p.shards() {
            for (lu, lv) in shard.local_graph().edges() {
                edges.push((shard.global_of(lu), shard.global_of(lv)));
            }
            for e in shard.frontier() {
                let u = shard.global_of(e.local_node);
                let v = p.shard(e.peer_shard).global_of(e.peer_local);
                if u < v {
                    edges.push((u, v));
                }
            }
        }
        let rebuilt = Graph::from_edges(g.node_count(), &edges).unwrap();
        assert_eq!(rebuilt, g);
    }

    #[test]
    fn partitioning_is_deterministic_and_reasonably_balanced() {
        let g = test_graph(400, 8, 6);
        let a = Partition::new(&g, 5).unwrap();
        let b = Partition::new(&g, 5).unwrap();
        assert_eq!(a.shard_of, b.shard_of);
        assert!(
            a.max_shard_imbalance() < 1.8,
            "imbalance = {}",
            a.max_shard_imbalance()
        );
        for shard in a.shards() {
            assert!(!shard.is_empty());
        }
    }

    #[test]
    fn refinement_does_not_beat_communities_apart() {
        // A planted 4-community graph: the partitioner should recover a cut
        // far below the random-assignment expectation of 1 - 1/k.
        let g = generators::stochastic_block_model(240, 4, 0.25, 0.01, &mut seeded_rng(7)).unwrap();
        let g = crate::connectivity::largest_connected_component(&g).0;
        let p = Partition::new(&g, 4).unwrap();
        assert!(
            p.edge_cut_fraction() < 0.4,
            "cut fraction = {}",
            p.edge_cut_fraction()
        );
    }

    #[test]
    fn intra_shard_transition_conserves_mass_and_respects_the_cut() {
        let g = test_graph(100, 6, 8);
        let p = Partition::new(&g, 4).unwrap();
        let model = IntraShardTransition::new(&g, &p, 0.1).unwrap();
        let origin = 17;
        let mut dist = vec![0.0; 100];
        dist[origin] = 1.0;
        let mut out = vec![0.0; 100];
        for _ in 0..25 {
            model.propagate_into(&dist, &mut out);
            std::mem::swap(&mut dist, &mut out);
        }
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Mass never escapes the origin's shard.
        let home = p.shard_of(origin);
        for (u, &mass) in dist.iter().enumerate() {
            if p.shard_of(u) != home {
                assert_eq!(mass, 0.0, "mass leaked to node {u}");
            }
        }
    }

    #[test]
    fn intra_shard_transition_with_one_shard_matches_the_matrix() {
        let g = test_graph(80, 4, 9);
        let p = Partition::single_shard(&g).unwrap();
        let restricted = IntraShardTransition::new(&g, &p, 0.2).unwrap();
        let full = crate::transition::TransitionMatrix::with_laziness(&g, 0.2).unwrap();
        let mut dist = vec![1.0 / 80.0; 80];
        dist[0] += 0.5;
        dist[1] -= 0.5;
        let mut a = vec![0.0; 80];
        let mut b = vec![0.0; 80];
        restricted.propagate_into(&dist, &mut a);
        full.propagate_into(&dist, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn intra_shard_transition_validates() {
        let g = test_graph(50, 4, 10);
        let other = test_graph(40, 4, 11);
        let p = Partition::new(&g, 2).unwrap();
        assert!(IntraShardTransition::new(&other, &p, 0.0).is_err());
        assert!(IntraShardTransition::new(&g, &p, 1.0).is_err());
    }
}
