//! Golden-figure regression tests: small-n variants of the Figure 4 and
//! Figure 6 computations are regenerated inside `cargo test` and compared
//! **bit for bit** against checked-in CSVs, so accountant refactors cannot
//! silently shift the paper outputs.
//!
//! The variants run at [`FigScale::Reduced`]`(40)` — every dataset divided
//! as far as its Chung–Lu calibration allows (`max_reduced_divisor`),
//! independent of the `NS_BENCH_SCALE` environment override — and the whole
//! pipeline is deterministic: seeded generators, deterministic spectral
//! iteration and closed-form accounting, in both feature configurations.
//!
//! To regenerate after an *intentional* change, write
//! `fig4_table(FigScale::Reduced(40)).csv_string()` (and the fig6
//! equivalent) over the files in `tests/golden/` and review the diff.

use ns_bench::{fig4_table, fig6_table, FigScale};

/// Line-by-line comparison so a drift points at the first diverging row
/// instead of dumping two whole CSVs.
fn assert_csv_matches(actual: &str, golden: &str, name: &str) {
    for (line, (a, g)) in actual.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            a,
            g,
            "{name}: line {} diverged from the golden CSV",
            line + 1
        );
    }
    assert_eq!(
        actual.lines().count(),
        golden.lines().count(),
        "{name}: row count diverged from the golden CSV"
    );
}

#[test]
fn fig4_small_scale_matches_golden_csv() {
    let table = fig4_table(FigScale::Reduced(40));
    assert_csv_matches(
        &table.csv_string(),
        include_str!("golden/fig4_reduced40.csv"),
        "fig4",
    );
}

#[test]
fn fig6_small_scale_matches_golden_csv() {
    let table = fig6_table(FigScale::Reduced(40));
    assert_csv_matches(
        &table.csv_string(),
        include_str!("golden/fig6_reduced40.csv"),
        "fig6",
    );
}
