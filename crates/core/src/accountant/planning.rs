//! Deployment planning: inverting the privacy accountant.
//!
//! The theorems answer "given ε₀ and `t` rounds, what central ε do I get?".
//! A deployment usually asks the converse questions:
//!
//! * *How many rounds do I need before the guarantee stops improving?*
//!   ([`rounds_for_target_epsilon`])
//! * *How much local noise (ε₀) must users add so that the collection meets a
//!   central (ε, δ) target?* ([`epsilon_0_for_central_target`])
//!
//! Both are answered by searching over the monotone closed forms of
//! Theorems 5.3–5.6, so the answers inherit their worst-case nature: they are
//! sufficient, not necessarily minimal.

use crate::accountant::closed_form::{
    all_protocol_epsilon, single_protocol_epsilon, AccountantParams,
};
use crate::accountant::graph_accountant::{NetworkShuffleAccountant, Scenario};
use crate::error::{Error, Result};
use crate::protocol::ProtocolKind;

/// Largest ε₀ considered by the calibration search; randomizers weaker than
/// this provide essentially no local privacy and the search refuses to go
/// further.
const EPSILON_0_SEARCH_MAX: f64 = 16.0;

/// The smallest number of rounds `t` at which the accountant's central ε
/// drops to within `tolerance` (relative) of its asymptotic value, i.e. the
/// point where extra communication stops buying privacy.
///
/// The knee is searched along the curve of the given `scenario`, so the
/// same planner answers the worst-case question (`Scenario::Stationary`)
/// and the exact per-user one (`Scenario::Exact`, whose whole curve costs a
/// single tracked ensemble pass).
///
/// The asymptote the knee is measured against is scenario-specific.  For
/// the stationary bound it is evaluated in closed form far past the mixing
/// time.  The exact scenarios do *not* generally converge to the
/// `ρ* = 1` stationary value (on an irregular graph the `A_all` worst-user
/// ε stays inflated by the stationary support ratio forever), so their
/// asymptote is the tail of the sweep itself — callers should pass a
/// `max_rounds` comfortably past the mixing time for the knee to be
/// meaningful.
///
/// Returns `(rounds, epsilon_at_rounds)`.  The search is capped at
/// `max_rounds`; if even `max_rounds` rounds do not reach the tolerance the
/// cap and its ε are returned.
///
/// # Errors
///
/// Propagates accountant errors (mismatched `n`, non-ergodic graph, …).
pub fn rounds_for_target_epsilon(
    accountant: &NetworkShuffleAccountant,
    protocol: ProtocolKind,
    scenario: Scenario,
    params: &AccountantParams,
    tolerance: f64,
    max_rounds: usize,
) -> Result<(usize, f64)> {
    if !(tolerance.is_finite() && tolerance > 0.0) {
        return Err(Error::InvalidConfiguration(format!(
            "tolerance must be positive, got {tolerance}"
        )));
    }
    let max_rounds = max_rounds.max(1);
    let sweep = accountant.epsilon_vs_rounds(protocol, scenario, params, max_rounds)?;
    let asymptote = match scenario {
        Scenario::Stationary => {
            // Evaluate the closed form at a round count far past the
            // mixing time.
            let horizon = accountant
                .mixing_time()
                .saturating_mul(4)
                .clamp(max_rounds, usize::MAX);
            accountant
                .central_guarantee(
                    protocol,
                    Scenario::Stationary,
                    params,
                    horizon.min(1_000_000),
                )?
                .epsilon
        }
        // The exact curves settle wherever their own tail settles; reuse
        // the pass instead of paying another ensemble evolution.
        Scenario::Symmetric { .. } | Scenario::Exact => {
            sweep.last().map(|&(_, eps)| eps).unwrap_or(f64::NAN)
        }
    };

    for (t, eps) in &sweep {
        if (eps - asymptote) / asymptote <= tolerance {
            return Ok((*t, *eps));
        }
    }
    Ok(sweep
        .last()
        .map(|&(t, eps)| (t, eps))
        .unwrap_or((max_rounds, asymptote)))
}

/// The largest local ε₀ such that the central guarantee after `rounds`
/// rounds stays at or below `target_epsilon` (with the δs of `template`).
///
/// Larger ε₀ means less local noise and better utility, so this is the
/// calibration a deployment wants: "spend as little local noise as the
/// central target allows".  Returns `None` if even an extremely small ε₀
/// (10⁻⁴) cannot meet the target — e.g. a tiny population with an ambitious
/// target.
///
/// # Errors
///
/// Propagates closed-form validation errors.
pub fn epsilon_0_for_central_target(
    template: &AccountantParams,
    protocol: ProtocolKind,
    sum_p_squared: f64,
    rho_star: f64,
    target_epsilon: f64,
) -> Result<Option<f64>> {
    if !(target_epsilon.is_finite() && target_epsilon > 0.0) {
        return Err(Error::InvalidConfiguration(format!(
            "target epsilon must be positive, got {target_epsilon}"
        )));
    }
    let central_at = |eps0: f64| -> Result<f64> {
        let params = AccountantParams::new(template.n, eps0, template.delta, template.delta_2)?;
        let guarantee = match protocol {
            ProtocolKind::All => all_protocol_epsilon(&params, sum_p_squared, rho_star)?,
            ProtocolKind::Single => single_protocol_epsilon(&params, sum_p_squared)?,
        };
        Ok(guarantee.epsilon)
    };

    let mut lo = 1e-4;
    if central_at(lo)? > target_epsilon {
        return Ok(None);
    }
    // Exponential search for an upper bracket, then bisection.
    let mut hi = lo;
    while hi < EPSILON_0_SEARCH_MAX && central_at(hi)? <= target_epsilon {
        lo = hi;
        hi *= 2.0;
    }
    if hi >= EPSILON_0_SEARCH_MAX && central_at(EPSILON_0_SEARCH_MAX)? <= target_epsilon {
        return Ok(Some(EPSILON_0_SEARCH_MAX));
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if central_at(mid)? <= target_epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(lo))
}

/// Convenience wrapper of [`epsilon_0_for_central_target`] that reads the
/// mixing quantities from a graph-bound accountant at its mixing time under
/// the given scenario.
///
/// With [`Scenario::Exact`], one ensemble pass supplies every origin's
/// moments and the calibration targets the actual worst user's pair — the
/// origin maximizing the protocol's ε (for `A_single` that is the largest
/// `Σ P²`; for `A_all` the largest `ρ*² · Σ P²`, the quantity `ε₁` is
/// monotone in — both orderings independent of ε₀).  The result is
/// consistent with `central_guarantee(protocol, Scenario::Exact, …)`:
/// running at the returned ε₀ meets the target exactly, with no hidden
/// slack from mixing moments of different origins.
///
/// # Errors
///
/// Propagates accountant errors.
pub fn epsilon_0_for_central_target_on_graph(
    accountant: &NetworkShuffleAccountant,
    template: &AccountantParams,
    protocol: ProtocolKind,
    scenario: Scenario,
    target_epsilon: f64,
) -> Result<Option<f64>> {
    let t = accountant.mixing_time();
    if t == usize::MAX {
        return Err(Error::InvalidConfiguration(
            "the walk does not mix (zero spectral gap); add laziness".into(),
        ));
    }
    let (sum_sq, rho) = match scenario {
        Scenario::Exact => {
            let moments = accountant.exact_moments(t)?;
            let worst = moments
                .iter()
                .max_by(|a, b| {
                    let key = |m: &ns_graph::ensemble::RowStats| match protocol {
                        ProtocolKind::All => m.support_ratio * m.support_ratio * m.sum_of_squares,
                        ProtocolKind::Single => m.sum_of_squares,
                    };
                    key(a).total_cmp(&key(b))
                })
                .expect("accountants require n >= 2");
            (worst.sum_of_squares, worst.support_ratio)
        }
        _ => accountant.sum_p_squared(scenario, t)?,
    };
    epsilon_0_for_central_target(template, protocol, sum_sq, rho, target_epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_graph::generators::random_regular;
    use ns_graph::rng::seeded_rng;

    fn accountant(n: usize, k: usize) -> NetworkShuffleAccountant {
        let graph = random_regular(n, k, &mut seeded_rng(42)).unwrap();
        NetworkShuffleAccountant::new(&graph).unwrap()
    }

    #[test]
    fn rounds_search_finds_the_knee() {
        let acc = accountant(2_000, 8);
        let params = AccountantParams::with_defaults(2_000, 1.0).unwrap();
        let (rounds, eps) = rounds_for_target_epsilon(
            &acc,
            ProtocolKind::Single,
            Scenario::Stationary,
            &params,
            0.01,
            500,
        )
        .unwrap();
        // The knee should be in the same ballpark as the mixing time, and
        // never after it.
        assert!(rounds <= acc.mixing_time());
        assert!(rounds >= acc.mixing_time() / 4);
        // The epsilon at the knee matches the direct accountant evaluation.
        let direct = acc
            .central_guarantee(ProtocolKind::Single, Scenario::Stationary, &params, rounds)
            .unwrap();
        assert!((eps - direct.epsilon).abs() < 1e-12);
    }

    #[test]
    fn rounds_search_respects_the_cap_and_validates_tolerance() {
        let acc = accountant(2_000, 8);
        let params = AccountantParams::with_defaults(2_000, 1.0).unwrap();
        let (rounds, _) = rounds_for_target_epsilon(
            &acc,
            ProtocolKind::All,
            Scenario::Stationary,
            &params,
            1e-9,
            3,
        )
        .unwrap();
        assert_eq!(rounds, 3);
        assert!(rounds_for_target_epsilon(
            &acc,
            ProtocolKind::All,
            Scenario::Stationary,
            &params,
            0.0,
            10
        )
        .is_err());
    }

    #[test]
    fn exact_scenario_knee_is_no_later_than_the_stationary_one() {
        // The exact worst-user curve sits at or below the worst-case bound
        // once the walk mixes, so its knee cannot come later.
        let acc = accountant(400, 8);
        let params = AccountantParams::with_defaults(400, 1.0).unwrap();
        let (exact_rounds, exact_eps) = rounds_for_target_epsilon(
            &acc,
            ProtocolKind::Single,
            Scenario::Exact,
            &params,
            0.02,
            300,
        )
        .unwrap();
        let (bound_rounds, bound_eps) = rounds_for_target_epsilon(
            &acc,
            ProtocolKind::Single,
            Scenario::Stationary,
            &params,
            0.02,
            300,
        )
        .unwrap();
        assert!(
            exact_rounds <= bound_rounds,
            "exact knee {exact_rounds} after stationary knee {bound_rounds}"
        );
        assert!(exact_eps <= bound_eps * 1.05);
    }

    #[test]
    fn epsilon_0_calibration_meets_the_target() {
        let template = AccountantParams::with_defaults(100_000, 1.0).unwrap();
        let sum_p_sq = 2.0 / 100_000.0;
        for &target in &[0.1f64, 0.5, 1.0] {
            let eps0 = epsilon_0_for_central_target(
                &template,
                ProtocolKind::Single,
                sum_p_sq,
                1.0,
                target,
            )
            .unwrap()
            .expect("target should be reachable");
            let params = AccountantParams::new(100_000, eps0, 1e-6, 1e-6).unwrap();
            let achieved = single_protocol_epsilon(&params, sum_p_sq).unwrap().epsilon;
            assert!(
                achieved <= target * (1.0 + 1e-6),
                "achieved {achieved} vs target {target}"
            );
            // Maximality: 5% more local budget would overshoot the target.
            let params_over = AccountantParams::new(100_000, eps0 * 1.05, 1e-6, 1e-6).unwrap();
            let over = single_protocol_epsilon(&params_over, sum_p_sq)
                .unwrap()
                .epsilon;
            assert!(
                over > target,
                "calibration is not tight: {over} <= {target}"
            );
        }
    }

    #[test]
    fn epsilon_0_calibration_reports_unreachable_targets() {
        // A tiny population cannot reach an aggressive central target under
        // A_all: the concentration term alone exceeds it.
        let template = AccountantParams::with_defaults(200, 1.0).unwrap();
        let result =
            epsilon_0_for_central_target(&template, ProtocolKind::All, 1.0 / 200.0, 1.0, 1e-4)
                .unwrap();
        assert!(result.is_none());
        // Invalid targets are rejected.
        assert!(
            epsilon_0_for_central_target(&template, ProtocolKind::All, 0.005, 1.0, 0.0).is_err()
        );
    }

    #[test]
    fn calibration_on_graph_matches_manual_route() {
        let acc = accountant(3_000, 10);
        let template = AccountantParams::with_defaults(3_000, 1.0).unwrap();
        let via_graph = epsilon_0_for_central_target_on_graph(
            &acc,
            &template,
            ProtocolKind::Single,
            Scenario::Stationary,
            0.5,
        )
        .unwrap()
        .expect("reachable");
        let (sum_sq, rho) = acc
            .sum_p_squared(Scenario::Stationary, acc.mixing_time())
            .unwrap();
        let manual =
            epsilon_0_for_central_target(&template, ProtocolKind::Single, sum_sq, rho, 0.5)
                .unwrap()
                .expect("reachable");
        assert!((via_graph - manual).abs() < 1e-9);
        assert!(
            via_graph > 0.5,
            "amplification should allow eps0 above the central target"
        );
    }

    #[test]
    fn exact_all_knee_is_found_on_irregular_graphs() {
        // Regression: the A_all worst-user epsilon on an irregular graph
        // converges to a rho*-inflated value strictly above the rho* = 1
        // stationary asymptote, so measuring the exact sweep against the
        // stationary value never terminated and the search returned the
        // cap.  With the scenario-consistent (sweep-tail) asymptote the
        // knee lands near the mixing time.
        let weights: Vec<f64> = (0..400).map(|i| 3.0 + (i % 7) as f64).collect();
        let graph = ns_graph::connectivity::largest_connected_component(
            &ns_graph::generators::chung_lu(&weights, &mut seeded_rng(5)).unwrap(),
        )
        .0;
        let acc = NetworkShuffleAccountant::new(&graph).unwrap();
        let params = AccountantParams::with_defaults(acc.node_count(), 1.0).unwrap();
        let max_rounds = 20 * acc.mixing_time();
        let (rounds, eps) = rounds_for_target_epsilon(
            &acc,
            ProtocolKind::All,
            Scenario::Exact,
            &params,
            0.01,
            max_rounds,
        )
        .unwrap();
        assert!(
            rounds < max_rounds,
            "knee search hit the cap ({rounds} rounds, eps {eps})"
        );
        assert!(
            rounds <= 2 * acc.mixing_time(),
            "knee {rounds} far beyond the mixing time {}",
            acc.mixing_time()
        );
        assert!(eps.is_finite() && eps > 0.0);
    }

    #[test]
    fn exact_calibration_is_consistent_with_the_exact_guarantee() {
        // Calibrating under Scenario::Exact must target the true worst
        // user: running at the returned eps0 meets the target through
        // central_guarantee(Exact) with no hidden slack, and 5% more local
        // budget overshoots.
        let graph = ns_graph::generators::two_degree_class(60, 6, 10).unwrap();
        let acc = NetworkShuffleAccountant::new(&graph).unwrap();
        let n = acc.node_count();
        let template = AccountantParams::with_defaults(n, 1.0).unwrap();
        let target = 0.8;
        for protocol in [ProtocolKind::All, ProtocolKind::Single] {
            let eps0 = epsilon_0_for_central_target_on_graph(
                &acc,
                &template,
                protocol,
                Scenario::Exact,
                target,
            )
            .unwrap()
            .expect("reachable");
            let t = acc.mixing_time();
            let achieved = acc
                .central_guarantee(
                    protocol,
                    Scenario::Exact,
                    &AccountantParams::new(n, eps0, template.delta, template.delta_2).unwrap(),
                    t,
                )
                .unwrap()
                .epsilon;
            assert!(
                achieved <= target * (1.0 + 1e-6),
                "{protocol:?}: achieved {achieved} above target {target}"
            );
            let over = acc
                .central_guarantee(
                    protocol,
                    Scenario::Exact,
                    &AccountantParams::new(n, eps0 * 1.05, template.delta, template.delta_2)
                        .unwrap(),
                    t,
                )
                .unwrap()
                .epsilon;
            assert!(
                over > target,
                "{protocol:?}: calibration not tight ({over} <= {target})"
            );
        }
    }

    #[test]
    fn generous_targets_saturate_at_the_search_cap() {
        let template = AccountantParams::with_defaults(1_000_000, 1.0).unwrap();
        let eps0 = epsilon_0_for_central_target(
            &template,
            ProtocolKind::Single,
            1.0 / 1_000_000.0,
            1.0,
            1e23,
        )
        .unwrap()
        .expect("reachable");
        assert_eq!(eps0, EPSILON_0_SEARCH_MAX);
    }
}
