//! Length-prefixed, checksummed write-ahead log over page-granular segments.
//!
//! Record framing on disk:
//!
//! ```text
//! ┌──────────┬───────────────┬───────────────┐
//! │ u32 len  │ u32 crc32(p)  │ payload p ... │   repeated
//! └──────────┴───────────────┴───────────────┘
//! ```
//!
//! Frames are packed back to back and freely span page boundaries.  A frame
//! with `len == 0` and `crc == 0` is zero padding and reads as a clean end of
//! log (real payloads always carry at least a one-byte record tag, and the
//! CRC-32 of the empty string is 0).  The reader stops at the first frame
//! that does not fully check out and reports *why* — a torn tail
//! ([`TailStatus::Truncated`]) is silently expected after a crash, while a
//! checksum mismatch ([`TailStatus::Corrupt`]) stops replay at the last
//! valid record.

use crate::buffer::BufferPool;
use crate::checksum::crc32;
use crate::error::{Result, StoreError};
use crate::page::{SegmentFile, PAGE_SIZE};
use std::path::Path;

/// Upper bound on a single record's payload — anything larger is corruption,
/// not data.
pub const MAX_RECORD_LEN: u32 = 1 << 30;

/// How the log's tail ended during a scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailStatus {
    /// The log ends exactly at a frame boundary (or in zero padding).
    Clean,
    /// The final frame is incomplete — a torn write from a crash.  Expected;
    /// recovery drops it.
    Truncated,
    /// A complete frame failed its checksum — bytes were damaged in place.
    Corrupt,
}

/// The result of scanning a WAL from the start.
#[derive(Debug)]
pub struct WalScan {
    /// Every fully-valid record payload, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the valid prefix; the writer reopens (and truncates)
    /// at this offset.
    pub valid_len: u64,
    /// `(hits, misses, evictions)` of the page cache the scan read through —
    /// the telemetry layer's buffer-pool source.
    pub pool_stats: (u64, u64, u64),
    /// Why the scan stopped.
    pub tail: TailStatus,
}

/// Append-only WAL writer.  Appends buffer through an in-memory tail page
/// and are written through to the OS immediately; durability is only
/// guaranteed after [`WalWriter::sync`] (the group-commit point).
#[derive(Debug)]
pub struct WalWriter {
    segment: SegmentFile,
    /// The partially-filled last page of the log.
    tail: Box<[u8]>,
    /// Valid bytes in `tail`.
    tail_len: usize,
    /// Page number `tail` maps to.
    tail_page: u64,
}

impl WalWriter {
    /// Opens the log at `path`, truncating it to `valid_len` (as reported by
    /// [`scan_wal`]) so a torn tail is physically discarded before new
    /// appends land.
    ///
    /// # Errors
    ///
    /// I/O errors from open/truncate/read.
    pub fn open<P: AsRef<Path>>(path: P, valid_len: u64) -> Result<Self> {
        let mut segment = SegmentFile::open(path)?;
        segment.truncate(valid_len)?;
        let tail_page = valid_len / PAGE_SIZE as u64;
        let tail_len = (valid_len % PAGE_SIZE as u64) as usize;
        let mut tail = vec![0u8; PAGE_SIZE].into_boxed_slice();
        if tail_len > 0 {
            let got = segment.read_page(tail_page, &mut tail)?;
            if got < tail_len {
                return Err(StoreError::Corrupt(format!(
                    "wal tail page {tail_page} holds {got} bytes, expected at least {tail_len}"
                )));
            }
            tail[tail_len..].fill(0);
        }
        Ok(WalWriter {
            segment,
            tail,
            tail_len,
            tail_page,
        })
    }

    /// Logical byte length of the log (all appended frames).
    pub fn len(&self) -> u64 {
        self.tail_page * PAGE_SIZE as u64 + self.tail_len as u64
    }

    /// Whether no frame has ever been appended.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Appends one framed record.  The bytes reach the OS before this
    /// returns (WAL-before-state), but are only crash-durable after
    /// [`WalWriter::sync`].
    ///
    /// # Errors
    ///
    /// I/O errors from the page writes.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        assert!(
            payload.len() as u64 <= MAX_RECORD_LEN as u64,
            "record exceeds MAX_RECORD_LEN"
        );
        let len = (payload.len() as u32).to_le_bytes();
        let crc = crc32(payload).to_le_bytes();
        self.push(&len)?;
        self.push(&crc)?;
        self.push(payload)?;
        self.flush_tail()
    }

    /// Appends only the first `keep` bytes of the frame for `payload`,
    /// simulating the torn write a crash leaves behind.  Crash-injection
    /// hook for the recovery tests; not part of the durable API.
    ///
    /// # Errors
    ///
    /// I/O errors from the page writes.
    #[doc(hidden)]
    pub fn append_torn(&mut self, payload: &[u8], keep: usize) -> Result<()> {
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let keep = keep.min(frame.len());
        self.push(&frame[..keep])?;
        self.flush_tail()
    }

    /// Forces every appended frame to stable storage — the group-commit
    /// point.
    ///
    /// # Errors
    ///
    /// I/O errors from the sync.
    pub fn sync(&mut self) -> Result<()> {
        self.segment.sync()
    }

    /// Copies `bytes` into the log through the tail page, writing each page
    /// as it fills.
    fn push(&mut self, mut bytes: &[u8]) -> Result<()> {
        while !bytes.is_empty() {
            let room = PAGE_SIZE - self.tail_len;
            let take = room.min(bytes.len());
            self.tail[self.tail_len..self.tail_len + take].copy_from_slice(&bytes[..take]);
            self.tail_len += take;
            bytes = &bytes[take..];
            if self.tail_len == PAGE_SIZE {
                self.segment
                    .write_page(self.tail_page, &self.tail, PAGE_SIZE)?;
                self.tail_page += 1;
                self.tail_len = 0;
                self.tail.fill(0);
            }
        }
        Ok(())
    }

    /// Writes the partial tail page through to the OS.
    fn flush_tail(&mut self) -> Result<()> {
        if self.tail_len > 0 {
            self.segment
                .write_page(self.tail_page, &self.tail, self.tail_len)?;
        }
        Ok(())
    }
}

/// Scans the WAL at `path` from the beginning, validating every frame.
///
/// # Errors
///
/// I/O errors from reading the segment.  Damaged *content* is not an error —
/// it ends the scan with the appropriate [`TailStatus`].
pub fn scan_wal<P: AsRef<Path>>(path: P) -> Result<WalScan> {
    let segment = SegmentFile::open(path)?;
    let mut pool = BufferPool::new(segment);
    let file_len = pool.segment().len()?;
    // Pull the log through the page cache into one contiguous buffer; WALs
    // here are small (one epoch of round records) and the scan happens once
    // per recovery.
    let mut bytes = Vec::with_capacity(file_len as usize);
    let mut page_no = 0u64;
    while (bytes.len() as u64) < file_len {
        let (page, valid) = pool.page(page_no)?;
        bytes.extend_from_slice(&page[..valid]);
        if valid < PAGE_SIZE {
            break;
        }
        page_no += 1;
    }
    let (hits, misses) = pool.stats();
    let pool_stats = (hits, misses, pool.evictions());
    let mut records = Vec::new();
    let mut offset = 0usize;
    let tail = loop {
        if offset == bytes.len() {
            break TailStatus::Clean;
        }
        if bytes.len() - offset < 8 {
            break TailStatus::Truncated;
        }
        let len = u32::from_le_bytes(bytes[offset..offset + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().unwrap());
        if len == 0 {
            // Zero padding: a clean end if the checksum word is also zero,
            // damage otherwise (no real record is empty — payloads always
            // carry a tag byte).
            break if crc == 0 {
                TailStatus::Clean
            } else {
                TailStatus::Corrupt
            };
        }
        if len > MAX_RECORD_LEN || (len as usize) > bytes.len() - offset - 8 {
            break if len > MAX_RECORD_LEN {
                TailStatus::Corrupt
            } else {
                TailStatus::Truncated
            };
        }
        let payload = &bytes[offset + 8..offset + 8 + len as usize];
        if crc32(payload) != crc {
            break TailStatus::Corrupt;
        }
        records.push(payload.to_vec());
        offset += 8 + len as usize;
    };
    Ok(WalScan {
        records,
        valid_len: offset as u64,
        pool_stats,
        tail,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("ns_store_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn append_scan_roundtrip_across_page_boundaries() {
        let path = temp_wal("roundtrip.bin");
        let mut wal = WalWriter::open(&path, 0).unwrap();
        assert!(wal.is_empty());
        let payloads: Vec<Vec<u8>> = (0..40u32)
            .map(|i| {
                let n = 1 + (i as usize * 97) % 700;
                (0..n).map(|j| (i as u8).wrapping_add(j as u8)).collect()
            })
            .collect();
        for p in &payloads {
            wal.append(p).unwrap();
        }
        wal.sync().unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.valid_len, wal.len());
        assert_eq!(scan.records, payloads);
    }

    #[test]
    fn reopen_at_valid_len_continues_the_log() {
        let path = temp_wal("reopen.bin");
        let mut wal = WalWriter::open(&path, 0).unwrap();
        wal.append(b"first").unwrap();
        wal.append(b"second").unwrap();
        wal.sync().unwrap();
        let scan = scan_wal(&path).unwrap();
        let mut wal = WalWriter::open(&path, scan.valid_len).unwrap();
        wal.append(b"third").unwrap();
        wal.sync().unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(
            scan.records,
            vec![b"first".to_vec(), b"second".to_vec(), b"third".to_vec()]
        );
    }

    #[test]
    fn torn_tail_is_truncated_and_dropped_on_reopen() {
        let path = temp_wal("torn.bin");
        let mut wal = WalWriter::open(&path, 0).unwrap();
        wal.append(b"kept").unwrap();
        let torn = vec![0x55u8; 300];
        for keep in [1usize, 7, 8, 9, 150] {
            wal.append_torn(&torn, keep).unwrap();
            wal.sync().unwrap();
            let scan = scan_wal(&path).unwrap();
            assert_eq!(scan.tail, TailStatus::Truncated, "keep={keep}");
            assert_eq!(scan.records, vec![b"kept".to_vec()]);
            // Reopening at valid_len discards the torn frame.
            wal = WalWriter::open(&path, scan.valid_len).unwrap();
        }
        wal.append(b"after").unwrap();
        wal.sync().unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.records, vec![b"kept".to_vec(), b"after".to_vec()]);
    }

    #[test]
    fn flipped_bit_is_caught_by_the_checksum() {
        let path = temp_wal("flip.bin");
        let mut wal = WalWriter::open(&path, 0).unwrap();
        wal.append(b"alpha").unwrap();
        wal.append(b"beta").unwrap();
        wal.sync().unwrap();
        // Flip one payload bit of the second record on disk.
        let mut raw = std::fs::read(&path).unwrap();
        let second_payload_at = 8 + 5 + 8;
        raw[second_payload_at] ^= 0x04;
        std::fs::write(&path, &raw).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.tail, TailStatus::Corrupt);
        assert_eq!(scan.records, vec![b"alpha".to_vec()]);
        assert_eq!(scan.valid_len, 8 + 5);
    }

    #[test]
    fn zero_padding_reads_as_clean_end() {
        let path = temp_wal("padding.bin");
        let mut wal = WalWriter::open(&path, 0).unwrap();
        wal.append(b"only").unwrap();
        wal.sync().unwrap();
        let valid = wal.len();
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&[0u8; 64]);
        std::fs::write(&path, &raw).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.tail, TailStatus::Clean);
        assert_eq!(scan.valid_len, valid);
        assert_eq!(scan.records, vec![b"only".to_vec()]);
    }

    #[test]
    fn absurd_length_is_corrupt_not_an_allocation() {
        let path = temp_wal("absurd.bin");
        let mut wal = WalWriter::open(&path, 0).unwrap();
        wal.append(b"ok").unwrap();
        wal.sync().unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.extend_from_slice(&[0u8; 12]);
        std::fs::write(&path, &raw).unwrap();
        let scan = scan_wal(&path).unwrap();
        assert_eq!(scan.tail, TailStatus::Corrupt);
        assert_eq!(scan.records, vec![b"ok".to_vec()]);
    }
}
