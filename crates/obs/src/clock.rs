//! The pluggable time source behind span timers.
//!
//! Telemetry must be testable deterministically: a span timer's recorded
//! duration is the only place wall-clock time enters the metric stream,
//! so the clock is a value the caller picks — the real monotonic clock
//! in production, a manually advanced [`FakeClock`] in tests.  Cloning a
//! clock is cheap (an `Arc` bump at most) and reading it never
//! allocates.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Process-relative epoch for the monotonic clock.  All monotonic
/// readings share one base so timestamps from different components are
/// comparable within a run.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// A nanosecond time source: real monotonic time or a deterministic
/// fake.
#[derive(Clone, Debug, Default)]
pub enum Clock {
    /// `Instant`-backed monotonic time, relative to the first reading in
    /// the process.
    #[default]
    Monotonic,
    /// A manually advanced counter, shared with the [`FakeClock`] handle
    /// that drives it.
    Fake(Arc<AtomicU64>),
}

impl Clock {
    /// The production clock.
    pub fn monotonic() -> Self {
        Clock::Monotonic
    }

    /// A deterministic clock plus the handle that advances it.  Fresh
    /// clocks read 0 until advanced.
    pub fn fake() -> (Self, FakeClock) {
        let ticks = Arc::new(AtomicU64::new(0));
        (Clock::Fake(Arc::clone(&ticks)), FakeClock { ticks })
    }

    /// Current reading in nanoseconds.  Never allocates.
    pub fn now_ns(&self) -> u64 {
        match self {
            Clock::Monotonic => epoch().elapsed().as_nanos() as u64,
            Clock::Fake(ticks) => ticks.load(Ordering::Relaxed),
        }
    }
}

/// The driver handle of a fake clock: tests advance time explicitly, so
/// every span duration they produce is a fixed function of the test.
#[derive(Clone, Debug)]
pub struct FakeClock {
    ticks: Arc<AtomicU64>,
}

impl FakeClock {
    /// Advances the clock by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.ticks.fetch_add(ns, Ordering::Relaxed);
    }

    /// Sets the clock to an absolute reading.
    pub fn set_ns(&self, ns: u64) {
        self.ticks.store(ns, Ordering::Relaxed);
    }

    /// Current reading in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ticks.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_clock_is_deterministic() {
        let (clock, driver) = Clock::fake();
        assert_eq!(clock.now_ns(), 0);
        driver.advance_ns(250);
        assert_eq!(clock.now_ns(), 250);
        driver.set_ns(7);
        assert_eq!(clock.now_ns(), 7);
        // Clones observe the same stream.
        let twin = clock.clone();
        driver.advance_ns(3);
        assert_eq!(twin.now_ns(), 10);
    }

    #[test]
    fn monotonic_clock_does_not_go_backwards() {
        let clock = Clock::monotonic();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }
}
