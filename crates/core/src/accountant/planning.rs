//! Deployment planning: inverting the privacy accountant.
//!
//! The theorems answer "given ε₀ and `t` rounds, what central ε do I get?".
//! A deployment usually asks the converse questions:
//!
//! * *How many rounds do I need before the guarantee stops improving?*
//!   ([`rounds_for_target_epsilon`])
//! * *How much local noise (ε₀) must users add so that the collection meets a
//!   central (ε, δ) target?* ([`epsilon_0_for_central_target`])
//!
//! Both are answered by searching over the monotone closed forms of
//! Theorems 5.3–5.6, so the answers inherit their worst-case nature: they are
//! sufficient, not necessarily minimal.

use crate::accountant::closed_form::{
    all_protocol_epsilon, single_protocol_epsilon, AccountantParams,
};
use crate::accountant::graph_accountant::{NetworkShuffleAccountant, Scenario};
use crate::error::{Error, Result};
use crate::protocol::ProtocolKind;

/// Largest ε₀ considered by the calibration search; randomizers weaker than
/// this provide essentially no local privacy and the search refuses to go
/// further.
const EPSILON_0_SEARCH_MAX: f64 = 16.0;

/// The smallest number of rounds `t` at which the accountant's central ε
/// drops to within `tolerance` (relative) of its asymptotic value, i.e. the
/// point where extra communication stops buying privacy.
///
/// Returns `(rounds, epsilon_at_rounds)`.  The search is capped at
/// `max_rounds`; if even `max_rounds` rounds do not reach the tolerance the
/// cap and its ε are returned.
///
/// # Errors
///
/// Propagates accountant errors (mismatched `n`, non-ergodic graph, …).
pub fn rounds_for_target_epsilon(
    accountant: &NetworkShuffleAccountant,
    protocol: ProtocolKind,
    params: &AccountantParams,
    tolerance: f64,
    max_rounds: usize,
) -> Result<(usize, f64)> {
    if !(tolerance.is_finite() && tolerance > 0.0) {
        return Err(Error::InvalidConfiguration(format!(
            "tolerance must be positive, got {tolerance}"
        )));
    }
    let max_rounds = max_rounds.max(1);
    // Asymptotic value: evaluate at a round count far past the mixing time.
    let horizon = accountant
        .mixing_time()
        .saturating_mul(4)
        .clamp(max_rounds, usize::MAX);
    let asymptote = accountant
        .central_guarantee(
            protocol,
            Scenario::Stationary,
            params,
            horizon.min(1_000_000),
        )?
        .epsilon;

    let sweep = accountant.epsilon_vs_rounds(protocol, Scenario::Stationary, params, max_rounds)?;
    for (t, eps) in &sweep {
        if (eps - asymptote) / asymptote <= tolerance {
            return Ok((*t, *eps));
        }
    }
    Ok(sweep
        .last()
        .map(|&(t, eps)| (t, eps))
        .unwrap_or((max_rounds, asymptote)))
}

/// The largest local ε₀ such that the central guarantee after `rounds`
/// rounds stays at or below `target_epsilon` (with the δs of `template`).
///
/// Larger ε₀ means less local noise and better utility, so this is the
/// calibration a deployment wants: "spend as little local noise as the
/// central target allows".  Returns `None` if even an extremely small ε₀
/// (10⁻⁴) cannot meet the target — e.g. a tiny population with an ambitious
/// target.
///
/// # Errors
///
/// Propagates closed-form validation errors.
pub fn epsilon_0_for_central_target(
    template: &AccountantParams,
    protocol: ProtocolKind,
    sum_p_squared: f64,
    rho_star: f64,
    target_epsilon: f64,
) -> Result<Option<f64>> {
    if !(target_epsilon.is_finite() && target_epsilon > 0.0) {
        return Err(Error::InvalidConfiguration(format!(
            "target epsilon must be positive, got {target_epsilon}"
        )));
    }
    let central_at = |eps0: f64| -> Result<f64> {
        let params = AccountantParams::new(template.n, eps0, template.delta, template.delta_2)?;
        let guarantee = match protocol {
            ProtocolKind::All => all_protocol_epsilon(&params, sum_p_squared, rho_star)?,
            ProtocolKind::Single => single_protocol_epsilon(&params, sum_p_squared)?,
        };
        Ok(guarantee.epsilon)
    };

    let mut lo = 1e-4;
    if central_at(lo)? > target_epsilon {
        return Ok(None);
    }
    // Exponential search for an upper bracket, then bisection.
    let mut hi = lo;
    while hi < EPSILON_0_SEARCH_MAX && central_at(hi)? <= target_epsilon {
        lo = hi;
        hi *= 2.0;
    }
    if hi >= EPSILON_0_SEARCH_MAX && central_at(EPSILON_0_SEARCH_MAX)? <= target_epsilon {
        return Ok(Some(EPSILON_0_SEARCH_MAX));
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if central_at(mid)? <= target_epsilon {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Some(lo))
}

/// Convenience wrapper of [`epsilon_0_for_central_target`] that reads the
/// mixing quantities from a graph-bound accountant at its mixing time.
///
/// # Errors
///
/// Propagates accountant errors.
pub fn epsilon_0_for_central_target_on_graph(
    accountant: &NetworkShuffleAccountant,
    template: &AccountantParams,
    protocol: ProtocolKind,
    target_epsilon: f64,
) -> Result<Option<f64>> {
    let t = accountant.mixing_time();
    if t == usize::MAX {
        return Err(Error::InvalidConfiguration(
            "the walk does not mix (zero spectral gap); add laziness".into(),
        ));
    }
    let (sum_sq, rho) = accountant.sum_p_squared(Scenario::Stationary, t)?;
    epsilon_0_for_central_target(template, protocol, sum_sq, rho, target_epsilon)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_graph::generators::random_regular;
    use ns_graph::rng::seeded_rng;

    fn accountant(n: usize, k: usize) -> NetworkShuffleAccountant {
        let graph = random_regular(n, k, &mut seeded_rng(42)).unwrap();
        NetworkShuffleAccountant::new(&graph).unwrap()
    }

    #[test]
    fn rounds_search_finds_the_knee() {
        let acc = accountant(2_000, 8);
        let params = AccountantParams::with_defaults(2_000, 1.0).unwrap();
        let (rounds, eps) =
            rounds_for_target_epsilon(&acc, ProtocolKind::Single, &params, 0.01, 500).unwrap();
        // The knee should be in the same ballpark as the mixing time, and
        // never after it.
        assert!(rounds <= acc.mixing_time());
        assert!(rounds >= acc.mixing_time() / 4);
        // The epsilon at the knee matches the direct accountant evaluation.
        let direct = acc
            .central_guarantee(ProtocolKind::Single, Scenario::Stationary, &params, rounds)
            .unwrap();
        assert!((eps - direct.epsilon).abs() < 1e-12);
    }

    #[test]
    fn rounds_search_respects_the_cap_and_validates_tolerance() {
        let acc = accountant(2_000, 8);
        let params = AccountantParams::with_defaults(2_000, 1.0).unwrap();
        let (rounds, _) =
            rounds_for_target_epsilon(&acc, ProtocolKind::All, &params, 1e-9, 3).unwrap();
        assert_eq!(rounds, 3);
        assert!(rounds_for_target_epsilon(&acc, ProtocolKind::All, &params, 0.0, 10).is_err());
    }

    #[test]
    fn epsilon_0_calibration_meets_the_target() {
        let template = AccountantParams::with_defaults(100_000, 1.0).unwrap();
        let sum_p_sq = 2.0 / 100_000.0;
        for &target in &[0.1f64, 0.5, 1.0] {
            let eps0 = epsilon_0_for_central_target(
                &template,
                ProtocolKind::Single,
                sum_p_sq,
                1.0,
                target,
            )
            .unwrap()
            .expect("target should be reachable");
            let params = AccountantParams::new(100_000, eps0, 1e-6, 1e-6).unwrap();
            let achieved = single_protocol_epsilon(&params, sum_p_sq).unwrap().epsilon;
            assert!(
                achieved <= target * (1.0 + 1e-6),
                "achieved {achieved} vs target {target}"
            );
            // Maximality: 5% more local budget would overshoot the target.
            let params_over = AccountantParams::new(100_000, eps0 * 1.05, 1e-6, 1e-6).unwrap();
            let over = single_protocol_epsilon(&params_over, sum_p_sq)
                .unwrap()
                .epsilon;
            assert!(
                over > target,
                "calibration is not tight: {over} <= {target}"
            );
        }
    }

    #[test]
    fn epsilon_0_calibration_reports_unreachable_targets() {
        // A tiny population cannot reach an aggressive central target under
        // A_all: the concentration term alone exceeds it.
        let template = AccountantParams::with_defaults(200, 1.0).unwrap();
        let result =
            epsilon_0_for_central_target(&template, ProtocolKind::All, 1.0 / 200.0, 1.0, 1e-4)
                .unwrap();
        assert!(result.is_none());
        // Invalid targets are rejected.
        assert!(
            epsilon_0_for_central_target(&template, ProtocolKind::All, 0.005, 1.0, 0.0).is_err()
        );
    }

    #[test]
    fn calibration_on_graph_matches_manual_route() {
        let acc = accountant(3_000, 10);
        let template = AccountantParams::with_defaults(3_000, 1.0).unwrap();
        let via_graph =
            epsilon_0_for_central_target_on_graph(&acc, &template, ProtocolKind::Single, 0.5)
                .unwrap()
                .expect("reachable");
        let (sum_sq, rho) = acc
            .sum_p_squared(Scenario::Stationary, acc.mixing_time())
            .unwrap();
        let manual =
            epsilon_0_for_central_target(&template, ProtocolKind::Single, sum_sq, rho, 0.5)
                .unwrap()
                .expect("reachable");
        assert!((via_graph - manual).abs() < 1e-9);
        assert!(
            via_graph > 0.5,
            "amplification should allow eps0 above the central target"
        );
    }

    #[test]
    fn generous_targets_saturate_at_the_search_cap() {
        let template = AccountantParams::with_defaults(1_000_000, 1.0).unwrap();
        let eps0 = epsilon_0_for_central_target(
            &template,
            ProtocolKind::Single,
            1.0 / 1_000_000.0,
            1.0,
            1e23,
        )
        .unwrap()
        .expect("reachable");
        assert_eq!(eps0, EPSILON_0_SEARCH_MAX);
    }
}
