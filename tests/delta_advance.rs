//! Exactness of the delta-incremental ensemble advance.
//!
//! The incremental churn runtime advances tracked ensembles speculatively
//! under the operator it already holds and then repairs only the columns
//! the realized operator could have changed
//! ([`DistributionEnsemble::correct_columns`] over
//! [`ns_graph::delta::affected_columns`]).  The contract these tests pin is
//! **f64-exactness**: the corrected state equals the dense advance under
//! the realized operator bit for bit — every `f64` compared through
//! `to_bits` — across churn intensities from "nothing changed" to "every
//! row dirty" (the dense-fallback boundary), on every strategy family of
//! the shared graph zoo, in both feature configurations (the root test
//! target builds ns-graph with `parallel`, the graph crate's own CI leg
//! without).  That exactness is what lets the streaming accountant's live
//! quote stay *exact* under churn while skipping the dense propagate.
//!
//! Also here: the per-graph snapshot rebuild threshold (satellite of the
//! same change) — both extreme settings must produce identical snapshots —
//! and a blessed golden trace of the corrected ensembles
//! (`tests/golden/delta_advance.txt`, regenerate with `NS_BLESS=1`).

mod common;

use common::strategies;
use ns_graph::delta::affected_columns;
use ns_graph::dynamic::{DynamicGraph, MaskedTransition};
use ns_graph::ensemble::DistributionEnsemble;
use ns_graph::rng::seeded_rng;
use ns_graph::NodeId;
use proptest::prelude::*;
use rand::Rng;
use std::fmt::Write as _;

/// One churn wave: toggles up to `edge_moves` random edges (removals are
/// skipped when they would isolate an endpoint) and flips the availability
/// of `flips` random nodes.  Returns the **touched** set — the dirty list
/// captured *before* any snapshot plus the availability flips — exactly
/// what the runtime feeds to [`affected_columns`].
fn churn_wave<R: Rng>(
    dg: &mut DynamicGraph,
    rng: &mut R,
    edge_moves: usize,
    flips: usize,
) -> Vec<NodeId> {
    let n = dg.node_count();
    let mut flipped = Vec::new();
    for _ in 0..edge_moves {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        if dg.has_edge(u, v) {
            if dg.degree(u) > 1 && dg.degree(v) > 1 {
                dg.remove_edge(u, v).unwrap();
            }
        } else {
            dg.add_edge(u, v).unwrap();
        }
    }
    for _ in 0..flips {
        let u = rng.gen_range(0..n);
        dg.set_available(u, !dg.is_available(u)).unwrap();
        flipped.push(u);
    }
    let mut touched: Vec<NodeId> = dg.dirty_list().to_vec();
    touched.extend(flipped);
    touched
}

/// Bitwise equality of two ensembles' tracked rows.
fn rows_bitwise_equal(a: &DistributionEnsemble, b: &DistributionEnsemble) -> bool {
    a.sources() == b.sources()
        && (0..a.sources()).all(|r| {
            a.row(r)
                .iter()
                .zip(b.row(r))
                .all(|(x, y)| x.to_bits() == y.to_bits())
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The tentpole exactness property, over the shared zoo: for every
    /// churn intensity — including zero churn (empty correction) and the
    /// everything-dirty regime past the dense-fallback boundary — both
    /// incremental routes (sparse column correction, dense recompute from
    /// the retained pre-round state) equal the dense advance under the
    /// realized operator bit for bit, round after round.
    #[test]
    fn delta_advance_is_bitwise_the_dense_advance(
        graph in strategies::graph_zoo(30..90),
        seed in 0u64..1_000,
        laziness_pct in 0usize..40,
        churn_scale in 0usize..4,
    ) {
        let n = graph.node_count();
        prop_assume!(n >= 10);
        prop_assume!(graph.find_isolated_node().is_none());
        let laziness = laziness_pct as f64 / 100.0;
        let mut dg = DynamicGraph::from_graph(&graph).unwrap();
        let mut rng = seeded_rng(seed);
        let origins: Vec<NodeId> = (0..n).step_by(4).collect();
        let mut dense = DistributionEnsemble::point_masses(n, &origins).unwrap();
        let mut corrected = DistributionEnsemble::point_masses(n, &origins).unwrap();
        let mut recomputed = DistributionEnsemble::point_masses(n, &origins).unwrap();
        let mut interleaved = DistributionEnsemble::point_masses(n, &origins).unwrap();
        let mut held: MaskedTransition = dg.masked_operator(laziness).unwrap();
        let mut prev_c = Vec::new();
        let mut prev_r = Vec::new();
        let mut prev_i = Vec::new();
        let mut prev_i_il = Vec::new();
        // churn_scale 0 leaves the operator untouched; 3 dirties most rows,
        // crossing any sensible dense-fallback threshold.
        let edge_moves = churn_scale * n / 3;
        let flips = churn_scale * 2;
        for _round in 0..5 {
            let touched = churn_wave(&mut dg, &mut rng, edge_moves, flips);
            let realized = dg.masked_operator(laziness).unwrap();
            let columns = affected_columns(dg.snapshot(), &touched);
            dense.advance_auto(&realized, 1);
            corrected.advance_corrected(&held, &realized, &columns, &mut prev_c);
            recomputed.speculate_auto(&held, &mut prev_r);
            recomputed.recompute_from(&realized, &prev_r);
            interleaved.speculate_interleaved(&held, &mut prev_i, &mut prev_i_il);
            interleaved.correct_columns_interleaved(&realized, &columns, &prev_i_il);
            prop_assert!(
                rows_bitwise_equal(&dense, &corrected),
                "sparse column correction diverged from the dense advance"
            );
            prop_assert!(
                rows_bitwise_equal(&dense, &recomputed),
                "dense recompute-from-speculation diverged from the dense advance"
            );
            prop_assert!(
                rows_bitwise_equal(&dense, &interleaved),
                "interleaved-layout correction diverged from the dense advance"
            );
            prop_assert_eq!(dense.time(), corrected.time());
            held = realized;
        }
    }
}

/// Zero churn means an empty affected set, and the correction must then be
/// a no-op on a bitwise level: speculation under the held operator already
/// *is* the realized round.
#[test]
fn empty_delta_needs_no_correction() {
    let g = ns_graph::generators::random_regular(60, 4, &mut seeded_rng(7)).unwrap();
    let mut dg = DynamicGraph::from_graph(&g).unwrap();
    let origins: Vec<NodeId> = (0..60).step_by(3).collect();
    let mut dense = DistributionEnsemble::point_masses(60, &origins).unwrap();
    let mut corrected = DistributionEnsemble::point_masses(60, &origins).unwrap();
    let held = dg.masked_operator(0.15).unwrap();
    let mut prev = Vec::new();
    for _ in 0..8 {
        let realized = dg.masked_operator(0.15).unwrap();
        dense.advance_auto(&realized, 1);
        corrected.advance_corrected(&held, &realized, &[], &mut prev);
        assert!(rows_bitwise_equal(&dense, &corrected));
    }
}

/// Satellite: the snapshot rebuild threshold is now a per-graph tunable,
/// and *any* setting must produce identical snapshots — `0.0` (always
/// rebuild from the adjacency lists) and `1.0` (always patch the previous
/// CSR) are the two extreme code paths.
#[test]
fn rebuild_threshold_settings_produce_identical_snapshots() {
    let g = ns_graph::generators::barabasi_albert(120, 3, &mut seeded_rng(8)).unwrap();
    let mut rebuilds = DynamicGraph::from_graph(&g)
        .unwrap()
        .with_rebuild_dirty_fraction(0.0)
        .unwrap();
    let mut patches = DynamicGraph::from_graph(&g)
        .unwrap()
        .with_rebuild_dirty_fraction(1.0)
        .unwrap();
    assert_eq!(rebuilds.rebuild_dirty_fraction(), 0.0);
    assert_eq!(patches.rebuild_dirty_fraction(), 1.0);
    assert_eq!(
        DynamicGraph::from_graph(&g)
            .unwrap()
            .rebuild_dirty_fraction(),
        ns_graph::dynamic::REBUILD_DIRTY_FRACTION
    );
    let mut rng = seeded_rng(9);
    for _wave in 0..6 {
        // Same deterministic edit stream applied to both graphs.
        let ops: Vec<(usize, usize)> = (0..40)
            .map(|_| (rng.gen_range(0..120), rng.gen_range(0..120)))
            .collect();
        for &(u, v) in &ops {
            if u == v {
                continue;
            }
            for dg in [&mut rebuilds, &mut patches] {
                if dg.has_edge(u, v) {
                    if dg.degree(u) > 1 && dg.degree(v) > 1 {
                        dg.remove_edge(u, v).unwrap();
                    }
                } else {
                    dg.add_edge(u, v).unwrap();
                }
            }
        }
        assert_eq!(rebuilds.snapshot(), patches.snapshot());
    }
    // The knob validates its range.
    assert!(DynamicGraph::from_graph(&g)
        .unwrap()
        .with_rebuild_dirty_fraction(1.5)
        .is_err());
    assert!(DynamicGraph::from_graph(&g)
        .unwrap()
        .with_rebuild_dirty_fraction(f64::NAN)
        .is_err());
}

const GOLDEN_PATH: &str = "tests/golden/delta_advance.txt";

/// Blessed goldens for the delta advance: a fixed churn scenario records,
/// per round, the affected-column set and every corrected tracked row as
/// raw f64 bit patterns.  The builder *also* asserts the corrected state
/// equals the dense advance, so the golden file doubles as checked-in
/// evidence of the exactness contract on a concrete trace (regenerate with
/// `NS_BLESS=1 cargo test --test delta_advance`).
fn build_delta_trace() -> String {
    let mut out = String::new();
    let g = ns_graph::generators::barabasi_albert(64, 3, &mut seeded_rng(21)).unwrap();
    let n = g.node_count();
    let mut dg = DynamicGraph::from_graph(&g).unwrap();
    let origins: Vec<NodeId> = (0..n).step_by(5).collect();
    let mut dense = DistributionEnsemble::point_masses(n, &origins).unwrap();
    let mut corrected = DistributionEnsemble::point_masses(n, &origins).unwrap();
    let mut held = dg.masked_operator(0.2).unwrap();
    let mut prev = Vec::new();
    let mut rng = seeded_rng(22);
    writeln!(out, "# delta-advance goldens n={n} laziness=0.2").unwrap();
    for round in 1..=5 {
        let touched = churn_wave(&mut dg, &mut rng, 10, 3);
        let realized = dg.masked_operator(0.2).unwrap();
        let columns = affected_columns(dg.snapshot(), &touched);
        dense.advance_auto(&realized, 1);
        corrected.advance_corrected(&held, &realized, &columns, &mut prev);
        assert!(
            rows_bitwise_equal(&dense, &corrected),
            "golden scenario lost exactness at round {round}"
        );
        write!(out, "round {round} columns").unwrap();
        for &c in &columns {
            write!(out, " {c}").unwrap();
        }
        out.push('\n');
        for (r, _) in origins.iter().enumerate() {
            write!(out, "round {round} row {r}").unwrap();
            for &p in corrected.row(r) {
                write!(out, " {:016x}", p.to_bits()).unwrap();
            }
            out.push('\n');
        }
        held = realized;
    }
    out
}

#[test]
fn delta_advance_reproduces_blessed_goldens() {
    let trace = build_delta_trace();
    if std::env::var("NS_BLESS").is_ok() {
        std::fs::create_dir_all("tests/golden").unwrap();
        std::fs::write(GOLDEN_PATH, &trace).unwrap();
        eprintln!("blessed {GOLDEN_PATH} ({} bytes)", trace.len());
        return;
    }
    let golden = std::fs::read_to_string(GOLDEN_PATH).unwrap_or_else(|_| {
        panic!("{GOLDEN_PATH} missing; regenerate with NS_BLESS=1 from a proven-exact build")
    });
    for (line_no, (got, want)) in trace.lines().zip(golden.lines()).enumerate() {
        assert_eq!(
            got,
            want,
            "delta trace diverged from the goldens at line {}",
            line_no + 1
        );
    }
    assert_eq!(
        trace.lines().count(),
        golden.lines().count(),
        "delta trace length diverged from the golden file"
    );
}

/// The column form of every operator equals the dense kernel column by
/// column — directly, without the ensemble on top (the contract
/// [`ns_graph::transition::TransitionModel::propagate_round_columns`]
/// documents).
#[test]
fn per_column_kernels_match_the_dense_kernels_bitwise() {
    use ns_graph::transition::{TransitionMatrix, TransitionModel};
    let g = ns_graph::generators::random_regular(50, 6, &mut seeded_rng(31)).unwrap();
    let n = g.node_count();
    let p: Vec<f64> = {
        let mut rng = seeded_rng(32);
        let raw: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let total: f64 = raw.iter().sum();
        raw.iter().map(|x| x / total).collect()
    };
    let mask: Vec<bool> = (0..n).map(|u| u % 5 != 0).collect();
    let lazy = TransitionMatrix::with_laziness(&g, 0.3).unwrap();
    let masked = MaskedTransition::new(&g, mask, 0.3).unwrap();
    let all_columns: Vec<NodeId> = (0..n).collect();
    for model in [&lazy as &dyn TransitionModel, &masked] {
        let mut full = vec![0.0f64; n];
        model.propagate_round_into(0, &p, &mut full);
        let mut cols = vec![0.0f64; n];
        model.propagate_round_columns(0, &p, &mut cols, &all_columns);
        for (j, (a, b)) in full.iter().zip(&cols).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "column {j} diverged between the dense and per-column kernels"
            );
        }
        // The row-blocked form equals the per-row form bit for bit — at
        // every block-remainder shape (1 row, full blocks, ragged tail).
        for rows in [1usize, 3, 8, 11] {
            let block: Vec<f64> = (0..rows)
                .flat_map(|r| p.iter().map(move |&x| x / (r + 1) as f64))
                .collect();
            let mut per_row = vec![0.0f64; rows * n];
            for (prev_row, out_row) in block.chunks(n).zip(per_row.chunks_mut(n)) {
                model.propagate_round_columns(0, prev_row, out_row, &all_columns);
            }
            let mut blocked = vec![0.0f64; rows * n];
            model.propagate_round_columns_rows(0, rows, &block, &mut blocked, &all_columns);
            for (i, (a, b)) in per_row.iter().zip(&blocked).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "entry {i} diverged between per-row and row-blocked kernels ({rows} rows)"
                );
            }
            // ... and so does the interleaved-input form, whose transpose is
            // a pure copy.
            let mut block_il = Vec::new();
            ns_graph::ensemble::interleave_rows(rows, n, &block, &mut block_il);
            for (r, row) in block.chunks(n).enumerate() {
                for (i, &x) in row.iter().enumerate() {
                    assert_eq!(x.to_bits(), block_il[i * rows + r].to_bits());
                }
            }
            let mut il_out = vec![0.0f64; rows * n];
            model.propagate_round_columns_rows_interleaved(
                0,
                rows,
                &block_il,
                &mut il_out,
                &all_columns,
            );
            for (i, (a, b)) in per_row.iter().zip(&il_out).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "entry {i} diverged between per-row and interleaved kernels ({rows} rows)"
                );
            }
        }
    }
}
