//! Per-user `(ε, δ)` budget ledgers for multi-epoch deployments.
//!
//! The LWeb framing: a user's remaining privacy budget is a *label* checked
//! at the admission tier, not a property threaded through the engine.  A
//! deployment that collects daily charges each participating user the
//! epoch's realized central guarantee against her ledger; once a ledger is
//! exhausted, admission — not the round loop — rejects the user.  The
//! durable runtime (`ns-store`) persists ledgers across processes so two
//! consecutive recovered epochs draw a user down exactly like one
//! double-length deployment.
//!
//! Charges compose by plain sequential composition (ε and δ add), matching
//! [`crate::composition::basic_composition`] — deliberately the
//! conservative rule: a ledger is an *admission gate*, so it must never be
//! more optimistic than the accounting a curator could audit offline.

use crate::types::{validate_positive_epsilon, DpError, PrivacyGuarantee, Result};

/// Per-user remaining `(ε, δ)` budgets.
///
/// Budgets are stored as *remaining* headroom, not spent totals: the
/// admission-tier check is a comparison against zero, and persistence
/// round-trips raw f64 bits, so the check is reproducible bit for bit
/// across processes.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetLedger {
    /// `remaining_epsilon[u]` — ε headroom user `u` still has.
    remaining_epsilon: Vec<f64>,
    /// `remaining_delta[u]` — δ headroom user `u` still has.
    remaining_delta: Vec<f64>,
}

impl BudgetLedger {
    /// A fresh ledger for `n` users, each granted the same `(ε, δ)` budget.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidEpsilon`] / [`DpError::InvalidDelta`] for invalid
    /// budgets, [`DpError::InvalidParameters`] for an empty population.
    pub fn uniform(n: usize, budget: PrivacyGuarantee) -> Result<Self> {
        if n == 0 {
            return Err(DpError::InvalidParameters(
                "a budget ledger needs at least one user".into(),
            ));
        }
        Ok(BudgetLedger {
            remaining_epsilon: vec![budget.epsilon; n],
            remaining_delta: vec![budget.delta; n],
        })
    }

    /// Reassembles a ledger from captured per-user remainders — the durable
    /// runtime's restore hook.  Negative remainders are allowed (a user can
    /// be *over*drawn by her final epoch charge); non-finite values are not.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidParameters`] if the vectors are empty, differ in
    /// length, or contain non-finite entries.
    pub fn from_remaining(remaining_epsilon: Vec<f64>, remaining_delta: Vec<f64>) -> Result<Self> {
        if remaining_epsilon.is_empty() || remaining_epsilon.len() != remaining_delta.len() {
            return Err(DpError::InvalidParameters(format!(
                "ledger vectors must be non-empty and equal length, got {} and {}",
                remaining_epsilon.len(),
                remaining_delta.len()
            )));
        }
        if remaining_epsilon
            .iter()
            .chain(remaining_delta.iter())
            .any(|x| !x.is_finite())
        {
            return Err(DpError::InvalidParameters(
                "ledger remainders must be finite".into(),
            ));
        }
        Ok(BudgetLedger {
            remaining_epsilon,
            remaining_delta,
        })
    }

    /// Number of users the ledger covers.
    pub fn user_count(&self) -> usize {
        self.remaining_epsilon.len()
    }

    /// User `u`'s remaining `(ε, δ)` headroom.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn remaining(&self, user: usize) -> (f64, f64) {
        (self.remaining_epsilon[user], self.remaining_delta[user])
    }

    /// The raw remaining-ε vector (persistence hook).
    pub fn remaining_epsilon(&self) -> &[f64] {
        &self.remaining_epsilon
    }

    /// The raw remaining-δ vector (persistence hook).
    pub fn remaining_delta(&self) -> &[f64] {
        &self.remaining_delta
    }

    /// Whether user `u` still has strictly positive ε *and* δ-compatible
    /// headroom to admit another report.  A user with `ε ≤ 0` remaining is
    /// exhausted; δ headroom may be exactly 0 for pure-DP charges.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn can_admit(&self, user: usize) -> bool {
        self.remaining_epsilon[user] > 0.0 && self.remaining_delta[user] >= 0.0
    }

    /// Charges `cost` against user `u`'s budget by sequential composition
    /// (ε and δ subtract).  The charge is applied even if it overdraws —
    /// the run already happened; the *next* admission is what the gate
    /// refuses — mirroring how an audit ledger must record reality.
    ///
    /// # Errors
    ///
    /// [`DpError::InvalidEpsilon`] if `cost.epsilon` is not strictly
    /// positive (a zero-ε "charge" is a bookkeeping bug; δ = 0 pure-DP
    /// charges are fine), [`DpError::InvalidParameters`] if `user` is out
    /// of range.
    pub fn charge(&mut self, user: usize, cost: &PrivacyGuarantee) -> Result<()> {
        validate_positive_epsilon(cost.epsilon)?;
        if user >= self.user_count() {
            return Err(DpError::InvalidParameters(format!(
                "user {user} out of range for a {}-user ledger",
                self.user_count()
            )));
        }
        self.remaining_epsilon[user] -= cost.epsilon;
        self.remaining_delta[user] -= cost.delta;
        Ok(())
    }

    /// Ascending ids of users whose ledgers are exhausted
    /// ([`BudgetLedger::can_admit`] is false).
    pub fn exhausted_users(&self) -> Vec<usize> {
        (0..self.user_count())
            .filter(|&u| !self.can_admit(u))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_ledger_admits_until_exhausted() {
        let budget = PrivacyGuarantee::new(1.0, 1e-6).unwrap();
        let mut ledger = BudgetLedger::uniform(3, budget).unwrap();
        assert_eq!(ledger.user_count(), 3);
        assert!(ledger.can_admit(0));
        let epoch = PrivacyGuarantee::new(0.4, 1e-7).unwrap();
        ledger.charge(0, &epoch).unwrap();
        ledger.charge(0, &epoch).unwrap();
        assert!(ledger.can_admit(0));
        // Third charge overdraws ε: applied, then admission refuses.
        ledger.charge(0, &epoch).unwrap();
        assert!(!ledger.can_admit(0));
        assert!(ledger.can_admit(1));
        assert_eq!(ledger.exhausted_users(), vec![0]);
        let (eps, delta) = ledger.remaining(0);
        assert!((eps - (1.0 - 1.2)).abs() < 1e-12);
        assert!((delta - (1e-6 - 3e-7)).abs() < 1e-18);
    }

    #[test]
    fn persist_restore_boundary_between_charges_changes_nothing() {
        // The multi-epoch invariant: a ledger persisted after epoch 1 and
        // restored before epoch 2 ends bitwise where an uninterrupted
        // two-epoch ledger ends — remainders round-trip as raw f64s and
        // each charge is one deterministic subtraction.
        let budget = PrivacyGuarantee::new(2.0, 1e-5).unwrap();
        let a = PrivacyGuarantee::new(0.7, 3e-6).unwrap();
        let b = PrivacyGuarantee::new(0.9, 4e-6).unwrap();
        let mut continuous = BudgetLedger::uniform(2, budget).unwrap();
        continuous.charge(1, &a).unwrap();
        continuous.charge(1, &b).unwrap();
        let mut interrupted = BudgetLedger::uniform(2, budget).unwrap();
        interrupted.charge(1, &a).unwrap();
        let mut restored = BudgetLedger::from_remaining(
            interrupted.remaining_epsilon().to_vec(),
            interrupted.remaining_delta().to_vec(),
        )
        .unwrap();
        restored.charge(1, &b).unwrap();
        assert_eq!(
            continuous.remaining(1).0.to_bits(),
            restored.remaining(1).0.to_bits()
        );
        assert_eq!(
            continuous.remaining(1).1.to_bits(),
            restored.remaining(1).1.to_bits()
        );
        assert_eq!(continuous, restored);
    }

    #[test]
    fn restore_roundtrip_and_validation() {
        let budget = PrivacyGuarantee::new(1.5, 0.0).unwrap();
        let mut ledger = BudgetLedger::uniform(4, budget).unwrap();
        ledger
            .charge(2, &PrivacyGuarantee::pure(2.0).unwrap())
            .unwrap();
        let restored = BudgetLedger::from_remaining(
            ledger.remaining_epsilon().to_vec(),
            ledger.remaining_delta().to_vec(),
        )
        .unwrap();
        assert_eq!(ledger, restored);
        assert!(!restored.can_admit(2));
        assert!(BudgetLedger::from_remaining(vec![], vec![]).is_err());
        assert!(BudgetLedger::from_remaining(vec![1.0], vec![0.0, 0.0]).is_err());
        assert!(BudgetLedger::from_remaining(vec![f64::NAN], vec![0.0]).is_err());
        assert!(BudgetLedger::uniform(0, budget).is_err());
    }

    #[test]
    fn invalid_charges_are_rejected_without_side_effects() {
        let budget = PrivacyGuarantee::new(1.0, 1e-6).unwrap();
        let mut ledger = BudgetLedger::uniform(2, budget).unwrap();
        let before = ledger.clone();
        assert!(ledger
            .charge(5, &PrivacyGuarantee::pure(0.1).unwrap())
            .is_err());
        assert_eq!(ledger, before);
    }
}
