//! Snapshot, store-meta and ledger files: the non-log half of the store.
//!
//! All three share one framing — an 8-byte magic, a `u32` body length, a
//! `u32` CRC-32 of the body, then the body — and are written atomically
//! (temp file, fsync, rename) so a crash leaves either the old file or the
//! new one, never a torn hybrid.  A snapshot that fails its checksum is
//! simply skipped during recovery; the WAL replays from the previous one
//! (or from round zero).

use crate::checksum::crc32;
use crate::codec::{put_f64, put_len, put_u32, put_u64, Decoder};
use crate::error::{Result, StoreError};
use network_shuffle::prelude::{
    AccountantCheckpoint, AccountantShardCheckpoint, CoordinatorCheckpoint, CoordinatorConfig,
    ProtocolKind,
};
use ns_dp::prelude::BudgetLedger;
use ns_graph::prelude::{EngineCheckpoint, ShardCheckpoint};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::records::{draw_mode_code, draw_mode_from_code};

/// Magic of snapshot files (`snap-<round>.bin`).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"NSSNAP01";
/// Magic of the store's `meta.bin`.
pub const META_MAGIC: &[u8; 8] = b"NSMETA01";
/// Magic of budget-ledger files.
pub const LEDGER_MAGIC: &[u8; 8] = b"NSLEDG01";

/// Writes `magic + frame(body)` to `path` atomically: temp file in the same
/// directory, fsync, rename over the target.
///
/// # Errors
///
/// I/O errors from the write/rename.
pub fn write_atomic(path: &Path, magic: &[u8; 8], body: &[u8]) -> Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(magic)?;
        file.write_all(&(body.len() as u32).to_le_bytes())?;
        file.write_all(&crc32(body).to_le_bytes())?;
        file.write_all(body)?;
        file.sync_data()?;
    }
    fs::rename(&tmp, path)?;
    // Make the rename itself durable where the platform allows it.
    if let Some(dir) = path.parent() {
        if let Ok(dir_file) = fs::File::open(dir) {
            let _ = dir_file.sync_all();
        }
    }
    Ok(())
}

/// Reads and validates a file written by [`write_atomic`], returning the
/// body.
///
/// # Errors
///
/// I/O errors from the read; [`StoreError::Corrupt`] for bad magic, short
/// files, length mismatches or checksum failures.
pub fn read_verified(path: &Path, magic: &[u8; 8]) -> Result<Vec<u8>> {
    let raw = fs::read(path)?;
    if raw.len() < 16 {
        return Err(StoreError::Corrupt(format!(
            "{}: {} bytes is too short for a framed file",
            path.display(),
            raw.len()
        )));
    }
    if &raw[..8] != magic {
        return Err(StoreError::Corrupt(format!(
            "{}: bad magic {:?}",
            path.display(),
            &raw[..8]
        )));
    }
    let len = u32::from_le_bytes(raw[8..12].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(raw[12..16].try_into().unwrap());
    if raw.len() != 16 + len {
        return Err(StoreError::Corrupt(format!(
            "{}: header claims {len} body bytes, file holds {}",
            path.display(),
            raw.len() - 16
        )));
    }
    let body = &raw[16..];
    if crc32(body) != crc {
        return Err(StoreError::Corrupt(format!(
            "{}: body checksum mismatch",
            path.display()
        )));
    }
    Ok(body.to_vec())
}

// ---------------------------------------------------------------------------
// Coordinator checkpoints (snapshot bodies)
// ---------------------------------------------------------------------------

/// Encodes a full coordinator checkpoint into `out` (cleared first).
pub fn encode_checkpoint(checkpoint: &CoordinatorCheckpoint, out: &mut Vec<u8>) {
    out.clear();
    let engine = &checkpoint.engine;
    put_len(out, engine.round);
    out.push(draw_mode_code(engine.draw_mode));
    put_len(out, engine.positions.len());
    for &p in &engine.positions {
        put_u32(out, p);
    }
    put_len(out, engine.shards.len());
    for shard in &engine.shards {
        for &word in &shard.rng_key {
            put_u32(out, word);
        }
        put_u64(out, shard.rng_counter);
        put_u32(out, shard.rng_cursor);
        put_len(out, shard.bucket_starts.len());
        for &s in &shard.bucket_starts {
            put_len(out, s);
        }
        put_len(out, shard.bucket_walkers.len());
        for &w in &shard.bucket_walkers {
            put_u32(out, w);
        }
    }
    let accountant = &checkpoint.accountant;
    put_len(out, accountant.round);
    put_len(out, accountant.shards.len());
    for shard in &accountant.shards {
        put_len(out, shard.origins.len());
        for &origin in &shard.origins {
            put_len(out, origin);
        }
        put_len(out, shard.rows.len());
        for &row in &shard.rows {
            put_f64(out, row);
        }
    }
    put_len(out, checkpoint.recorder_rounds);
    put_len(out, checkpoint.recorder_messages.len());
    for &m in &checkpoint.recorder_messages {
        put_len(out, m);
    }
    put_len(out, checkpoint.recorder_peaks.len());
    for &p in &checkpoint.recorder_peaks {
        put_len(out, p);
    }
}

fn take_usize_vec(d: &mut Decoder<'_>) -> Result<Vec<usize>> {
    let n = d.len()?;
    let mut v = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        v.push(d.len()?);
    }
    Ok(v)
}

fn take_u32_vec(d: &mut Decoder<'_>) -> Result<Vec<u32>> {
    let n = d.len()?;
    let mut v = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        v.push(d.u32()?);
    }
    Ok(v)
}

/// Decodes a checkpoint body written by [`encode_checkpoint`].
///
/// # Errors
///
/// [`StoreError::Corrupt`] on any structural mismatch.
pub fn decode_checkpoint(body: &[u8]) -> Result<CoordinatorCheckpoint> {
    let mut d = Decoder::new(body);
    let round = d.len()?;
    let draw_mode = draw_mode_from_code(d.take(1)?[0])?;
    let positions = take_u32_vec(&mut d)?;
    let shard_count = d.len()?;
    let mut shards = Vec::with_capacity(shard_count.min(1 << 16));
    for _ in 0..shard_count {
        let mut rng_key = [0u32; 8];
        for word in &mut rng_key {
            *word = d.u32()?;
        }
        let rng_counter = d.u64()?;
        let rng_cursor = d.u32()?;
        let bucket_starts = take_usize_vec(&mut d)?;
        let bucket_walkers = take_u32_vec(&mut d)?;
        shards.push(ShardCheckpoint {
            rng_key,
            rng_counter,
            rng_cursor,
            bucket_starts,
            bucket_walkers,
        });
    }
    let engine = EngineCheckpoint {
        positions,
        round,
        draw_mode,
        shards,
    };
    let accountant_round = d.len()?;
    let accountant_shards = d.len()?;
    let mut acc_shards = Vec::with_capacity(accountant_shards.min(1 << 16));
    for _ in 0..accountant_shards {
        let origins = take_usize_vec(&mut d)?;
        let row_count = d.len()?;
        let mut rows = Vec::with_capacity(row_count.min(1 << 24));
        for _ in 0..row_count {
            rows.push(d.f64()?);
        }
        acc_shards.push(AccountantShardCheckpoint { origins, rows });
    }
    let accountant = AccountantCheckpoint {
        round: accountant_round,
        shards: acc_shards,
    };
    let recorder_rounds = d.len()?;
    let recorder_messages = take_usize_vec(&mut d)?;
    let recorder_peaks = take_usize_vec(&mut d)?;
    d.finish()?;
    Ok(CoordinatorCheckpoint {
        engine,
        accountant,
        recorder_rounds,
        recorder_messages,
        recorder_peaks,
    })
}

/// Path of the snapshot capturing `round` inside `dir`.
pub fn snapshot_path(dir: &Path, round: usize) -> PathBuf {
    dir.join(format!("snap-{round}.bin"))
}

/// Atomically persists `checkpoint` as `snap-<round>.bin` in `dir`.
///
/// # Errors
///
/// I/O errors from the atomic write.
pub fn save_snapshot(dir: &Path, checkpoint: &CoordinatorCheckpoint) -> Result<PathBuf> {
    let mut body = Vec::new();
    encode_checkpoint(checkpoint, &mut body);
    let path = snapshot_path(dir, checkpoint.engine.round);
    write_atomic(&path, SNAPSHOT_MAGIC, &body)?;
    Ok(path)
}

/// Loads and validates the snapshot for `round` from `dir`.
///
/// # Errors
///
/// I/O errors; [`StoreError::Corrupt`] when the file fails verification.
pub fn load_snapshot(dir: &Path, round: usize) -> Result<CoordinatorCheckpoint> {
    let body = read_verified(&snapshot_path(dir, round), SNAPSHOT_MAGIC)?;
    decode_checkpoint(&body)
}

// ---------------------------------------------------------------------------
// Store meta (the epoch's immutable configuration)
// ---------------------------------------------------------------------------

/// The immutable facts `meta.bin` pins: the coordinator configuration plus
/// the topology's identity, so recovery can refuse a mismatched graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreMeta {
    /// The coordinator configuration of the epoch.
    pub config: CoordinatorConfig,
    /// Node count of the graph the epoch runs on.
    pub node_count: usize,
    /// Shard count of the partition the epoch runs on.
    pub shard_count: usize,
}

fn protocol_code(kind: ProtocolKind) -> u8 {
    match kind {
        ProtocolKind::All => 0,
        ProtocolKind::Single => 1,
    }
}

fn protocol_from_code(code: u8) -> Result<ProtocolKind> {
    match code {
        0 => Ok(ProtocolKind::All),
        1 => Ok(ProtocolKind::Single),
        other => Err(StoreError::Corrupt(format!(
            "unknown protocol code {other}"
        ))),
    }
}

/// Encodes a [`StoreMeta`] body.
pub fn encode_meta(meta: &StoreMeta, out: &mut Vec<u8>) {
    out.clear();
    put_u64(out, meta.config.seed);
    put_f64(out, meta.config.laziness);
    out.push(protocol_code(meta.config.protocol));
    put_u64(out, meta.config.tracked_per_shard as u64);
    out.push(draw_mode_code(meta.config.draw_mode));
    put_len(out, meta.node_count);
    put_len(out, meta.shard_count);
}

/// Decodes a [`StoreMeta`] body.
///
/// # Errors
///
/// [`StoreError::Corrupt`] on structural mismatch.
pub fn decode_meta(body: &[u8]) -> Result<StoreMeta> {
    let mut d = Decoder::new(body);
    let seed = d.u64()?;
    let laziness = d.f64()?;
    let protocol = protocol_from_code(d.take(1)?[0])?;
    let tracked_per_shard = d.u64()? as usize;
    let draw_mode = draw_mode_from_code(d.take(1)?[0])?;
    let node_count = d.len()?;
    let shard_count = d.len()?;
    d.finish()?;
    Ok(StoreMeta {
        config: CoordinatorConfig {
            seed,
            laziness,
            protocol,
            tracked_per_shard,
            draw_mode,
        },
        node_count,
        shard_count,
    })
}

/// Atomically writes `meta.bin` into `dir`.
///
/// # Errors
///
/// I/O errors from the atomic write.
pub fn save_meta(dir: &Path, meta: &StoreMeta) -> Result<()> {
    let mut body = Vec::new();
    encode_meta(meta, &mut body);
    write_atomic(&dir.join("meta.bin"), META_MAGIC, &body)
}

/// Loads and validates `meta.bin` from `dir`.
///
/// # Errors
///
/// I/O errors; [`StoreError::Corrupt`] on verification failure.
pub fn load_meta(dir: &Path) -> Result<StoreMeta> {
    let body = read_verified(&dir.join("meta.bin"), META_MAGIC)?;
    decode_meta(&body)
}

// ---------------------------------------------------------------------------
// Budget ledgers
// ---------------------------------------------------------------------------

/// Atomically persists a budget ledger at `path`.
///
/// # Errors
///
/// I/O errors from the atomic write.
pub fn save_ledger(path: &Path, ledger: &BudgetLedger) -> Result<()> {
    let mut body = Vec::new();
    put_len(&mut body, ledger.user_count());
    for &e in ledger.remaining_epsilon() {
        put_f64(&mut body, e);
    }
    for &d in ledger.remaining_delta() {
        put_f64(&mut body, d);
    }
    write_atomic(path, LEDGER_MAGIC, &body)
}

/// Loads and validates a budget ledger from `path`.
///
/// # Errors
///
/// I/O errors; [`StoreError::Corrupt`] on verification or shape failure.
pub fn load_ledger(path: &Path) -> Result<BudgetLedger> {
    let body = read_verified(path, LEDGER_MAGIC)?;
    let mut d = Decoder::new(&body);
    let n = d.len()?;
    let mut epsilon = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        epsilon.push(d.f64()?);
    }
    let mut delta = Vec::with_capacity(n.min(1 << 24));
    for _ in 0..n {
        delta.push(d.f64()?);
    }
    d.finish()?;
    Ok(BudgetLedger::from_remaining(epsilon, delta)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_dp::prelude::PrivacyGuarantee;
    use ns_graph::round::DrawMode;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("ns_store_snapshot_test")
            .join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_checkpoint() -> CoordinatorCheckpoint {
        CoordinatorCheckpoint {
            engine: EngineCheckpoint {
                positions: vec![3, 1, 4, 1, 5],
                round: 9,
                draw_mode: DrawMode::Fast,
                shards: vec![
                    ShardCheckpoint {
                        rng_key: [1, 2, 3, 4, 5, 6, 7, 8],
                        rng_counter: 42,
                        rng_cursor: 7,
                        bucket_starts: vec![0, 2, 5],
                        bucket_walkers: vec![0, 3, 1, 2, 4],
                    },
                    ShardCheckpoint {
                        rng_key: [8, 7, 6, 5, 4, 3, 2, 1],
                        rng_counter: 0,
                        rng_cursor: 16,
                        bucket_starts: vec![0, 0],
                        bucket_walkers: vec![],
                    },
                ],
            },
            accountant: AccountantCheckpoint {
                round: 9,
                shards: vec![AccountantShardCheckpoint {
                    origins: vec![0, 4],
                    rows: vec![0.25, 0.75, -0.0, f64::from_bits(0x3FF0000000000001)],
                }],
            },
            recorder_rounds: 9,
            recorder_messages: vec![10, 0, 3, 7, 2],
            recorder_peaks: vec![2, 1, 1, 3, 1],
        }
    }

    #[test]
    fn checkpoint_body_roundtrips_bit_for_bit() {
        let checkpoint = sample_checkpoint();
        let mut body = Vec::new();
        encode_checkpoint(&checkpoint, &mut body);
        let decoded = decode_checkpoint(&body).unwrap();
        let mut body2 = Vec::new();
        encode_checkpoint(&decoded, &mut body2);
        assert_eq!(body, body2);
        assert_eq!(decoded.engine.positions, checkpoint.engine.positions);
        assert_eq!(decoded.engine.round, 9);
        assert_eq!(decoded.engine.draw_mode, DrawMode::Fast);
        assert_eq!(
            decoded.accountant.shards[0].rows[3].to_bits(),
            0x3FF0000000000001
        );
    }

    #[test]
    fn snapshot_files_roundtrip_and_reject_corruption() {
        let dir = temp_dir("snap");
        let checkpoint = sample_checkpoint();
        let path = save_snapshot(&dir, &checkpoint).unwrap();
        assert_eq!(path, snapshot_path(&dir, 9));
        let loaded = load_snapshot(&dir, 9).unwrap();
        assert_eq!(loaded.engine.positions, checkpoint.engine.positions);
        // Flip one body bit: checksum must catch it.
        let mut raw = fs::read(&path).unwrap();
        let last = raw.len() - 1;
        raw[last] ^= 0x10;
        fs::write(&path, &raw).unwrap();
        assert!(matches!(
            load_snapshot(&dir, 9),
            Err(StoreError::Corrupt(_))
        ));
        // Wrong magic.
        let mut raw = fs::read(&path).unwrap();
        raw[0] = b'X';
        fs::write(&path, &raw).unwrap();
        assert!(load_snapshot(&dir, 9).is_err());
        // Missing snapshot is an Io error, not a panic.
        assert!(matches!(load_snapshot(&dir, 10), Err(StoreError::Io(_))));
    }

    #[test]
    fn meta_roundtrips_including_sentinel_tracking() {
        let dir = temp_dir("meta");
        let mut config = CoordinatorConfig::single(0xDEAD_BEEF, usize::MAX);
        config.laziness = 0.2;
        config.draw_mode = DrawMode::Fast;
        let meta = StoreMeta {
            config,
            node_count: 40,
            shard_count: 4,
        };
        save_meta(&dir, &meta).unwrap();
        assert_eq!(load_meta(&dir).unwrap(), meta);
    }

    #[test]
    fn ledger_files_roundtrip_bitwise() {
        let dir = temp_dir("ledger");
        let path = dir.join("ledger.bin");
        let mut ledger =
            BudgetLedger::uniform(5, PrivacyGuarantee::new(2.0, 1e-6).unwrap()).unwrap();
        ledger
            .charge(2, &PrivacyGuarantee::new(0.7, 1e-7).unwrap())
            .unwrap();
        save_ledger(&path, &ledger).unwrap();
        let loaded = load_ledger(&path).unwrap();
        for u in 0..5 {
            let (e0, d0) = ledger.remaining(u);
            let (e1, d1) = loaded.remaining(u);
            assert_eq!(e0.to_bits(), e1.to_bits());
            assert_eq!(d0.to_bits(), d1.to_bits());
        }
    }
}
