//! Stochastic block model (planted-community) graphs.
//!
//! Social networks are rarely unstructured: users cluster into communities
//! with dense internal links and sparse links across.  Community structure
//! shrinks the spectral gap (the walk takes long to cross between blocks),
//! which directly lengthens the number of rounds network shuffling needs —
//! the `ablation_topology` experiment quantifies this.

use crate::builder::GraphBuilder;
use crate::error::{GraphError, Result};
use crate::graph::Graph;
use rand::Rng;

/// Generates a stochastic block model with `blocks` equal-sized communities
/// over `n` nodes: an edge inside a community appears with probability
/// `p_in`, an edge between communities with probability `p_out`.
///
/// Uses the same geometric-skipping trick as `G(n, p)` per block pair, so the
/// cost is `O(n + m)`.
///
/// # Errors
///
/// [`GraphError::InvalidParameters`] if `blocks` is zero or exceeds `n`, or a
/// probability is outside `[0, 1]`.
pub fn stochastic_block_model<R: Rng + ?Sized>(
    n: usize,
    blocks: usize,
    p_in: f64,
    p_out: f64,
    rng: &mut R,
) -> Result<Graph> {
    if blocks == 0 || blocks > n {
        return Err(GraphError::InvalidParameters(format!(
            "blocks must be in 1..=n, got {blocks} for n = {n}"
        )));
    }
    for (name, p) in [("p_in", p_in), ("p_out", p_out)] {
        if !(0.0..=1.0).contains(&p) {
            return Err(GraphError::InvalidParameters(format!(
                "{name} must be in [0, 1], got {p}"
            )));
        }
    }
    let block_of = |u: usize| u * blocks / n;
    let mut builder = GraphBuilder::new(n);

    // Enumerate candidate pairs (u, v) with u < v lazily, skipping ahead
    // geometrically under the maximum of the two probabilities and then
    // accepting with the exact probability for the pair's block relation.
    let p_max = p_in.max(p_out);
    if p_max == 0.0 {
        return Ok(builder.build());
    }
    let mut u = 0usize;
    let mut v: i64 = 0; // offset within u's candidate list (v = u + 1 + offset)
    while u + 1 < n {
        let candidates = (n - u - 1) as i64;
        if v >= candidates {
            v -= candidates;
            u += 1;
            continue;
        }
        let w = u + 1 + v as usize;
        let p_pair = if block_of(u) == block_of(w) {
            p_in
        } else {
            p_out
        };
        if p_max >= 1.0 {
            if rng.gen::<f64>() < p_pair {
                builder.add_edge(u, w)?;
            }
            v += 1;
        } else {
            // Accept the current candidate with p_pair / p_max, then skip a
            // geometric number of candidates under p_max.
            if rng.gen::<f64>() < p_pair / p_max {
                builder.add_edge(u, w)?;
            }
            let r: f64 = rng.gen_range(f64::EPSILON..1.0);
            let skip = (r.ln() / (1.0 - p_max).ln()).floor() as i64 + 1;
            v += skip;
        }
    }
    Ok(builder.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn validates_parameters() {
        let mut rng = seeded_rng(1);
        assert!(stochastic_block_model(10, 0, 0.5, 0.1, &mut rng).is_err());
        assert!(stochastic_block_model(10, 11, 0.5, 0.1, &mut rng).is_err());
        assert!(stochastic_block_model(10, 2, 1.5, 0.1, &mut rng).is_err());
        assert!(stochastic_block_model(10, 2, 0.5, -0.1, &mut rng).is_err());
    }

    #[test]
    fn zero_probabilities_give_an_empty_graph() {
        let mut rng = seeded_rng(2);
        let g = stochastic_block_model(50, 5, 0.0, 0.0, &mut rng).unwrap();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn edge_densities_match_block_structure() {
        let mut rng = seeded_rng(3);
        let n = 400;
        let g = stochastic_block_model(n, 4, 0.2, 0.01, &mut rng).unwrap();
        let block_of = |u: usize| u * 4 / n;
        let mut within = 0usize;
        let mut across = 0usize;
        for (u, v) in g.edges() {
            if block_of(u) == block_of(v) {
                within += 1;
            } else {
                across += 1;
            }
        }
        // Expected: within ≈ 0.2 * 4 * C(100,2) = 3960, across ≈ 0.01 * 60000 = 600.
        assert!((within as f64 - 3_960.0).abs() < 400.0, "within = {within}");
        assert!((across as f64 - 600.0).abs() < 150.0, "across = {across}");
    }

    #[test]
    fn single_block_behaves_like_gnp() {
        let mut rng = seeded_rng(4);
        let g = stochastic_block_model(300, 1, 0.05, 0.9, &mut rng).unwrap();
        let expected = 0.05 * (300.0 * 299.0 / 2.0);
        assert!((g.edge_count() as f64 - expected).abs() < 4.0 * expected.sqrt() + 20.0);
    }

    #[test]
    fn community_structure_shrinks_the_spectral_gap() {
        let mut rng = seeded_rng(5);
        let assortative = stochastic_block_model(400, 4, 0.12, 0.002, &mut rng).unwrap();
        let flat = stochastic_block_model(400, 4, 0.0325, 0.0325, &mut rng).unwrap();
        let (lcc_a, _) = crate::connectivity::largest_connected_component(&assortative);
        let (lcc_f, _) = crate::connectivity::largest_connected_component(&flat);
        let opts = crate::spectral::SpectralOptions::default();
        let gap_a = crate::spectral::SpectralAnalysis::compute(&lcc_a, opts).spectral_gap();
        let gap_f = crate::spectral::SpectralAnalysis::compute(&lcc_f, opts).spectral_gap();
        assert!(
            gap_a < gap_f,
            "assortative gap {gap_a} should be below flat gap {gap_f}"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let a = stochastic_block_model(200, 4, 0.1, 0.01, &mut seeded_rng(6)).unwrap();
        let b = stochastic_block_model(200, 4, 0.1, 0.01, &mut seeded_rng(6)).unwrap();
        assert_eq!(a, b);
    }
}
