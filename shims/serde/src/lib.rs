//! Offline shim for the subset of `serde` this workspace uses.
//!
//! Only the derive macros are exercised (as annotations); the traits exist
//! so `use serde::{Deserialize, Serialize}` resolves in both the type and
//! macro namespaces, exactly like the real crate with the `derive` feature.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize {}

impl<T: ?Sized> Serialize for T {}
impl<T: ?Sized> Deserialize for T {}
