//! Synthetic stand-ins for the real-world datasets evaluated in the paper.
//!
//! Table 4 of the paper evaluates network shuffling on five real networks
//! (Facebook pages, Twitch, Deezer, Enron e-mail, Google web).  The privacy
//! theorems depend on a graph only through its size `n`, its irregularity
//! `Γ_G = ⟨k²⟩/⟨k⟩²` and its spectral gap, so this crate generates synthetic
//! graphs calibrated to the *same `n` and `Γ_G`* as the originals (largest
//! connected component, as in the paper).  See DESIGN.md for the full
//! substitution rationale.
//!
//! The crate also provides the Gaussian-mixture workload of the paper's
//! private mean-estimation study (Section 5.6 / Figure 9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod workload;

pub use catalog::{Dataset, DatasetSpec, GeneratedDataset};
pub use workload::{MeanEstimationWorkload, WorkloadConfig};
