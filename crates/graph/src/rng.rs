//! Deterministic random-number-generator helpers.
//!
//! All simulations in this repository are seeded so that every experiment in
//! EXPERIMENTS.md can be regenerated bit-for-bit.  ChaCha8 is used rather
//! than the default `StdRng` because its stream is stable across `rand`
//! versions and platforms.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The RNG type used throughout the workspace.
pub type SimRng = ChaCha8Rng;

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded_rng(seed: u64) -> SimRng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// SplitMix64 finalizer, used to derive decorrelated per-component seeds
/// (per-chunk streams in the data-parallel engine, per-shard streams in the
/// sharded runtime) from one base seed.
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives a sub-RNG for a named component from a base seed.
///
/// Mixing the label into the seed lets independent components (e.g. graph
/// generation vs. report walks) draw from decorrelated streams while the
/// whole experiment remains reproducible from a single seed.
pub fn derived_rng(seed: u64, label: &str) -> SimRng {
    // FNV-1a over the label, folded into the seed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in label.as_bytes() {
        h ^= u64::from(*byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    ChaCha8Rng::seed_from_u64(seed ^ h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = seeded_rng(1);
        let mut b = seeded_rng(2);
        let same = (0..16).all(|_| a.gen::<u64>() == b.gen::<u64>());
        assert!(!same);
    }

    #[test]
    fn derived_rng_depends_on_label() {
        let mut a = derived_rng(7, "graph");
        let mut b = derived_rng(7, "walk");
        let same = (0..16).all(|_| a.gen::<u64>() == b.gen::<u64>());
        assert!(!same);

        let mut c = derived_rng(7, "graph");
        let mut d = derived_rng(7, "graph");
        for _ in 0..16 {
            assert_eq!(c.gen::<u64>(), d.gen::<u64>());
        }
    }
}
