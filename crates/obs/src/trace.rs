//! The bounded structured-event trace.
//!
//! A [`TraceWriter`] owns a preallocated ring of fixed-size
//! [`TraceEvent`]s.  Recording copies the event into the next slot
//! (overwriting the oldest when full and counting the drop) — no
//! allocation, no I/O, no locks.  Serialization happens only on explicit
//! [`TraceWriter::flush_to`], which drains the ring as JSONL into a
//! caller-supplied writer through a reusable line buffer.
//!
//! The line schema (one JSON object per line, `ts` in clock nanoseconds)
//! is documented in the README's Observability section and validated by
//! [`crate::schema::validate_line`].

use crate::clock::Clock;
use std::fmt::Write as _;
use std::io;

/// Default ring capacity (events) when `NS_OBS_RING` is unset.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// One structured event.  Fixed-size and `Copy`: reasons and names are
/// `&'static str` so recording never allocates.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// One protocol round completed.
    Round {
        /// Round number (1-based, after execution).
        round: u64,
        /// Reports exchanged this round (sum of the sent vector).
        sent: u64,
        /// WAL length in bytes after logging the round (0 when no WAL).
        wal_len: u64,
        /// Live worst-user epsilon after the round.
        epsilon: f64,
        /// The delta the quote is stated at.
        delta: f64,
    },
    /// An admission decision, with the ledger state that justified it.
    Admit {
        /// Admission batch number (1-based).
        batch: u64,
        /// Reports in the batch.
        reports: u64,
        /// Whether the batch was admitted.
        accepted: bool,
        /// Decision reason (`"ok"`, `"budget-exhausted"`, ...).
        reason: &'static str,
        /// Per-user epsilon cost the ledger would charge (or refused).
        epsilon: f64,
        /// The delta the charge is stated at.
        delta: f64,
    },
    /// A snapshot was written.
    Snapshot {
        /// Round the snapshot captures.
        round: u64,
        /// Snapshot file size in bytes.
        bytes: u64,
        /// Wall/fake-clock time the write took.
        elapsed_ns: u64,
    },
    /// A recovery replay completed.
    Recover {
        /// Rounds re-executed from the log tail.
        rounds_replayed: u64,
        /// Wall/fake-clock time the replay took.
        elapsed_ns: u64,
    },
    /// A lifecycle phase change (`"begin-exchange"`, `"finalize"`, ...).
    Phase {
        /// Phase name.
        name: &'static str,
        /// Round counter at the transition.
        round: u64,
    },
    /// A free-form scalar observation.
    Note {
        /// What the value measures.
        topic: &'static str,
        /// The observation.
        value: f64,
    },
}

impl TraceEvent {
    /// The `ev` tag this event serializes under.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::Round { .. } => "round",
            TraceEvent::Admit { .. } => "admit",
            TraceEvent::Snapshot { .. } => "snapshot",
            TraceEvent::Recover { .. } => "recover",
            TraceEvent::Phase { .. } => "phase",
            TraceEvent::Note { .. } => "note",
        }
    }
}

/// Writes a JSON-safe float: finite values as-is, non-finite as `null`
/// (JSON has no NaN/Infinity).
fn push_json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        write!(out, "{v}").unwrap();
    } else {
        out.push_str("null");
    }
}

/// Writes a JSON string literal.  Event strings are `&'static str`
/// chosen in this workspace, but escape the JSON specials anyway so the
/// output is always valid.
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32).unwrap(),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Serializes one `(ts, event)` pair as a JSONL line (no trailing
/// newline) into `out`.
// Hand-written JSON: the workspace's serde shim is a no-op, so emit the
// bytes directly (same convention as the bench bins).
fn render_line(out: &mut String, ts: u64, ev: &TraceEvent) {
    write!(out, "{{\"ts\": {ts}, \"ev\": \"{}\"", ev.kind()).unwrap();
    match *ev {
        TraceEvent::Round {
            round,
            sent,
            wal_len,
            epsilon,
            delta,
        } => {
            write!(
                out,
                ", \"round\": {round}, \"sent\": {sent}, \"wal_len\": {wal_len}"
            )
            .unwrap();
            out.push_str(", \"epsilon\": ");
            push_json_f64(out, epsilon);
            out.push_str(", \"delta\": ");
            push_json_f64(out, delta);
        }
        TraceEvent::Admit {
            batch,
            reports,
            accepted,
            reason,
            epsilon,
            delta,
        } => {
            write!(
                out,
                ", \"batch\": {batch}, \"reports\": {reports}, \"accepted\": {accepted}, \"reason\": "
            )
            .unwrap();
            push_json_str(out, reason);
            out.push_str(", \"epsilon\": ");
            push_json_f64(out, epsilon);
            out.push_str(", \"delta\": ");
            push_json_f64(out, delta);
        }
        TraceEvent::Snapshot {
            round,
            bytes,
            elapsed_ns,
        } => {
            write!(
                out,
                ", \"round\": {round}, \"bytes\": {bytes}, \"elapsed_ns\": {elapsed_ns}"
            )
            .unwrap();
        }
        TraceEvent::Recover {
            rounds_replayed,
            elapsed_ns,
        } => {
            write!(
                out,
                ", \"rounds_replayed\": {rounds_replayed}, \"elapsed_ns\": {elapsed_ns}"
            )
            .unwrap();
        }
        TraceEvent::Phase { name, round } => {
            out.push_str(", \"name\": ");
            push_json_str(out, name);
            write!(out, ", \"round\": {round}").unwrap();
        }
        TraceEvent::Note { topic, value } => {
            out.push_str(", \"topic\": ");
            push_json_str(out, topic);
            out.push_str(", \"value\": ");
            push_json_f64(out, value);
        }
    }
    out.push('}');
}

/// The bounded event ring.
pub struct TraceWriter {
    clock: Clock,
    ring: Vec<(u64, TraceEvent)>,
    capacity: usize,
    head: usize,
    len: usize,
    dropped: u64,
    line: String,
}

impl TraceWriter {
    /// A ring of `capacity` events over `clock`.  All storage — the ring
    /// and the flush line buffer — is allocated here, once.
    pub fn new(clock: Clock, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceWriter {
            clock,
            ring: Vec::with_capacity(capacity),
            capacity,
            head: 0,
            len: 0,
            dropped: 0,
            line: String::with_capacity(256),
        }
    }

    /// Records an event, stamped with the clock.  Never allocates: a
    /// full ring overwrites its oldest event and counts the drop.
    pub fn record(&mut self, ev: TraceEvent) {
        let ts = self.clock.now_ns();
        // Write at the logical tail: slots drained by a flush are reused in
        // place, so the backing `Vec` only grows until it first reaches
        // capacity (while `head == 0`, the tail is at most `ring.len()`).
        let at = (self.head + self.len) % self.capacity;
        if at == self.ring.len() {
            self.ring.push((ts, ev));
        } else {
            self.ring[at] = (ts, ev);
        }
        if self.len == self.capacity {
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        } else {
            self.len += 1;
        }
    }

    /// Buffered events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Events overwritten before they could be flushed.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the ring (oldest first) as JSONL into `out`; returns the
    /// number of events written.  This is the explicit serialization
    /// point — keep it off steady-state paths.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`; drained events are not
    /// restored.
    pub fn flush_to(&mut self, out: &mut dyn io::Write) -> io::Result<usize> {
        let flushed = self.len;
        for i in 0..self.len {
            let (ts, ev) = self.ring[(self.head + i) % self.capacity];
            self.line.clear();
            render_line(&mut self.line, ts, &ev);
            self.line.push('\n');
            out.write_all(self.line.as_bytes())?;
        }
        self.head = 0;
        self.len = 0;
        Ok(flushed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn writer(capacity: usize) -> (TraceWriter, crate::clock::FakeClock) {
        let (clock, driver) = Clock::fake();
        (TraceWriter::new(clock, capacity), driver)
    }

    #[test]
    fn events_serialize_as_documented_jsonl() {
        let (mut tw, driver) = writer(8);
        driver.set_ns(42);
        tw.record(TraceEvent::Round {
            round: 3,
            sent: 100,
            wal_len: 4096,
            epsilon: 0.5,
            delta: 1e-5,
        });
        tw.record(TraceEvent::Admit {
            batch: 1,
            reports: 7,
            accepted: false,
            reason: "budget-exhausted",
            epsilon: 0.25,
            delta: 1e-5,
        });
        let mut out = Vec::new();
        assert_eq!(tw.flush_to(&mut out).unwrap(), 2);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(
            lines[0],
            "{\"ts\": 42, \"ev\": \"round\", \"round\": 3, \"sent\": 100, \
             \"wal_len\": 4096, \"epsilon\": 0.5, \"delta\": 0.00001}"
        );
        assert!(lines[1].contains("\"reason\": \"budget-exhausted\""));
        assert!(lines[1].contains("\"accepted\": false"));
        for line in &lines {
            crate::schema::validate_line(line).expect("schema");
        }
        assert!(tw.is_empty());
    }

    #[test]
    fn full_ring_drops_oldest_and_counts() {
        let (mut tw, _driver) = writer(3);
        for round in 1..=5 {
            tw.record(TraceEvent::Phase {
                name: "tick",
                round,
            });
        }
        assert_eq!(tw.len(), 3);
        assert_eq!(tw.dropped(), 2);
        let mut out = Vec::new();
        tw.flush_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        // The three newest survive, oldest first.
        let rounds: Vec<&str> = text.lines().collect();
        assert!(rounds[0].contains("\"round\": 3"));
        assert!(rounds[2].contains("\"round\": 5"));
    }

    #[test]
    fn flush_then_record_drains_the_new_events_not_stale_ones() {
        let (mut tw, _driver) = writer(8);
        for round in 1..=5 {
            tw.record(TraceEvent::Phase {
                name: "first",
                round,
            });
        }
        let mut out = Vec::new();
        assert_eq!(tw.flush_to(&mut out).unwrap(), 5);
        // Re-fill after the drain: the second flush must yield exactly the
        // post-flush events, not replay the drained prefix in place.
        for round in 6..=8 {
            tw.record(TraceEvent::Phase {
                name: "second",
                round,
            });
        }
        out.clear();
        assert_eq!(tw.flush_to(&mut out).unwrap(), 3);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            assert!(line.contains("\"name\": \"second\""), "stale event: {line}");
            assert!(line.contains(&format!("\"round\": {}", 6 + i)));
        }
        assert_eq!(tw.dropped(), 0);
    }

    #[test]
    fn non_finite_floats_become_null() {
        let (mut tw, _driver) = writer(2);
        tw.record(TraceEvent::Note {
            topic: "nan",
            value: f64::NAN,
        });
        let mut out = Vec::new();
        tw.flush_to(&mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("\"value\": null"));
        crate::schema::validate_line(text.trim()).expect("schema");
    }
}
