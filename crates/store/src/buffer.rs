//! A small buffer manager over a [`SegmentFile`].
//!
//! Readers (WAL scan, snapshot load) go through a fixed pool of page frames
//! with clock (second-chance) eviction, bustub style.  The pool is
//! deliberately tiny — the durable runtime's working set is the log tail plus
//! the snapshot being loaded — but it keeps the read path page-granular and
//! lets a sequential scan re-visit a page (record spanning a page boundary)
//! without re-reading it from disk.

use crate::error::Result;
use crate::page::{SegmentFile, PAGE_SIZE};

/// Number of page frames a pool holds.
pub const POOL_FRAMES: usize = 8;

/// One resident page frame.
#[derive(Debug)]
struct Frame {
    page_no: u64,
    /// Bytes of the page actually present on disk (tail pages are partial).
    valid: usize,
    /// Clock reference bit — set on every hit, cleared as the hand sweeps.
    referenced: bool,
    data: Box<[u8]>,
}

/// A fixed-size page cache with clock eviction.
#[derive(Debug)]
pub struct BufferPool {
    segment: SegmentFile,
    frames: Vec<Frame>,
    hand: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl BufferPool {
    /// Wraps `segment` in a pool of [`POOL_FRAMES`] frames.
    pub fn new(segment: SegmentFile) -> Self {
        BufferPool {
            segment,
            frames: Vec::with_capacity(POOL_FRAMES),
            hand: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The wrapped segment (for length queries).
    pub fn segment(&mut self) -> &mut SegmentFile {
        &mut self.segment
    }

    /// `(hits, misses)` counters — exercised by tests to prove the clock
    /// actually caches.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Frames the clock sweep has evicted to make room (invalidations not
    /// included) — the telemetry layer's `ns_pool_evictions` source.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Returns `(bytes, valid_len)` of page `page_no`, reading through the
    /// cache.  `valid_len < PAGE_SIZE` on the tail page; the remainder of the
    /// frame is zeroed.
    ///
    /// # Errors
    ///
    /// I/O errors from the underlying segment read.
    pub fn page(&mut self, page_no: u64) -> Result<(&[u8], usize)> {
        if let Some(idx) = self.frames.iter().position(|f| f.page_no == page_no) {
            self.hits += 1;
            self.frames[idx].referenced = true;
            let frame = &self.frames[idx];
            return Ok((&frame.data, frame.valid));
        }
        self.misses += 1;
        let mut data = vec![0u8; PAGE_SIZE].into_boxed_slice();
        let valid = self.segment.read_page(page_no, &mut data)?;
        let frame = Frame {
            page_no,
            valid,
            referenced: true,
            data,
        };
        let idx = if self.frames.len() < POOL_FRAMES {
            self.frames.push(frame);
            self.frames.len() - 1
        } else {
            // Clock sweep: clear reference bits until a victim is found.
            loop {
                let candidate = self.hand;
                self.hand = (self.hand + 1) % self.frames.len();
                if self.frames[candidate].referenced {
                    self.frames[candidate].referenced = false;
                } else {
                    self.frames[candidate] = frame;
                    self.evictions += 1;
                    break candidate;
                }
            }
        };
        let frame = &self.frames[idx];
        Ok((&frame.data, frame.valid))
    }

    /// Drops every cached frame.  The writer mutates the tail page directly,
    /// so readers that interleave with appends invalidate before scanning.
    pub fn invalidate(&mut self) {
        self.frames.clear();
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_segment(name: &str, pages: usize) -> SegmentFile {
        let dir = std::env::temp_dir().join("ns_store_buffer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        let _ = std::fs::remove_file(&path);
        let mut seg = SegmentFile::open(&path).unwrap();
        let mut buf = vec![0u8; PAGE_SIZE];
        for p in 0..pages {
            buf.fill(p as u8);
            seg.write_page(p as u64, &buf, PAGE_SIZE).unwrap();
        }
        seg
    }

    #[test]
    fn repeat_reads_hit_the_cache() {
        let mut pool = BufferPool::new(temp_segment("hits.bin", 2));
        for _ in 0..5 {
            let (bytes, valid) = pool.page(1).unwrap();
            assert_eq!(valid, PAGE_SIZE);
            assert!(bytes.iter().all(|&b| b == 1));
        }
        let (hits, misses) = pool.stats();
        assert_eq!((hits, misses), (4, 1));
    }

    #[test]
    fn clock_evicts_and_rereads_correct_bytes() {
        let pages = POOL_FRAMES + 3;
        let mut pool = BufferPool::new(temp_segment("evict.bin", pages));
        // Touch more pages than the pool holds, twice, and verify contents.
        for round in 0..2 {
            for p in 0..pages {
                let (bytes, valid) = pool.page(p as u64).unwrap();
                assert_eq!(valid, PAGE_SIZE, "round {round} page {p}");
                assert!(bytes.iter().all(|&b| b == p as u8));
            }
        }
        let (_, misses) = pool.stats();
        assert!(misses > POOL_FRAMES as u64, "eviction must have happened");
    }

    #[test]
    fn invalidate_forces_reread() {
        let mut pool = BufferPool::new(temp_segment("inval.bin", 1));
        pool.page(0).unwrap();
        pool.invalidate();
        pool.page(0).unwrap();
        assert_eq!(pool.stats(), (0, 2));
    }
}
