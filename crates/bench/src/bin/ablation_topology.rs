//! Ablation — how the communication-network topology shapes the
//! privacy/communication trade-off.
//!
//! The paper's analysis applies to any connected, non-bipartite graph; this
//! experiment compares, at equal population and mean degree, how many rounds
//! different topologies need before the central ε converges: random regular
//! (peer-discovery overlays), Watts–Strogatz small world, Barabási–Albert
//! scale-free, stochastic block model (strong communities) and a torus grid
//! (geographic meshes).
//!
//! ```text
//! cargo run --release -p ns-bench --bin ablation_topology
//! ```

use network_shuffle::accountant::planning::rounds_for_target_epsilon;
use network_shuffle::prelude::*;
use ns_bench::{fmt, print_table, write_csv, DELTA, SEED};
use ns_graph::connectivity::largest_connected_component;
use ns_graph::generators;
use ns_graph::rng::seeded_rng;
use ns_graph::Graph;

fn main() {
    let n = 4_225usize; // 65 x 65 torus; other generators match this size
    let epsilon_0 = 1.0;
    let mut rng = seeded_rng(SEED);

    let topologies: Vec<(&str, Graph)> = vec![
        (
            "random 4-regular",
            generators::random_regular(n, 4, &mut rng).expect("graph"),
        ),
        (
            "Watts-Strogatz (k=4, beta=0.1)",
            generators::watts_strogatz(n, 4, 0.1, &mut rng).expect("graph"),
        ),
        (
            "Barabasi-Albert (m=2)",
            generators::barabasi_albert(n, 2, &mut rng).expect("graph"),
        ),
        ("SBM (8 blocks, strong communities)", {
            let raw =
                generators::stochastic_block_model(n, 8, 0.009, 0.0002, &mut rng).expect("graph");
            largest_connected_component(&raw).0
        }),
        ("torus 65x65", generators::torus(65, 65).expect("graph")),
    ];

    let headers = vec![
        "topology",
        "n (LCC)",
        "Gamma_G",
        "spectral gap",
        "mixing time",
        "rounds to converge",
        "eps at convergence (A_single)",
    ];
    let mut rows = Vec::new();
    for (name, graph) in &topologies {
        let accountant = match NetworkShuffleAccountant::new(graph) {
            Ok(acc) => acc,
            Err(e) => {
                // The torus with even dimensions would be bipartite; handled
                // by construction (65 is odd), but keep the fallback visible.
                println!("{name}: skipped ({e})");
                continue;
            }
        };
        let n_lcc = accountant.node_count();
        let params = AccountantParams::new(n_lcc, epsilon_0, DELTA, DELTA).expect("params");
        let gamma = ns_graph::degree::DegreeStats::compute(graph)
            .expect("stats")
            .irregularity;
        let (rounds, eps) = rounds_for_target_epsilon(
            &accountant,
            ProtocolKind::Single,
            Scenario::Stationary,
            &params,
            0.01,
            20_000,
        )
        .expect("search");
        rows.push(vec![
            name.to_string(),
            n_lcc.to_string(),
            fmt(gamma),
            fmt(accountant.mixing_profile().spectral_gap),
            accountant.mixing_time().to_string(),
            rounds.to_string(),
            fmt(eps),
        ]);
    }

    print_table(
        "Ablation: topology vs. rounds needed for the central epsilon to converge (n ~ 4,225, eps0 = 1)",
        &headers,
        &rows,
    );
    write_csv("ablation_topology", &headers, &rows);
    println!(
        "\nshape check: expander-like topologies (random regular, scale-free, moderately assortative\n\
         SBM) converge within tens of rounds; a barely-rewired ring (Watts-Strogatz at beta = 0.1)\n\
         needs hundreds and a torus grid thousands of rounds, because the privacy bound is driven\n\
         entirely by the spectral gap."
    );
}
