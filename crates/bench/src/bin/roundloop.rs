//! Memory-bound round-loop throughput: report-moves/s of the unified
//! kernel at populations where the position array and CSR no longer fit in
//! cache, in both draw modes, with a steady-state allocation audit.
//!
//! ```text
//! cargo run --release -p ns-bench --bin roundloop
//! NS_ROUNDLOOP_N=100000 NS_ROUNDLOOP_ROUNDS=50 cargo run --release -p ns-bench --bin roundloop
//! ```
//!
//! The topology is a strided circulant (degree 8, strides `1` plus three
//! primes near `n/7`, `n/3` and `n/2`), so every CSR row build-s in O(1)
//! but every *gather* of a neighbour row and every position write lands far
//! from the last one — at the default `n = 10M` the working set is ~200 MB
//! and the round loop is genuinely DRAM-bound, which is exactly the regime
//! the `fast` draw mode's lane buffers, branchless decide, u32 compression
//! and prefetching target.
//!
//! Both sweep orders of the unified kernel are measured: `walker` is the
//! pure transport round (positions + CSR gather only), `holder` adds the
//! per-node report buckets through the counting-sort exchange.  One warm-up
//! block runs before timing (it also settles the kernel arenas to their
//! high-water marks); the timed block then counts allocations, so the
//! emitted `allocs_per_round` doubles as the steady-state audit on the
//! memory-bound config.  Results go to stdout and, machine-readable, to
//! `BENCH_roundloop.json` (override with `NS_ROUNDLOOP_OUT`), one entry per
//! measured (order, mode) pair so the perf trajectory is diffable across
//! PRs.
//!
//! Env knobs: `NS_ROUNDLOOP_N` (population, default 10M),
//! `NS_ROUNDLOOP_ROUNDS` (timed rounds, default 10), `NS_ROUNDLOOP_MODE`
//! (`compat`, `fast` or `both`, default `both`), `NS_ROUNDLOOP_ORDER`
//! (`walker`, `holder` or `both`, default `both`), `NS_ROUNDLOOP_OUT`
//! (output path).

use ns_graph::generators::strided_circulant;
use ns_graph::mixing_engine::MixingEngine;
use ns_graph::rng::seeded_rng;
use ns_graph::round::DrawMode;
use ns_graph::telemetry::EngineTelemetry;
use ns_graph::Graph;
use ns_obs::MetricsRegistry;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Pass-through allocator counting allocation events, so the bench can
/// report allocs/round on the exact configuration it times.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

#[allow(unsafe_code)]
// Audited pass-through to the system allocator: the only added behaviour is
// the relaxed counter bump.
unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One measured configuration.
struct Measurement {
    mode: DrawMode,
    order: &'static str,
    rounds: usize,
    moves_per_s: f64,
    allocs_per_round: f64,
}

/// Runs `rounds` timed rounds (after a warm-up block) in the given sweep
/// order and returns throughput plus steady-state allocations per round.
///
/// Both sweep orders are the unified kernel: `walker` is the pure
/// transport round (positions + CSR gather only — the configuration where
/// the fast lane's prefetch lookahead does the most, since compat's inline
/// draws leave nothing to prefetch against), `holder` additionally
/// maintains the per-node report buckets through the counting-sort
/// exchange, whose scatter traffic is identical in both modes.
fn measure(
    graph: &Graph,
    mode: DrawMode,
    order: &'static str,
    rounds: usize,
    laziness: f64,
    registry: &MetricsRegistry,
) -> Measurement {
    let n = graph.node_count();
    let mut engine = MixingEngine::one_walker_per_node(graph).expect("engine");
    engine.set_draw_mode(mode);
    // Telemetry stays attached through the timed block: the allocs/round
    // audit below therefore covers the instrumented hot path, which must
    // record into its preregistered slots without allocating.
    engine.set_telemetry(Some(EngineTelemetry::register(registry)));
    let mut rng = seeded_rng(0xB0B);
    let round = |engine: &mut MixingEngine, rng: &mut _| match order {
        "walker" => engine.step(laziness, rng),
        _ => engine.step_holder(laziness, rng, &mut ()),
    };
    // Warm-up: pulls the CSR and position array through the cache hierarchy
    // once and settles the kernel arenas to their high-water marks.
    let warmup = rounds.clamp(2, 5);
    for _ in 0..warmup {
        round(&mut engine, &mut rng);
    }
    let allocs_before = ALLOCATIONS.load(Ordering::Relaxed);
    let start = Instant::now();
    for _ in 0..rounds {
        round(&mut engine, &mut rng);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let allocs = ALLOCATIONS.load(Ordering::Relaxed) - allocs_before;
    // Keep the final state observable so the loop cannot be elided.
    assert_eq!(engine.round(), warmup + rounds);
    Measurement {
        mode,
        order,
        rounds,
        moves_per_s: (n * rounds) as f64 / elapsed,
        allocs_per_round: allocs as f64 / rounds as f64,
    }
}

fn mode_name(mode: DrawMode) -> &'static str {
    match mode {
        DrawMode::Compat => "compat",
        DrawMode::Fast => "fast",
    }
}

fn main() {
    let n = env_usize("NS_ROUNDLOOP_N", 10_000_000);
    let rounds = env_usize("NS_ROUNDLOOP_ROUNDS", 10);
    let mode_sel = std::env::var("NS_ROUNDLOOP_MODE").unwrap_or_else(|_| "both".into());
    let out_path = ns_bench::bench_output_path("NS_ROUNDLOOP_OUT", "BENCH_roundloop.json");
    let laziness = 0.2;

    // Degree-8 strided circulant: stride 1 keeps it connected, the three
    // larger strides (co-prime with n after the +1 adjustment) scatter the
    // gathers across the whole address range.
    let far = |frac: usize| {
        let mut s = (n / frac).max(2) | 1; // odd, so gcd with power-of-two n is 1
        if n.is_multiple_of(s) {
            s += 2;
        }
        s
    };
    let strides = [1, far(7), far(3), far(2)];
    eprintln!("building strided circulant: n={n} strides={strides:?}");
    let graph = strided_circulant(n, &strides).expect("graph");
    eprintln!(
        "graph ready: {} nodes, {} edges, csr {} MB",
        graph.node_count(),
        graph.edge_count(),
        graph.memory_bytes() / (1 << 20)
    );

    let modes: Vec<DrawMode> = match mode_sel.as_str() {
        "compat" => vec![DrawMode::Compat],
        "fast" => vec![DrawMode::Fast],
        _ => vec![DrawMode::Compat, DrawMode::Fast],
    };

    let order_sel = std::env::var("NS_ROUNDLOOP_ORDER").unwrap_or_else(|_| "both".into());
    let orders: Vec<&'static str> = match order_sel.as_str() {
        "walker" => vec!["walker"],
        "holder" => vec!["holder"],
        _ => vec!["walker", "holder"],
    };

    let registry = MetricsRegistry::new();
    let mut results = Vec::new();
    for &order in &orders {
        for &mode in &modes {
            let m = measure(&graph, mode, order, rounds, laziness, &registry);
            println!(
                "n={n} rounds={} order={} mode={} report-moves/s={:.3}M allocs/round={:.1}",
                m.rounds,
                m.order,
                mode_name(m.mode),
                m.moves_per_s / 1e6,
                m.allocs_per_round
            );
            results.push(m);
        }
    }

    // Hand-written JSON (the workspace's serde shim is a no-op, so emit the
    // bytes directly); one flat entry per mode keeps the file diffable, and
    // the shared writer closes the array with the telemetry snapshot the
    // measured engines recorded into.
    let entries: Vec<String> = results
        .iter()
        .map(|m| {
            format!(
                "{{\"bench\": \"roundloop\", \"n\": {n}, \"rounds\": {}, \"order\": \"{}\", \
                 \"mode\": \"{}\", \"report_moves_per_s\": {:.0}, \"allocs_per_round\": {:.2}}}",
                m.rounds,
                m.order,
                mode_name(m.mode),
                m.moves_per_s,
                m.allocs_per_round,
            )
        })
        .collect();
    ns_bench::write_bench_json(&out_path, &entries, &registry).expect("write output");
    eprintln!("wrote {}", out_path.display());
}
