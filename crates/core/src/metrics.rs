//! Traffic and memory metrics backing the complexity comparison of Table 3.
//!
//! Table 3 of the paper compares Prochlo, mix-nets and network shuffling on
//! *entity space complexity* (memory needed by whoever performs the
//! shuffling) and *user traffic complexity* (reports sent per user).  The
//! simulation records the corresponding concrete quantities so the
//! `table3` experiment can show the empirical scaling.

use serde::{Deserialize, Serialize};

/// Per-run traffic and memory measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMetrics {
    /// Number of users `n`.
    pub user_count: usize,
    /// Number of communication rounds executed.
    pub rounds: usize,
    /// Relay messages sent by each user over the whole run.
    pub messages_per_user: Vec<usize>,
    /// Largest number of reports simultaneously held by each user.
    pub peak_reports_per_user: Vec<usize>,
    /// Total number of reports received by the curator.
    pub server_reports: usize,
}

impl TrafficMetrics {
    /// Total relay messages across all users.
    pub fn total_messages(&self) -> usize {
        self.messages_per_user.iter().sum()
    }

    /// Mean relay messages per user.
    pub fn mean_messages_per_user(&self) -> f64 {
        if self.user_count == 0 {
            0.0
        } else {
            self.total_messages() as f64 / self.user_count as f64
        }
    }

    /// Maximum relay messages sent by any single user.
    pub fn max_messages_per_user(&self) -> usize {
        self.messages_per_user.iter().copied().max().unwrap_or(0)
    }

    /// Maximum number of reports any user had to hold at once — the user-side
    /// memory requirement (`O(1)` in expectation for network shuffling).
    pub fn max_peak_reports(&self) -> usize {
        self.peak_reports_per_user.iter().copied().max().unwrap_or(0)
    }

    /// Mean of the per-user peak report counts.
    pub fn mean_peak_reports(&self) -> f64 {
        if self.user_count == 0 {
            0.0
        } else {
            self.peak_reports_per_user.iter().sum::<usize>() as f64 / self.user_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> TrafficMetrics {
        TrafficMetrics {
            user_count: 4,
            rounds: 3,
            messages_per_user: vec![3, 4, 2, 3],
            peak_reports_per_user: vec![1, 2, 1, 3],
            server_reports: 4,
        }
    }

    #[test]
    fn aggregates() {
        let m = metrics();
        assert_eq!(m.total_messages(), 12);
        assert!((m.mean_messages_per_user() - 3.0).abs() < 1e-12);
        assert_eq!(m.max_messages_per_user(), 4);
        assert_eq!(m.max_peak_reports(), 3);
        assert!((m.mean_peak_reports() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn empty_metrics_do_not_divide_by_zero() {
        let m = TrafficMetrics {
            user_count: 0,
            rounds: 0,
            messages_per_user: vec![],
            peak_reports_per_user: vec![],
            server_reports: 0,
        };
        assert_eq!(m.mean_messages_per_user(), 0.0);
        assert_eq!(m.mean_peak_reports(), 0.0);
        assert_eq!(m.max_messages_per_user(), 0);
        assert_eq!(m.max_peak_reports(), 0);
    }
}
