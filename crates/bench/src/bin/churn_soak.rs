//! Long-horizon churn soak: does the incremental runtime hold the line
//! where the static one decays?
//!
//! ```text
//! cargo run --release -p ns-bench --bin churn_soak
//! NS_SOAK_N=400 NS_SOAK_ROUNDS=30 cargo run --release -p ns-bench --bin churn_soak
//! ```
//!
//! Two experiments, one file (`BENCH_churn_soak.json`, override with
//! `NS_SOAK_OUT`):
//!
//! 1. **Delta micro-bench** — the accountant's critical-path kernel, in
//!    isolation: dense ensemble advance vs the per-column correction
//!    ([`DistributionEnsemble::correct_columns`]) at affected-column
//!    fractions 1–50% on the soak topology, warm buffers, identical
//!    tracked-row shape.  This is the `speedup` the delta path buys at a
//!    given churn radius; the acceptance line is ≥ 5× at a 5% affected
//!    fraction.
//!
//! 2. **Markov churn soak** — `NS_SOAK_ROUNDS` rounds over a planted
//!    8-community graph whose nodes keep drifting between communities
//!    (`NS_SOAK_CHURN` movers per 1000 nodes per round, each rewired
//!    toward its new community).  Both arms run the full stack — sharded
//!    engine with per-round retargeting, streaming accountant priced on
//!    the realized masked operator — under **identical** churn streams:
//!
//!    * `off` is HEAD's behaviour: the round-0 partition forever, a dense
//!      accountant advance on the critical path of every round;
//!    * `on` is the incremental runtime: speculative advance off the
//!      critical path + sparse column correction on it, and every
//!      `NS_SOAK_EPOCH` rounds a bounded online refinement
//!      ([`Partition::refined_assignment`]) migrated into the live engine
//!      ([`ShardedMixingEngine::migrate_owned`]), movers masked for one
//!      round so the accountant prices the exchange.
//!
//!    The emitted per-arm series (live edge-cut fraction + critical-path
//!    rounds/s, sampled per epoch) is the headline: `off` decays in cut
//!    while `on` holds ~flat at a fraction of the critical-path cost.
//!
//! Env knobs: `NS_SOAK_N` (nodes, default 100k), `NS_SOAK_ROUNDS`
//! (default 1000), `NS_SOAK_CHURN` (movers/1000 nodes/round, default 2),
//! `NS_SOAK_EPOCH` (repartition cadence, default 25), `NS_SOAK_OUT`.

use ns_graph::delta::affected_columns;
use ns_graph::dynamic::{DynTransition, DynamicGraph};
use ns_graph::ensemble::DistributionEnsemble;
use ns_graph::partition::Partition;
use ns_graph::rng::{seeded_rng, SimRng};
use ns_graph::round::DrawMode;
use ns_graph::sharded_engine::ShardedMixingEngine;
use ns_graph::{Graph, NodeId};
use rand::Rng;
use std::sync::Arc;
use std::time::Instant;

const SHARDS: usize = 8;
const LAZINESS: f64 = 0.2;
const TRACKED_PER_SHARD: usize = 4;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Planted 8-community topology in O(n·d): every node draws ~3 partners
/// from its own community and 1 from a random other one, plus a ring edge
/// inside the community so no node can end up isolated.  (The library's
/// stochastic block model is O(n²) per pair probe — unusable at soak n.)
fn planted_communities(n: usize, communities: &[usize], rng: &mut SimRng) -> Graph {
    let k = SHARDS;
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for (u, &c) in communities.iter().enumerate() {
        members[c].push(u);
    }
    let mut edges: std::collections::HashSet<(NodeId, NodeId)> = std::collections::HashSet::new();
    let push = |edges: &mut std::collections::HashSet<(NodeId, NodeId)>, u: NodeId, v: NodeId| {
        if u != v {
            edges.insert((u.min(v), u.max(v)));
        }
    };
    for c in 0..k {
        let m = &members[c];
        for (i, &u) in m.iter().enumerate() {
            // Community ring: guarantees degree ≥ 2 inside the community.
            push(&mut edges, u, m[(i + 1) % m.len()]);
            // ~3 intra partners.
            for _ in 0..3 {
                push(&mut edges, u, m[rng.gen_range(0..m.len())]);
            }
            // 1 inter partner.
            let other = (c + 1 + rng.gen_range(0..k - 1)) % k;
            let om = &members[other];
            push(&mut edges, u, om[rng.gen_range(0..om.len())]);
        }
    }
    let list: Vec<(NodeId, NodeId)> = edges.into_iter().collect();
    Graph::from_edges(n, &list).expect("planted graph")
}

/// One churn round: `movers` nodes relocate to a fresh community — most of
/// their old-community edges drop (degree-guarded) and four edges wire
/// into the new one, so the mover's neighbourhood majority genuinely
/// flips.  Returns the touched nodes (the dirty set this wave creates).
/// Pure function of `(rng, communities, graph-edge-state)` — availability
/// never feeds back, so the `off` and `on` arms replay identical streams.
fn churn_round(
    dg: &mut DynamicGraph,
    communities: &mut [usize],
    members: &mut [Vec<NodeId>],
    rng: &mut SimRng,
    movers: usize,
) -> Vec<NodeId> {
    let n = dg.node_count();
    for _ in 0..movers {
        let u = rng.gen_range(0..n);
        let old = communities[u];
        let new = (old + 1 + rng.gen_range(0..SHARDS - 1)) % SHARDS;
        // Drop the mover's edges outside the new community (degree-guarded
        // on both endpoints, so nobody can approach isolation).
        let old_neighbors: Vec<NodeId> = dg
            .neighbors(u)
            .iter()
            .copied()
            .filter(|&v| communities[v] != new)
            .collect();
        for v in old_neighbors {
            if dg.degree(u) > 2 && dg.degree(v) > 2 {
                dg.remove_edge(u, v).expect("remove");
            }
        }
        // Wire four edges into the new community.
        for _ in 0..4 {
            let m = &members[new];
            let v = m[rng.gen_range(0..m.len())];
            if u != v {
                let _ = dg.add_edge(u, v).expect("add");
            }
        }
        // Book-keeping: move u between the community member lists.
        let slot = members[old].iter().position(|&x| x == u).expect("member");
        members[old].swap_remove(slot);
        members[new].push(u);
        communities[u] = new;
    }
    dg.dirty_list().to_vec()
}

/// Part 1: dense advance vs per-column correction on warm, well-mixed
/// tracked rows — the two critical-path kernels the runtime chooses
/// between, at a sweep of affected-column fractions.
fn delta_microbench(graph: &Graph, out: &mut Vec<String>) -> f64 {
    let n = graph.node_count();
    let mut dg = DynamicGraph::from_graph(graph).expect("dynamic");
    let op: DynTransition = Arc::new(dg.masked_operator(LAZINESS).expect("operator"));
    let rows = SHARDS * TRACKED_PER_SHARD;
    let origins: Vec<NodeId> = (0..rows).map(|r| r * (n / rows)).collect();
    let mut ens = DistributionEnsemble::point_masses(n, &origins).expect("ensemble");
    // Mix until the rows are dense — the steady-state shape both kernels see.
    ens.advance_auto(op.as_ref(), 30);
    let mut prev = Vec::new();
    let mut prev_il = Vec::new();

    // Dense baseline, best of 3.  The speculative advance is the same dense
    // kernel (plus the off-critical interleave, timed separately below).
    let reps = 3;
    let mut dense_s = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        ens.speculate_auto(op.as_ref(), &mut prev);
        dense_s = dense_s.min(start.elapsed().as_secs_f64());
    }
    // The transpose that rides along with speculation, for the record.
    let start = Instant::now();
    ns_graph::ensemble::interleave_rows(rows, n, &prev, &mut prev_il);
    let interleave_s = start.elapsed().as_secs_f64();
    println!(
        "delta micro: speculation interleave overlay {:.3}ms (off critical path)",
        interleave_s * 1e3
    );

    let mut col_rng = seeded_rng(0x50AC);
    let mut speedup_at_5pct = 0.0;
    for &pct in &[1usize, 2, 5, 10, 25, 50] {
        let want = (n * pct / 100).max(1);
        // A contiguous window starting at a random offset: clustered the way
        // a churn neighbourhood is, covering `pct`% of the columns.
        let start_col = col_rng.gen_range(0..n);
        let mut columns: Vec<NodeId> = (0..want).map(|i| (start_col + i) % n).collect();
        columns.sort_unstable();
        let mut correct_s = f64::INFINITY;
        for _ in 0..reps {
            let start = Instant::now();
            ens.correct_columns_interleaved(op.as_ref(), &columns, &prev_il);
            correct_s = correct_s.min(start.elapsed().as_secs_f64());
        }
        let speedup = dense_s / correct_s;
        if pct == 5 {
            speedup_at_5pct = speedup;
        }
        println!(
            "delta micro: affected={pct}% dense={:.3}ms correct={:.3}ms speedup={:.1}x",
            dense_s * 1e3,
            correct_s * 1e3,
            speedup
        );
        out.push(format!(
            "  {{\"bench\": \"delta_advance\", \"n\": {n}, \"affected_pct\": {pct}, \
             \"dense_ms\": {:.4}, \"correct_ms\": {:.4}, \"speedup\": {:.2}}}",
            dense_s * 1e3,
            correct_s * 1e3,
            speedup
        ));
    }
    speedup_at_5pct
}

struct EpochSample {
    round: usize,
    cut_fraction: f64,
    critical_rounds_per_s: f64,
}

struct ArmResult {
    arm: &'static str,
    samples: Vec<EpochSample>,
    wall_s: f64,
    critical_s: f64,
    offcritical_s: f64,
    migrations: usize,
    movers_total: usize,
    /// Cut of the true-final-communities partition on the final topology.
    oracle_cut: f64,
}

/// Part 2: one soak arm.  `incremental = false` replays HEAD (static
/// round-0 partition, dense accounting on the critical path);
/// `incremental = true` runs the delta + online-repartitioning runtime.
/// Both consume bitwise-identical churn streams.
#[allow(clippy::too_many_arguments)]
fn soak_arm(
    graph: &Graph,
    communities0: &[usize],
    incremental: bool,
    n: usize,
    rounds: usize,
    movers_per_round: usize,
    epoch: usize,
    seed: u64,
    registry: &ns_obs::MetricsRegistry,
) -> ArmResult {
    use network_shuffle::service::StreamingAccountant;

    let arm = if incremental { "on" } else { "off" };
    let mut communities: Vec<usize> = communities0.to_vec();
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); SHARDS];
    for (u, &c) in communities.iter().enumerate() {
        members[c].push(u);
    }
    let assignment: Vec<u32> = communities.iter().map(|&c| c as u32).collect();
    let partition0 = Partition::from_assignment(graph, SHARDS, assignment).expect("partition");
    let mut partition = partition0.clone();
    let mut dg = DynamicGraph::from_graph(graph).expect("dynamic");
    let mut churn_rng = seeded_rng(seed);

    let mut engine = ShardedMixingEngine::one_walker_per_node(graph, &partition0, seed ^ 0xE0E0)
        .expect("engine");
    engine.set_draw_mode(DrawMode::Fast);
    // The engine owns its topology from here on: the borrowed `graph` and
    // `partition0` stay untouched while the owned copies track the churn.
    engine.retarget_owned(graph.clone()).expect("retarget");
    let movers = engine
        .migrate_owned(partition0.clone())
        .expect("initial migrate");
    assert!(movers.is_empty(), "round-0 migration moves nobody");

    let op0: DynTransition = Arc::new(dg.masked_operator(LAZINESS).expect("operator"));
    let schedule = ns_graph::dynamic::TimeVaryingModel::constant(op0).expect("schedule");
    let mut accountant =
        StreamingAccountant::with_schedule(graph, &partition, schedule, TRACKED_PER_SHARD)
            .expect("accountant");
    // Both arms run instrumented: the engine's phase timers and the delta
    // accountant's speculate/commit counters land in the registry whose
    // snapshot closes BENCH_churn_soak.json.
    engine.set_telemetry(Some(ns_graph::telemetry::EngineTelemetry::register(
        registry,
    )));
    accountant.set_telemetry(Some(
        network_shuffle::telemetry::AccountantTelemetry::register(registry),
    ));

    let mut samples = Vec::new();
    let mut critical_s = 0.0f64;
    let mut offcritical_s = 0.0f64;
    let mut epoch_critical_s = 0.0f64;
    let mut rounds_in_window = 0usize;
    let mut epoch_seeds: Vec<NodeId> = Vec::new();
    let mut migrations = 0usize;
    let mut movers_total = 0usize;
    let mut mask = vec![true; n];
    let mut pending_unmask: Vec<NodeId> = Vec::new();
    let wall_start = Instant::now();

    for round in 0..rounds {
        // Off the critical path: speculate under the operator we hold,
        // before this round's churn has landed.
        if incremental {
            let t = Instant::now();
            accountant.speculate_round();
            offcritical_s += t.elapsed().as_secs_f64();
        }

        // Movers masked last round come back before new churn lands.
        let mut touched: Vec<NodeId> = std::mem::take(&mut pending_unmask);
        for &u in &touched {
            dg.set_available(u, true).expect("unmask");
            mask[u] = true;
        }

        // The churn wave (identical stream in both arms).
        touched.extend(churn_round(
            &mut dg,
            &mut communities,
            &mut members,
            &mut churn_rng,
            movers_per_round,
        ));
        epoch_seeds.extend(touched.iter().copied());

        // Epoch boundary, incremental arm: refine the partition online and
        // migrate the engine; the movers go dark for this round.
        if incremental && round > 0 && round % epoch == 0 {
            epoch_seeds.sort_unstable();
            epoch_seeds.dedup();
            let budget = movers_per_round * epoch * 2;
            let (refined, moved) = partition
                .refined_assignment(&dg, &epoch_seeds, budget)
                .expect("refine");
            epoch_seeds.clear();
            if !moved.is_empty() {
                let next =
                    Partition::from_assignment(dg.snapshot(), SHARDS, refined).expect("partition");
                let movers = engine.migrate_owned(next.clone()).expect("migrate");
                partition = next;
                migrations += 1;
                movers_total += movers.len();
                for &u in &movers {
                    dg.set_available(u, false).expect("mask");
                    mask[u] = false;
                    touched.push(u);
                }
                pending_unmask = movers;
            }
        }

        // Realize this round's operator and price it.
        let realized: DynTransition = Arc::new(dg.masked_operator(LAZINESS).expect("operator"));
        let snapshot = dg.snapshot().clone();
        let t = Instant::now();
        if incremental {
            let columns = affected_columns(&snapshot, &touched);
            accountant.commit_round(realized.clone(), &columns);
        } else {
            accountant.commit_round(realized.clone(), &[]);
        }
        let dt = t.elapsed().as_secs_f64();
        critical_s += dt;
        epoch_critical_s += dt;

        // Move the walkers over the live topology.
        engine.retarget_owned(snapshot).expect("retarget");
        engine.step_masked(LAZINESS, &mask, &mut ());

        rounds_in_window += 1;
        // Sample at the END of each epoch-boundary round — right *after*
        // the incremental arm's migration, so the series shows the quality
        // the repartitioned steady state holds, not the sawtooth's low
        // point one round before the next refinement.
        if round % epoch == 0 || round + 1 == rounds {
            let cut = partition.live_edge_cut_fraction(&dg).expect("cut");
            samples.push(EpochSample {
                round: round + 1,
                cut_fraction: cut,
                critical_rounds_per_s: rounds_in_window as f64 / epoch_critical_s.max(1e-12),
            });
            epoch_critical_s = 0.0;
            rounds_in_window = 0;
        }
    }
    let wall_s = wall_start.elapsed().as_secs_f64();
    // Oracle floor: the cut a partition tracking the *true* final
    // communities would pay on the final topology — the best any online
    // refinement could hope to hold.
    let oracle: Vec<u32> = communities.iter().map(|&c| c as u32).collect();
    let oracle_cut = Partition::from_assignment(dg.snapshot(), SHARDS, oracle)
        .expect("oracle partition")
        .live_edge_cut_fraction(&dg)
        .expect("oracle cut");
    let stats = accountant.worst_stats();
    eprintln!(
        "arm={arm} rounds={rounds} wall={wall_s:.1}s critical={critical_s:.1}s \
         offcritical={offcritical_s:.1}s migrations={migrations} movers={movers_total} \
         oracle_cut={oracle_cut:.4} worst_l2={:.3e}",
        stats.sum_of_squares
    );
    ArmResult {
        arm,
        samples,
        wall_s,
        critical_s,
        offcritical_s,
        migrations,
        movers_total,
        oracle_cut,
    }
}

fn main() {
    let n = env_usize("NS_SOAK_N", 100_000);
    let rounds = env_usize("NS_SOAK_ROUNDS", 1000);
    let churn_permille = env_usize("NS_SOAK_CHURN", 2);
    let epoch = env_usize("NS_SOAK_EPOCH", 25).max(1);
    let out_path = ns_bench::bench_output_path("NS_SOAK_OUT", "BENCH_churn_soak.json");
    let movers_per_round = (n * churn_permille / 1000).max(1);

    let mut build_rng = seeded_rng(0x50A4);
    let communities: Vec<usize> = (0..n).map(|u| u * SHARDS / n).collect();
    eprintln!("building planted {SHARDS}-community graph: n={n}");
    let graph = planted_communities(n, &communities, &mut build_rng);
    eprintln!(
        "graph ready: {} nodes, {} edges; churn {movers_per_round} movers/round, epoch {epoch}",
        graph.node_count(),
        graph.edge_count()
    );

    let registry = ns_obs::MetricsRegistry::new();
    let mut entries: Vec<String> = Vec::new();
    let speedup_5 = delta_microbench(&graph, &mut entries);

    // NS_SOAK_ROUNDS=0 runs the micro-bench alone.
    for incremental in [false, true].into_iter().filter(|_| rounds > 0) {
        let r = soak_arm(
            &graph,
            &communities,
            incremental,
            n,
            rounds,
            movers_per_round,
            epoch,
            0xC4A2,
            &registry,
        );
        let first = &r.samples[0];
        let last = r.samples.last().expect("samples");
        println!(
            "soak arm={}: cut {:.4} -> {:.4} (oracle {:.4}), critical rounds/s {:.1} -> {:.1}, \
             migrations={} movers={}",
            r.arm,
            first.cut_fraction,
            last.cut_fraction,
            r.oracle_cut,
            first.critical_rounds_per_s,
            last.critical_rounds_per_s,
            r.migrations,
            r.movers_total
        );
        let series: Vec<String> = r
            .samples
            .iter()
            .map(|s| {
                format!(
                    "{{\"round\": {}, \"cut_fraction\": {:.5}, \"critical_rounds_per_s\": {:.2}}}",
                    s.round, s.cut_fraction, s.critical_rounds_per_s
                )
            })
            .collect();
        entries.push(format!(
            "  {{\"bench\": \"churn_soak\", \"arm\": \"{}\", \"n\": {n}, \"rounds\": {rounds}, \
             \"movers_per_round\": {movers_per_round}, \"epoch\": {epoch}, \
             \"wall_s\": {:.2}, \"critical_s\": {:.2}, \"offcritical_s\": {:.2}, \
             \"migrations\": {}, \"movers_total\": {}, \"oracle_cut_fraction\": {:.5}, \
             \"series\": [{}]}}",
            r.arm,
            r.wall_s,
            r.critical_s,
            r.offcritical_s,
            r.migrations,
            r.movers_total,
            r.oracle_cut,
            series.join(", ")
        ));
    }

    println!("delta speedup at 5% affected: {speedup_5:.1}x");
    ns_bench::write_bench_json(&out_path, &entries, &registry).expect("write output");
    eprintln!("wrote {}", out_path.display());
}
