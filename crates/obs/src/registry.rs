//! The lock-free metrics registry.
//!
//! Shape: a registry is a named directory of **slots** created up front
//! (setup-time, mutex-guarded, may allocate) and **handles** that record
//! into those slots (hot-path, one relaxed atomic op, never allocates).
//! Handles are `Clone + Send + Sync` — cloning bumps an `Arc`, so the
//! same counter can be held by the engine, the coordinator and a worker
//! thread at once.
//!
//! Asking a registry for an already-registered name returns a handle to
//! the **same** slot, so layers that instrument independently (engine,
//! accountant, store) converge on one metrics vocabulary without passing
//! handles around.

use crate::clock::Clock;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of log2 buckets in a [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.  Relaxed; never allocates.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins gauge.
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge.  Relaxed; never allocates.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared storage of one histogram: fixed log2 buckets plus running
/// count and sum, all atomics — recording is lock-free and
/// allocation-free.
#[derive(Debug)]
pub struct HistogramSlots {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramSlots {
    fn new() -> Self {
        HistogramSlots {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// A fixed-bucket log2 histogram.
///
/// Bucket `0` holds the value `0`; bucket `i` (for `1 <= i < 63`) holds
/// values in `[2^(i-1), 2^i - 1]` — i.e. the values of bit width `i` —
/// and bucket `63` absorbs everything from `2^62` up.  The mapping is
/// [`Histogram::bucket_index`]; bounds via [`Histogram::bucket_bounds`].
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramSlots>);

impl Histogram {
    /// Records one value.  Three relaxed atomic ops; never allocates.
    pub fn record(&self, v: u64) {
        let slots = &*self.0;
        slots.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        slots.count.fetch_add(1, Ordering::Relaxed);
        slots.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// The bucket a value lands in: `0` for `0`, otherwise the value's
    /// bit width clamped to the last bucket.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
        }
    }

    /// Inclusive `[lo, hi]` value range of bucket `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= HISTOGRAM_BUCKETS`.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < HISTOGRAM_BUCKETS, "bucket {i} out of range");
        match i {
            0 => (0, 0),
            _ if i == HISTOGRAM_BUCKETS - 1 => (1 << (HISTOGRAM_BUCKETS - 2), u64::MAX),
            _ => (1 << (i - 1), (1 << i) - 1),
        }
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Count in bucket `i`.
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.0.buckets[i].load(Ordering::Relaxed)
    }

    /// An upper bound on the `q`-quantile (`0.0..=1.0`): the upper edge
    /// of the first bucket whose cumulative count reaches `q * count`.
    /// Returns 0 on an empty histogram.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            seen += self.bucket_count(i);
            if seen >= target {
                return Self::bucket_bounds(i).1;
            }
        }
        Self::bucket_bounds(HISTOGRAM_BUCKETS - 1).1
    }

    /// Starts a RAII span: the elapsed clock time from now until the
    /// returned [`SpanTimer`] drops is recorded into this histogram.
    pub fn span(&self, clock: &Clock) -> SpanTimer {
        SpanTimer {
            histogram: self.clone(),
            clock: clock.clone(),
            start_ns: clock.now_ns(),
        }
    }
}

/// A RAII phase timer: created by [`Histogram::span`], records the
/// elapsed nanoseconds into its histogram when dropped.  Creating,
/// holding and dropping a span never allocates.
#[derive(Debug)]
pub struct SpanTimer {
    histogram: Histogram,
    clock: Clock,
    start_ns: u64,
}

impl SpanTimer {
    /// Elapsed nanoseconds so far (the value a drop right now would
    /// record).
    pub fn elapsed_ns(&self) -> u64 {
        self.clock.now_ns().saturating_sub(self.start_ns)
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        let elapsed = self.elapsed_ns();
        self.histogram.record(elapsed);
    }
}

enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Entry {
    name: &'static str,
    slot: Slot,
}

/// The named directory of metric slots.  Cloning shares the directory.
#[derive(Clone)]
pub struct MetricsRegistry {
    entries: Arc<Mutex<Vec<Entry>>>,
    clock: Clock,
}

impl MetricsRegistry {
    /// An empty registry over the real monotonic clock.
    pub fn new() -> Self {
        Self::with_clock(Clock::monotonic())
    }

    /// An empty registry over an explicit clock (tests pass a
    /// [`Clock::fake`]).
    pub fn with_clock(clock: Clock) -> Self {
        MetricsRegistry {
            entries: Arc::new(Mutex::new(Vec::new())),
            clock,
        }
    }

    /// The registry's clock, for building span timers consistent with
    /// its histograms.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    fn register(&self, name: &'static str, make: impl FnOnce() -> Slot) -> Slot {
        let mut entries = self.entries.lock().expect("metrics registry poisoned");
        if let Some(entry) = entries.iter().find(|e| e.name == name) {
            return match &entry.slot {
                Slot::Counter(c) => Slot::Counter(c.clone()),
                Slot::Gauge(g) => Slot::Gauge(g.clone()),
                Slot::Histogram(h) => Slot::Histogram(h.clone()),
            };
        }
        let slot = make();
        let clone = match &slot {
            Slot::Counter(c) => Slot::Counter(c.clone()),
            Slot::Gauge(g) => Slot::Gauge(g.clone()),
            Slot::Histogram(h) => Slot::Histogram(h.clone()),
        };
        entries.push(Entry { name, slot });
        clone
    }

    /// Registers (or retrieves) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &'static str) -> Counter {
        match self.register(name, || Slot::Counter(Counter(Arc::new(AtomicU64::new(0))))) {
            Slot::Counter(c) => c,
            _ => panic!("metric {name} is registered as a non-counter"),
        }
    }

    /// Registers (or retrieves) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &'static str) -> Gauge {
        match self.register(name, || Slot::Gauge(Gauge(Arc::new(AtomicU64::new(0))))) {
            Slot::Gauge(g) => g,
            _ => panic!("metric {name} is registered as a non-gauge"),
        }
    }

    /// Registers (or retrieves) the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        match self.register(name, || {
            Slot::Histogram(Histogram(Arc::new(HistogramSlots::new())))
        }) {
            Slot::Histogram(h) => h,
            _ => panic!("metric {name} is registered as a non-histogram"),
        }
    }

    /// Text exposition of every registered metric, sorted by name —
    /// counters and gauges one per line, histograms with count / sum /
    /// mean / quantile upper bounds plus their non-empty buckets.  This
    /// is the snapshot `nsctl` prints as the phase-time table.
    pub fn render(&self) -> String {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by_key(|&i| entries[i].name);
        let mut out = String::new();
        for &i in &order {
            let entry = &entries[i];
            match &entry.slot {
                Slot::Counter(c) => {
                    writeln!(out, "counter {} {}", entry.name, c.get()).unwrap();
                }
                Slot::Gauge(g) => {
                    writeln!(out, "gauge {} {}", entry.name, g.get()).unwrap();
                }
                Slot::Histogram(h) => {
                    let count = h.count();
                    let mean = h.sum().checked_div(count).unwrap_or(0);
                    writeln!(
                        out,
                        "histogram {} count={} sum={} mean={} p50<={} p90<={} p99<={}",
                        entry.name,
                        count,
                        h.sum(),
                        mean,
                        h.quantile_upper_bound(0.50),
                        h.quantile_upper_bound(0.90),
                        h.quantile_upper_bound(0.99),
                    )
                    .unwrap();
                    for b in 0..HISTOGRAM_BUCKETS {
                        let n = h.bucket_count(b);
                        if n > 0 {
                            let (lo, hi) = Histogram::bucket_bounds(b);
                            writeln!(out, "  bucket[{lo},{hi}] {n}").unwrap();
                        }
                    }
                }
            }
        }
        out
    }

    /// JSON exposition of every registered metric, sorted by name:
    /// counters and gauges as bare numbers, histograms as
    /// `{"count", "sum", "mean", "p50", "p90", "p99"}` objects.  The
    /// bench writers embed this snapshot into their `BENCH_*.json`
    /// artifacts.
    pub fn render_json(&self) -> String {
        let entries = self.entries.lock().expect("metrics registry poisoned");
        let mut order: Vec<usize> = (0..entries.len()).collect();
        order.sort_by_key(|&i| entries[i].name);
        let mut parts = Vec::with_capacity(order.len());
        for &i in &order {
            let entry = &entries[i];
            let value = match &entry.slot {
                Slot::Counter(c) => c.get().to_string(),
                Slot::Gauge(g) => g.get().to_string(),
                Slot::Histogram(h) => {
                    let count = h.count();
                    let mean = h.sum().checked_div(count).unwrap_or(0);
                    format!(
                        "{{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                        count,
                        h.sum(),
                        mean,
                        h.quantile_upper_bound(0.50),
                        h.quantile_upper_bound(0.90),
                        h.quantile_upper_bound(0.99),
                    )
                }
            };
            parts.push(format!("\"{}\": {}", entry.name, value));
        }
        format!("{{{}}}", parts.join(", "))
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_accumulate() {
        let registry = MetricsRegistry::new();
        let c = registry.counter("c");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name, same slot.
        assert_eq!(registry.counter("c").get(), 5);
        let g = registry.gauge("g");
        g.set(17);
        g.set(3);
        assert_eq!(registry.gauge("g").get(), 3);
    }

    #[test]
    fn histogram_bucket_boundaries_are_exact() {
        // Bucket 0 is {0}; bucket i is the values of bit width i.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        // Every power of two opens a new bucket; its predecessor closes
        // the previous one.
        for i in 2..63 {
            let lo = 1u64 << (i - 1);
            assert_eq!(Histogram::bucket_index(lo), i, "lower edge of bucket {i}");
            assert_eq!(
                Histogram::bucket_index(lo - 1),
                i - 1,
                "upper edge of bucket {}",
                i - 1
            );
            assert_eq!(Histogram::bucket_bounds(i).0, lo);
            if i < 62 {
                assert_eq!(Histogram::bucket_bounds(i).1, (1 << i) - 1);
            }
        }
        // The last bucket absorbs the top of the range.
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(1 << 62), HISTOGRAM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(1 << 63), HISTOGRAM_BUCKETS - 1);
        assert_eq!(
            Histogram::bucket_bounds(HISTOGRAM_BUCKETS - 1),
            (1 << 62, u64::MAX)
        );
        // Round-trip: each recorded value lands inside its bucket's
        // bounds.
        let registry = MetricsRegistry::new();
        let h = registry.histogram("h");
        for v in [0u64, 1, 2, 3, 4, 255, 256, 1023, 1024, u64::MAX] {
            h.record(v);
            let (lo, hi) = Histogram::bucket_bounds(Histogram::bucket_index(v));
            assert!(lo <= v && v <= hi, "{v} outside [{lo},{hi}]");
        }
        assert_eq!(h.count(), 10);
    }

    #[test]
    fn quantile_upper_bounds_walk_the_buckets() {
        let registry = MetricsRegistry::new();
        let h = registry.histogram("q");
        assert_eq!(h.quantile_upper_bound(0.5), 0);
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        // 9 of 10 values are 1 (bucket 1, upper bound 1); the p99 must
        // climb into 1000's bucket [512, 1023].
        assert_eq!(h.quantile_upper_bound(0.50), 1);
        assert_eq!(h.quantile_upper_bound(0.90), 1);
        assert_eq!(h.quantile_upper_bound(0.99), 1023);
    }

    #[test]
    fn span_timers_over_a_fake_clock_are_deterministic() {
        let (clock, driver) = Clock::fake();
        let registry = MetricsRegistry::with_clock(clock);
        let h = registry.histogram("span_ns");
        {
            let span = h.span(registry.clock());
            driver.advance_ns(700);
            assert_eq!(span.elapsed_ns(), 700);
        }
        {
            let _span = h.span(registry.clock());
            driver.advance_ns(300);
        }
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 1000);
        // 700 has bit width 10 -> bucket 10 [512, 1023]; 300 has bit
        // width 9 -> bucket 9 [256, 511].
        assert_eq!(h.bucket_count(10), 1);
        assert_eq!(h.bucket_count(9), 1);
        // Re-running the identical schedule doubles every slot exactly.
        let (clock2, driver2) = Clock::fake();
        let registry2 = MetricsRegistry::with_clock(clock2);
        let h2 = registry2.histogram("span_ns");
        for ns in [700, 300] {
            let _span = h2.span(registry2.clock());
            driver2.advance_ns(ns);
        }
        assert_eq!(h2.sum(), h.sum());
        assert_eq!(h2.count(), h.count());
    }

    #[test]
    fn render_lists_metrics_sorted_with_buckets() {
        let registry = MetricsRegistry::new();
        registry.counter("b_counter").add(2);
        registry.gauge("a_gauge").set(9);
        let h = registry.histogram("c_hist");
        h.record(3);
        let text = registry.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "gauge a_gauge 9");
        assert_eq!(lines[1], "counter b_counter 2");
        assert!(lines[2].starts_with("histogram c_hist count=1 sum=3 mean=3"));
        assert_eq!(lines[3], "  bucket[2,3] 1");
    }
}
