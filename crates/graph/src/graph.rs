//! Compact CSR representation of an undirected graph.
//!
//! The communication network of network shuffling is an undirected graph: if
//! user `u` can send a report to `v` then `v` can send one to `u` (Section
//! 4.1 of the paper).  The graph is stored in compressed sparse row form:
//! a flat `neighbors` array plus per-node offsets.  This keeps the memory
//! footprint at `2m + n + 1` words and makes neighbour iteration and random
//! neighbour sampling O(1)/O(deg) with good cache behaviour, which matters
//! because the walk engine touches every edge-endpoint once per round.

use crate::error::{GraphError, Result};
use serde::{Deserialize, Serialize};

/// Identifier of a node (user) in the communication graph.
///
/// Nodes are always the dense range `0..n`; dataset loaders are responsible
/// for remapping arbitrary external ids to this range.
pub type NodeId = usize;

/// An immutable undirected graph in CSR (compressed sparse row) form.
///
/// Construct one through [`crate::builder::GraphBuilder`], a generator in
/// [`crate::generators`], or [`Graph::from_edges`].
///
/// Neighbour ids are stored as `u32` (checked at construction:
/// `n < 2^32`), which halves the memory bandwidth of the round kernel's
/// neighbour gather — the dominant traffic of every walk at scale — while
/// [`NodeId`] stays `usize` at the API boundaries that deal in single
/// nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `offsets[i]..offsets[i+1]` indexes the neighbours of node `i`.
    offsets: Vec<usize>,
    /// Concatenated adjacency lists; length `2m`, compressed to u32.
    neighbors: Vec<u32>,
}

impl Graph {
    /// Builds a graph with `n` nodes from an undirected edge list.
    ///
    /// Duplicate edges and self-loops are rejected by the builder; use
    /// [`crate::builder::GraphBuilder`] if the input may contain them.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] or [`GraphError::SelfLoop`] on
    /// malformed input.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self> {
        let mut builder = crate::builder::GraphBuilder::new(n);
        for &(u, v) in edges {
            builder.add_edge(u, v)?;
        }
        Ok(builder.build())
    }

    /// Internal constructor from prepared CSR arrays.
    ///
    /// `offsets` must have length `n + 1`, be non-decreasing, start at 0 and
    /// end at `neighbors.len()`; callers inside this crate guarantee this.
    /// The u32 compression bound (`n < 2^32`) is enforced here, so every
    /// construction path — builder, generators, dynamic snapshots — is
    /// covered by one check.
    pub(crate) fn from_csr(offsets: Vec<usize>, neighbors: Vec<u32>) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), neighbors.len());
        assert!(
            offsets.len() - 1 <= u32::MAX as usize,
            "graphs are limited to 2^32 - 1 nodes (u32-compressed CSR)"
        );
        Graph { offsets, neighbors }
    }

    /// The raw CSR arrays `(offsets, neighbors)` — used by the dynamic-graph
    /// delta layer to splice unchanged row spans with bulk copies, and by
    /// the round kernel's prefetched gather.
    pub(crate) fn csr_parts(&self) -> (&[usize], &[u32]) {
        (&self.offsets, &self.neighbors)
    }

    /// Number of nodes `n` in the graph.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree (number of neighbours) of node `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    #[inline]
    pub fn degree(&self, u: NodeId) -> usize {
        self.offsets[u + 1] - self.offsets[u]
    }

    /// The neighbours of node `u` as a slice of compressed (u32) node ids,
    /// in ascending order.
    ///
    /// The ids are plain node ids, only stored narrow; widen with
    /// `as usize` where a [`NodeId`] is needed.
    ///
    /// # Panics
    ///
    /// Panics if `u >= n`.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[u32] {
        &self.neighbors[self.offsets[u]..self.offsets[u + 1]]
    }

    /// Returns `true` if the undirected edge `(u, v)` exists.
    ///
    /// Runs in `O(log deg(u))` by binary search over the sorted adjacency
    /// list of the lower-degree endpoint.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u >= self.node_count() || v >= self.node_count() {
            return false;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&(b as u32)).is_ok()
    }

    /// Iterates over every node id `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.node_count()
    }

    /// Iterates over every undirected edge exactly once as `(u, v)` with
    /// `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .map(|&v| v as NodeId)
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The degree sequence `k = (k(1), ..., k(n))`.
    pub fn degrees(&self) -> Vec<usize> {
        self.nodes().map(|u| self.degree(u)).collect()
    }

    /// Minimum degree over all nodes; `None` for the empty graph.
    pub fn min_degree(&self) -> Option<usize> {
        self.nodes().map(|u| self.degree(u)).min()
    }

    /// Maximum degree over all nodes; `None` for the empty graph.
    pub fn max_degree(&self) -> Option<usize> {
        self.nodes().map(|u| self.degree(u)).max()
    }

    /// Returns `true` if every node has the same degree `k` (a k-regular
    /// graph, the "symmetric distribution" scenario of Section 4.2).
    pub fn is_regular(&self) -> bool {
        match (self.min_degree(), self.max_degree()) {
            (Some(lo), Some(hi)) => lo == hi,
            _ => true,
        }
    }

    /// Returns the id of a node with degree zero, if any.
    ///
    /// Isolated nodes make the random-walk transition matrix undefined, so
    /// analyses reject them up front.
    pub fn find_isolated_node(&self) -> Option<NodeId> {
        self.nodes().find(|&u| self.degree(u) == 0)
    }

    /// Convenience wrapper around [`crate::connectivity::is_connected`].
    pub fn is_connected(&self) -> bool {
        crate::connectivity::is_connected(self)
    }

    /// Convenience wrapper around [`crate::connectivity::is_bipartite`].
    pub fn is_bipartite(&self) -> bool {
        crate::connectivity::is_bipartite(self)
    }

    /// Validates that the graph supports an ergodic (simple, non-lazy)
    /// random walk: non-empty, no isolated nodes, connected and
    /// non-bipartite (Theorem 4.3 of the paper).
    ///
    /// # Errors
    ///
    /// Returns the first violated requirement as a [`GraphError`].
    pub fn check_ergodic(&self) -> Result<()> {
        if self.node_count() == 0 {
            return Err(GraphError::EmptyGraph);
        }
        if let Some(u) = self.find_isolated_node() {
            return Err(GraphError::IsolatedNode(u));
        }
        if !self.is_connected() {
            return Err(GraphError::Disconnected);
        }
        if self.is_bipartite() {
            return Err(GraphError::Bipartite);
        }
        Ok(())
    }

    /// Samples a neighbour of `u` uniformly at random.
    ///
    /// Returns `None` if `u` is isolated.  This is the per-report transition
    /// step of Algorithms 1 and 2: the next holder is chosen u.a.r. among the
    /// sender's neighbours.
    pub fn random_neighbor<R: rand::Rng + ?Sized>(&self, u: NodeId, rng: &mut R) -> Option<NodeId> {
        let nbrs = self.neighbors(u);
        if nbrs.is_empty() {
            None
        } else {
            Some(nbrs[rng.gen_range(0..nbrs.len())] as NodeId)
        }
    }

    /// Total memory used by the CSR arrays in bytes (diagnostic; used by the
    /// Table 3 complexity experiment).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<usize>() * self.offsets.len()
            + std::mem::size_of::<u32>() * self.neighbors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_tail() -> Graph {
        // 0-1, 1-2, 2-0, 2-3
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap()
    }

    #[test]
    fn basic_counts() {
        let g = triangle_plus_tail();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
    }

    #[test]
    fn neighbors_are_sorted_and_symmetric() {
        let g = triangle_plus_tail();
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        for (u, v) in g.edges() {
            assert!(g.has_edge(u, v));
            assert!(g.has_edge(v, u));
        }
    }

    #[test]
    fn has_edge_rejects_absent_and_out_of_range() {
        let g = triangle_plus_tail();
        assert!(!g.has_edge(0, 3));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn edges_iterator_yields_each_edge_once() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        let mut sorted = edges.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4);
    }

    #[test]
    fn regularity_detection() {
        let g = triangle_plus_tail();
        assert!(!g.is_regular());
        let cycle = crate::generators::cycle(5).unwrap();
        assert!(cycle.is_regular());
    }

    #[test]
    fn ergodicity_check_distinguishes_cases() {
        // Triangle + tail: connected, not bipartite -> ergodic.
        assert!(triangle_plus_tail().check_ergodic().is_ok());
        // Even cycle: bipartite.
        let c4 = crate::generators::cycle(4).unwrap();
        assert_eq!(c4.check_ergodic(), Err(GraphError::Bipartite));
        // Two disjoint edges: disconnected (and bipartite, but connectivity
        // is checked first).
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(g.check_ergodic(), Err(GraphError::Disconnected));
        // Isolated node.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        assert_eq!(g.check_ergodic(), Err(GraphError::IsolatedNode(3)));
        // Empty graph.
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.check_ergodic(), Err(GraphError::EmptyGraph));
    }

    #[test]
    fn random_neighbor_stays_in_adjacency() {
        let g = triangle_plus_tail();
        let mut rng = crate::rng::seeded_rng(1);
        for _ in 0..100 {
            let v = g.random_neighbor(2, &mut rng).unwrap();
            assert!(g.neighbors(2).contains(&(v as u32)));
        }
        let isolated = Graph::from_edges(2, &[]).unwrap();
        assert!(isolated.random_neighbor(0, &mut rng).is_none());
    }

    #[test]
    fn rebuilding_from_edge_iterator_is_lossless() {
        let g = triangle_plus_tail();
        let edges: Vec<_> = g.edges().collect();
        let g2 = Graph::from_edges(g.node_count(), &edges).unwrap();
        assert_eq!(g, g2);
    }
}
