//! Fault tolerance: dropout models, realized outage schedules and their
//! relation to lazy random walks (Section 4.5).
//!
//! In practice some users are temporarily unavailable (battery, network
//! outage) and cannot *receive* a report in a given round; a report whose
//! chosen recipient is unavailable stays put.  The paper collapses all of
//! this to a single lazy-walk constant.  This module keeps both views:
//!
//! * [`DropoutModel`] — the paper's reduction: i.i.d. per-round dropout with
//!   probability `q` is *exactly* the lazy walk with laziness `q` (see the
//!   equivalence notes below), so the whole static accounting stack applies
//!   unchanged.
//! * [`OutageModel`] / [`OutageSchedule`] — the churn runtime: a generator
//!   of *realized* per-round availability masks covering three outage
//!   classes, which drive the engine's masked rounds
//!   ([`ns_graph::mixing_engine::MixingEngine::step_holder_masked`]) and,
//!   through [`OutageSchedule::time_varying_model`], the exact per-user
//!   accounting on the realized schedule
//!   ([`crate::accountant::NetworkShuffleAccountant::with_schedule`]).
//!
//! # The three churn models
//!
//! | model | availability process | laziness-equivalent? |
//! |-------|----------------------|----------------------|
//! | [`OutageModel::Iid`] | every user, every round: down w.p. `q`, independently | **exact**: the marginal one-round transition of each report is the lazy walk with `λ = q`, so per-user moments and guarantees coincide |
//! | [`OutageModel::MarkovOnOff`] | per-user two-state chain: up→down w.p. `fail`, down→up w.p. `recover` (started at stationarity) | **not exact**: single-round marginals match `λ = fail/(fail+recover)`, but outages persist across rounds — a report parked next to a down neighbour tends to stay parked — so bursty churn mixes *slower* than its average suggests |
//! | [`OutageModel::RegionBlackout`] | a fixed node set is dark during a round window | **not exact**: deterministic and adversarial; probability mass piles up at the blackout boundary and no laziness constant reproduces the realized trajectory |
//!
//! When the equivalence is not exact, the honest route is to account on the
//! realized schedule: build the masks, lift them into a
//! [`TimeVaryingModel`], and let the exact ensemble route evolve every
//! origin through the actual product of per-round operators.

use crate::accountant::{AccountantParams, NetworkShuffleAccountant, Scenario};
use crate::error::{Error, Result};
use crate::protocol::ProtocolKind;
use crate::simulation::{run_protocol, SimulationConfig, SimulationOutcome};
use ns_dp::types::PrivacyGuarantee;
use ns_graph::dynamic::TimeVaryingModel;
use ns_graph::rng::SimRng;
use ns_graph::{Graph, NodeId};
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A simple independent-dropout model: in every round, each user is
/// unavailable with probability `dropout_probability`, independently of
/// everything else.  A report whose chosen recipient is unavailable stays
/// put, which is exactly a lazy walk with laziness equal to the dropout
/// probability.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DropoutModel {
    /// Per-round, per-user unavailability probability.
    pub dropout_probability: f64,
}

impl DropoutModel {
    /// Creates a dropout model.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if the probability is outside `[0, 1)`.
    pub fn new(dropout_probability: f64) -> Result<Self> {
        if !(0.0..1.0).contains(&dropout_probability) {
            return Err(Error::InvalidConfiguration(format!(
                "dropout probability must be in [0, 1), got {dropout_probability}"
            )));
        }
        Ok(DropoutModel {
            dropout_probability,
        })
    }

    /// The equivalent lazy-walk stay probability.
    ///
    /// This equivalence is *exact* for the i.i.d. model (and only for it):
    /// each round, a report's chosen recipient is unavailable with
    /// probability `q` independently of the choice, so the report's marginal
    /// transition kernel is precisely the lazy walk with `λ = q`.  Distinct
    /// reports are correlated through the shared masks (two reports aiming
    /// at the same dark node both stay), but the per-user accounting
    /// consumes only marginal position distributions, so the guarantees
    /// coincide.  For correlated or scheduled outages see [`OutageModel`] —
    /// there the equivalence breaks and only the realized schedule is
    /// faithful.
    pub fn as_laziness(&self) -> f64 {
        self.dropout_probability
    }

    /// The realized-schedule generator of the same i.i.d. process, for
    /// driving the engine's masked rounds or cross-checking the laziness
    /// reduction (see `tests/churn.rs`).
    pub fn outage_model(&self) -> OutageModel {
        OutageModel::Iid {
            dropout_probability: self.dropout_probability,
        }
    }

    /// Builds a privacy accountant for the lazy walk induced by this model.
    ///
    /// # Errors
    ///
    /// Graph validation errors.
    pub fn accountant(&self, graph: &Graph) -> Result<NetworkShuffleAccountant> {
        NetworkShuffleAccountant::with_laziness(graph, self.as_laziness())
    }

    /// Central guarantee under dropouts, at the (dropout-adjusted) mixing
    /// time.  Dropouts slow mixing, so for a fixed round budget the
    /// guarantee degrades; running to the adjusted mixing time recovers it.
    ///
    /// # Errors
    ///
    /// Accountant construction or parameter validation errors.
    pub fn central_guarantee_at_mixing_time(
        &self,
        graph: &Graph,
        protocol: ProtocolKind,
        params: &AccountantParams,
    ) -> Result<PrivacyGuarantee> {
        self.accountant(graph)?.central_guarantee_at_mixing_time(
            protocol,
            Scenario::Stationary,
            params,
        )
    }

    /// Runs the protocol simulation under this dropout model.
    ///
    /// # Errors
    ///
    /// Simulation errors.
    pub fn run_protocol<P: Clone>(
        &self,
        graph: &Graph,
        payloads: Vec<P>,
        rounds: usize,
        protocol: ProtocolKind,
        seed: u64,
        make_dummy: impl FnMut(&mut ns_graph::rng::SimRng) -> P,
    ) -> Result<SimulationOutcome<P>> {
        let config = SimulationConfig {
            rounds,
            laziness: self.as_laziness(),
            protocol,
            seed,
        };
        run_protocol(graph, payloads, config, make_dummy)
    }
}

/// A generator of per-round availability masks: which users are reachable in
/// each exchange round.  See the [module docs](self) for the three models
/// and their relation to laziness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OutageModel {
    /// Independent dropout: every user is down in every round with the same
    /// probability, independently across users and rounds.
    Iid {
        /// Per-round, per-user unavailability probability, in `[0, 1)`.
        dropout_probability: f64,
    },
    /// Bursty churn: each user runs an independent two-state Markov chain,
    /// failing with probability `fail` per up-round and recovering with
    /// probability `recover` per down-round.  Chains start from their
    /// stationary distribution, so every round's *marginal* unavailability
    /// is `fail / (fail + recover)` — but outages persist across rounds.
    MarkovOnOff {
        /// Up → down transition probability, in `[0, 1)`.
        fail: f64,
        /// Down → up transition probability, in `(0, 1]`.
        recover: f64,
    },
    /// Adversarial regional outage: the listed nodes are dark for every
    /// round `t` with `from_round <= t < until_round`, deterministically.
    RegionBlackout {
        /// The nodes that go dark.
        region: Vec<NodeId>,
        /// First dark round (0-based, inclusive).
        from_round: usize,
        /// First round the region is back up (exclusive).
        until_round: usize,
    },
}

impl OutageModel {
    /// Validates the model's parameters.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] on out-of-range probabilities or an
    /// empty/inverted blackout window.
    pub fn validate(&self) -> Result<()> {
        match self {
            OutageModel::Iid {
                dropout_probability,
            } => {
                if !(0.0..1.0).contains(dropout_probability) {
                    return Err(Error::InvalidConfiguration(format!(
                        "dropout probability must be in [0, 1), got {dropout_probability}"
                    )));
                }
            }
            OutageModel::MarkovOnOff { fail, recover } => {
                if !(0.0..1.0).contains(fail) {
                    return Err(Error::InvalidConfiguration(format!(
                        "fail probability must be in [0, 1), got {fail}"
                    )));
                }
                if !(*recover > 0.0 && *recover <= 1.0) {
                    return Err(Error::InvalidConfiguration(format!(
                        "recover probability must be in (0, 1], got {recover}"
                    )));
                }
            }
            OutageModel::RegionBlackout {
                from_round,
                until_round,
                ..
            } => {
                if from_round >= until_round {
                    return Err(Error::InvalidConfiguration(format!(
                        "blackout window [{from_round}, {until_round}) is empty"
                    )));
                }
            }
        }
        Ok(())
    }

    /// The long-run average unavailability of one user — the laziness a
    /// static analysis would plug in.  Exact only for [`OutageModel::Iid`]
    /// (see the module docs); for the other models it is the honest scalar
    /// summary whose inadequacy the churn experiments quantify.
    ///
    /// For [`OutageModel::RegionBlackout`] the average is over `rounds`
    /// rounds of a protocol run (`region_fraction × window_overlap`).
    pub fn mean_unavailability(&self, n: usize, rounds: usize) -> f64 {
        match self {
            OutageModel::Iid {
                dropout_probability,
            } => *dropout_probability,
            OutageModel::MarkovOnOff { fail, recover } => fail / (fail + recover),
            OutageModel::RegionBlackout {
                region,
                from_round,
                until_round,
            } => {
                if n == 0 || rounds == 0 {
                    return 0.0;
                }
                let dark_rounds = (*until_round).min(rounds).saturating_sub(*from_round);
                (region.len() as f64 / n as f64) * (dark_rounds as f64 / rounds as f64)
            }
        }
    }

    /// Samples the realized availability masks for `n` users over `rounds`
    /// rounds.  Deterministic in `seed` (the blackout model ignores it).
    ///
    /// # Errors
    ///
    /// Parameter validation errors, plus
    /// [`Error::InvalidConfiguration`] if a blackout region node is `>= n`
    /// or `rounds == 0`.
    pub fn sample_schedule(&self, n: usize, rounds: usize, seed: u64) -> Result<OutageSchedule> {
        self.validate()?;
        if n == 0 || rounds == 0 {
            return Err(Error::InvalidConfiguration(
                "an outage schedule needs at least one user and one round".into(),
            ));
        }
        let mut rng = SimRng::seed_from_u64(seed);
        let masks = match self {
            OutageModel::Iid {
                dropout_probability,
            } => (0..rounds)
                .map(|_| {
                    (0..n)
                        .map(|_| rng.gen::<f64>() >= *dropout_probability)
                        .collect()
                })
                .collect(),
            OutageModel::MarkovOnOff { fail, recover } => {
                let stationary_down = fail / (fail + recover);
                let mut up: Vec<bool> = (0..n)
                    .map(|_| rng.gen::<f64>() >= stationary_down)
                    .collect();
                let mut masks = Vec::with_capacity(rounds);
                for _ in 0..rounds {
                    for state in up.iter_mut() {
                        let flip = rng.gen::<f64>();
                        *state = if *state {
                            flip >= *fail
                        } else {
                            flip < *recover
                        };
                    }
                    masks.push(up.clone());
                }
                masks
            }
            OutageModel::RegionBlackout {
                region,
                from_round,
                until_round,
            } => {
                if let Some(&bad) = region.iter().find(|&&u| u >= n) {
                    return Err(Error::InvalidConfiguration(format!(
                        "blackout region node {bad} is out of range for {n} users"
                    )));
                }
                let mut dark = vec![true; n];
                for &u in region {
                    dark[u] = false;
                }
                (0..rounds)
                    .map(|t| {
                        if (*from_round..*until_round).contains(&t) {
                            dark.clone()
                        } else {
                            vec![true; n]
                        }
                    })
                    .collect()
            }
        };
        OutageSchedule::from_masks(masks)
    }
}

/// A realized availability history: one mask per exchange round.
///
/// This is the interface between churn generation and everything that
/// consumes churn — the engine's masked rounds, the churn-aware protocol
/// simulation ([`crate::simulation::run_protocol_under_outages`]) and the
/// exact accountant via [`OutageSchedule::time_varying_model`].
#[derive(Debug, Clone, PartialEq)]
pub struct OutageSchedule {
    node_count: usize,
    /// `masks[t][u]` — is user `u` reachable in round `t`?
    masks: Vec<Vec<bool>>,
}

impl OutageSchedule {
    /// Wraps explicit masks (all of the same length, at least one round).
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] on an empty or ragged mask sequence.
    pub fn from_masks(masks: Vec<Vec<bool>>) -> Result<Self> {
        let Some(first) = masks.first() else {
            return Err(Error::InvalidConfiguration(
                "an outage schedule needs at least one round".into(),
            ));
        };
        let node_count = first.len();
        if node_count == 0 || masks.iter().any(|m| m.len() != node_count) {
            return Err(Error::InvalidConfiguration(
                "outage masks must be non-empty and all of the same length".into(),
            ));
        }
        Ok(OutageSchedule { node_count, masks })
    }

    /// The fully-available schedule (the static degeneracy) over `rounds`
    /// rounds.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] if `n == 0` or `rounds == 0`.
    pub fn fully_available(n: usize, rounds: usize) -> Result<Self> {
        if n == 0 || rounds == 0 {
            return Err(Error::InvalidConfiguration(
                "an outage schedule needs at least one user and one round".into(),
            ));
        }
        Self::from_masks(vec![vec![true; n]; rounds])
    }

    /// Number of users each mask covers.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of explicitly scheduled rounds.
    pub fn rounds(&self) -> usize {
        self.masks.len()
    }

    /// The mask of round `t`; past the end the last mask holds (the outage
    /// state persists), mirroring [`TimeVaryingModel`]'s hold semantics.
    pub fn mask(&self, round: usize) -> &[bool] {
        &self.masks[round.min(self.masks.len() - 1)]
    }

    /// All per-round masks, in round order — the raw history for lifting
    /// onto other operators (e.g.
    /// [`ns_graph::partition::IntraShardTransition::availability_schedule`]).
    pub fn masks(&self) -> &[Vec<bool>] {
        &self.masks
    }

    /// Fraction of users available in round `t`.
    pub fn available_fraction(&self, round: usize) -> f64 {
        let mask = self.mask(round);
        mask.iter().filter(|&&up| up).count() as f64 / mask.len() as f64
    }

    /// Lifts the schedule into the exact per-round operator product on
    /// `graph`: one [`ns_graph::dynamic::MaskedTransition`] per round, with
    /// the engine-matching semantics (unavailable recipient ⇒ the report
    /// stays put), plus the intrinsic `laziness` of the walk.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidConfiguration`] on a node-count mismatch; operator
    /// construction errors otherwise.
    pub fn time_varying_model(&self, graph: &Graph, laziness: f64) -> Result<TimeVaryingModel> {
        if graph.node_count() != self.node_count {
            return Err(Error::InvalidConfiguration(format!(
                "outage schedule covers {} users but the graph has {}",
                self.node_count,
                graph.node_count()
            )));
        }
        TimeVaryingModel::from_availability(graph, laziness, &self.masks).map_err(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_graph::generators;
    use ns_graph::rng::seeded_rng;

    #[test]
    fn validation() {
        assert!(DropoutModel::new(0.0).is_ok());
        assert!(DropoutModel::new(0.5).is_ok());
        assert!(DropoutModel::new(1.0).is_err());
        assert!(DropoutModel::new(-0.1).is_err());
        assert_eq!(DropoutModel::new(0.3).unwrap().as_laziness(), 0.3);
    }

    #[test]
    fn dropouts_slow_mixing_but_not_the_limit() {
        let g = generators::random_regular(400, 6, &mut seeded_rng(1)).unwrap();
        let reliable = DropoutModel::new(0.0).unwrap().accountant(&g).unwrap();
        let flaky = DropoutModel::new(0.4).unwrap().accountant(&g).unwrap();
        // The lazy walk has a smaller spectral gap, hence a longer mixing time.
        assert!(flaky.mixing_time() > reliable.mixing_time());
        // But the stationary distribution (and thus the asymptotic epsilon)
        // is unchanged.
        let params = AccountantParams::with_defaults(400, 1.0).unwrap();
        let e_reliable = reliable
            .central_guarantee_at_mixing_time(ProtocolKind::Single, Scenario::Stationary, &params)
            .unwrap();
        let e_flaky = flaky
            .central_guarantee_at_mixing_time(ProtocolKind::Single, Scenario::Stationary, &params)
            .unwrap();
        assert!((e_reliable.epsilon - e_flaky.epsilon).abs() / e_reliable.epsilon < 0.05);
    }

    #[test]
    fn fixed_round_budget_degrades_under_dropouts() {
        let g = generators::random_regular(400, 6, &mut seeded_rng(2)).unwrap();
        let params = AccountantParams::with_defaults(400, 1.0).unwrap();
        let rounds = 10;
        let reliable = DropoutModel::new(0.0)
            .unwrap()
            .accountant(&g)
            .unwrap()
            .central_guarantee(ProtocolKind::All, Scenario::Stationary, &params, rounds)
            .unwrap();
        let flaky = DropoutModel::new(0.5)
            .unwrap()
            .accountant(&g)
            .unwrap()
            .central_guarantee(ProtocolKind::All, Scenario::Stationary, &params, rounds)
            .unwrap();
        assert!(flaky.epsilon >= reliable.epsilon);
    }

    #[test]
    fn bipartite_graphs_work_with_dropouts() {
        // The even cycle is bipartite: the plain accountant rejects it, the
        // dropout (lazy) accountant accepts it.
        let g = generators::cycle(12).unwrap();
        assert!(NetworkShuffleAccountant::new(&g).is_err());
        assert!(DropoutModel::new(0.25).unwrap().accountant(&g).is_ok());
    }

    #[test]
    fn simulation_under_dropouts_conserves_reports() {
        let g = generators::random_regular(50, 4, &mut seeded_rng(3)).unwrap();
        let model = DropoutModel::new(0.3).unwrap();
        let outcome = model
            .run_protocol(&g, (0..50u32).collect(), 12, ProtocolKind::All, 99, |_| 0)
            .unwrap();
        assert_eq!(outcome.collected.report_count(), 50);
        // With laziness, fewer messages are sent than reports * rounds.
        assert!(outcome.metrics.total_messages() < 50 * 12);
    }

    #[test]
    fn outage_models_validate_parameters() {
        assert!(OutageModel::Iid {
            dropout_probability: 1.0
        }
        .validate()
        .is_err());
        assert!(OutageModel::MarkovOnOff {
            fail: 0.2,
            recover: 0.0
        }
        .validate()
        .is_err());
        assert!(OutageModel::MarkovOnOff {
            fail: 1.2,
            recover: 0.5
        }
        .validate()
        .is_err());
        assert!(OutageModel::RegionBlackout {
            region: vec![0],
            from_round: 5,
            until_round: 5
        }
        .validate()
        .is_err());
        // Out-of-range region nodes are caught at sampling time.
        let bad = OutageModel::RegionBlackout {
            region: vec![99],
            from_round: 0,
            until_round: 2,
        };
        assert!(bad.sample_schedule(10, 5, 0).is_err());
        assert!(OutageModel::Iid {
            dropout_probability: 0.1
        }
        .sample_schedule(0, 5, 0)
        .is_err());
    }

    #[test]
    fn iid_schedule_hits_the_expected_unavailability() {
        let model = OutageModel::Iid {
            dropout_probability: 0.3,
        };
        let schedule = model.sample_schedule(2_000, 40, 7).unwrap();
        assert_eq!(schedule.rounds(), 40);
        assert_eq!(schedule.node_count(), 2_000);
        let mean_down: f64 = (0..40)
            .map(|t| 1.0 - schedule.available_fraction(t))
            .sum::<f64>()
            / 40.0;
        assert!(
            (mean_down - 0.3).abs() < 0.02,
            "mean unavailability {mean_down}"
        );
        assert_eq!(model.mean_unavailability(2_000, 40), 0.3);
        // Deterministic in the seed.
        assert_eq!(schedule, model.sample_schedule(2_000, 40, 7).unwrap());
        assert_ne!(schedule, model.sample_schedule(2_000, 40, 8).unwrap());
    }

    #[test]
    fn markov_schedule_is_bursty_but_stationary_on_average() {
        let model = OutageModel::MarkovOnOff {
            fail: 0.05,
            recover: 0.2,
        };
        let schedule = model.sample_schedule(3_000, 60, 11).unwrap();
        let pi_down = model.mean_unavailability(3_000, 60);
        assert!((pi_down - 0.2).abs() < 1e-12);
        let mean_down: f64 = (0..60)
            .map(|t| 1.0 - schedule.available_fraction(t))
            .sum::<f64>()
            / 60.0;
        assert!((mean_down - pi_down).abs() < 0.02, "mean down {mean_down}");
        // Burstiness: a user that is down now is far more likely than the
        // stationary rate to be down next round.
        let mut down_now = 0usize;
        let mut down_next = 0usize;
        for t in 0..59 {
            for u in 0..3_000 {
                if !schedule.mask(t)[u] {
                    down_now += 1;
                    if !schedule.mask(t + 1)[u] {
                        down_next += 1;
                    }
                }
            }
        }
        let persistence = down_next as f64 / down_now as f64;
        assert!(
            persistence > 0.7,
            "persistence {persistence} not bursty (stationary rate {pi_down})"
        );
    }

    #[test]
    fn blackout_schedule_is_deterministic_and_windowed() {
        let model = OutageModel::RegionBlackout {
            region: (0..25).collect(),
            from_round: 2,
            until_round: 5,
        };
        let schedule = model.sample_schedule(100, 8, 0).unwrap();
        for t in 0..8 {
            let dark = (2..5).contains(&t);
            assert_eq!(schedule.mask(t)[0], !dark, "round {t}");
            assert!(schedule.mask(t)[99], "round {t}: outside region");
        }
        // Past the schedule end, the last mask holds.
        assert_eq!(schedule.mask(100), schedule.mask(7));
        let expected = (25.0 / 100.0) * (3.0 / 8.0);
        assert!((model.mean_unavailability(100, 8) - expected).abs() < 1e-12);
    }

    #[test]
    fn schedule_lifts_into_a_time_varying_model() {
        let g = generators::random_regular(60, 4, &mut seeded_rng(4)).unwrap();
        let schedule = OutageModel::Iid {
            dropout_probability: 0.2,
        }
        .sample_schedule(60, 6, 3)
        .unwrap();
        let model = schedule.time_varying_model(&g, 0.1).unwrap();
        assert_eq!(model.schedule_len(), 6);
        assert_eq!(
            ns_graph::transition::TransitionModel::node_count(&model),
            60
        );
        // Node-count mismatch is rejected.
        let small = generators::cycle(5).unwrap();
        assert!(schedule.time_varying_model(&small, 0.1).is_err());
    }

    #[test]
    fn from_masks_rejects_ragged_or_empty_input() {
        assert!(OutageSchedule::from_masks(vec![]).is_err());
        assert!(OutageSchedule::from_masks(vec![vec![]]).is_err());
        assert!(OutageSchedule::from_masks(vec![vec![true], vec![true, false]]).is_err());
        let ok = OutageSchedule::fully_available(5, 3).unwrap();
        assert_eq!(ok.rounds(), 3);
        assert_eq!(ok.available_fraction(0), 1.0);
        assert!(OutageSchedule::fully_available(0, 3).is_err());
    }
}
