//! The privacy accountant: Theorems 5.3–5.6 and 6.1 of the paper.
//!
//! The accountant answers the question the whole system exists to answer:
//! *given that every user applied an ε₀-LDP randomizer and the reports were
//! exchanged for `t` rounds on graph `G`, what `(ε, δ)` guarantee does the
//! collection enjoy in the central model?*
//!
//! The theorems consume the graph only through `Σ_i P_i^G(t)²` (and, for the
//! symmetric analysis, the support ratio `ρ*`), so the module is split into:
//!
//! * [`closed_form`] — the raw formulas, taking `Σ_i P_i²` as an input;
//! * [`graph_accountant`] — a convenience layer that derives `Σ_i P_i²`
//!   from a graph, either through the spectral bound of Eq. 7 (stationary
//!   scenario) or by exact evolution of the position distribution
//!   (symmetric scenario), and exposes ε-vs-rounds sweeps for the figures;
//! * [`empirical`] — Monte-Carlo estimation of `Σ_i P_i²` from simulated
//!   walks, as an independent cross-check and for black-box transition
//!   models (dynamic graphs);
//! * [`planning`] — the inverse questions a deployment asks: how many rounds
//!   are enough, and how large an ε₀ still meets a central target.

pub mod closed_form;
pub mod empirical;
pub mod graph_accountant;
pub mod planning;

pub use closed_form::{
    all_protocol_epsilon, all_protocol_epsilon_approx, single_protocol_epsilon,
    single_protocol_epsilon_approx, AccountantParams,
};
pub use empirical::{estimate_mixing, EmpiricalMixing};
pub use graph_accountant::{NetworkShuffleAccountant, Scenario};
pub use planning::{epsilon_0_for_central_target, rounds_for_target_epsilon};
